// Figure 8 — SNICIT runtime as a function of the threshold layer t on the
// N-120 benchmarks. Paper shape: a U-curve — small t clusters too many
// centroids and bloats post-convergence; large t degenerates to plain
// feed-forward; the sweet spot sits in the 20-40 band.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "snicit/engine.hpp"

int main() {
  using namespace snicit;
  bench::print_title("Figure 8: runtime vs threshold layer t (N-120 nets)");

  const std::vector<int> sweep = {0, 10, 20, 30, 40, 60, 80, 100, 120};

  for (const auto& c : bench::sdgc_grid()) {
    if (c.layers < 100) continue;
    auto wl = bench::make_sdgc_workload(c);
    std::printf("\n%s (stands in for %s), B=%zu\n", c.name.c_str(),
                c.paper_name.c_str(), c.batch);
    std::printf("%6s | %12s | %10s | %12s\n", "t", "runtime ms",
                "centroids", "final ne cols");
    for (int t : sweep) {
      if (t > c.layers) continue;
      core::SnicitParams params;
      params.threshold_layer = t;
      params.sample_size = 32;
      params.downsample_dim = 16;
      params.ne_refresh_interval = 5;
      core::SnicitEngine engine(params);
      const auto r = bench::run_engine(engine, wl.net, wl.input);
      std::printf("%6d | %12.2f | %10.0f | %12.0f\n", t, r.total_ms(),
                  r.diagnostics.count("centroids")
                      ? r.diagnostics.at("centroids")
                      : 0.0,
                  r.diagnostics.count("final_ne_columns")
                      ? r.diagnostics.at("final_ne_columns")
                      : 0.0);
    }
  }
  bench::print_note(
      "paper: best runtime for 20 <= t <= 40, rising toward both ends");
  return 0;
}
