// Figure 11 — average latency per post-convergence layer on medium DNNs
// A-D: SNICIT vs SNIG-2020 vs BF-2019. Paper: SNICIT is lowest on all
// four nets, with much smaller variance across nets than the baselines.
#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/bf2019.hpp"
#include "baselines/snig2020.hpp"
#include "bench_util.hpp"
#include "medium_nets.hpp"
#include "snicit/engine.hpp"

int main() {
  using namespace snicit;
  bench::print_title(
      "Figure 11: average post-convergence layer latency, medium DNNs");

  auto nets = bench::load_medium_nets();
  std::printf("\n%-3s %-8s | %12s | %12s | %12s\n", "ID", "N-l",
              "SNICIT ms/l", "SNIG ms/l", "BF ms/l");

  std::vector<double> snicit_lat;
  for (auto& m : nets) {
    const std::size_t t = (m.net.num_layers() / 2) & ~1ULL;
    core::SnicitEngine snicit(bench::medium_snicit_params(m.net.num_layers()));
    baselines::Snig2020Engine snig;
    baselines::Bf2019Engine bf;

    const auto r_sn = bench::run_engine(snicit, m.net, m.hidden0, 2);
    const auto r_sg = bench::run_engine(snig, m.net, m.hidden0, 2);
    const auto r_bf = bench::run_engine(bf, m.net, m.hidden0, 2);

    const double sn = bench::mean_layer_ms(r_sn, t, r_sn.layer_ms.size());
    const double sg = bench::mean_layer_ms(r_sg, t, r_sg.layer_ms.size());
    const double bfl = bench::mean_layer_ms(r_bf, t, r_bf.layer_ms.size());
    snicit_lat.push_back(sn);
    std::printf("%-3s %-8s | %12.4f | %12.4f | %12.4f\n", m.id.c_str(),
                m.config.c_str(), sn, sg, bfl);
  }

  // Variance note (the paper highlights SNICIT's stability across nets).
  double mean = 0.0;
  for (double v : snicit_lat) mean += v;
  mean /= static_cast<double>(snicit_lat.size());
  double var = 0.0;
  for (double v : snicit_lat) var += (v - mean) * (v - mean);
  var /= static_cast<double>(snicit_lat.size());
  std::printf("\nSNICIT per-layer latency: mean %.4f ms, stddev %.4f ms\n",
              mean, std::sqrt(var));
  bench::print_note(
      "paper: SNICIT lowest on all nets and nearly flat across them");
  return 0;
}
