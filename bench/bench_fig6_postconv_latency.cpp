// Figure 6 — average latency per post-convergence layer (layers t..l),
// SNICIT vs XY-2021, across the SDGC grid. The paper's qualitative
// result: SNICIT's post-convergence per-layer latency is far below
// XY-2021's, and the gap widens with network size (up to 18.69x at
// 65536-1920).
#include <cstdio>

#include "baselines/xy2021.hpp"
#include "bench_util.hpp"
#include "snicit/engine.hpp"

int main() {
  using namespace snicit;
  bench::print_title(
      "Figure 6: average latency per post-convergence layer, SNICIT vs "
      "XY-2021");

  std::printf("%-10s %-11s | %12s | %12s | %9s\n", "config", "paper-row",
              "SNICIT ms/l", "XY ms/l", "reduction");

  double prev_reduction = 0.0;
  (void)prev_reduction;
  for (const auto& c : bench::sdgc_grid()) {
    auto wl = bench::make_sdgc_workload(c);
    const int t = bench::sdgc_threshold(c.layers);

    core::SnicitParams params;
    params.threshold_layer = t;
    params.sample_size = 32;
    params.downsample_dim = 16;
    params.ne_refresh_interval = c.layers >= 200 ? 200 : 5;
    core::SnicitEngine snicit(params);
    baselines::Xy2021Engine xy;

    const auto r_sn = bench::run_engine(snicit, wl.net, wl.input);
    const auto r_xy = bench::run_engine(xy, wl.net, wl.input);

    // SNICIT's layer_ms holds t pre-convergence entries followed by the
    // post-convergence layers; XY's holds every layer.
    const double sn_post = bench::mean_layer_ms(
        r_sn, static_cast<std::size_t>(t), r_sn.layer_ms.size());
    const double xy_post = bench::mean_layer_ms(
        r_xy, static_cast<std::size_t>(t), r_xy.layer_ms.size());
    std::printf("%-10s %-11s | %12.4f | %12.4f | %8.2fx\n", c.name.c_str(),
                c.paper_name.c_str(), sn_post, xy_post, xy_post / sn_post);
  }
  bench::print_note(
      "paper reports up to 18.69x reduction at 65536-1920; expect the "
      "measured reduction to grow down the table (deeper/larger nets)");
  return 0;
}
