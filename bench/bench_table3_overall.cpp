// Table 3 — overall runtime of SNICIT vs the previous years' champions
// (XY-2021, SNIG-2020, BF-2019) across the SDGC benchmark grid.
//
// The grid runs at substrate scale (see bench_util.hpp); every scaled
// case is annotated with the paper row it stands in for, and the harness
// prints measured speed-ups next to the paper's. The paper's qualitative
// result to reproduce: SNICIT beats every champion on every row, and its
// margin grows with depth.
#include <cstdio>
#include <map>

#include "baselines/bf2019.hpp"
#include "baselines/snig2020.hpp"
#include "baselines/xy2021.hpp"
#include "bench_util.hpp"
#include "dnn/harness.hpp"
#include "platform/env.hpp"
#include "snicit/engine.hpp"

namespace {

struct PaperSpeedups {
  double xy;
  double snig;
  double bf;
};

const std::map<std::string, PaperSpeedups> kPaper = {
    {"1024-120", {1.11, 18.06, 37.16}},   {"1024-480", {1.63, 33.27, 59.60}},
    {"1024-1920", {1.97, 44.17, 75.34}},  {"4096-120", {1.20, 22.57, 55.32}},
    {"4096-480", {2.12, 55.78, 121.96}},  {"4096-1920", {3.51, 105.34, 221.16}},
    {"16384-120", {1.27, 22.51, 59.66}},  {"16384-480", {2.65, 66.56, 161.45}},
    {"16384-1920", {6.10, 176.48, 409.92}},
};

}  // namespace

int main() {
  using namespace snicit;
  // SNICIT_TRACE_OUT / SNICIT_METRICS_OUT capture the whole grid run.
  const bench::ObservabilityScope observability;
  bench::print_title(
      "Table 3: overall runtime, SNICIT vs XY-2021 / SNIG-2020 / BF-2019");
  bench::print_note(
      "scaled substrate; 'paper' columns give the speed-ups reported for "
      "the corresponding full-size SDGC row");

  std::printf(
      "%-10s %-11s %5s | %9s | %9s %6s (%6s) | %9s %6s (%6s) | %9s %6s "
      "(%6s) | %s\n",
      "config", "paper-row", "B", "SNICIT ms", "XY ms", "x", "paper",
      "SNIG ms", "x", "paper", "BF ms", "x", "paper", "golden");

  bool all_match = true;
  for (const auto& c : bench::sdgc_grid()) {
    auto wl = bench::make_sdgc_workload(c);

    core::SnicitParams params;
    params.threshold_layer = bench::sdgc_threshold(c.layers);
    params.sample_size = 32;
    params.downsample_dim = 16;
    params.eta = 0.03f;
    params.epsilon = 0.03f;
    params.ne_refresh_interval = c.layers >= 200 ? 200 : 5;
    core::SnicitEngine snicit(params);
    baselines::Xy2021Engine xy;
    baselines::Snig2020Engine snig;
    baselines::Bf2019Engine bf;

    const auto r_sn = bench::run_engine(snicit, wl.net, wl.input);
    const auto r_xy = bench::run_engine(xy, wl.net, wl.input);
    const auto r_sg = bench::run_engine(snig, wl.net, wl.input);
    const auto r_bf = bench::run_engine(bf, wl.net, wl.input);

    // Golden check: categories must agree with the exact champion output.
    const auto cats_sn = dnn::sdgc_categories(r_sn.output, 1e-3f);
    const auto cats_xy = dnn::sdgc_categories(r_xy.output, 1e-3f);
    const bool golden = dnn::category_match_rate(cats_sn, cats_xy) == 1.0;
    all_match = all_match && golden;

    const auto& p = kPaper.at(c.paper_name);
    std::printf(
        "%-10s %-11s %5zu | %9.2f | %9.2f %6.2f (%6.2f) | %9.2f %6.2f "
        "(%6.2f) | %9.2f %6.2f (%6.2f) | %s\n",
        c.name.c_str(), c.paper_name.c_str(), c.batch, r_sn.total_ms(),
        r_xy.total_ms(), r_xy.total_ms() / r_sn.total_ms(), p.xy,
        r_sg.total_ms(), r_sg.total_ms() / r_sn.total_ms(), p.snig,
        r_bf.total_ms(), r_bf.total_ms() / r_sn.total_ms(), p.bf,
        golden ? "match" : "MISMATCH");
  }
  std::printf("\nall rows match golden categories: %s\n",
              all_match ? "yes" : "NO");

  // Machine-readable export: SNICIT_BENCH_JSON=/path/table3.json dumps a
  // harness comparison of the first grid case.
  const auto json_path = platform::env_string("SNICIT_BENCH_JSON", "");
  if (!json_path.empty()) {
    const auto c = bench::sdgc_grid().front();
    auto wl = bench::make_sdgc_workload(c);
    core::SnicitParams params;
    params.threshold_layer = bench::sdgc_threshold(c.layers);
    core::SnicitEngine snicit(params);
    baselines::Xy2021Engine xy;
    baselines::Snig2020Engine snig;
    baselines::Bf2019Engine bf;
    const auto cmp = dnn::compare_engines(
        c.name, {&xy, &snig, &bf, &snicit}, wl.net, wl.input);
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f != nullptr) {
      std::fputs(cmp.to_json().c_str(), f);
      std::fclose(f);
      std::printf("wrote JSON comparison to %s\n", json_path.c_str());
    }
  }
  return all_match ? 0 : 1;
}
