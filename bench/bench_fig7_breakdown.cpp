// Figure 7 — runtime breakdown of the four SNICIT stages on the N-120
// benchmarks. Paper values (1024-120 .. 65536-120): pre-convergence
// 58-81%, conversion 10-17%, post-convergence 2-32%, recovery ~0.3%.
#include <cstdio>

#include "bench_util.hpp"
#include "snicit/engine.hpp"

namespace {

struct PaperBreakdown {
  double pre, conv, post, rec;
};

}  // namespace

int main() {
  using namespace snicit;
  bench::print_title(
      "Figure 7: SNICIT runtime breakdown on N-120 benchmarks");

  // Paper pie charts: (a) 1024-120, (b) 4096-120, (c) 16384-120,
  // (d) 65536-120.
  const PaperBreakdown paper[] = {
      {58.22, 9.65, 31.70, 0.43},
      {71.43, 13.73, 14.55, 0.29},
      {80.50, 16.92, 2.32, 0.26},
      {78.99, 15.88, 4.88, 0.25},
  };

  std::printf("%-10s %-11s | %21s | %21s | %21s | %21s\n", "config",
              "paper-row", "pre-convergence", "conversion",
              "post-convergence", "recovery");
  std::printf("%-10s %-11s | %10s %10s | %10s %10s | %10s %10s | %10s %10s\n",
              "", "", "measured", "paper", "measured", "paper", "measured",
              "paper", "measured", "paper");

  int paper_idx = 0;
  for (const auto& c : bench::sdgc_grid()) {
    if (c.layers < 100) continue;  // Figure 7 uses the 120-layer column
    auto wl = bench::make_sdgc_workload(c);
    core::SnicitParams params;
    params.threshold_layer = 30;
    params.sample_size = 32;
    params.downsample_dim = 16;
    params.ne_refresh_interval = 5;
    core::SnicitEngine engine(params);
    const auto r = bench::run_engine(engine, wl.net, wl.input);

    const double total = r.total_ms();
    const auto pct = [&](const char* stage) {
      return 100.0 * r.stages.get(stage) / total;
    };
    const auto& p = paper[paper_idx % 4];
    std::printf(
        "%-10s %-11s | %9.2f%% %9.2f%% | %9.2f%% %9.2f%% | %9.2f%% %9.2f%% "
        "| %9.2f%% %9.2f%%\n",
        c.name.c_str(), c.paper_name.c_str(), pct("pre-convergence"), p.pre,
        pct("conversion"), p.conv, pct("post-convergence"), p.post,
        pct("recovery"), p.rec);
    ++paper_idx;
  }
  bench::print_note(
      "expected shape: pre-convergence dominates and grows with N; "
      "recovery is negligible");
  return 0;
}
