// Figure 12 — (threshold t, batch size B) grid search on medium DNNs A-D:
// SNICIT's speed-up over SNIG-2020 and its accuracy loss at each point.
// Paper shape: larger B -> larger speed-ups; speed-up peaks at t slightly
// below l/2; accuracy loss broadly shrinks as t grows (not monotonically);
// B barely affects accuracy.
#include <cstdio>
#include <vector>

#include "baselines/snig2020.hpp"
#include "bench_util.hpp"
#include "medium_nets.hpp"
#include "snicit/engine.hpp"
#include "train/loss.hpp"

int main() {
  using namespace snicit;
  bench::print_title(
      "Figure 12: (t, B) grid — speed-up over SNIG-2020 and accuracy loss");

  auto nets = bench::load_medium_nets();
  const std::vector<std::size_t> batches =
      bench::large_scale() ? std::vector<std::size_t>{100, 200, 250, 500, 1000}
                           : std::vector<std::size_t>{250, 500, 1000};

  for (auto& m : nets) {
    const int l = static_cast<int>(m.net.num_layers());
    std::printf("\nDNN %s (%s, %s): exact accuracy %.2f%%\n", m.id.c_str(),
                m.config.c_str(), m.dataset_name.c_str(),
                100.0 * m.exact_accuracy);
    std::printf("%6s %6s | %10s | %10s | %9s\n", "t", "B", "SNICIT ms",
                "x SNIG", "acc loss");

    for (std::size_t b : batches) {
      // Slice a B-column sub-batch of the test set.
      const auto sub = m.test.slice(0, b);
      const auto hidden0 = m.mlp.hidden_input(sub.features);

      baselines::Snig2020Engine snig;
      const auto r_sg = bench::run_engine(snig, m.net, hidden0);

      for (int t = 0; t < l; t += (l > 12 ? 4 : 2)) {
        auto params = bench::medium_snicit_params(m.net.num_layers());
        params.threshold_layer = t;
        core::SnicitEngine snicit(params);
        const auto r_sn = bench::run_engine(snicit, m.net, hidden0);
        const auto logits = m.mlp.logits_from_hidden(r_sn.output);
        const double acc = train::accuracy(logits, sub.labels);
        const double exact_sub_acc = [&] {
          const auto exact_logits = m.mlp.logits_from_hidden(
              dnn::reference_forward(m.net, hidden0));
          return train::accuracy(exact_logits, sub.labels);
        }();
        std::printf("%6d %6zu | %10.2f | %9.2fx | %8.2f%%\n", t, b,
                    r_sn.total_ms(), r_sg.total_ms() / r_sn.total_ms(),
                    100.0 * (exact_sub_acc - acc));
      }
    }
  }
  bench::print_note(
      "paper: speed-up grows with B and peaks near t slightly below l/2; "
      "accuracy loss generally drops as t rises");
  return 0;
}
