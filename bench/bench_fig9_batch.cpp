// Figure 9 — runtime vs batch size B on the deepest nets of the grid,
// SNICIT vs XY-2021. Paper shape: both runtimes grow with B, but SNICIT's
// grows much more slowly (the centroid count is batch-independent, so a
// larger share of the batch rides in the compressed representation) —
// hence the speed-up widens with B.
#include <cstdio>
#include <vector>

#include "baselines/xy2021.hpp"
#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "snicit/engine.hpp"

int main() {
  using namespace snicit;
  bench::print_title("Figure 9: runtime vs batch size B (deepest nets)");

  const std::vector<std::size_t> batches = {64, 128, 256, 512, 1024};

  // The deepest configuration per neuron size in the active grid.
  for (const auto& c : bench::sdgc_grid()) {
    if (c.layers < 100) continue;
    std::printf("\n%s (stands in for %s)\n", c.name.c_str(),
                c.paper_name.c_str());
    std::printf("%7s | %12s | %12s | %8s\n", "B", "SNICIT ms", "XY ms",
                "speedup");

    radixnet::RadixNetOptions opt;
    opt.neurons = c.neurons;
    opt.layers = c.layers;
    opt.fanin = 32;
    opt.seed = 42;
    const auto net = radixnet::make_radixnet(opt);

    for (std::size_t b : batches) {
      data::SdgcInputOptions in_opt;
      in_opt.neurons = static_cast<std::size_t>(c.neurons);
      in_opt.batch = b;
      in_opt.classes = 10;
      in_opt.seed = 11;
      const auto input = data::make_sdgc_input(in_opt).features;

      core::SnicitParams params;
      params.threshold_layer = 30;
      params.sample_size = 32;
      params.downsample_dim = 16;
      params.ne_refresh_interval = 5;
      core::SnicitEngine snicit(params);
      baselines::Xy2021Engine xy;

      const auto r_sn = bench::run_engine(snicit, net, input);
      const auto r_xy = bench::run_engine(xy, net, input);
      std::printf("%7zu | %12.2f | %12.2f | %7.2fx\n", b, r_sn.total_ms(),
                  r_xy.total_ms(), r_xy.total_ms() / r_sn.total_ms());
    }
  }
  bench::print_note("paper: the SNICIT-over-XY speed-up widens as B grows");
  return 0;
}
