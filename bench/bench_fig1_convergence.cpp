// Figure 1 — the motivation plot: intermediate results converge over
// layers, and SNICIT's compressed representation slashes computational
// intensity after convergence.
//
// Instead of a t-SNE scatter this harness prints, per layer, (a) the
// number of distinct activation columns in the batch (cluster collapse),
// (b) a cluster-compactness proxy (mean L0 distance of each column to the
// batch's first column of the same class), and (c) the computational
// intensity (nonzeros the next layer must process) with and without
// SNICIT's strategy — the line chart of Figure 1.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "dnn/reference.hpp"
#include "snicit/engine.hpp"

namespace {

std::size_t distinct_columns(const snicit::dnn::DenseMatrix& y) {
  std::map<std::size_t, int> seen;
  for (std::size_t j = 0; j < y.cols(); ++j) {
    std::size_t h = 1469598103934665603ULL;
    const float* c = y.col(j);
    for (std::size_t r = 0; r < y.rows(); ++r) {
      union {
        float f;
        std::uint32_t u;
      } v{c[r]};
      h = (h ^ v.u) * 1099511628211ULL;
    }
    ++seen[h];
  }
  return seen.size();
}

}  // namespace

int main() {
  using namespace snicit;
  bench::print_title(
      "Figure 1: convergence of intermediate results + computational "
      "intensity with/without SNICIT");

  const auto grid = bench::sdgc_grid();
  const auto& c = grid[0];  // shallow case: full per-layer trace
  auto wl = bench::make_sdgc_workload(c);
  std::printf("workload: %s, B=%zu\n\n", c.name.c_str(), c.batch);

  // Dense trace: distinct columns + nnz per layer (the "without" line).
  std::printf("%5s | %9s | %14s | %14s\n", "layer", "distinct",
              "dense nnz", "SNICIT nnz");

  core::SnicitParams params;
  params.threshold_layer = bench::sdgc_threshold(c.layers);
  params.sample_size = 32;
  params.downsample_dim = 16;
  params.record_trace = true;
  core::SnicitEngine engine(params);
  engine.run(wl.net, wl.input);
  const auto& trace = engine.last_trace();

  dnn::DenseMatrix y = wl.input;
  for (int l = 0; l < c.layers; ++l) {
    y = dnn::reference_forward(wl.net, y, static_cast<std::size_t>(l),
                               static_cast<std::size_t>(l) + 1);
    const std::size_t dense_nnz = y.count_nonzeros();
    if (l + 1 > params.threshold_layer) {
      const std::size_t idx =
          static_cast<std::size_t>(l) -
          static_cast<std::size_t>(params.threshold_layer);
      const std::size_t snicit_nnz = idx < trace.compressed_nnz.size()
                                         ? trace.compressed_nnz[idx]
                                         : 0;
      std::printf("%5d | %9zu | %14zu | %14zu\n", l + 1,
                  distinct_columns(y), dense_nnz, snicit_nnz);
    } else {
      std::printf("%5d | %9zu | %14zu | %14s\n", l + 1, distinct_columns(y),
                  dense_nnz, "(pre-conv)");
    }
  }
  std::printf("\ncentroids found at t=%d: %zu\n", trace.threshold_layer,
              trace.centroid_count);
  bench::print_note(
      "paper's Figure 1: clusters centralise by ~layer 8 and the "
      "compressed intensity collapses after conversion");
  return 0;
}
