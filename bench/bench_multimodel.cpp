// bench_multimodel — tenant-count x arrival-mix sweep for the multi-model
// router: N tenants (one registry model each, SNICIT engines over
// distinct Radix-Net seeds) share one router and one worker budget, and a
// merged request timeline is replayed against it. Two arrival mixes:
//
//   uniform  every tenant submits Poisson arrivals at the same mean rate
//   burst1   tenant 0 dumps its whole stream at t=0 (an abusive
//            neighbour); the other tenants keep the uniform Poisson
//            schedule — the isolation scenario
//
// Each (mix, tenants, tenant) row reports serving shape (rounds, engine
// batches, fill) and request latency percentiles from the tenant's own
// ServeReport. The isolation summary compares the victims' (non-bursting
// tenants') p95 between mixes: round-robin driving bounds how late a
// burster can make anyone else, so the ratio should stay small even
// though the burster saturates the shared budget.
//
//   bench_multimodel [--tenants 1,2,4] [--requests N] [--neurons N]
//                    [--layers L] [--max-batch B] [--rate R] [--workers W]
//                    [--timeout MS] [--seed S] [--json FILE] [--check]
//
// --check exits nonzero unless every tenant's ledger is complete (no
// failed or lost requests) in every cell — the burst drill must degrade
// latency at worst, never correctness.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "platform/cli.hpp"
#include "platform/json.hpp"
#include "platform/rng.hpp"
#include "serve/router.hpp"

namespace {

using namespace snicit;

struct Row {
  std::string mix;
  std::size_t tenants = 0;
  std::string tenant;
  bool burster = false;
  std::size_t requests = 0;
  std::size_t rounds = 0;
  std::size_t batches = 0;
  double mean_fill = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  bool complete = true;
};

/// One submission event of the merged timeline.
struct Arrival {
  double offset_ms = 0.0;
  std::size_t tenant = 0;
  std::size_t col = 0;
};

std::string tenant_id(std::size_t i) { return "tenant" + std::to_string(i); }

/// Merged per-tenant arrival timeline. Uniform: independent Poisson
/// processes at `per_ms` each. burst1: tenant 0's requests all land at
/// t=0, the rest keep Poisson.
std::vector<Arrival> make_timeline(const std::string& mix,
                                   std::size_t tenants, std::size_t requests,
                                   double per_ms, std::uint64_t seed) {
  std::vector<Arrival> timeline;
  timeline.reserve(tenants * requests);
  for (std::size_t m = 0; m < tenants; ++m) {
    platform::Rng rng(seed + 17 * m);
    const bool burst = mix == "burst1" && m == 0;
    double t = 0.0;
    for (std::size_t j = 0; j < requests; ++j) {
      if (!burst) t += -std::log(1.0 - rng.next_double()) / per_ms;
      timeline.push_back({burst ? 0.0 : t, m, j});
    }
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.offset_ms < b.offset_ms;
                   });
  return timeline;
}

std::vector<Row> run_cell(const std::string& mix, std::size_t tenants,
                          std::size_t requests,
                          const std::vector<dnn::DenseMatrix>& inputs,
                          serve::ModelRegistry& registry,
                          const serve::ServeOptions& serve_opt,
                          double per_ms, std::uint64_t seed) {
  serve::RouterOptions opt;
  opt.serve = serve_opt;
  serve::Router router(registry, opt);

  const auto timeline = make_timeline(mix, tenants, requests, per_ms, seed);
  const platform::Stopwatch clock;
  for (const Arrival& a : timeline) {
    const double lag = a.offset_ms - clock.elapsed_ms();
    if (lag > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(lag));
    }
    const auto& input = inputs[a.tenant];
    std::vector<float> features(input.col(a.col),
                                input.col(a.col) + input.rows());
    (void)router.submit(tenant_id(a.tenant), std::move(features));
  }
  const auto report = router.finish();

  std::vector<Row> rows;
  for (std::size_t m = 0; m < tenants; ++m) {
    Row row;
    row.mix = mix;
    row.tenants = tenants;
    row.tenant = tenant_id(m);
    row.burster = mix == "burst1" && m == 0;
    const serve::ServeReport* tenant = report.find(row.tenant);
    if (tenant != nullptr) {
      row.requests = tenant->requests;
      row.rounds = tenant->rounds;
      row.batches = tenant->batches;
      row.mean_fill = tenant->mean_fill();
      row.p50_ms = tenant->latency.p50();
      row.p95_ms = tenant->latency.p95();
      row.p99_ms = tenant->latency.p99();
      row.complete =
          tenant->complete() && tenant->requests == requests;
    } else {
      row.complete = false;
    }
    rows.push_back(row);
  }
  return rows;
}

void print_row(const Row& row) {
  std::printf("%7s %7zu %9s%s | %5zu %5zu %5zu %5.2f | %7.2f %7.2f %7.2f%s\n",
              row.mix.c_str(), row.tenants, row.tenant.c_str(),
              row.burster ? "*" : " ", row.requests, row.rounds, row.batches,
              row.mean_fill, row.p50_ms, row.p95_ms, row.p99_ms,
              row.complete ? "" : "  [INCOMPLETE]");
}

}  // namespace

int main(int argc, char** argv) {
  const platform::CliArgs args(argc, argv);
  const bench::ObservabilityScope observability;
  bench::print_title(
      "Multi-model serving sweep: tenant count x arrival mix");

  const bool check = args.has("check");
  const auto requests = static_cast<std::size_t>(
      args.get_int("requests", bench::large_scale() ? 256 : 96));
  const auto neurons = static_cast<sparse::Index>(
      args.get_int("neurons", bench::large_scale() ? 1024 : 256));
  const auto layers = static_cast<int>(
      args.get_int("layers", bench::large_scale() ? 120 : 24));
  const auto tenant_list = args.get_int_list("tenants", {1, 2, 4});
  const auto max_batch = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("max-batch", 16), 1));
  const double per_ms = std::max(args.get_double("rate", 4.0), 0.001);
  const auto workers = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("workers", 1), 0));
  const double timeout_ms = std::max(args.get_double("timeout", 2.0), 0.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string json_out = args.get("json", "");

  const std::size_t max_tenants = static_cast<std::size_t>(
      std::max<std::int64_t>(
          *std::max_element(tenant_list.begin(), tenant_list.end()), 1));

  serve::ServeOptions serve_opt;
  serve_opt.max_batch = max_batch;
  serve_opt.batch_timeout_ms = timeout_ms;
  serve_opt.workers = workers;

  // One registry model + clustered input batch per potential tenant;
  // distinct seeds so the tenants are genuinely different models.
  serve::ModelRegistry registry;
  std::vector<dnn::DenseMatrix> inputs;
  for (std::size_t m = 0; m < max_tenants; ++m) {
    serve::ModelSpec spec;
    spec.id = tenant_id(m);
    spec.engine = "snicit";
    spec.neurons = neurons;
    spec.layers = layers;
    spec.seed = seed + m;
    const auto added = registry.add(spec);
    if (!added.ok()) {
      std::fprintf(stderr, "error: %s\n", added.error().message.c_str());
      return 1;
    }
    data::SdgcInputOptions in_opt;
    in_opt.neurons = static_cast<std::size_t>(neurons);
    in_opt.batch = requests;
    in_opt.classes = 10;
    in_opt.seed = seed + 100 + m;
    inputs.push_back(data::make_sdgc_input(in_opt).features);
  }

  std::printf("%d neurons x %d layers per model, %zu requests/tenant, "
              "rate %.1f req/ms/tenant, max batch %zu, timeout %.1f ms, "
              "%zu shared worker(s)\n",
              neurons, layers, requests, per_ms, max_batch, timeout_ms,
              std::max<std::size_t>(workers, 1));
  std::printf("\n%7s %7s %10s | %5s %5s %5s %5s | %7s %7s %7s   "
              "(* = bursting tenant)\n",
              "mix", "tenants", "tenant", "reqs", "rnds", "batch", "fill",
              "p50 ms", "p95 ms", "p99 ms");

  std::vector<Row> rows;
  bool all_complete = true;
  // victim p95 by tenant count, per mix, for the isolation summary.
  std::vector<double> uniform_victim_p95, burst_victim_p95;
  for (const auto t : tenant_list) {
    if (t < 1) continue;
    const auto tenants = static_cast<std::size_t>(t);
    for (const std::string mix : {"uniform", "burst1"}) {
      if (mix == "burst1" && tenants < 2) continue;  // no victims to watch
      const auto cell = run_cell(mix, tenants, requests, inputs, registry,
                                 serve_opt, per_ms, seed);
      double victim_p95 = 0.0;
      std::size_t victims = 0;
      for (const Row& row : cell) {
        print_row(row);
        rows.push_back(row);
        all_complete = all_complete && row.complete;
        if (!row.burster && tenants >= 2) {
          victim_p95 += row.p95_ms;
          ++victims;
        }
      }
      if (victims > 0) {
        (mix == "uniform" ? uniform_victim_p95 : burst_victim_p95)
            .push_back(victim_p95 / static_cast<double>(victims));
      }
    }
  }

  for (std::size_t i = 0; i < burst_victim_p95.size() &&
                          i < uniform_victim_p95.size();
       ++i) {
    const double base = std::max(uniform_victim_p95[i], 1e-9);
    std::printf("\nisolation: victim mean p95 %.2f ms uniform -> %.2f ms "
                "under burst (x%.2f)\n",
                uniform_victim_p95[i], burst_victim_p95[i],
                burst_victim_p95[i] / base);
  }
  bench::print_note(
      "round-robin lane driving shares the worker budget: a bursting "
      "tenant can fill idle capacity but cannot delay a victim by more "
      "than one serving round per sweep");

  if (!json_out.empty()) {
    platform::JsonWriter json;
    json.begin_array();
    for (const auto& row : rows) {
      json.begin_object();
      json.key("mix").value(row.mix);
      json.key("tenants").value(row.tenants);
      json.key("tenant").value(row.tenant);
      json.key("burster").value(row.burster);
      json.key("requests").value(row.requests);
      json.key("rounds").value(row.rounds);
      json.key("batches").value(row.batches);
      json.key("mean_fill").value(row.mean_fill);
      json.key("p50_ms").value(row.p50_ms);
      json.key("p95_ms").value(row.p95_ms);
      json.key("p99_ms").value(row.p99_ms);
      json.key("complete").value(row.complete);
      json.end_object();
    }
    json.end_array();
    std::ofstream out(json_out);
    out << json.str() << "\n";
    if (out.good()) {
      std::printf("wrote %zu rows to %s\n", rows.size(), json_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    }
  }

  if (check && !all_complete) {
    std::fprintf(stderr,
                 "check failed: every tenant must complete every request "
                 "in every cell\n");
    return 1;
  }
  return 0;
}
