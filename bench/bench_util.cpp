#include "bench_util.hpp"

#include "platform/metrics.hpp"
#include "platform/trace.hpp"

namespace snicit::bench {

ObservabilityScope::ObservabilityScope()
    : trace_out_(platform::env_string("SNICIT_TRACE_OUT", "")),
      metrics_out_(platform::env_string("SNICIT_METRICS_OUT", "")) {
  if (!trace_out_.empty()) {
    platform::trace::clear();
    platform::trace::set_enabled(true);
  }
  if (!metrics_out_.empty()) {
    platform::metrics::MetricsRegistry::global().reset();
    platform::metrics::set_enabled(true);
  }
}

ObservabilityScope::~ObservabilityScope() {
  if (!trace_out_.empty()) {
    if (platform::trace::write_chrome_trace(trace_out_)) {
      std::printf("wrote %zu trace events to %s\n",
                  platform::trace::event_count(), trace_out_.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_out_.c_str());
    }
  }
  if (!metrics_out_.empty()) {
    auto& registry = platform::metrics::MetricsRegistry::global();
    if (registry.write_json(metrics_out_)) {
      std::printf("wrote metrics dump to %s\n", metrics_out_.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   metrics_out_.c_str());
    }
  }
}

std::vector<SdgcCase> sdgc_grid() {
  // Scaled stand-ins: each (neurons, layers) pair maps onto a paper row so
  // harnesses can print paper-vs-measured side by side. The depth ratio
  // (1:5 in the small grid, 1:5:20 with large) mirrors 120:480:1920.
  std::vector<SdgcCase> grid = {
      {"256-48", "1024-120", 256, 48, 512},
      {"256-120", "1024-480", 256, 120, 512},
      {"1024-48", "4096-120", 1024, 48, 512},
      {"1024-120", "4096-480", 1024, 120, 512},
  };
  if (large_scale()) {
    grid.push_back({"256-480", "1024-1920", 256, 480, 512});
    grid.push_back({"1024-480", "4096-1920", 1024, 480, 512});
    grid.push_back({"4096-48", "16384-120", 4096, 48, 256});
    grid.push_back({"4096-120", "16384-480", 4096, 120, 256});
    grid.push_back({"4096-480", "16384-1920", 4096, 480, 256});
  }
  return grid;
}

int sdgc_threshold(int layers) {
  // Paper: t = 30 on the deep SDGC nets; the substrate's 48-layer rows
  // convert at l/2 = 24, right after their calibrated convergence point.
  return layers >= 120 ? 30 : layers / 2;
}

SdgcWorkload make_sdgc_workload(const SdgcCase& c) {
  radixnet::RadixNetOptions opt;
  opt.neurons = c.neurons;
  opt.layers = c.layers;
  opt.fanin = 32;
  opt.seed = 42;
  auto net = radixnet::make_radixnet(opt);

  data::SdgcInputOptions in_opt;
  in_opt.neurons = static_cast<std::size_t>(c.neurons);
  in_opt.batch = c.batch;
  in_opt.classes = 10;
  in_opt.seed = 11;
  auto input = data::make_sdgc_input(in_opt).features;
  return {std::move(net), std::move(input)};
}

dnn::RunResult run_engine(dnn::InferenceEngine& engine,
                          const dnn::SparseDnn& net,
                          const dnn::DenseMatrix& input, int repeats) {
  net.ensure_csc();  // cold-start format mirrors outside the timed region
  dnn::RunResult best = engine.run(net, input);
  for (int i = 1; i < repeats; ++i) {
    dnn::RunResult r = engine.run(net, input);
    if (r.total_ms() < best.total_ms()) best = std::move(r);
  }
  return best;
}

double mean_layer_ms(const dnn::RunResult& result, std::size_t first,
                     std::size_t last) {
  if (first >= last || last > result.layer_ms.size()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = first; i < last; ++i) sum += result.layer_ms[i];
  return sum / static_cast<double>(last - first);
}

double giga_edges_per_sec(const dnn::SparseDnn& net, std::size_t batch,
                          double total_ms) {
  if (total_ms <= 0.0) return 0.0;
  const double edges = static_cast<double>(net.connections()) *
                       static_cast<double>(batch);
  return edges / (total_ms / 1000.0) / 1e9;
}

}  // namespace snicit::bench
