// Table 1 — statistics of the SDGC benchmarks: bias, density, connection
// count and on-disk size for the 12 official configurations, regenerated
// from the library's Radix-Net model. Also verifies the generator's
// *structural* properties (exact fan-in, constant bias) on a small
// instance.
#include <cstdio>

#include "bench_util.hpp"
#include "radixnet/radixnet.hpp"

int main() {
  using namespace snicit;
  bench::print_title(
      "Table 1: statistics of SDGC benchmarks (paper values regenerated)");

  struct PaperRow {
    int neurons;
    int layers;
    double paper_bias;
    double paper_density;
    long long paper_connections;
    double paper_size_gb;
  };
  // The 12 rows of Table 1 verbatim.
  const PaperRow rows[] = {
      {1024, 120, -0.30, 0.03, 3932160LL, 0.076},
      {1024, 480, -0.30, 0.03, 15728640LL, 0.30},
      {1024, 1920, -0.30, 0.03, 62914560LL, 1.22},
      {4096, 120, -0.35, 0.008, 15728640LL, 0.328},
      {4096, 480, -0.35, 0.008, 62914560LL, 1.32},
      {4096, 1920, -0.35, 0.008, 251658240LL, 5.26},
      {16384, 120, -0.40, 0.002, 62914560LL, 1.38},
      {16384, 480, -0.40, 0.002, 251658240LL, 5.54},
      {16384, 1920, -0.40, 0.002, 1006632960LL, 22.17},
      {65536, 120, -0.45, 0.0005, 251658240LL, 5.78},
      {65536, 480, -0.45, 0.0005, 1006632960LL, 23.12},
      {65536, 1920, -0.45, 0.0005, 4026531840LL, 92.48},
  };

  std::printf("%-8s %-6s | %-7s %-7s | %-9s %-9s | %-13s %-13s | %-8s %-8s\n",
              "neurons", "layers", "bias", "paper", "density", "paper",
              "connections", "paper", "size GB", "paper");
  bool all_ok = true;
  for (const auto& r : rows) {
    const auto s = radixnet::sdgc_stats(r.neurons, r.layers);
    std::printf(
        "%-8d %-6d | %-7.2f %-7.2f | %-9.5f %-9.4f | %-13lld %-13lld | "
        "%-8.2f %-8.2f\n",
        r.neurons, r.layers, s.bias, r.paper_bias, s.density,
        r.paper_density, static_cast<long long>(s.connections),
        r.paper_connections, s.size_gb, r.paper_size_gb);
    all_ok = all_ok && s.connections == r.paper_connections;
  }

  // Structural verification on a buildable instance.
  radixnet::RadixNetOptions opt;
  opt.neurons = 1024;
  opt.layers = 4;
  const auto net = radixnet::make_radixnet(opt);
  std::size_t bad_rows = 0;
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    for (sparse::Index r = 0; r < net.neurons(); ++r) {
      if (net.weight(l).row_cols(r).size() != 32) ++bad_rows;
    }
  }
  std::printf(
      "\ngenerator check @1024-4: fan-in exactly 32 for %s rows; "
      "constant bias: %s\n",
      bad_rows == 0 ? "all" : "NOT all",
      net.bias_is_constant(0) ? "yes" : "no");
  std::printf("connection counts match Table 1: %s\n",
              all_ok ? "yes" : "NO");
  return all_ok && bad_rows == 0 ? 0 : 1;
}
