// Shared helpers for the benchmark harnesses: workload construction,
// engine timing, scale selection, and paper-vs-measured table printing.
//
// Every harness honours SNICIT_BENCH_SCALE:
//   small (default) — configurations sized for a single-core CI box
//   large           — adds the bigger grid points (minutes of runtime)
// The *structure* of each experiment (grid shape, parameter names, rows
// printed) always matches the paper; only absolute sizes scale.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "dnn/engine.hpp"
#include "dnn/reference.hpp"
#include "platform/env.hpp"
#include "platform/timer.hpp"
#include "radixnet/radixnet.hpp"

namespace snicit::bench {

inline bool large_scale() {
  return platform::env_string("SNICIT_BENCH_SCALE", "small") == "large";
}

/// A scaled stand-in for one SDGC benchmark (paper row `paper_name`).
struct SdgcCase {
  std::string name;        // e.g. "1024-120 (scaled)"
  std::string paper_name;  // e.g. "16384-480"
  sparse::Index neurons;
  int layers;
  std::size_t batch;
};

/// The scaled grid mirroring Table 1/3's 12-benchmark layout. The small
/// grid covers {256,1024} x {48,120}; large adds {4096} and {480}-deep.
std::vector<SdgcCase> sdgc_grid();

/// The threshold layer t used for an SDGC-style net of this depth
/// (paper: t = 30; shallower scaled rows use l/2).
int sdgc_threshold(int layers);

/// Builds the network + clustered binary input for a case (seeded, so all
/// harnesses see identical workloads).
struct SdgcWorkload {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
};
SdgcWorkload make_sdgc_workload(const SdgcCase& c);

/// Runs the engine once (after a cold ensure of format mirrors) and
/// returns the result; `repeats` > 1 keeps the fastest run.
dnn::RunResult run_engine(dnn::InferenceEngine& engine,
                          const dnn::SparseDnn& net,
                          const dnn::DenseMatrix& input, int repeats = 1);

/// Mean per-layer latency over layers [first, last) of a run.
double mean_layer_ms(const dnn::RunResult& result, std::size_t first,
                     std::size_t last);

/// SDGC's throughput metric: (connections * batch) edges processed per
/// second of inference, in giga-edges/s.
double giga_edges_per_sec(const dnn::SparseDnn& net, std::size_t batch,
                          double total_ms);

/// Section header for harness output.
inline void print_title(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

/// Env-driven observability for the benchmark harnesses: construct one at
/// the top of main(). When SNICIT_TRACE_OUT and/or SNICIT_METRICS_OUT are
/// set, tracing/metrics switch on for the process lifetime and the capture
/// is written to those paths at scope exit; with neither set this is a
/// no-op and the harness runs uninstrumented (the tier-1 timing mode).
class ObservabilityScope {
 public:
  ObservabilityScope();
  ~ObservabilityScope();

  ObservabilityScope(const ObservabilityScope&) = delete;
  ObservabilityScope& operator=(const ObservabilityScope&) = delete;

 private:
  std::string trace_out_;
  std::string metrics_out_;
};

}  // namespace snicit::bench
