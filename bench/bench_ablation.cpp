// Ablations of SNICIT's design choices (the decisions §3 argues for):
//   1. sum downsampling on/off in centroid selection (§3.2.1)
//   2. ne_idx refresh cadence (§3.3.2: every layer vs every 200)
//   3. near-zero residue pruning on/off (§3.3.1)
//   4. load reduction off (post-convergence over ALL columns) — isolates
//      the contribution of skipping empty columns
//   5. dynamic threshold detection (future work, §5) vs fixed t
//   6. periodic re-clustering (§3.2.2 rejects it as too expensive —
//      measured here)
//   7. spGEMM + per-layer recompression vs load-reduced spMM (§3.3.1)
//   8. int8 weight quantization composed with SNICIT (§2.2's static axis)
#include <cstdio>

#include "bench_util.hpp"
#include "dnn/reference.hpp"
#include "platform/timer.hpp"
#include "snicit/convert.hpp"
#include "snicit/engine.hpp"
#include "snicit/postconv.hpp"
#include "snicit/sample_prune.hpp"
#include "snicit/sampling.hpp"
#include "sparse/quantized.hpp"
#include "sparse/spgemm.hpp"
#include "sparse/spmm.hpp"

namespace {

using namespace snicit;

core::SnicitParams base_params(int layers) {
  core::SnicitParams p;
  p.threshold_layer = bench::sdgc_threshold(layers);
  p.sample_size = 32;
  p.downsample_dim = 16;
  p.ne_refresh_interval = 5;
  return p;
}

double timed(const core::SnicitParams& p, const dnn::SparseDnn& net,
             const dnn::DenseMatrix& input, double* conv_ms = nullptr,
             double* post_ms = nullptr, double* centroids = nullptr) {
  core::SnicitEngine engine(p);
  const auto r = bench::run_engine(engine, net, input, 2);
  if (conv_ms != nullptr) *conv_ms = r.stages.get("conversion");
  if (post_ms != nullptr) *post_ms = r.stages.get("post-convergence");
  if (centroids != nullptr && r.diagnostics.count("centroids") != 0u) {
    *centroids = r.diagnostics.at("centroids");
  }
  return r.total_ms();
}

}  // namespace

int main() {
  bench::print_title("Ablations of SNICIT design choices");

  const auto grid = bench::sdgc_grid();
  // Use the deepest small-grid case: ablations matter most at depth.
  const auto& c = grid[3];
  auto wl = bench::make_sdgc_workload(c);
  std::printf("workload: %s, B=%zu\n\n", c.name.c_str(), c.batch);

  // 1. Sum downsampling.
  {
    auto with_ds = base_params(c.layers);
    auto without_ds = base_params(c.layers);
    without_ds.downsample_dim = 0;
    double conv_a = 0.0;
    double conv_b = 0.0;
    double cent_a = 0.0;
    double cent_b = 0.0;
    const double a = timed(with_ds, wl.net, wl.input, &conv_a, nullptr,
                           &cent_a);
    const double b = timed(without_ds, wl.net, wl.input, &conv_b, nullptr,
                           &cent_b);
    std::printf(
        "[1] sum downsampling  : on  %8.2f ms (conv %6.2f ms, %g "
        "centroids)\n",
        a, conv_a, cent_a);
    std::printf(
        "                        off %8.2f ms (conv %6.2f ms, %g "
        "centroids)\n",
        b, conv_b, cent_b);
  }

  // 2. ne_idx refresh cadence.
  {
    auto every = base_params(c.layers);
    every.ne_refresh_interval = 1;
    auto rare = base_params(c.layers);
    rare.ne_refresh_interval = 200;
    double post_a = 0.0;
    double post_b = 0.0;
    const double a = timed(every, wl.net, wl.input, nullptr, &post_a);
    const double b = timed(rare, wl.net, wl.input, nullptr, &post_b);
    std::printf(
        "[2] ne_idx refresh    : 1   %8.2f ms (post %6.2f ms)\n", a, post_a);
    std::printf(
        "                        200 %8.2f ms (post %6.2f ms)\n", b, post_b);
  }

  // 3. Near-zero residue pruning.
  {
    auto off = base_params(c.layers);
    auto on = base_params(c.layers);
    on.prune_threshold = 0.05f;
    double post_a = 0.0;
    double post_b = 0.0;
    const double a = timed(off, wl.net, wl.input, nullptr, &post_a);
    const double b = timed(on, wl.net, wl.input, nullptr, &post_b);
    std::printf(
        "[3] residue pruning   : off %8.2f ms (post %6.2f ms)\n", a, post_a);
    std::printf(
        "                        on  %8.2f ms (post %6.2f ms)\n", b, post_b);
  }

  // 4. Load reduction: compare against t = l (no compression at all).
  {
    auto with_comp = base_params(c.layers);
    auto no_comp = base_params(c.layers);
    no_comp.threshold_layer = c.layers;  // pure feed-forward
    const double a = timed(with_comp, wl.net, wl.input);
    const double b = timed(no_comp, wl.net, wl.input);
    std::printf(
        "[4] compression       : on  %8.2f ms | off (t=l) %8.2f ms -> "
        "%.2fx\n",
        a, b, b / a);
  }

  // 5. Dynamic threshold (future work) vs the fixed default.
  {
    auto fixed = base_params(c.layers);
    auto dynamic = base_params(c.layers);
    dynamic.auto_threshold = true;
    dynamic.threshold_layer = c.layers;  // bound only
    dynamic.record_trace = true;
    const double a = timed(fixed, wl.net, wl.input);
    core::SnicitEngine dyn_engine(dynamic);
    const auto r = bench::run_engine(dyn_engine, wl.net, wl.input, 2);
    std::printf(
        "[5] threshold choice  : fixed t=%d %8.2f ms | dynamic t=%d %8.2f "
        "ms\n",
        fixed.threshold_layer, a, dyn_engine.last_trace().threshold_layer,
        r.total_ms());
  }
  // 6. Periodic re-clustering: the paper's §3.2.2 position is that fresh
  // centroids cost more than they save — quantify it.
  {
    auto never = base_params(c.layers);
    auto every20 = base_params(c.layers);
    every20.reconvert_interval = 20;
    const double a = timed(never, wl.net, wl.input);
    const double b = timed(every20, wl.net, wl.input);
    std::printf(
        "[6] re-clustering     : off %8.2f ms | every 20 layers %8.2f ms "
        "(overhead %.1f%%)\n",
        a, b, 100.0 * (b - a) / a);
  }

  // 7. spGEMM alternative for the post-convergence multiply (§3.3.1
  // rejects it: per-layer recompression overhead + irregularity). Measure
  // one post-convergence layer both ways on a converted batch.
  {
    const auto params = base_params(c.layers);
    const auto y_t = dnn::reference_forward(
        wl.net, wl.input, 0,
        static_cast<std::size_t>(params.threshold_layer));
    const auto f = core::build_sample_matrix(y_t, params.sample_size,
                                             params.downsample_dim);
    auto batch = core::convert_to_compressed(
        y_t, core::prune_samples(f, params.eta, params.epsilon), 0.0f);
    const auto layer = static_cast<std::size_t>(params.threshold_layer);
    wl.net.ensure_csc();
    dnn::DenseMatrix scratch(y_t.rows(), y_t.cols());

    const double load_reduced = platform::time_best_ms([&] {
      sparse::spmm_scatter_cols(wl.net.weight_csc(layer), batch.yhat,
                                batch.ne_idx, scratch);
    });
    const double spgemm_ms = platform::time_best_ms([&] {
      // The spGEMM route must recompress Ŷ every layer, then multiply.
      const auto yhat_csc = sparse::dense_to_csc(batch.yhat);
      sparse::spgemm(wl.net.weight_csc(layer), yhat_csc, scratch);
    });
    std::printf(
        "[7] post-conv multiply: load-reduced spMM %8.2f ms | spGEMM "
        "(+recompress) %8.2f ms -> %.2fx slower\n",
        load_reduced, spgemm_ms, spgemm_ms / load_reduced);
  }

  // 8. Static int8 weight quantization composed with SNICIT: the paper's
  // related-work axis (§2.2) — orthogonal to dynamic compression.
  {
    const auto& w = wl.net.weight(0);
    const auto q = sparse::QuantizedCsr::from_csr(w);
    dnn::DenseMatrix out(wl.input.rows(), wl.input.cols());
    const double float_ms = platform::time_best_ms(
        [&] { sparse::spmm_gather(w, wl.input, out); });
    const double int8_ms = platform::time_best_ms(
        [&] { sparse::spmm_quantized(q, wl.input, out); });
    std::printf(
        "[8] weight storage    : float spMM %8.2f ms | int8 spMM %8.2f ms "
        "(payload %.1fx smaller, max quant err %.2g)\n",
        float_ms, int8_ms,
        static_cast<double>(w.values().size() * 4) /
            static_cast<double>(q.payload_bytes()),
        static_cast<double>(q.max_quantization_error(w)));
  }
  return 0;
}
