// Microbenchmarks of the spMM kernel family (the XY-2021-style
// optimisation space) across activation densities — the data behind the
// cost model's density threshold. Uses google-benchmark.
#include <benchmark/benchmark.h>

#include "data/synthetic.hpp"
#include "platform/rng.hpp"
#include "radixnet/radixnet.hpp"
#include "sparse/spmm.hpp"

namespace {

using namespace snicit;

struct Workload {
  sparse::CsrMatrix w;
  sparse::CscMatrix w_csc;
  sparse::DenseMatrix y;
  sparse::DenseMatrix out;
};

Workload make_workload(int neurons, int batch, double y_density) {
  radixnet::RadixNetOptions opt;
  opt.neurons = neurons;
  opt.layers = 1;
  opt.fanin = 32;
  auto net = radixnet::make_radixnet(opt);
  Workload wl{net.weight(0), sparse::CscMatrix::from_csr(net.weight(0)),
              sparse::DenseMatrix(static_cast<std::size_t>(neurons),
                                  static_cast<std::size_t>(batch)),
              sparse::DenseMatrix(static_cast<std::size_t>(neurons),
                                  static_cast<std::size_t>(batch))};
  platform::Rng rng(77);
  for (std::size_t i = 0; i < wl.y.rows() * wl.y.cols(); ++i) {
    if (rng.next_bool(y_density)) wl.y.data()[i] = rng.uniform(0.0f, 32.0f);
  }
  return wl;
}

void BM_SpmmGather(benchmark::State& state) {
  auto wl = make_workload(static_cast<int>(state.range(0)), 64,
                          static_cast<double>(state.range(1)) / 100.0);
  for (auto _ : state) {
    sparse::spmm_gather(wl.w, wl.y, wl.out);
    benchmark::DoNotOptimize(wl.out.data());
  }
  state.counters["nnzW"] = static_cast<double>(wl.w.nnz());
}

void BM_SpmmScatter(benchmark::State& state) {
  auto wl = make_workload(static_cast<int>(state.range(0)), 64,
                          static_cast<double>(state.range(1)) / 100.0);
  for (auto _ : state) {
    sparse::spmm_scatter(wl.w_csc, wl.y, wl.out);
    benchmark::DoNotOptimize(wl.out.data());
  }
}

void BM_SpmmTiled(benchmark::State& state) {
  auto wl = make_workload(static_cast<int>(state.range(0)), 64,
                          static_cast<double>(state.range(1)) / 100.0);
  for (auto _ : state) {
    sparse::spmm_tiled(wl.w, wl.y, wl.out, 16);
    benchmark::DoNotOptimize(wl.out.data());
  }
}

void BM_BiasActivation(benchmark::State& state) {
  auto wl = make_workload(static_cast<int>(state.range(0)), 64, 0.5);
  for (auto _ : state) {
    sparse::apply_bias_activation(wl.y, -0.3f, 32.0f);
    benchmark::DoNotOptimize(wl.y.data());
  }
}

}  // namespace

// Density sweep: 5%, 25%, 100% nonzero activations.
BENCHMARK(BM_SpmmGather)->Args({1024, 5})->Args({1024, 25})->Args({1024, 100});
BENCHMARK(BM_SpmmScatter)->Args({1024, 5})->Args({1024, 25})->Args({1024, 100});
BENCHMARK(BM_SpmmTiled)->Args({1024, 5})->Args({1024, 25})->Args({1024, 100});
BENCHMARK(BM_BiasActivation)->Arg(1024);

BENCHMARK_MAIN();
