// Benchmarks the spMM kernel family (the XY-2021-style optimisation
// space) over a kernel x density x batch grid and emits a machine-readable
// JSON report — the data behind the cost model in sparse/spmm_policy.hpp.
//
//   bench_spmm_kernels [--out FILE] [--check] [--neurons N] [--reps R]
//
// Each cell additionally times the kernel's fused-epilogue form against
// the split A/B (kernel, then a separate apply_bias_activation sweep)
// and counts heap allocations during a steady-state fused run — the two
// claims of the fused-epilogue/zero-allocation PR, measured.
//
// Without --out the JSON goes to stdout; a human-readable table always
// goes to stderr. --check turns the run into a regression gate: exit
// nonzero if, at density >= 0.1, any optimized kernel is slower (beyond
// a noise tolerance) than its scalar family baseline, any fused form is
// slower than its split counterpart, or any steady-state kernel run
// touches the heap at all.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "platform/cli.hpp"
#include "platform/json.hpp"
#include "platform/rng.hpp"
#include "platform/thread_pool.hpp"
#include "platform/timer.hpp"
#include "radixnet/radixnet.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmm_policy.hpp"

// ---------------------------------------------------------------------
// Allocation counting: every operator new in this binary bumps the
// counter; the steady-state probe snapshots it around a warm kernel run.
// The hooks route through malloc/aligned_alloc and never allocate
// themselves (which is also why free() is the right deallocator, despite
// GCC's -Wmismatched-new-delete heuristic).
// ---------------------------------------------------------------------
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::size_t> g_alloc_count{0};
std::size_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (size + a - 1) / a * a;
  return std::aligned_alloc(a, rounded ? rounded : a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace snicit;

struct Workload {
  sparse::CsrMatrix w;
  sparse::CscMatrix w_csc;
  sparse::DenseMatrix y;
  sparse::DenseMatrix out;
  std::vector<float> bias;
};

Workload make_workload(int neurons, std::size_t batch, double y_density,
                       std::uint64_t seed) {
  radixnet::RadixNetOptions opt;
  opt.neurons = neurons;
  opt.layers = 1;
  opt.fanin = 32;
  opt.seed = seed;
  auto net = radixnet::make_radixnet(opt);
  Workload wl{net.weight(0), sparse::CscMatrix::from_csr(net.weight(0)),
              sparse::DenseMatrix(static_cast<std::size_t>(neurons), batch),
              sparse::DenseMatrix(static_cast<std::size_t>(neurons), batch),
              std::vector<float>(static_cast<std::size_t>(neurons))};
  platform::Rng rng(seed + 1);
  for (std::size_t i = 0; i < wl.y.rows() * wl.y.cols(); ++i) {
    if (rng.next_bool(y_density)) wl.y.data()[i] = rng.uniform(0.0f, 32.0f);
  }
  for (auto& b : wl.bias) b = rng.uniform(-0.5f, 0.5f);
  return wl;
}

const std::vector<sparse::SpmmVariant>& kernel_grid() {
  using V = sparse::SpmmVariant;
  static const std::vector<sparse::SpmmVariant> kernels = {
      V::kGatherScalar, V::kGatherSimd, V::kGatherThreaded,
      V::kTiled,        V::kScatter,    V::kScatterSimd,
  };
  return kernels;
}

void run_kernel(sparse::SpmmVariant v, Workload& wl) {
  switch (v) {
    case sparse::SpmmVariant::kGatherScalar:
      sparse::spmm_gather(wl.w, wl.y, wl.out);
      break;
    case sparse::SpmmVariant::kGatherSimd:
      sparse::spmm_gather_simd(wl.w, wl.y, wl.out);
      break;
    case sparse::SpmmVariant::kGatherThreaded:
      sparse::spmm_gather_threaded(wl.w, wl.y, wl.out);
      break;
    case sparse::SpmmVariant::kTiled:
      sparse::spmm_tiled(wl.w, wl.y, wl.out, 16);
      break;
    case sparse::SpmmVariant::kScatter:
      sparse::spmm_scatter(wl.w_csc, wl.y, wl.out);
      break;
    default:
      sparse::spmm_scatter_simd(wl.w_csc, wl.y, wl.out);
      break;
  }
}

void run_kernel_fused(sparse::SpmmVariant v, Workload& wl,
                      const sparse::BiasAct& epi) {
  switch (v) {
    case sparse::SpmmVariant::kGatherScalar:
      sparse::spmm_gather_fused(wl.w, wl.y, wl.out, epi);
      break;
    case sparse::SpmmVariant::kGatherSimd:
      sparse::spmm_gather_simd_fused(wl.w, wl.y, wl.out, epi);
      break;
    case sparse::SpmmVariant::kGatherThreaded:
      sparse::spmm_gather_threaded_fused(wl.w, wl.y, wl.out, epi);
      break;
    case sparse::SpmmVariant::kTiled:
      sparse::spmm_tiled_fused(wl.w, wl.y, wl.out, epi, 16);
      break;
    case sparse::SpmmVariant::kScatter:
      sparse::spmm_scatter_fused(wl.w_csc, wl.y, wl.out, epi);
      break;
    default:
      sparse::spmm_scatter_simd_fused(wl.w_csc, wl.y, wl.out, epi);
      break;
  }
}

/// The split A/B arm the fused kernels replace: kernel, then a second
/// read-modify-write sweep over the whole output.
void run_kernel_split_epilogue(sparse::SpmmVariant v, Workload& wl,
                               float ymax) {
  run_kernel(v, wl);
  sparse::apply_bias_activation(wl.out, wl.bias, ymax);
}

/// Min-of-reps timing: one warmup, then enough repetitions that the total
/// measured time is well above timer noise; the minimum is the cleanest
/// estimate of the kernel's cost on an otherwise idle core.
template <typename Fn>
double time_ms(Fn&& fn, int min_reps) {
  fn();  // warmup (faults pages, warms caches)
  platform::Stopwatch probe;
  fn();
  const double once_ms = std::max(probe.elapsed_ms(), 1e-4);
  const int reps = std::clamp(
      static_cast<int>(std::ceil(10.0 / once_ms)), min_reps, 400);
  double best = once_ms;
  for (int r = 0; r < reps; ++r) {
    platform::Stopwatch sw;
    fn();
    best = std::min(best, sw.elapsed_ms());
  }
  return best;
}

/// Paired A/B timing for the fused-vs-split ratio gate. The two arms run
/// in alternating *blocks* of back-to-back reps: timing each arm in one
/// contiguous window let a slow machine phase inflate whichever arm it
/// happened to cover (flipping the ratio ±10 % run to run), while strict
/// rep-by-rep alternation made each rep start against the other arm's
/// cache footprint. Blocks give every arm warm back-to-back streaks in
/// several windows spread across the cell's measurement, so drift lands
/// on both arms and the min per arm still sees steady-state cache
/// behaviour. Returns {min A, min B}.
template <typename FnA, typename FnB>
std::pair<double, double> time_pair_ms(FnA&& a, FnB&& b, int min_reps) {
  a();
  b();  // warmup (faults pages, warms caches)
  platform::Stopwatch probe_a;
  a();
  const double once_a = probe_a.elapsed_ms();
  platform::Stopwatch probe_b;
  b();
  const double once_b = probe_b.elapsed_ms();
  // Budget on the slower arm: pairing a 10 us kernel with a 3 ms
  // reference must not schedule 400 reps of the reference.
  const double once_ms = std::max(std::max(once_a, once_b), 1e-4);
  const int reps = std::clamp(
      static_cast<int>(std::ceil(20.0 / once_ms)), min_reps, 400);
  const int block = std::max(2, reps / 4);
  double best_a = std::max(once_a, 1e-4);
  double best_b = std::max(once_b, 1e-4);
  for (int done = 0; done < reps; done += block) {
    const int n = std::min(block, reps - done);
    for (int r = 0; r < n; ++r) {
      platform::Stopwatch sw;
      a();
      best_a = std::min(best_a, sw.elapsed_ms());
    }
    for (int r = 0; r < n; ++r) {
      platform::Stopwatch sw;
      b();
      best_b = std::min(best_b, sw.elapsed_ms());
    }
  }
  return {best_a, best_b};
}

/// Heap allocations during one steady-state fused run. Two warmups grow
/// every thread-local scratch on this thread; the serial region keeps the
/// measured run inline (the engines' 1-thread determinism leg), so the
/// count is exactly what the kernel itself allocates: the gate wants 0.
std::size_t steady_allocs(sparse::SpmmVariant v, Workload& wl,
                          const sparse::BiasAct& epi) {
  platform::ScopedSerialRegion serial;
  run_kernel_fused(v, wl, epi);
  run_kernel_fused(v, wl, epi);
  const std::size_t before = alloc_count();
  run_kernel_fused(v, wl, epi);
  return alloc_count() - before;
}

struct Cell {
  sparse::SpmmVariant variant;
  double density;
  std::size_t batch;
  double ms;
  double speedup_vs_gather;  // scalar-gather ms at same (density, batch)
  double fused_ms;           // fused kernel incl. epilogue
  double split_ms;           // kernel + apply_bias_activation sweep
  double fused_speedup;      // split_ms / fused_ms
  std::size_t allocs;        // heap allocations, steady-state fused run
};

}  // namespace

int main(int argc, char** argv) {
  const platform::CliArgs args(argc, argv);
  const auto unknown =
      args.unknown_options({"out", "check", "neurons", "reps"});
  if (!unknown.empty()) {
    for (const auto& name : unknown) {
      std::fprintf(stderr, "error: unknown flag '--%s'\n", name.c_str());
    }
    std::fprintf(stderr,
                 "usage: bench_spmm_kernels [--out FILE] [--check] "
                 "[--neurons N] [--reps R]\n");
    return 2;
  }
  const int neurons = static_cast<int>(args.get_int("neurons", 1024));
  const int min_reps =
      std::max(1, static_cast<int>(args.get_int("reps", 5)));
  const bool check = args.has("check");
  const std::string out_path = args.get("out", "");
  constexpr float kYmax = 32.0f;

  const std::vector<double> densities = {0.02, 0.1, 0.3, 0.6, 1.0};
  const std::vector<std::size_t> batches = {8, 16, 64, 256};

  std::vector<Cell> cells;
  std::fprintf(stderr, "%-16s %8s %6s %10s %10s %10s %9s %7s\n", "kernel",
               "density", "batch", "ms", "vs_gather", "fused_ms",
               "vs_split", "allocs");
  for (double density : densities) {
    for (std::size_t batch : batches) {
      auto wl = make_workload(neurons, batch, density, 77);
      const sparse::BiasAct epi{wl.bias, 0.0f, kYmax};
      for (const auto variant : kernel_grid()) {
        // Each kernel is paired with its own scalar-gather reference
        // window (not the gather row's, measured seconds earlier): the
        // vs_gather gate is a ratio, and ratios of measurements from
        // separate windows inherit whichever machine phase each window
        // happened to land in.
        const auto [ms, gather_ms] = time_pair_ms(
            [&] { run_kernel(variant, wl); },
            [&] {
              run_kernel(sparse::SpmmVariant::kGatherScalar, wl);
            },
            min_reps);
        const auto [fused_ms, split_ms] = time_pair_ms(
            [&] { run_kernel_fused(variant, wl, epi); },
            [&] { run_kernel_split_epilogue(variant, wl, kYmax); },
            min_reps);
        const std::size_t allocs = steady_allocs(variant, wl, epi);
        cells.push_back({variant, density, batch, ms,
                         gather_ms / std::max(ms, 1e-9), fused_ms, split_ms,
                         split_ms / std::max(fused_ms, 1e-9), allocs});
        std::fprintf(stderr,
                     "%-16s %8.2f %6zu %10.4f %9.2fx %10.4f %8.2fx %7zu\n",
                     sparse::to_string(variant), density, batch, ms,
                     cells.back().speedup_vs_gather, fused_ms,
                     cells.back().fused_speedup, allocs);
      }
    }
  }

  platform::JsonWriter json;
  json.begin_object();
  json.key("neurons").value(static_cast<std::int64_t>(neurons));
  json.key("fanin").value(static_cast<std::int64_t>(32));
  json.key("simd_compiled").value(sparse::simd_compiled());
  json.key("threads").value(platform::ThreadPool::global().size());
  json.key("grid").begin_array();
  for (const auto& cell : cells) {
    json.begin_object();
    json.key("kernel").value(sparse::to_string(cell.variant));
    json.key("density").value(cell.density);
    json.key("batch").value(cell.batch);
    json.key("ms").value(cell.ms);
    json.key("speedup_vs_gather").value(cell.speedup_vs_gather);
    json.key("fused_ms").value(cell.fused_ms);
    json.key("split_epilogue_ms").value(cell.split_ms);
    json.key("fused_speedup").value(cell.fused_speedup);
    json.key("steady_state_allocs")
        .value(static_cast<std::int64_t>(cell.allocs));
    json.end_object();
  }
  json.end_array();
  json.end_object();

  if (out_path.empty()) {
    std::printf("%s\n", json.str().c_str());
  } else {
    std::ofstream out(out_path);
    out << json.str() << "\n";
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }

  if (!check) return 0;

  // Regression gate, three clauses:
  //  1. at density >= 0.1 every optimized kernel must be at least as fast
  //     as the scalar gather reference, modulo timer noise;
  //  2. the fusion must never lose: per kernel, the geometric mean of
  //     fused-vs-split over the density >= 0.1 grid must be at least
  //     break-even (modulo noise), and no single cell may fall below a
  //     catastrophic floor. The per-cell clause alone proved flaky: the
  //     smallest cells run in ~10 us, where one unlucky scheduling phase
  //     shifts a single ratio by 15-20 % while every other cell of the
  //     kernel sits at 1.0-1.1x. A systematic fusion regression drags
  //     every cell and fails the geomean; an isolated 2 us anomaly does
  //     not.
  //  3. a steady-state kernel run must not allocate — any count > 0 means
  //     a hot path grew a buffer it should have reused.
  constexpr double kTolerance = 1.10;       // clauses 1 and 2 (geomean)
  constexpr double kCellFloor = 1.25;       // clause 2, per-cell floor
  int failures = 0;
  std::map<sparse::SpmmVariant, std::pair<double, int>> fused_logsum;
  for (const auto& cell : cells) {
    if (cell.allocs != 0) {
      std::fprintf(stderr,
                   "CHECK FAIL: %s allocated %zu time(s) in a steady-state "
                   "run at density %.2f, batch %zu\n",
                   sparse::to_string(cell.variant), cell.allocs,
                   cell.density, cell.batch);
      ++failures;
    }
    if (cell.density < 0.1) continue;
    if (cell.variant != sparse::SpmmVariant::kGatherScalar &&
        cell.speedup_vs_gather * kTolerance < 1.0) {
      std::fprintf(stderr,
                   "CHECK FAIL: %s only %.2fx vs scalar gather at "
                   "density %.2f, batch %zu\n",
                   sparse::to_string(cell.variant), cell.speedup_vs_gather,
                   cell.density, cell.batch);
      ++failures;
    }
    auto& [logsum, count] = fused_logsum[cell.variant];
    logsum += std::log(std::max(cell.fused_speedup, 1e-9));
    ++count;
    if (cell.fused_speedup * kCellFloor < 1.0) {
      std::fprintf(stderr,
                   "CHECK FAIL: %s fused only %.2fx vs split epilogue at "
                   "density %.2f, batch %zu\n",
                   sparse::to_string(cell.variant), cell.fused_speedup,
                   cell.density, cell.batch);
      ++failures;
    }
  }
  for (const auto& [variant, acc] : fused_logsum) {
    const double geomean = std::exp(acc.first / std::max(acc.second, 1));
    if (geomean * kTolerance < 1.0) {
      std::fprintf(stderr,
                   "CHECK FAIL: %s fused geomean only %.2fx vs split "
                   "epilogue over the density >= 0.1 grid\n",
                   sparse::to_string(variant), geomean);
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "--check: %d regression(s)\n", failures);
    return 1;
  }
  std::fprintf(stderr,
               "--check: optimized kernels hold their speedup, fused "
               "epilogues never lose to split, steady-state runs are "
               "allocation-free\n");
  return 0;
}
