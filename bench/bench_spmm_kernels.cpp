// Benchmarks the spMM kernel family (the XY-2021-style optimisation
// space) over a kernel x density x batch grid and emits a machine-readable
// JSON report — the data behind the cost model in sparse/spmm_policy.hpp.
//
//   bench_spmm_kernels [--out FILE] [--check] [--neurons N] [--reps R]
//
// Without --out the JSON goes to stdout; a human-readable table always
// goes to stderr. --check turns the run into a regression gate: exit
// nonzero if any optimized kernel is slower (beyond a noise tolerance)
// than its scalar family baseline at density >= 0.1.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "platform/cli.hpp"
#include "platform/json.hpp"
#include "platform/rng.hpp"
#include "platform/thread_pool.hpp"
#include "platform/timer.hpp"
#include "radixnet/radixnet.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmm_policy.hpp"

namespace {

using namespace snicit;

struct Workload {
  sparse::CsrMatrix w;
  sparse::CscMatrix w_csc;
  sparse::DenseMatrix y;
  sparse::DenseMatrix out;
};

Workload make_workload(int neurons, std::size_t batch, double y_density,
                       std::uint64_t seed) {
  radixnet::RadixNetOptions opt;
  opt.neurons = neurons;
  opt.layers = 1;
  opt.fanin = 32;
  opt.seed = seed;
  auto net = radixnet::make_radixnet(opt);
  Workload wl{net.weight(0), sparse::CscMatrix::from_csr(net.weight(0)),
              sparse::DenseMatrix(static_cast<std::size_t>(neurons), batch),
              sparse::DenseMatrix(static_cast<std::size_t>(neurons), batch)};
  platform::Rng rng(seed + 1);
  for (std::size_t i = 0; i < wl.y.rows() * wl.y.cols(); ++i) {
    if (rng.next_bool(y_density)) wl.y.data()[i] = rng.uniform(0.0f, 32.0f);
  }
  return wl;
}

const std::vector<sparse::SpmmVariant>& kernel_grid() {
  using V = sparse::SpmmVariant;
  static const std::vector<sparse::SpmmVariant> kernels = {
      V::kGatherScalar, V::kGatherSimd, V::kGatherThreaded,
      V::kTiled,        V::kScatter,    V::kScatterSimd,
  };
  return kernels;
}

void run_kernel(sparse::SpmmVariant v, Workload& wl) {
  switch (v) {
    case sparse::SpmmVariant::kGatherScalar:
      sparse::spmm_gather(wl.w, wl.y, wl.out);
      break;
    case sparse::SpmmVariant::kGatherSimd:
      sparse::spmm_gather_simd(wl.w, wl.y, wl.out);
      break;
    case sparse::SpmmVariant::kGatherThreaded:
      sparse::spmm_gather_threaded(wl.w, wl.y, wl.out);
      break;
    case sparse::SpmmVariant::kTiled:
      sparse::spmm_tiled(wl.w, wl.y, wl.out, 16);
      break;
    case sparse::SpmmVariant::kScatter:
      sparse::spmm_scatter(wl.w_csc, wl.y, wl.out);
      break;
    default:
      sparse::spmm_scatter_simd(wl.w_csc, wl.y, wl.out);
      break;
  }
}

/// Min-of-reps timing: one warmup, then enough repetitions that the total
/// measured time is well above timer noise; the minimum is the cleanest
/// estimate of the kernel's cost on an otherwise idle core.
double time_kernel_ms(sparse::SpmmVariant v, Workload& wl, int min_reps) {
  run_kernel(v, wl);  // warmup (faults pages, warms caches)
  platform::Stopwatch probe;
  run_kernel(v, wl);
  const double once_ms = std::max(probe.elapsed_ms(), 1e-4);
  const int reps = std::clamp(
      static_cast<int>(std::ceil(10.0 / once_ms)), min_reps, 400);
  double best = once_ms;
  for (int r = 0; r < reps; ++r) {
    platform::Stopwatch sw;
    run_kernel(v, wl);
    best = std::min(best, sw.elapsed_ms());
  }
  return best;
}

struct Cell {
  sparse::SpmmVariant variant;
  double density;
  std::size_t batch;
  double ms;
  double speedup_vs_gather;  // scalar-gather ms at same (density, batch)
};

}  // namespace

int main(int argc, char** argv) {
  const platform::CliArgs args(argc, argv);
  const auto unknown =
      args.unknown_options({"out", "check", "neurons", "reps"});
  if (!unknown.empty()) {
    for (const auto& name : unknown) {
      std::fprintf(stderr, "error: unknown flag '--%s'\n", name.c_str());
    }
    std::fprintf(stderr,
                 "usage: bench_spmm_kernels [--out FILE] [--check] "
                 "[--neurons N] [--reps R]\n");
    return 2;
  }
  const int neurons = static_cast<int>(args.get_int("neurons", 1024));
  const int min_reps =
      std::max(1, static_cast<int>(args.get_int("reps", 5)));
  const bool check = args.has("check");
  const std::string out_path = args.get("out", "");

  const std::vector<double> densities = {0.02, 0.1, 0.3, 0.6, 1.0};
  const std::vector<std::size_t> batches = {8, 16, 64, 256};

  std::vector<Cell> cells;
  std::fprintf(stderr, "%-16s %8s %6s %10s %10s\n", "kernel", "density",
               "batch", "ms", "vs_gather");
  for (double density : densities) {
    for (std::size_t batch : batches) {
      auto wl = make_workload(neurons, batch, density, 77);
      double gather_ms = 0.0;
      for (const auto variant : kernel_grid()) {
        const double ms = time_kernel_ms(variant, wl, min_reps);
        if (variant == sparse::SpmmVariant::kGatherScalar) gather_ms = ms;
        cells.push_back({variant, density, batch, ms,
                         gather_ms / std::max(ms, 1e-9)});
        std::fprintf(stderr, "%-16s %8.2f %6zu %10.4f %9.2fx\n",
                     sparse::to_string(variant), density, batch, ms,
                     cells.back().speedup_vs_gather);
      }
    }
  }

  platform::JsonWriter json;
  json.begin_object();
  json.key("neurons").value(static_cast<std::int64_t>(neurons));
  json.key("fanin").value(static_cast<std::int64_t>(32));
  json.key("simd_compiled").value(sparse::simd_compiled());
  json.key("threads").value(platform::ThreadPool::global().size());
  json.key("grid").begin_array();
  for (const auto& cell : cells) {
    json.begin_object();
    json.key("kernel").value(sparse::to_string(cell.variant));
    json.key("density").value(cell.density);
    json.key("batch").value(cell.batch);
    json.key("ms").value(cell.ms);
    json.key("speedup_vs_gather").value(cell.speedup_vs_gather);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  if (out_path.empty()) {
    std::printf("%s\n", json.str().c_str());
  } else {
    std::ofstream out(out_path);
    out << json.str() << "\n";
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }

  if (!check) return 0;

  // Regression gate: at density >= 0.1 every optimized kernel must be at
  // least as fast as the scalar gather reference, modulo timer noise.
  // (Within-family ratios stay visible in the JSON; the gate pins the
  // family's floor so a vectorization regression cannot land silently.)
  constexpr double kTolerance = 1.10;
  int failures = 0;
  for (const auto& cell : cells) {
    if (cell.density < 0.1) continue;
    if (cell.variant == sparse::SpmmVariant::kGatherScalar) continue;
    if (cell.speedup_vs_gather * kTolerance < 1.0) {
      std::fprintf(stderr,
                   "CHECK FAIL: %s only %.2fx vs scalar gather at "
                   "density %.2f, batch %zu\n",
                   sparse::to_string(cell.variant), cell.speedup_vs_gather,
                   cell.density, cell.batch);
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "--check: %d regression(s)\n", failures);
    return 1;
  }
  std::fprintf(stderr, "--check: all optimized kernels hold their "
                       "speedup at density >= 0.1\n");
  return 0;
}
