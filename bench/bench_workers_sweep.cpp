// Serving throughput vs worker count: the batch-overlap experiment the
// parallel stream executor exists for. A synthetic multi-batch workload
// (many small batches, SDGC-style input) is streamed once serially and
// then through worker pools of increasing size; each row reports wall
// throughput, speedup over serial, and p50/p95/p99 per-batch latency.
// Outputs are checked bit-identical against the serial stream every row.
//
//   bench_workers_sweep [--workers 1,2,4,8] [--samples N] [--batch-size B]
//                       [--engine snicit|warm|reference]
//                       [--faults SPEC] [--faults-seed S]
//
// Expected shape: throughput scales with workers up to the core count
// (≥ 2x at 4 workers on a ≥ 4-core host); on a single-core box the curve
// is flat — batch overlap cannot beat the hardware.
//
// --faults arms the deterministic fault registry for the sweep (e.g.
// --faults worker_throw:0.05) and reports retries/degraded/lost per row;
// the clean sweep first measures the disarmed-path overhead, which must
// stay < 2% (one relaxed atomic load per injection site).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/cli.hpp"
#include "platform/fault_injection.hpp"
#include "platform/thread_pool.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/engine.hpp"
#include "snicit/parallel_stream.hpp"
#include "snicit/stream.hpp"
#include "snicit/warm_cache.hpp"

namespace {

using namespace snicit;

std::unique_ptr<dnn::InferenceEngine> build_engine(const std::string& name,
                                                   int layers) {
  if (name == "reference") return std::make_unique<dnn::ReferenceEngine>();
  core::SnicitParams params;
  params.threshold_layer = bench::sdgc_threshold(layers);
  params.sample_size = 32;
  params.downsample_dim = 16;
  params.ne_refresh_interval = 5;
  if (name == "warm") return std::make_unique<core::WarmSnicitEngine>(params);
  if (name == "snicit") return std::make_unique<core::SnicitEngine>(params);
  std::fprintf(stderr, "unknown --engine '%s' (use snicit|warm|reference)\n",
               name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const platform::CliArgs args(argc, argv);
  // SNICIT_TRACE_OUT / SNICIT_METRICS_OUT capture the whole sweep.
  const bench::ObservabilityScope observability;
  bench::print_title(
      "Serving sweep: stream throughput vs worker count (engine pool)");

  const auto workers_list = args.get_int_list("workers", {1, 2, 4, 8});
  const auto samples = static_cast<std::size_t>(
      args.get_int("samples", bench::large_scale() ? 4096 : 1024));
  const auto batch_size =
      static_cast<std::size_t>(args.get_int("batch-size", 64));
  const std::string engine_name = args.get("engine", "snicit");

  radixnet::RadixNetOptions opt;
  opt.neurons = bench::large_scale() ? 1024 : 256;
  opt.layers = bench::large_scale() ? 120 : 48;
  opt.fanin = 32;
  opt.seed = 42;
  const auto net = radixnet::make_radixnet(opt);

  data::SdgcInputOptions in_opt;
  in_opt.neurons = static_cast<std::size_t>(opt.neurons);
  in_opt.batch = samples;
  in_opt.classes = 10;
  in_opt.seed = 11;
  const auto input = data::make_sdgc_input(in_opt).features;

  std::printf("engine %s, %d neurons x %d layers, %zu samples in batches "
              "of %zu (%zu batches), pool of %zu thread(s)\n",
              engine_name.c_str(), opt.neurons, opt.layers, samples,
              batch_size, (samples + batch_size - 1) / batch_size,
              platform::ThreadPool::global().size());

  // Serial baseline (the path every engine had before the executor).
  auto serial_engine = build_engine(engine_name, opt.layers);
  core::StreamOptions serial_opt;
  serial_opt.batch_size = batch_size;
  const auto serial =
      core::stream_inference(*serial_engine, net, input, serial_opt);
  const double serial_thr = serial.throughput(samples);

  // The serial baseline above always runs disarmed; the sweep below runs
  // under whatever --faults arms, so every row's recovery cost (retries,
  // degraded fallbacks) shows up directly as lost speedup while the
  // outputs column proves recovery stayed exact.
  auto& faults = platform::fault::FaultRegistry::global();
  if (args.has("faults")) {
    const auto armed = faults.configure(
        args.get("faults", ""),
        static_cast<std::uint64_t>(args.get_int("faults-seed", 42)));
    if (!armed.ok()) {
      std::fprintf(stderr, "error: --faults: %s\n",
                   armed.error().message.c_str());
      return 2;
    }
    std::printf("armed faults: %s (seed %llu)\n", faults.spec().c_str(),
                static_cast<unsigned long long>(faults.seed()));
  }
  const bool drilled = faults.armed();

  std::printf("\n%8s | %12s | %8s | %9s %9s %9s | %s%s\n", "workers",
              "samples/s", "speedup", "p50 ms", "p95 ms", "p99 ms",
              "outputs", drilled ? " | retry/degr/lost" : "");
  std::printf("%8s | %12.0f | %8s | %9.2f %9.2f %9.2f | %s\n", "serial",
              serial_thr, "1.00x", serial.latency.p50(),
              serial.latency.p95(), serial.latency.p99(), "golden");

  for (const auto w : workers_list) {
    if (w < 1) continue;
    auto engine = build_engine(engine_name, opt.layers);
    core::ParallelStreamOptions popt;
    popt.batch_size = batch_size;
    popt.workers = static_cast<std::size_t>(w);
    const core::ParallelStreamExecutor executor(popt);
    const auto streamed = executor.run(*engine, net, input);
    const bool exact = dnn::DenseMatrix::max_abs_diff(streamed.outputs,
                                                      serial.outputs) == 0.0f;
    std::printf("%8lld | %12.0f | %7.2fx | %9.2f %9.2f %9.2f | %s",
                static_cast<long long>(w), streamed.throughput(samples),
                streamed.throughput(samples) / serial_thr,
                streamed.latency.p50(), streamed.latency.p95(),
                streamed.latency.p99(),
                exact ? "bit-exact" : "MISMATCH");
    if (drilled) {
      std::printf(" | %zu/%zu/%zu", streamed.retries,
                  streamed.degraded_batches, streamed.lost_batches());
    }
    std::printf("\n");
  }

  bench::print_note(
      "speedup tracks min(workers, cores); per-batch p95/p99 grow with "
      "worker count as batches queue behind each other on busy cores");
  return 0;
}
