// Table 4 — medium-scale sparse DNNs (A-D): SNICIT accuracy loss and
// speed-up over SNIG-2020 and BF-2019.
//
// Networks are trained on the synthetic MNIST/CIFAR stand-ins (see
// DESIGN.md §2) and cached; inference runs on a 1000-column test batch
// (paper: the 10000-image test sets). Qualitative targets: SNICIT faster
// than both champions on all four nets, with sub-percent-ish accuracy
// loss.
#include <cstdio>

#include "baselines/bf2019.hpp"
#include "baselines/snig2020.hpp"
#include "bench_util.hpp"
#include "medium_nets.hpp"
#include "snicit/engine.hpp"
#include "train/loss.hpp"

int main() {
  using namespace snicit;
  bench::print_title(
      "Table 4: medium-scale sparse DNNs — accuracy loss and speed-up");

  auto nets = bench::load_medium_nets();

  std::printf(
      "\n%-3s %-8s %-11s | %8s %8s | %9s %9s | %7s (%5s) | %7s (%5s)\n",
      "ID", "N-l", "dataset", "DNN acc", "paper", "acc loss", "paper",
      "x SNIG", "paper", "x BF", "paper");

  bool all_ok = true;
  for (auto& m : nets) {
    core::SnicitEngine snicit(bench::medium_snicit_params(m.net.num_layers()));
    baselines::Snig2020Engine snig;
    baselines::Bf2019Engine bf;

    const auto r_sn = bench::run_engine(snicit, m.net, m.hidden0, 2);
    const auto r_sg = bench::run_engine(snig, m.net, m.hidden0, 2);
    const auto r_bf = bench::run_engine(bf, m.net, m.hidden0, 2);

    const auto logits = m.mlp.logits_from_hidden(r_sn.output);
    const double snicit_acc = train::accuracy(logits, m.test.labels);
    const double acc_loss = m.exact_accuracy - snicit_acc;

    std::printf(
        "%-3s %-8s %-11s | %7.2f%% %7.2f%% | %8.2f%% %8.2f%% | %6.2fx "
        "(%4.2f) | %6.2fx (%4.2f)\n",
        m.id.c_str(), m.config.c_str(), m.dataset_name.c_str(),
        100.0 * m.exact_accuracy, m.paper_accuracy, 100.0 * acc_loss,
        m.paper_acc_loss, r_sg.total_ms() / r_sn.total_ms(),
        m.paper_speedup_snig, r_bf.total_ms() / r_sn.total_ms(),
        m.paper_speedup_bf);

    all_ok = all_ok && acc_loss < 0.03;  // paper max: 1.43 %
  }
  std::printf("\naccuracy losses within 3%%: %s\n", all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
