#include "medium_nets.hpp"

#include <cstdio>
#include <filesystem>

#include "data/synthetic.hpp"
#include "platform/env.hpp"
#include "platform/timer.hpp"
#include "train/loss.hpp"
#include "train/serialize.hpp"

namespace snicit::bench {

namespace {

struct NetSpec {
  const char* id;
  std::size_t hidden;
  std::size_t layers;
  bool cifar_like;
  double paper_accuracy;
  double paper_acc_loss;
  double paper_speedup_snig;
  double paper_speedup_bf;
};

// Table 4 rows: A 128-18 MN, B 256-18 MN, C 256-12 MN, D 256-12 CF.
constexpr NetSpec kSpecs[] = {
    {"A", 128, 18, false, 94.94, 0.24, 1.38, 1.58},
    {"B", 256, 18, false, 96.88, 1.43, 1.83, 1.95},
    {"C", 256, 12, false, 95.61, 0.06, 1.36, 1.40},
    {"D", 256, 12, true, 75.86, 0.45, 1.48, 1.53},
};

data::Dataset make_training_corpus(bool cifar_like, std::uint64_t seed) {
  data::ClusteredOptions opt;
  opt.classes = 10;
  opt.count = 2200;  // 1200 train + 1000 test
  opt.seed = seed;
  if (cifar_like) {
    opt.dim = 3072;            // 32x32x3
    opt.active_fraction = 0.4; // denser, noisier imagery
    opt.noise = 0.45;         // harder problem + label-noise floor ->
                              // lower accuracy, like CIFAR-10 vs MNIST
    opt.flip_prob = 0.10;
    opt.class_separation = 0.35;
  } else {
    opt.dim = 784;  // 28x28
    opt.active_fraction = 0.25;
    opt.noise = 0.30;
    opt.flip_prob = 0.16;
    opt.class_separation = 0.65;
  }
  return data::make_clustered_dataset(opt);
}

std::filesystem::path cache_dir() {
  const auto dir = platform::env_string("SNICIT_CACHE_DIR", "bench_cache");
  std::filesystem::create_directories(dir);
  return dir;
}

train::SparseMlp train_or_load(const NetSpec& spec,
                               const data::Dataset& train_set) {
  const auto path =
      cache_dir() / (std::string("net_") + spec.id + ".snicit");
  if (std::filesystem::exists(path)) {
    try {
      auto mlp = train::load_mlp(path.string());
      std::printf("[medium-nets] %s: loaded cache %s\n", spec.id,
                  path.string().c_str());
      return mlp;
    } catch (const std::exception& e) {
      std::printf("[medium-nets] %s: cache unusable (%s), retraining\n",
                  spec.id, e.what());
    }
  }

  train::MlpOptions mopt;
  mopt.in_dim = train_set.dim();
  mopt.hidden = spec.hidden;
  mopt.sparse_layers = spec.layers;
  mopt.classes = 10;
  mopt.density = 0.55;  // paper: 50-60 %
  mopt.ymax = 1.0f;
  mopt.seed = 1000 + spec.hidden + spec.layers;
  train::SparseMlp mlp(mopt);

  train::TrainOptions topt;
  // Deeper clipped-ReLU stacks need more epochs to escape the saturated
  // regime on this substrate.
  topt.epochs = spec.layers > 12 ? 24 : 10;
  topt.batch_size = 50;
  // The paper trains 150 epochs at lr 6e-5 on the real datasets; the small
  // synthetic corpus converges at a larger rate in a few epochs.
  topt.adam.lr = 1e-3f;

  platform::Stopwatch sw;
  const auto history = mlp.fit(train_set, topt);
  std::printf("[medium-nets] %s: trained %zu epochs in %.1f s "
              "(final loss %.3f, train acc %.1f%%)\n",
              spec.id, history.loss_per_epoch.size(),
              sw.elapsed_ms() / 1000.0, history.loss_per_epoch.back(),
              100.0 * history.train_accuracy_per_epoch.back());
  train::save_mlp(mlp, path.string());
  return mlp;
}

}  // namespace

std::vector<MediumNet> load_medium_nets() {
  std::vector<MediumNet> nets;
  for (const auto& spec : kSpecs) {
    const std::uint64_t data_seed = spec.cifar_like ? 9202 : 9201;
    const auto corpus = make_training_corpus(spec.cifar_like, data_seed);
    const auto train_set = corpus.slice(0, 1200);
    auto test_set = corpus.slice(1200, 2200);

    auto mlp = train_or_load(spec, train_set);
    auto net = mlp.to_sparse_dnn(std::string(spec.id) + " " +
                                 std::to_string(spec.hidden) + "-" +
                                 std::to_string(spec.layers));
    auto hidden0 = mlp.hidden_input(test_set.features);
    const double exact_acc = mlp.evaluate(test_set);
    std::printf("[medium-nets] %s %zu-%zu (%s): exact accuracy %.2f%%\n",
                spec.id, spec.hidden, spec.layers,
                spec.cifar_like ? "CIFAR-like" : "MNIST-like",
                100.0 * exact_acc);

    nets.push_back(MediumNet{
        spec.id,
        std::to_string(spec.hidden) + "-" + std::to_string(spec.layers),
        spec.cifar_like ? "CIFAR-like" : "MNIST-like", std::move(mlp),
        std::move(net), std::move(test_set), std::move(hidden0), exact_acc,
        spec.paper_accuracy, spec.paper_acc_loss, spec.paper_speedup_snig,
        spec.paper_speedup_bf});
  }
  return nets;
}

core::SnicitParams medium_snicit_params(std::size_t layers) {
  core::SnicitParams p;
  p.threshold_layer = static_cast<int>(layers / 2) & ~1;
  p.sample_size = 128;
  p.downsample_dim = 0;
  p.eta = 0.03f;
  p.epsilon = 0.03f;
  p.prune_threshold = 0.05f;
  p.ne_refresh_interval = 1;
  return p;
}

}  // namespace snicit::bench
