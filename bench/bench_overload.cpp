// bench_overload — offered-load sweep for the overload-control layer,
// measured on the deterministic load-replay harness (virtual clock, no
// sleeps): every number here is an exact function of (script, options).
//
// Sweep: offered load x in {0.5, 1, 2, 4} times the virtual server's
// capacity, each cell replayed twice — admission control off (the
// uncontrolled blocking baseline) and on. The quantity defended is
// goodput: in-budget completions per virtual second. Uncontrolled
// overload exhibits congestion collapse (the queue grows without bound,
// queue wait crosses every deadline, and the server finishes work that is
// already too late); admission caps the backlog so accepted work still
// completes inside its budget.
//
// Isolation cell: a bursting "bully" tenant dumps its whole stream at
// once next to a Poisson "victim". With the bully's per-tenant depth
// quota set to 0 the victim's replay must be *bit-identical* to its
// no-flood oracle (same script filtered to victim events); with a normal
// quota the victim's p95 stays bounded.
//
//   bench_overload [--requests N] [--max-batch B] [--timeout MS]
//                  [--deadline MS] [--depth D] [--loads 0.5,1,2,4]
//                  [--sheddable F] [--seed S] [--json FILE] [--check]
//
// --check exits nonzero unless (a) goodput with admission at 2x offered
// load strictly beats the uncontrolled baseline, and (b) the quota-0
// flood leaves the victim's acceptance rate at 1.0 with p95 exactly
// equal to the no-flood oracle.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/serial.hpp"
#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "platform/cli.hpp"
#include "platform/json.hpp"
#include "radixnet/radixnet.hpp"
#include "serve/load_replay.hpp"

namespace {

using namespace snicit;

struct Row {
  std::string cell;       // "sweep" | "flood"
  double load = 0.0;      // offered-load multiple of capacity
  bool admission = false;
  std::string tenant;     // "" = all tenants pooled
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t late = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t timed_out = 0;
  double accept_rate = 1.0;
  double p95_ms = 0.0;
  double goodput = 0.0;   // in-budget completions / virtual second
  int max_level = 0;
  double makespan_ms = 0.0;
};

std::vector<double> parse_loads(const std::string& text,
                                std::vector<double> fallback) {
  if (text.empty()) return fallback;
  std::vector<double> loads;
  std::stringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    try {
      const double x = std::stod(item);
      if (x > 0.0) loads.push_back(x);
    } catch (const std::exception&) {
    }
  }
  return loads.empty() ? fallback : loads;
}

void print_row(const Row& row) {
  std::printf(
      "%5s %5.2fx %9s %8s | %5zu %5zu %5zu %5zu %5zu %5zu | %6.2f %8.2f "
      "%7.1f  L%d\n",
      row.cell.c_str(), row.load, row.admission ? "admission" : "none",
      row.tenant.empty() ? "all" : row.tenant.c_str(), row.submitted,
      row.completed, row.late, row.timed_out, row.rejected, row.shed,
      row.accept_rate, row.p95_ms, row.goodput, row.max_level);
}

Row pooled_row(const std::string& cell, double load, bool admission,
               const serve::ReplayReport& report) {
  Row row;
  row.cell = cell;
  row.load = load;
  row.admission = admission;
  row.submitted = report.submitted();
  row.completed = report.completed();
  row.rejected = report.rejected();
  row.shed = report.shed();
  for (const auto& [id, t] : report.tenants) {
    row.late += t.late;
    row.timed_out += t.timed_out;
  }
  row.accept_rate =
      row.submitted == 0
          ? 1.0
          : 1.0 - static_cast<double>(row.rejected) /
                      static_cast<double>(row.submitted);
  row.goodput = report.goodput_per_s();
  row.max_level = report.max_brownout_level;
  row.makespan_ms = report.makespan_ms;
  // Pooled p95 over every served request.
  platform::QuantileTracker latency;
  for (const auto& r : report.requests) {
    if (r.served()) latency.add(r.latency_ms);
  }
  row.p95_ms = latency.p95();
  return row;
}

Row tenant_row(const std::string& cell, double load, bool admission,
               const std::string& id, const serve::ReplayReport& report) {
  Row row;
  row.cell = cell;
  row.load = load;
  row.admission = admission;
  row.tenant = id;
  const auto& t = report.tenant(id);
  row.submitted = t.submitted;
  row.completed = t.completed;
  row.late = t.late;
  row.rejected = t.rejected;
  row.shed = t.shed;
  row.timed_out = t.timed_out;
  row.accept_rate = t.accept_rate();
  row.p95_ms = t.latency.p95();
  row.goodput = report.makespan_ms <= 0.0
                    ? 0.0
                    : 1000.0 * static_cast<double>(t.completed) /
                          report.makespan_ms;
  row.max_level = report.max_brownout_level;
  row.makespan_ms = report.makespan_ms;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const platform::CliArgs args(argc, argv);
  const bench::ObservabilityScope observability;
  bench::print_title(
      "Overload-control sweep: offered load x admission policy "
      "(virtual-clock replay)");

  const bool check = args.has("check");
  const auto requests = static_cast<std::size_t>(
      args.get_int("requests", bench::large_scale() ? 1024 : 256));
  const auto max_batch = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("max-batch", 16), 1));
  const double timeout_ms = std::max(args.get_double("timeout", 2.0), 0.0);
  const double deadline_ms =
      std::max(args.get_double("deadline", 10.0), 0.1);
  const auto depth = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("depth", 32), 1));
  const double sheddable =
      std::min(std::max(args.get_double("sheddable", 0.25), 0.0), 1.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto loads =
      parse_loads(args.get("loads", ""), {0.5, 1.0, 2.0, 4.0});
  const std::string json_out = args.get("json", "");

  // The replayer needs a real (net, samples, engine) triple per tenant
  // even though the sweeps run scheduling-only; keep it tiny.
  radixnet::RadixNetOptions net_opt;
  net_opt.neurons = 64;
  net_opt.layers = 4;
  net_opt.seed = seed;
  dnn::SparseDnn net = radixnet::make_radixnet(net_opt);
  net.ensure_csc();
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 64;
  in_opt.batch = 64;
  in_opt.seed = seed + 1;
  const dnn::DenseMatrix samples = data::make_sdgc_input(in_opt).features;
  baselines::SerialEngine engine;

  const auto make_options = [&](bool admission) {
    serve::ReplayOptions opt;
    opt.max_batch = max_batch;
    opt.batch_timeout_ms = timeout_ms;
    opt.run_engines = false;  // scheduling-only: big grids, zero noise
    if (admission) {
      opt.admission.enabled = true;
      opt.admission.max_queue_depth = depth;
    }
    return opt;
  };

  // Virtual capacity: ms of service bought per request at full batches.
  const serve::ReplayOptions probe = make_options(false);
  const double per_request_ms =
      probe.service_col_ms +
      probe.service_base_ms / static_cast<double>(max_batch);

  std::printf(
      "%zu requests/cell, max batch %zu, fill timeout %.1f ms, deadline "
      "%.1f ms, depth cap %zu, sheddable fraction %.2f, capacity %.3f "
      "ms/request\n",
      requests, max_batch, timeout_ms, deadline_ms, depth, sheddable,
      per_request_ms);
  std::printf(
      "\n%5s %6s %9s %8s | %5s %5s %5s %5s %5s %5s | %6s %8s %7s\n",
      "cell", "load", "policy", "tenant", "subm", "done", "late", "tout",
      "rej", "shed", "accept", "p95 ms", "good/s");

  std::vector<Row> rows;
  double goodput_controlled_2x = -1.0;
  double goodput_uncontrolled_2x = -1.0;

  // --- Offered-load sweep -------------------------------------------
  for (const double load : loads) {
    serve::LoadScriptSpec spec;
    spec.shape = "poisson";
    spec.tenants = {"t0"};
    spec.requests_per_tenant = requests;
    spec.mean_gap_ms = per_request_ms / load;
    spec.deadline_ms = deadline_ms;
    spec.sheddable_fraction = sheddable;
    spec.seed = seed;
    spec.samples = samples.cols();
    const serve::LoadScript script = serve::make_load_script(spec);
    for (const bool admission : {false, true}) {
      serve::LoadReplayer replayer(make_options(admission));
      replayer.add_tenant("t0", engine, net, samples);
      const auto report = replayer.run(script);
      const Row row = pooled_row("sweep", load, admission, report);
      print_row(row);
      rows.push_back(row);
      if (std::abs(load - 2.0) < 1e-9) {
        (admission ? goodput_controlled_2x : goodput_uncontrolled_2x) =
            row.goodput;
      }
    }
  }

  // --- Flood isolation cell -----------------------------------------
  // One burst script: tenant 0 ("bully") dumps everything at t=0, the
  // "victim" keeps Poisson arrivals at half capacity. The oracle replays
  // the same script with the bully's events filtered out, so the
  // victim's offered stream is bitwise the same in both runs.
  serve::LoadScriptSpec flood_spec;
  flood_spec.shape = "burst";
  flood_spec.tenants = {"bully", "victim"};
  flood_spec.requests_per_tenant = requests;
  flood_spec.mean_gap_ms = per_request_ms / 0.5;
  flood_spec.deadline_ms = deadline_ms;
  flood_spec.seed = seed;
  flood_spec.samples = samples.cols();
  const serve::LoadScript flood = serve::make_load_script(flood_spec);
  serve::LoadScript oracle = flood;
  oracle.events.erase(
      std::remove_if(oracle.events.begin(), oracle.events.end(),
                     [](const serve::LoadEvent& e) {
                       return e.tenant == "bully";
                     }),
      oracle.events.end());

  const auto run_flood = [&](const serve::LoadScript& script,
                             std::size_t bully_quota, bool with_bully) {
    serve::ReplayOptions opt = make_options(true);
    opt.admission.tenant_depth["bully"] = bully_quota;
    serve::LoadReplayer replayer(opt);
    if (with_bully) replayer.add_tenant("bully", engine, net, samples);
    replayer.add_tenant("victim", engine, net, samples);
    return replayer.run(script);
  };

  const auto oracle_report = run_flood(oracle, 0, false);
  const auto cutoff_report = run_flood(flood, 0, true);
  const auto capped_report = run_flood(flood, depth, true);

  const Row oracle_row =
      tenant_row("flood", 0.5, true, "victim", oracle_report);
  Row cutoff_row = tenant_row("flood", 0.5, true, "victim", cutoff_report);
  cutoff_row.tenant = "victim*";  // next to a quota-0 bully
  Row capped_row = tenant_row("flood", 0.5, true, "victim", capped_report);
  capped_row.tenant = "victim+";  // next to a depth-capped bully
  print_row(oracle_row);
  print_row(cutoff_row);
  print_row(capped_row);
  print_row(tenant_row("flood", 0.5, true, "bully", capped_report));
  rows.push_back(oracle_row);
  rows.push_back(cutoff_row);
  rows.push_back(capped_row);

  const bool victim_isolated =
      cutoff_row.accept_rate == 1.0 &&
      cutoff_row.p95_ms == oracle_row.p95_ms &&
      cutoff_row.completed == oracle_row.completed;
  const double capped_ratio =
      capped_row.p95_ms / std::max(oracle_row.p95_ms, 1e-9);

  std::printf(
      "\nisolation: quota-0 flood leaves victim %s (p95 %.2f ms vs "
      "oracle %.2f ms); depth-capped flood p95 x%.2f\n",
      victim_isolated ? "bit-identical" : "PERTURBED", cutoff_row.p95_ms,
      oracle_row.p95_ms, capped_ratio);
  if (goodput_controlled_2x >= 0.0 && goodput_uncontrolled_2x >= 0.0) {
    std::printf(
        "goodput at 2x offered load: %.1f/s uncontrolled -> %.1f/s with "
        "admission (x%.2f)\n",
        goodput_uncontrolled_2x, goodput_controlled_2x,
        goodput_controlled_2x / std::max(goodput_uncontrolled_2x, 1e-9));
  }
  bench::print_note(
      "virtual-clock replay: goodput counts in-budget completions only — "
      "uncontrolled overload serves requests that already missed their "
      "deadline, admission fast-fails them at intake instead");

  if (!json_out.empty()) {
    platform::JsonWriter json;
    json.begin_array();
    for (const auto& row : rows) {
      json.begin_object();
      json.key("cell").value(row.cell);
      json.key("load").value(row.load);
      json.key("admission").value(row.admission);
      json.key("tenant").value(row.tenant);
      json.key("submitted").value(row.submitted);
      json.key("completed").value(row.completed);
      json.key("late").value(row.late);
      json.key("timed_out").value(row.timed_out);
      json.key("rejected").value(row.rejected);
      json.key("shed").value(row.shed);
      json.key("accept_rate").value(row.accept_rate);
      json.key("p95_ms").value(row.p95_ms);
      json.key("goodput_per_s").value(row.goodput);
      json.key("max_brownout_level")
          .value(static_cast<std::int64_t>(row.max_level));
      json.key("makespan_ms").value(row.makespan_ms);
      json.end_object();
    }
    json.end_array();
    std::ofstream out(json_out);
    out << json.str() << "\n";
    if (out.good()) {
      std::printf("wrote %zu rows to %s\n", rows.size(), json_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    }
  }

  if (check) {
    bool ok = true;
    if (!(goodput_controlled_2x > goodput_uncontrolled_2x)) {
      std::fprintf(stderr,
                   "check failed: goodput with admission at 2x load "
                   "(%.1f/s) must strictly beat the uncontrolled "
                   "baseline (%.1f/s)\n",
                   goodput_controlled_2x, goodput_uncontrolled_2x);
      ok = false;
    }
    if (!victim_isolated) {
      std::fprintf(stderr,
                   "check failed: a quota-0 flood must leave the victim "
                   "tenant bit-identical to its no-flood oracle\n");
      ok = false;
    }
    if (!ok) return 1;
    std::printf("check passed: admission defends goodput under overload "
                "and per-tenant quotas isolate the victim\n");
  }
  return 0;
}
