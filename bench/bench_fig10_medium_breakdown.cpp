// Figure 10 — SNICIT runtime breakdown on medium-scale DNNs A and D.
// Paper: (a) DNN A: pre 62.00%, conversion 11.18%, post 22.52%, recovery
// 4.30%; (b) DNN D: pre 69.33%, conversion 17.32%, post 13.05%, recovery
// 0.30%. Expected shape: pre-convergence dominates, recovery is small.
#include <cstdio>

#include "bench_util.hpp"
#include "medium_nets.hpp"
#include "snicit/engine.hpp"

int main() {
  using namespace snicit;
  bench::print_title(
      "Figure 10: SNICIT runtime breakdown on medium DNNs A and D");

  struct PaperRow {
    const char* id;
    double pre, conv, post, rec;
  };
  const PaperRow paper[] = {
      {"A", 62.00, 11.18, 22.52, 4.30},
      {"D", 69.33, 17.32, 13.05, 0.30},
  };

  auto nets = bench::load_medium_nets();

  std::printf("\n%-3s | %21s | %21s | %21s | %21s\n", "ID",
              "pre-convergence", "conversion", "post-convergence",
              "recovery");
  std::printf("%-3s | %10s %10s | %10s %10s | %10s %10s | %10s %10s\n", "",
              "measured", "paper", "measured", "paper", "measured", "paper",
              "measured", "paper");

  for (const auto& p : paper) {
    for (auto& m : nets) {
      if (m.id != p.id) continue;
      core::SnicitEngine engine(
          bench::medium_snicit_params(m.net.num_layers()));
      const auto r = bench::run_engine(engine, m.net, m.hidden0, 3);
      const double total = r.total_ms();
      const auto pct = [&](const char* stage) {
        return 100.0 * r.stages.get(stage) / total;
      };
      std::printf(
          "%-3s | %9.2f%% %9.2f%% | %9.2f%% %9.2f%% | %9.2f%% %9.2f%% | "
          "%9.2f%% %9.2f%%\n",
          m.id.c_str(), pct("pre-convergence"), p.pre, pct("conversion"),
          p.conv, pct("post-convergence"), p.post, pct("recovery"), p.rec);
    }
  }
  bench::print_note(
      "expected: pre-convergence is the majority share on both nets");
  return 0;
}
