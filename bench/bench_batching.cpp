// bench_batching — arrival-process sweep for the request-level serving
// front end: Poisson and bursty request arrivals are replayed against the
// dynamic batcher over a {packer} x {max batch} grid, on the clustered
// SDGC-style synthetic workload (class prototypes + flip noise) whose
// intra-batch similarity SNICIT's conversion stage monetises.
//
//   bench_batching [--requests N] [--neurons N] [--layers L]
//                  [--max-batch 16,32] [--rate R] [--workers W]
//                  [--timeout MS] [--seed S] [--json FILE] [--check]
//
// Each grid row reports serving shape (rounds, batches, fill, packing
// similarity), request latency percentiles, and the *post-conversion
// residue* the packing bought: every engine batch the batcher formed is
// replayed through a fresh SnicitEngine and the conversion_residue_nnz
// diagnostic (nonzeros left in non-centroid columns of Ŷ right after
// compression) is averaged per request. Similarity packing puts
// look-alike columns behind a shared centroid, so its residue column
// should sit visibly below FIFO's.
//
// --check runs the deterministic single-round comparison (all requests
// submitted up front, one serving round per packer) and exits nonzero
// unless similarity packing strictly reduces mean residue nnz vs FIFO —
// the regression gate for the packer's whole reason to exist.
//
// --json FILE writes the grid as a JSON array for downstream tooling.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "platform/cli.hpp"
#include "platform/json.hpp"
#include "platform/rng.hpp"
#include "radixnet/radixnet.hpp"
#include "serve/dynamic_batcher.hpp"
#include "snicit/engine.hpp"

namespace {

using namespace snicit;

struct Row {
  std::string arrival;
  std::string packer;
  std::size_t max_batch = 0;
  std::size_t requests = 0;
  std::size_t rounds = 0;
  std::size_t batches = 0;
  double mean_fill = 0.0;
  double mean_similarity = 0.0;
  double throughput = 0.0;  // requests/s
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Mean nnz per residue (non-centroid) column right after conversion.
  double residue_nnz = 0.0;
  /// Centroid columns per engine batch (each is stored verbatim).
  double centroids_per_batch = 0.0;
};

core::SnicitParams snicit_params(int layers, std::size_t max_batch) {
  core::SnicitParams params;
  // Mid-convergence threshold (l/4, not the serving default l/2): late
  // enough that same-class columns have collapsed toward each other,
  // early enough that they have not all converged to one saturation
  // point — the regime where batch composition decides the residue mass.
  params.threshold_layer = std::max(2, layers / 4);
  params.sample_size =
      static_cast<int>(std::min<std::size_t>(32, max_batch));
  params.downsample_dim = 16;
  // Fixed centroid budget: with ε > 1, Algorithm 1 merges every sample
  // into the first (a batch gets exactly one centroid), so the engine
  // cannot absorb a badly mixed batch by electing more centroids. The
  // residue sparsity then measures the *packer's* work alone: how close
  // the batch's columns sit to their one shared representative.
  params.epsilon = 1.5f;
  return params;
}

/// Submit-time offsets (ms from t0) for `n` requests at mean rate
/// `per_ms`. Poisson: exponential inter-arrival gaps. Bursty: groups of
/// 16 arrive back-to-back, then the line goes quiet for the time the
/// burst "saved" — same mean rate, very different queue dynamics.
std::vector<double> arrival_offsets(const std::string& process,
                                    std::size_t n, double per_ms,
                                    std::uint64_t seed) {
  std::vector<double> offsets(n, 0.0);
  platform::Rng rng(seed);
  double t = 0.0;
  constexpr std::size_t kBurst = 16;
  for (std::size_t i = 0; i < n; ++i) {
    if (process == "poisson") {
      t += -std::log(1.0 - rng.next_double()) / per_ms;
    } else if (i > 0 && i % kBurst == 0) {
      t += static_cast<double>(kBurst) / per_ms;
    }
    offsets[i] = t;
  }
  return offsets;
}

/// Replays every engine batch the batcher formed through a fresh
/// SnicitEngine and measures the conversion it produced: mean nnz per
/// residue (non-centroid) column and centroids per batch. Deterministic
/// in the batch compositions, so this isolates the packing decision from
/// serving-time jitter. Better packing shows up on both axes — fewer
/// centroids (more columns share one) and sparser residues (each column
/// sits closer to the centroid it shares).
struct ConversionStats {
  double residue_nnz = 0.0;
  double centroids_per_batch = 0.0;
};

ConversionStats replay_conversion(const serve::ServeReport& report,
                                  const dnn::SparseDnn& net,
                                  const dnn::DenseMatrix& requests,
                                  int layers, std::size_t max_batch) {
  double residue = 0.0;
  double centroids = 0.0;
  std::size_t residue_cols = 0;
  std::size_t batches = 0;
  for (const auto& record : report.batch_log) {
    if (record.failed || record.request_ids.empty()) continue;
    dnn::DenseMatrix batch(requests.rows(), record.request_ids.size());
    for (std::size_t p = 0; p < record.request_ids.size(); ++p) {
      // Request ids are assigned in submit order, which is column order.
      std::copy_n(requests.col(record.request_ids[p]), requests.rows(),
                  batch.col(p));
    }
    core::SnicitEngine engine(snicit_params(layers, max_batch));
    const auto result = engine.run(net, batch);
    const auto res = result.diagnostics.find("conversion_residue_nnz");
    const auto cen = result.diagnostics.find("centroids");
    if (res == result.diagnostics.end() || cen == result.diagnostics.end()) {
      continue;  // conversion never ran (all columns converged early)
    }
    residue += res->second;
    centroids += cen->second;
    residue_cols += record.request_ids.size() -
                    static_cast<std::size_t>(cen->second);
    batches += 1;
  }
  ConversionStats stats;
  if (residue_cols > 0) {
    stats.residue_nnz = residue / static_cast<double>(residue_cols);
  }
  if (batches > 0) {
    stats.centroids_per_batch = centroids / static_cast<double>(batches);
  }
  return stats;
}

Row run_cell(const std::string& arrival, const std::string& packer,
             std::size_t max_batch, const dnn::SparseDnn& net,
             const dnn::DenseMatrix& requests, int layers, double per_ms,
             std::size_t workers, double timeout_ms, std::uint64_t seed,
             bool timed) {
  const std::size_t n = requests.cols();
  serve::ServeOptions opt;
  opt.max_batch = max_batch;
  opt.batch_timeout_ms = timeout_ms;
  opt.packer = packer;
  opt.workers = workers;
  if (!timed) {
    // Deterministic mode: one round sees every request, so the packing
    // comparison is exact rather than arrival-jitter dependent.
    opt.round_limit = n;
    opt.queue_capacity = n;
  }

  core::SnicitEngine engine(snicit_params(layers, max_batch));
  serve::DynamicBatcher batcher(engine, net, opt);

  const auto offsets =
      timed ? arrival_offsets(arrival, n, per_ms, seed)
            : std::vector<double>(n, 0.0);
  const platform::Stopwatch clock;
  for (std::size_t j = 0; j < n; ++j) {
    if (timed) {
      const double lag = offsets[j] - clock.elapsed_ms();
      if (lag > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(lag));
      }
    }
    std::vector<float> features(requests.col(j),
                                requests.col(j) + requests.rows());
    (void)batcher.submit(std::move(features));
  }
  const auto report = batcher.finish();

  Row row;
  row.arrival = timed ? arrival : "burst";
  row.packer = packer;
  row.max_batch = max_batch;
  row.requests = report.requests;
  row.rounds = report.rounds;
  row.batches = report.batches;
  row.mean_fill = report.mean_fill();
  row.mean_similarity = report.mean_similarity();
  row.throughput = report.throughput();
  row.p50_ms = report.latency.p50();
  row.p95_ms = report.latency.p95();
  row.p99_ms = report.latency.p99();
  const auto stats =
      replay_conversion(report, net, requests, layers, max_batch);
  row.residue_nnz = stats.residue_nnz;
  row.centroids_per_batch = stats.centroids_per_batch;
  return row;
}

void print_row(const Row& row) {
  std::printf("%8s %11s %6zu | %5zu %5zu %5.2f %6.3f | %9.0f | "
              "%7.2f %7.2f %7.2f | %11.1f %9.1f\n",
              row.arrival.c_str(), row.packer.c_str(), row.max_batch,
              row.rounds, row.batches, row.mean_fill, row.mean_similarity,
              row.throughput, row.p50_ms, row.p95_ms, row.p99_ms,
              row.residue_nnz, row.centroids_per_batch);
}

}  // namespace

int main(int argc, char** argv) {
  const platform::CliArgs args(argc, argv);
  const bench::ObservabilityScope observability;
  bench::print_title(
      "Dynamic batching sweep: arrival process x packer x max batch");

  const bool check = args.has("check");
  const auto requests_n = static_cast<std::size_t>(args.get_int(
      "requests", bench::large_scale() ? 1024 : 256));
  const auto neurons = static_cast<sparse::Index>(
      args.get_int("neurons", bench::large_scale() ? 1024 : 256));
  const auto layers =
      static_cast<int>(args.get_int("layers", bench::large_scale() ? 120 : 48));
  const auto batch_list = args.get_int_list("max-batch", {16, 32});
  const double per_ms = std::max(args.get_double("rate", 8.0), 0.001);
  const auto workers = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("workers", 1), 0));
  const double timeout_ms =
      std::max(args.get_double("timeout", 2.0), 0.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string json_out = args.get("json", "");

  radixnet::RadixNetOptions net_opt;
  net_opt.neurons = neurons;
  net_opt.layers = layers;
  net_opt.fanin = 32;
  net_opt.seed = 42;
  const auto net = radixnet::make_radixnet(net_opt);
  net.ensure_csc();

  // Clustered workload: 10 class prototypes + flip noise, classes
  // shuffled across columns — the packer has real structure to find.
  data::SdgcInputOptions in_opt;
  in_opt.neurons = static_cast<std::size_t>(neurons);
  in_opt.batch = requests_n;
  in_opt.classes = 10;
  in_opt.seed = seed + 1;
  const auto input = data::make_sdgc_input(in_opt).features;

  std::printf("%d neurons x %d layers, %zu requests, rate %.1f req/ms, "
              "timeout %.1f ms, %zu worker(s)\n",
              neurons, layers, requests_n, per_ms, timeout_ms,
              std::max<std::size_t>(workers, 1));
  std::printf("\n%8s %11s %6s | %5s %5s %5s %6s | %9s | "
              "%7s %7s %7s | %11s %9s\n",
              "arrival", "packer", "batch", "rnds", "batch", "fill", "sim",
              "req/s", "p50 ms", "p95 ms", "p99 ms", "residue nnz",
              "centroids");

  std::vector<Row> rows;
  for (const auto b : batch_list) {
    if (b < 1) continue;
    const auto max_batch = static_cast<std::size_t>(b);
    for (const std::string arrival : {"poisson", "bursty"}) {
      for (const std::string packer : {"fifo", "similarity"}) {
        rows.push_back(run_cell(arrival, packer, max_batch, net, input,
                                layers, per_ms, workers, timeout_ms, seed,
                                /*timed=*/true));
        print_row(rows.back());
      }
    }
  }

  // Deterministic packing comparison at the *smallest* batch size: one
  // round sees all requests, so the residue delta is the packer's alone.
  // Small engine batches are the regime where packing decides anything —
  // with the batch below the per-class cluster size (requests/classes),
  // the packer can make batches class-pure, and every column sits near
  // the batch's one budgeted centroid. Once the batch outgrows the
  // clusters, every batch spans classes no matter the order and the
  // single-centroid residue stops responding to packing.
  const auto check_batch = static_cast<std::size_t>(
      *std::min_element(batch_list.begin(), batch_list.end()));
  const Row fifo = run_cell("burst", "fifo", check_batch, net, input,
                            layers, per_ms, workers, timeout_ms, seed,
                            /*timed=*/false);
  const Row similarity = run_cell("burst", "similarity", check_batch, net,
                                  input, layers, per_ms, workers,
                                  timeout_ms, seed, /*timed=*/false);
  print_row(fifo);
  print_row(similarity);

  bench::print_note(
      "residue nnz = mean post-conversion nonzeros per residue "
      "(non-centroid) column of the compressed batch; centroids = "
      "verbatim-stored columns per engine batch. Better packing lowers "
      "both: look-alike columns share a centroid and sit closer to it");

  if (!json_out.empty()) {
    platform::JsonWriter json;
    json.begin_array();
    for (const auto& row : rows) {
      json.begin_object();
      json.key("arrival").value(row.arrival);
      json.key("packer").value(row.packer);
      json.key("max_batch").value(row.max_batch);
      json.key("requests").value(row.requests);
      json.key("rounds").value(row.rounds);
      json.key("batches").value(row.batches);
      json.key("mean_fill").value(row.mean_fill);
      json.key("mean_similarity").value(row.mean_similarity);
      json.key("throughput_per_s").value(row.throughput);
      json.key("p50_ms").value(row.p50_ms);
      json.key("p95_ms").value(row.p95_ms);
      json.key("p99_ms").value(row.p99_ms);
      json.key("residue_nnz").value(row.residue_nnz);
      json.key("centroids_per_batch").value(row.centroids_per_batch);
      json.end_object();
    }
    json.end_array();
    std::ofstream out(json_out);
    out << json.str() << "\n";
    if (out.good()) {
      std::printf("wrote %zu rows to %s\n", rows.size(), json_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    }
  }

  if (check) {
    const bool reduced = similarity.residue_nnz < fifo.residue_nnz;
    const bool sim_higher =
        similarity.mean_similarity > fifo.mean_similarity;
    std::printf(
        "\ncheck: mean residue nnz fifo %.1f vs similarity %.1f (%s), "
        "packing similarity %.3f vs %.3f (%s)\n",
        fifo.residue_nnz, similarity.residue_nnz,
        reduced ? "reduced" : "NOT REDUCED", fifo.mean_similarity,
        similarity.mean_similarity, sim_higher ? "raised" : "NOT RAISED");
    if (!reduced || !sim_higher) {
      std::fprintf(stderr,
                   "check failed: similarity packing must beat FIFO on "
                   "the clustered workload\n");
      return 1;
    }
  }
  return 0;
}
