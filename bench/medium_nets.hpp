// Networks A-D of Table 4, trained once on the synthetic MNIST/CIFAR
// stand-ins and cached on disk (SNICIT_CACHE_DIR, default ./bench_cache),
// so the medium-scale harnesses (Table 4, Figures 10-12) share identical
// models.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "dnn/sparse_dnn.hpp"
#include "snicit/params.hpp"
#include "train/mlp.hpp"

namespace snicit::bench {

struct MediumNet {
  std::string id;            // "A".."D"
  std::string config;        // "128-18" etc.
  std::string dataset_name;  // "MNIST-like" / "CIFAR-like"
  train::SparseMlp mlp;
  dnn::SparseDnn net;        // the l sparse hidden layers
  data::Dataset test;        // held-out labelled data (10000-column scale
                             // in the paper; 1000 here)
  sparse::DenseMatrix hidden0;  // engine input: activations entering layer 0
  double exact_accuracy;     // full-precision inference accuracy
  double paper_accuracy;     // Table 4 "DNN acc."
  double paper_acc_loss;     // Table 4 accuracy loss (SNICIT)
  double paper_speedup_snig; // Table 4 speed-up w.r.t. SNIG-2020
  double paper_speedup_bf;   // Table 4 speed-up w.r.t. BF-2019
};

/// Trains (or loads from cache) all four networks. Prints one progress
/// line per network.
std::vector<MediumNet> load_medium_nets();

/// The paper's medium-scale SNICIT configuration (§4.2.1): t = largest
/// even integer <= l/2, s = 128, no sum downsampling, eps = eta = 0.03,
/// ne_idx refreshed every layer, plus the substrate's calibrated
/// near-zero pruning threshold on the ymax = 1 scale.
core::SnicitParams medium_snicit_params(std::size_t layers);

}  // namespace snicit::bench
