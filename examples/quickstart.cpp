// Quickstart: build a synthetic SDGC-style sparse network, run the exact
// reference and SNICIT on the same batch, and compare results + runtime.
//
//   ./quickstart [neurons] [layers] [batch] [threshold]
//
// Demonstrates the minimal public API surface: radixnet::make_radixnet,
// data::make_sdgc_input, core::SnicitEngine, dnn::reference_forward.
#include <cstdio>
#include <cstdlib>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/timer.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/engine.hpp"

int main(int argc, char** argv) {
  using namespace snicit;

  const sparse::Index neurons =
      argc > 1 ? std::atoi(argv[1]) : 1024;
  const int layers = argc > 2 ? std::atoi(argv[2]) : 120;
  const std::size_t batch =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 256;
  const int threshold = argc > 4 ? std::atoi(argv[4]) : 30;

  std::printf("SNICIT quickstart: %d neurons x %d layers, batch %zu\n",
              neurons, layers, batch);

  // 1. A Radix-Net-style sparse DNN (32 in-edges per neuron, Table 1 bias).
  radixnet::RadixNetOptions net_opt;
  net_opt.neurons = neurons;
  net_opt.layers = layers;
  const auto net = radixnet::make_radixnet(net_opt);
  std::printf("network: %lld connections, density %.4f, bias %.2f\n",
              static_cast<long long>(net.connections()), net.density(),
              net.constant_bias(0));

  // 2. A clustered binary input batch (resized-MNIST stand-in).
  data::SdgcInputOptions in_opt;
  in_opt.neurons = static_cast<std::size_t>(neurons);
  in_opt.batch = batch;
  const auto input = data::make_sdgc_input(in_opt).features;

  // 3. Exact reference (the golden result).
  platform::Stopwatch ref_clock;
  const auto golden = dnn::reference_forward(net, input);
  const double ref_ms = ref_clock.elapsed_ms();

  // 4. SNICIT with the paper's SDGC defaults (t=30, s=32, n=16, eps=eta=.03).
  core::SnicitParams params;
  params.threshold_layer = threshold;
  params.record_trace = true;
  core::SnicitEngine engine(params);
  const auto result = engine.run(net, input);

  std::printf("\nreference feed-forward : %9.2f ms\n", ref_ms);
  std::printf("SNICIT total           : %9.2f ms  (%.2fx)\n",
              result.total_ms(), ref_ms / result.total_ms());
  for (const auto& stage : result.stages.entries()) {
    std::printf("  %-20s : %9.2f ms (%5.1f%%)\n", stage.name.c_str(),
                stage.ms, 100.0 * stage.ms / result.total_ms());
  }
  std::printf("centroids: %zu, non-empty columns at exit: %zu / %zu\n",
              engine.last_trace().centroid_count,
              engine.last_trace().ne_count.empty()
                  ? batch
                  : engine.last_trace().ne_count.back(),
              batch);

  const float err = dnn::DenseMatrix::max_abs_diff(result.output, golden);
  const double match = dnn::category_match_rate(
      dnn::sdgc_categories(result.output, 1e-3f),
      dnn::sdgc_categories(golden, 1e-3f));
  std::printf("max |SNICIT - golden| = %.3g, category match = %.2f%%\n", err,
              100.0 * match);
  return match == 1.0 ? 0 : 1;
}
