// Choosing the threshold layer t (paper §4.1.4 / §4.2.3 and the §5
// future-work feature): sweeps t manually, prints the runtime curve, then
// lets the dynamic ConvergenceDetector pick t automatically and compares.
//
//   ./threshold_tuning [neurons] [layers] [batch]
#include <cstdio>
#include <cstdlib>

#include "data/synthetic.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/engine.hpp"

int main(int argc, char** argv) {
  using namespace snicit;

  const sparse::Index neurons = argc > 1 ? std::atoi(argv[1]) : 1024;
  const int layers = argc > 2 ? std::atoi(argv[2]) : 96;
  const std::size_t batch =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 256;

  radixnet::RadixNetOptions net_opt;
  net_opt.neurons = neurons;
  net_opt.layers = layers;
  const auto net = radixnet::make_radixnet(net_opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = static_cast<std::size_t>(neurons);
  in_opt.batch = batch;
  const auto input = data::make_sdgc_input(in_opt).features;
  net.ensure_csc();

  std::printf("== manual sweep: runtime vs t on %d-%d, B=%zu ==\n", neurons,
              layers, batch);
  std::printf("%6s | %10s | %10s\n", "t", "runtime ms", "centroids");
  double best_ms = -1.0;
  int best_t = 0;
  for (int t = 0; t <= layers; t += layers / 8) {
    core::SnicitParams params;
    params.threshold_layer = t;
    core::SnicitEngine engine(params);
    const auto r = engine.run(net, input);
    std::printf("%6d | %10.2f | %10.0f\n", t, r.total_ms(),
                r.diagnostics.count("centroids")
                    ? r.diagnostics.at("centroids")
                    : 0.0);
    if (best_ms < 0.0 || r.total_ms() < best_ms) {
      best_ms = r.total_ms();
      best_t = t;
    }
  }
  std::printf("manual best: t=%d (%.2f ms)\n", best_t, best_ms);

  std::printf("\n== dynamic threshold (ConvergenceDetector, §5) ==\n");
  core::SnicitParams dyn;
  dyn.auto_threshold = true;
  dyn.threshold_layer = layers;  // upper bound only
  dyn.record_trace = true;
  core::SnicitEngine engine(dyn);
  const auto r = engine.run(net, input);
  std::printf("detector picked t=%d, runtime %.2f ms (manual best %.2f "
              "ms at t=%d)\n",
              engine.last_trace().threshold_layer, r.total_ms(), best_ms,
              best_t);
  std::printf("\nper-layer clustering distance during pre-convergence:\n");
  const auto& trace = engine.last_trace();
  for (std::size_t i = 0; i < trace.change_fraction.size(); ++i) {
    std::printf("  layer %3zu: %.3f%s\n", i + 1, trace.change_fraction[i],
                trace.change_fraction[i] <= dyn.auto_level ? "  <- clustered"
                                                           : "");
  }
  return 0;
}
