// The full SDGC-style workflow, end to end:
//   1. generate (or load) a Radix-Net sparse network
//   2. generate a clustered input batch
//   3. run every engine: golden reference, BF-2019, SNIG-2020, XY-2021,
//      SNICIT
//   4. verify all outputs against the golden categories
//   5. optionally export the network + input in SDGC TSV format
//
//   ./sdgc_pipeline [neurons] [layers] [batch] [--export <prefix>]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "baselines/bf2019.hpp"
#include "baselines/snig2020.hpp"
#include "baselines/xy2021.hpp"
#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "radixnet/radixnet.hpp"
#include "radixnet/sdgc_io.hpp"
#include "snicit/engine.hpp"

int main(int argc, char** argv) {
  using namespace snicit;

  sparse::Index neurons = 1024;
  int layers = 48;
  std::size_t batch = 256;
  const char* export_prefix = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--export") == 0 && i + 1 < argc) {
      export_prefix = argv[++i];
    } else if (i == 1) {
      neurons = std::atoi(argv[i]);
    } else if (i == 2) {
      layers = std::atoi(argv[i]);
    } else if (i == 3) {
      batch = static_cast<std::size_t>(std::atoi(argv[i]));
    }
  }

  std::printf("== SDGC pipeline: %d neurons x %d layers, batch %zu ==\n",
              neurons, layers, batch);

  radixnet::RadixNetOptions net_opt;
  net_opt.neurons = neurons;
  net_opt.layers = layers;
  const auto net = radixnet::make_radixnet(net_opt);

  data::SdgcInputOptions in_opt;
  in_opt.neurons = static_cast<std::size_t>(neurons);
  in_opt.batch = batch;
  const auto input = data::make_sdgc_input(in_opt).features;

  if (export_prefix != nullptr) {
    std::printf("exporting network + input to %s-*.tsv ...\n",
                export_prefix);
    radixnet::save_network_tsv(net, export_prefix);
    radixnet::save_matrix_tsv(input,
                              std::string(export_prefix) + "-input.tsv");
  }

  // Golden reference.
  dnn::ReferenceEngine reference;
  const auto golden = reference.run(net, input);
  const auto golden_cats = dnn::sdgc_categories(golden.output, 1e-3f);
  std::printf("%-10s %10.2f ms  (golden)\n", reference.name().c_str(),
              golden.total_ms());

  // Champions + SNICIT.
  core::SnicitParams params;
  params.threshold_layer = layers >= 120 ? 30 : layers / 2;
  std::vector<std::unique_ptr<dnn::InferenceEngine>> engines;
  engines.push_back(std::make_unique<baselines::Bf2019Engine>());
  engines.push_back(std::make_unique<baselines::Snig2020Engine>());
  engines.push_back(std::make_unique<baselines::Xy2021Engine>());
  engines.push_back(std::make_unique<core::SnicitEngine>(params));

  bool all_ok = true;
  for (auto& engine : engines) {
    net.ensure_csc();
    const auto result = engine->run(net, input);
    const auto cats = dnn::sdgc_categories(result.output, 1e-3f);
    const bool ok = dnn::category_match_rate(cats, golden_cats) == 1.0;
    all_ok = all_ok && ok;
    std::printf("%-10s %10.2f ms  (%5.2fx vs golden)  categories: %s\n",
                engine->name().c_str(), result.total_ms(),
                golden.total_ms() / result.total_ms(),
                ok ? "match" : "MISMATCH");
  }
  return all_ok ? 0 : 1;
}
