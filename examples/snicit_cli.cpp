// snicit_cli — the library's command-line front end. Subcommands:
//
//   generate   build a Radix-Net-style network + input batch and write
//              them as SDGC TSV files
//              --neurons N --layers L --batch B --out PREFIX [--mixed-radix]
//   run        run inference on TSV files (or a generated workload) with a
//              chosen engine and report timing + categories
//              --engine snicit|xy2021|snig2020|bf2019|serial|reference
//              [--net PREFIX --neurons N --layers L --bias B] [--batch B]
//              [--threshold T] [--auto-threshold] [--stream CHUNK]
//              [--trace-out FILE] [--metrics-out FILE]
//   analyze    print the per-layer convergence trace of a workload
//              (Figure 1-style: density, saturation, distinct columns)
//
// Everything defaults to a generated workload so each subcommand runs out
// of the box: `snicit_cli run --engine snicit`. Unknown flags are hard
// errors (exit 2), never silently ignored: a typo like "--worker 4" would
// otherwise run serial and report the wrong numbers.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/autotune.hpp"
#include "baselines/bf2019.hpp"
#include "baselines/serial.hpp"
#include "baselines/snig2020.hpp"
#include "baselines/xy2021.hpp"
#include "data/synthetic.hpp"
#include "dnn/analysis.hpp"
#include "dnn/reference.hpp"
#include "platform/cli.hpp"
#include "platform/fault_injection.hpp"
#include "platform/metrics.hpp"
#include "platform/trace.hpp"
#include "radixnet/mixed_radix.hpp"
#include "radixnet/radixnet.hpp"
#include "radixnet/sdgc_io.hpp"
#include "serve/dynamic_batcher.hpp"
#include "serve/load_script.hpp"
#include "serve/router.hpp"
#include "snicit/engine.hpp"
#include "snicit/parallel_stream.hpp"
#include "snicit/stream.hpp"

namespace {

using namespace snicit;

// Flag vocabulary per subcommand (workload flags are shared by all).
const std::vector<std::string> kWorkloadFlags = {
    "neurons", "layers", "batch", "seed", "mixed-radix",
    "net",     "input",  "bias"};

std::vector<std::string> known_flags(const std::string& cmd) {
  std::vector<std::string> flags = kWorkloadFlags;
  if (cmd == "generate") {
    flags.push_back("out");
  } else if (cmd == "run") {
    for (const char* f :
         {"engine", "threshold", "sample-size", "downsample", "prune",
          "auto-threshold", "stream", "workers", "queue", "trace-out",
          "metrics-out", "spmm", "spmm-tile", "faults", "faults-seed",
          "max-attempts", "deadline-ms", "serve-requests", "batch-timeout",
          "packer", "models", "admission-depth", "admission-work-ms",
          "record-script"}) {
      flags.push_back(f);
    }
  }
  return flags;
}

struct Workload {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
};

Workload build_workload(const platform::CliArgs& args) {
  const auto neurons =
      static_cast<sparse::Index>(args.get_int("neurons", 1024));
  const auto layers = static_cast<int>(args.get_int("layers", 48));
  const auto batch = static_cast<std::size_t>(args.get_int("batch", 256));

  dnn::SparseDnn net = [&] {
    if (args.has("net")) {
      const float bias = static_cast<float>(
          args.get_double("bias", radixnet::table1_bias(neurons)));
      return radixnet::load_network_tsv(args.get("net", ""), neurons, layers,
                                        bias, 32.0f);
    }
    if (args.has("mixed-radix")) {
      radixnet::MixedRadixOptions opt;
      opt.radices = radixnet::default_radices(neurons);
      opt.layers = layers;
      return radixnet::make_mixed_radix_net(opt);
    }
    radixnet::RadixNetOptions opt;
    opt.neurons = neurons;
    opt.layers = layers;
    opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    return radixnet::make_radixnet(opt);
  }();

  dnn::DenseMatrix input = [&] {
    if (args.has("input")) {
      return radixnet::load_matrix_tsv(args.get("input", ""),
                                       static_cast<std::size_t>(neurons),
                                       batch);
    }
    data::SdgcInputOptions in_opt;
    in_opt.neurons = static_cast<std::size_t>(neurons);
    in_opt.batch = batch;
    in_opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 42)) + 1;
    return data::make_sdgc_input(in_opt).features;
  }();
  return {std::move(net), std::move(input)};
}

// spMM kernel policy from flags on top of the environment: SNICIT_SPMM /
// SNICIT_SPMM_TILE set the baseline, --spmm / --spmm-tile override it.
sparse::SpmmPolicy cli_spmm_policy(const platform::CliArgs& args) {
  sparse::SpmmPolicy policy = sparse::SpmmPolicy::from_env();
  if (args.has("spmm")) {
    const std::string name = args.get("spmm", "auto");
    const auto variant = sparse::parse_spmm_variant(name);
    if (!variant) {
      throw std::invalid_argument(
          "unknown --spmm variant '" + name +
          "' (expected auto|gather|gather_simd|gather_threaded|tiled|"
          "scatter|scatter_simd)");
    }
    policy.variant = *variant;
  }
  if (args.has("spmm-tile")) {
    policy.tile = static_cast<std::size_t>(
        std::max<std::int64_t>(args.get_int("spmm-tile", 16), 1));
  }
  return policy;
}

std::unique_ptr<dnn::InferenceEngine> build_engine(
    const platform::CliArgs& args, const Workload& wl) {
  const std::string name = args.get("engine", "snicit");
  const sparse::SpmmPolicy policy = cli_spmm_policy(args);
  if (name == "xy2021") {
    baselines::Xy2021Options opt;
    opt.policy = policy;
    return std::make_unique<baselines::Xy2021Engine>(opt);
  }
  if (name == "snig2020") {
    return std::make_unique<baselines::Snig2020Engine>(0, 4, policy);
  }
  if (name == "bf2019") {
    return std::make_unique<baselines::Bf2019Engine>(0, policy);
  }
  if (name == "autotune") {
    baselines::AutotuneOptions opt;
    opt.policy = policy;
    return std::make_unique<baselines::AutotuneEngine>(opt);
  }
  if (name == "serial") return std::make_unique<baselines::SerialEngine>();
  if (name == "reference") return std::make_unique<dnn::ReferenceEngine>();
  if (name != "snicit") {
    throw std::invalid_argument(
        "unknown engine '" + name +
        "' (expected snicit|xy2021|snig2020|bf2019|autotune|serial|"
        "reference)");
  }
  core::SnicitParams params;
  const auto layers = static_cast<int>(wl.net.num_layers());
  params.threshold_layer = static_cast<int>(
      args.get_int("threshold", layers >= 120 ? 30 : layers / 2));
  params.sample_size = static_cast<int>(args.get_int("sample-size", 32));
  params.downsample_dim =
      static_cast<int>(args.get_int("downsample", 16));
  params.prune_threshold =
      static_cast<float>(args.get_double("prune", 0.0));
  params.auto_threshold = args.has("auto-threshold");
  params.spmm = policy;
  return std::make_unique<core::SnicitEngine>(params);
}

void usage();

// Serve policy shared by the single-model (--serve-requests) and
// multi-model (--models) paths. Returns false after printing a usage
// error when the packer name is unknown.
bool parse_serve_options(const platform::CliArgs& args,
                         serve::ServeOptions& opt) {
  opt.max_batch = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("serve-requests", 64), 1));
  opt.batch_timeout_ms =
      std::max(args.get_double("batch-timeout", 2.0), 0.0);
  opt.packer = args.get("packer", "similarity");
  opt.workers = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("workers", 1), 0));
  opt.queue_capacity = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("queue", 0), 0));
  opt.max_attempts = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("max-attempts", 5), 1));
  // Overload control: either admission flag switches the controller on.
  // --admission-depth caps queued-but-undispatched requests per tenant;
  // --admission-work-ms caps the estimated backlog the cost model prices.
  if (args.has("admission-depth") || args.has("admission-work-ms")) {
    opt.admission.enabled = true;
    opt.admission.max_queue_depth = static_cast<std::size_t>(
        std::max<std::int64_t>(args.get_int("admission-depth", 256), 0));
    opt.admission.max_backlog_ms =
        std::max(args.get_double("admission-work-ms", 0.0), 0.0);
  }
  const auto packers = serve::known_packers();
  if (std::find(packers.begin(), packers.end(), opt.packer) ==
      packers.end()) {
    std::fprintf(stderr, "error: unknown --packer '%s'\n",
                 opt.packer.c_str());
    usage();
    return false;
  }
  return true;
}

// Writes the recorded submission trace in the load-script text form so a
// live traffic shape can be replayed deterministically afterwards.
bool write_recorded_script(const serve::LoadScriptRecorder& recorder,
                           const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string text = recorder.script().to_text();
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

int cmd_generate(const platform::CliArgs& args) {
  const auto wl = build_workload(args);
  const std::string prefix = args.get("out", "snicit-workload");
  std::printf("writing %zu layer files + input to %s-*.tsv\n",
              wl.net.num_layers(), prefix.c_str());
  radixnet::save_network_tsv(wl.net, prefix);
  radixnet::save_matrix_tsv(wl.input, prefix + "-input.tsv");
  std::printf("done: %s (%lld connections)\n", wl.net.name().c_str(),
              static_cast<long long>(wl.net.connections()));
  return 0;
}

void usage();

int cmd_run(const platform::CliArgs& args) {
  // Observability: --trace-out / --metrics-out switch the runtime flags on
  // for this run and dump the capture on exit (chrome://tracing JSON and a
  // counters/gauges/series document respectively).
  const std::string trace_out = args.get("trace-out", "");
  const std::string metrics_out = args.get("metrics-out", "");
  if (!trace_out.empty()) {
    platform::trace::clear();
    platform::trace::set_enabled(true);
  }
  if (!metrics_out.empty()) {
    platform::metrics::MetricsRegistry::global().reset();
    platform::metrics::set_enabled(true);
  }
  const auto write_observability = [&] {
    if (!trace_out.empty()) {
      if (platform::trace::write_chrome_trace(trace_out)) {
        std::printf("wrote %zu trace events to %s\n",
                    platform::trace::event_count(), trace_out.c_str());
      } else {
        std::fprintf(stderr, "failed to write trace to %s\n",
                     trace_out.c_str());
      }
    }
    if (!metrics_out.empty()) {
      auto& registry = platform::metrics::MetricsRegistry::global();
      if (registry.write_json(metrics_out)) {
        std::printf("wrote metrics dump to %s\n", metrics_out.c_str());
      } else {
        std::fprintf(stderr, "failed to write metrics to %s\n",
                     metrics_out.c_str());
      }
    }
  };

  // --faults arms the deterministic fault-injection registry for this
  // run (same spec grammar as SNICIT_FAULTS); a malformed spec is a
  // usage error, not a silently fault-free drill.
  if (args.has("faults")) {
    const auto armed = platform::fault::FaultRegistry::global().configure(
        args.get("faults", ""),
        static_cast<std::uint64_t>(args.get_int("faults-seed", 42)));
    if (!armed.ok()) {
      std::fprintf(stderr, "error: --faults: %s\n",
                   armed.error().message.c_str());
      return 2;
    }
  }

  if (args.has("models")) {
    // Multi-model serving: load every model of the manifest into a
    // registry and route an interleaved request stream through per-tenant
    // lanes sharing one worker budget.
    if (!args.has("serve-requests")) {
      std::fprintf(stderr,
                   "error: --models requires --serve-requests "
                   "(multi-model serving is request-level)\n");
      usage();
      return 2;
    }
    serve::ServeOptions opt;
    if (!parse_serve_options(args, opt)) return 2;
    const double deadline_ms =
        std::max(args.get_double("deadline-ms", 0.0), 0.0);

    serve::ModelRegistry registry;
    const auto loaded = registry.load_manifest(args.get("models", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.error().message.c_str());
      return 2;
    }
    const auto ids = registry.ids();
    std::printf("serving %zu model(s):", ids.size());
    for (const auto& id : ids) {
      const auto model = registry.find(id);
      std::printf(" %s(%s)", id.c_str(), model->prototype->name().c_str());
    }
    std::printf("\n");

    // One synthetic input batch per model, --batch requests each,
    // submitted round-robin so tenants genuinely interleave.
    const auto batch = static_cast<std::size_t>(
        std::max<std::int64_t>(args.get_int("batch", 256), 1));
    std::vector<dnn::DenseMatrix> inputs;
    for (const auto& id : ids) {
      const auto model = registry.find(id);
      data::SdgcInputOptions in_opt;
      in_opt.neurons = static_cast<std::size_t>(model->net->neurons());
      in_opt.batch = batch;
      in_opt.seed = model->spec.seed + 1;
      inputs.push_back(data::make_sdgc_input(in_opt).features);
    }

    serve::RouterOptions ropt;
    ropt.serve = opt;
    serve::Router router(registry, ropt);
    serve::LoadScriptRecorder recorder;
    const std::string record_path = args.get("record-script", "");
    bool submit_failed = false;
    std::size_t rejected = 0;
    for (std::size_t j = 0; j < batch && !submit_failed; ++j) {
      for (std::size_t m = 0; m < ids.size(); ++m) {
        const auto& input = inputs[m];
        std::vector<float> features(input.col(j),
                                    input.col(j) + input.rows());
        // The script records the *offered* load (including what admission
        // refuses) — replaying it reproduces the same overload.
        if (!record_path.empty()) {
          recorder.record(ids[m], j, serve::Priority::kStandard,
                          deadline_ms);
        }
        const auto sub =
            router.submit(ids[m], std::move(features), deadline_ms);
        if (!sub.ok()) {
          if (sub.error().code ==
              platform::ErrorCode::kRejectedOverload) {
            ++rejected;  // fast-fail is the contract; keep offering load
            continue;
          }
          std::fprintf(stderr, "error: submit to '%s' failed: %s\n",
                       ids[m].c_str(), sub.error().message.c_str());
          submit_failed = true;
          break;
        }
      }
    }
    const auto report = router.finish();
    if (!record_path.empty()) {
      if (write_recorded_script(recorder, record_path)) {
        std::printf("recorded %zu arrival(s) to %s\n", recorder.size(),
                    record_path.c_str());
      } else {
        std::fprintf(stderr, "failed to write load script to %s\n",
                     record_path.c_str());
      }
    }
    std::printf(
        "served %zu tenant(s) in %.2f ms (%zu shared worker(s), max batch "
        "%zu, packer %s)\n",
        report.tenants.size(), report.wall_ms,
        std::max<std::size_t>(opt.workers, 1), opt.max_batch,
        opt.packer.c_str());
    bool complete = !submit_failed;
    std::size_t shed = 0;
    int max_level = 0;
    for (const auto& [id, tenant] : report.tenants) {
      shed += tenant.shed_requests;
      max_level = std::max(max_level, tenant.max_brownout_level);
      std::printf(
          "  %-16s %5zu req / %4zu round(s) / %4zu batch(es)  fill %.2f  "
          "latency p50 %.2f ms p95 %.2f ms%s\n",
          id.c_str(), tenant.requests, tenant.rounds, tenant.batches,
          tenant.mean_fill(), tenant.latency.p50(), tenant.latency.p95(),
          tenant.complete() ? "" : "  [INCOMPLETE]");
      if (!tenant.complete()) {
        complete = false;
        std::printf(
            "    %zu failed request(s), %zu timed out, %zu shed\n",
            tenant.failed_requests, tenant.timed_out_requests,
            tenant.shed_requests);
      }
    }
    if (opt.admission.enabled) {
      // Intake rejections are overload control *working* — fast-failed
      // before acceptance, so they never flip the exit code. Sheds hit
      // accepted requests and count against complete() like any failure.
      std::printf(
          "overload control: %zu rejected at intake, %zu shed, max "
          "brownout level %d (%s)\n",
          rejected, shed, max_level,
          serve::to_string(static_cast<serve::BrownoutLevel>(max_level)));
    }
    write_observability();
    return complete ? 0 : 3;
  }

  const auto wl = build_workload(args);
  auto engine = build_engine(args, wl);
  wl.net.ensure_csc();

  std::printf("running %s on %s, batch %zu\n", engine->name().c_str(),
              wl.net.name().c_str(), wl.input.cols());

  if (args.has("serve-requests")) {
    // Request-level serving: every input column is submitted as an
    // individual request and the dynamic batcher re-forms engine batches
    // under the max-batch / batch-timeout policy with the chosen packer.
    serve::ServeOptions opt;
    if (!parse_serve_options(args, opt)) return 2;
    // In serve mode --deadline-ms is the per-request latency budget.
    const double deadline_ms =
        std::max(args.get_double("deadline-ms", 0.0), 0.0);

    serve::DynamicBatcher batcher(*engine, wl.net, opt);
    serve::LoadScriptRecorder recorder;
    const std::string record_path = args.get("record-script", "");
    std::size_t rejected = 0;
    for (std::size_t j = 0; j < wl.input.cols(); ++j) {
      std::vector<float> features(wl.input.col(j),
                                  wl.input.col(j) + wl.input.rows());
      if (!record_path.empty()) {
        recorder.record("", j, serve::Priority::kStandard, deadline_ms);
      }
      const auto id = batcher.submit(std::move(features), deadline_ms);
      if (!id.ok()) {
        if (id.error().code == platform::ErrorCode::kRejectedOverload) {
          ++rejected;  // typed fast-fail under overload; keep offering
          continue;
        }
        std::fprintf(stderr, "error: submit failed: %s\n",
                     id.error().message.c_str());
        break;
      }
    }
    const auto report = batcher.finish();
    if (!record_path.empty()) {
      if (write_recorded_script(recorder, record_path)) {
        std::printf("recorded %zu arrival(s) to %s\n", recorder.size(),
                    record_path.c_str());
      } else {
        std::fprintf(stderr, "failed to write load script to %s\n",
                     record_path.c_str());
      }
    }
    std::printf(
        "served %zu request(s) as %zu round(s) / %zu engine batch(es) "
        "(max batch %zu, timeout %.2f ms, packer %s, %zu worker(s))\n",
        report.requests, report.rounds, report.batches, opt.max_batch,
        opt.batch_timeout_ms, opt.packer.c_str(),
        std::max<std::size_t>(opt.workers, 1));
    std::printf(
        "batch fill %.2f, packing similarity %.3f, throughput %.0f "
        "requests/s\n",
        report.mean_fill(), report.mean_similarity(), report.throughput());
    std::printf("queue wait: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
                report.queue_wait.p50(), report.queue_wait.p95(),
                report.queue_wait.p99());
    std::printf("request latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
                report.latency.p50(), report.latency.p95(),
                report.latency.p99());
    if (opt.admission.enabled) {
      std::printf(
          "overload control: %zu rejected at intake, %zu shed, max "
          "brownout level %d (%s)\n",
          rejected, report.shed_requests, report.max_brownout_level,
          serve::to_string(static_cast<serve::BrownoutLevel>(
              report.max_brownout_level)));
    }
    auto& fault_registry = platform::fault::FaultRegistry::global();
    if (report.retries > 0 || report.degraded_batches > 0 ||
        !report.complete() || fault_registry.armed()) {
      std::printf(
          "fault tolerance: %zu retr%s, %zu degraded batch(es), "
          "%zu failed request(s), %zu timed-out request(s)\n",
          report.retries, report.retries == 1 ? "y" : "ies",
          report.degraded_batches, report.failed_requests,
          report.timed_out_requests);
      for (const auto& result : report.results) {
        if (!result.ok()) {
          std::printf("  request %zu failed: [%s] %s\n", result.id,
                      platform::to_string(result.code),
                      result.message.c_str());
        }
      }
      if (fault_registry.armed()) {
        std::printf("  armed faults: %s (seed %llu)\n",
                    fault_registry.spec().c_str(),
                    static_cast<unsigned long long>(fault_registry.seed()));
      }
    }
    write_observability();
    return report.complete() ? 0 : 3;
  }

  if (args.has("stream")) {
    core::ParallelStreamOptions opt;
    opt.batch_size =
        static_cast<std::size_t>(args.get_int("stream", 256));
    opt.workers = static_cast<std::size_t>(
        std::max<std::int64_t>(args.get_int("workers", 1), 0));
    opt.queue_capacity = static_cast<std::size_t>(
        std::max<std::int64_t>(args.get_int("queue", 0), 0));
    opt.max_attempts = static_cast<std::size_t>(
        std::max<std::int64_t>(args.get_int("max-attempts", 5), 1));
    opt.batch_deadline_ms = args.get_double("deadline-ms", 0.0);
    const core::ParallelStreamExecutor executor(opt);
    const auto streamed = executor.run(*engine, wl.net, wl.input);
    std::printf("%zu batches of <= %zu on %zu worker(s): total %.2f ms, "
                "mean %.2f ms, throughput %.0f samples/s\n",
                streamed.batches, opt.batch_size,
                std::max<std::size_t>(opt.workers, 1), streamed.total_ms,
                streamed.mean_batch_ms(),
                streamed.throughput(wl.input.cols()));
    std::printf("batch latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
                streamed.latency.p50(), streamed.latency.p95(),
                streamed.latency.p99());
    // Fault-tolerance ledger: what was retried, degraded, or lost. Lost
    // batches (zeroed output columns) make the run exit nonzero so fault
    // drills in scripts cannot silently pass.
    auto& fault_registry = platform::fault::FaultRegistry::global();
    if (streamed.retries > 0 || streamed.degraded_batches > 0 ||
        !streamed.failures.empty() || fault_registry.armed()) {
      std::printf(
          "fault tolerance: %zu retr%s, %zu degraded batch(es), "
          "%zu lost batch(es)\n",
          streamed.retries, streamed.retries == 1 ? "y" : "ies",
          streamed.degraded_batches, streamed.lost_batches());
      for (const auto& failure : streamed.failures) {
        std::printf("  batch %zu lost after %zu attempt(s): [%s] %s\n",
                    failure.batch, failure.attempts,
                    platform::to_string(failure.code),
                    failure.message.c_str());
      }
      if (fault_registry.armed()) {
        std::printf("  armed faults: %s (seed %llu)\n",
                    fault_registry.spec().c_str(),
                    static_cast<unsigned long long>(fault_registry.seed()));
      }
    }
    write_observability();
    return streamed.complete() ? 0 : 3;
  }

  const auto result = engine->run(wl.net, wl.input);
  std::printf("total: %.2f ms\n", result.total_ms());
  for (const auto& stage : result.stages.entries()) {
    std::printf("  %-20s %10.2f ms\n", stage.name.c_str(), stage.ms);
  }
  for (const auto& [key, value] : result.diagnostics) {
    std::printf("  %-20s %10g\n", key.c_str(), value);
  }
  const auto cats = dnn::sdgc_categories(result.output, 1e-3f);
  std::size_t active = 0;
  for (int c : cats) active += static_cast<std::size_t>(c);
  std::printf("active outputs: %zu / %zu\n", active, cats.size());
  write_observability();
  return 0;
}

int cmd_analyze(const platform::CliArgs& args) {
  const auto wl = build_workload(args);
  std::printf("per-layer trace of %s (batch %zu):\n", wl.net.name().c_str(),
              wl.input.cols());
  std::printf("%6s %10s %10s %10s\n", "layer", "density", "saturated",
              "distinct");
  for (const auto& row : dnn::layer_trace(wl.net, wl.input)) {
    std::printf("%6zu %10.4f %10.4f %10zu\n", row.layer, row.density,
                row.saturated_fraction, row.distinct_columns);
  }
  return 0;
}

void usage() {
  std::printf(
      "usage: snicit_cli <generate|run|analyze> [options]\n"
      "  common:   --neurons N --layers L --batch B --seed S\n"
      "            --mixed-radix | --net PREFIX --input FILE --bias B\n"
      "  generate: --out PREFIX\n"
      "  run:      --engine snicit|xy2021|snig2020|bf2019|autotune|serial|"
      "reference\n"
      "            --threshold T --sample-size S --downsample N --prune P\n"
      "            --auto-threshold --stream CHUNK --workers N --queue C\n"
      "            --spmm auto|gather|gather_simd|gather_threaded|tiled|"
      "scatter|scatter_simd\n"
      "            --spmm-tile W (batch-tile width of the tiled kernel)\n"
      "            --trace-out FILE (chrome://tracing JSON)\n"
      "            --metrics-out FILE (workload counters/series JSON)\n"
      "            --faults SPEC (deterministic fault drill, e.g.\n"
      "              worker_throw:0.05,nan_tile:0.01 — same grammar as\n"
      "              SNICIT_FAULTS) --faults-seed S (default 42)\n"
      "            --max-attempts N (per-batch retry budget, default 5)\n"
      "            --deadline-ms D (per-batch deadline, 0 = none;\n"
      "              in serve mode: per-request latency budget)\n"
      "            --serve-requests [B] (request-level serving: submit\n"
      "              every input column as an individual request; B is the\n"
      "              max engine batch the dynamic batcher packs, default "
      "64)\n"
      "            --batch-timeout MS (serve round fill window, default "
      "2.0)\n"
      "            --packer fifo|similarity (serve batch packing "
      "strategy)\n"
      "            --admission-depth N (overload control: per-tenant cap\n"
      "              on queued requests; refused submits fast-fail with\n"
      "              rejected_overload + a retry-after hint)\n"
      "            --admission-work-ms MS (cap on estimated queued work\n"
      "              priced by the EWMA cost model; either admission flag\n"
      "              enables the controller and the brownout ladder)\n"
      "            --record-script FILE (record the offered submission\n"
      "              stream as a load script replayable by the overload\n"
      "              conformance harness)\n"
      "            --models FILE (multi-model serving: JSON manifest\n"
      "              {\"models\":[{\"id\":...,\"engine\":...,...}]}; routes\n"
      "              --batch requests per model through per-tenant lanes\n"
      "              sharing the --workers budget; needs --serve-requests)\n"
      "  analyze:  (common options only)\n"
      "exit codes: 0 ok, 1 runtime error, 2 usage error, 3 stream lost "
      "batches / failed requests\n");
}

}  // namespace

int main(int argc, char** argv) {
  const platform::CliArgs args(argc, argv);
  const std::string cmd = args.positional(0, "");
  const bool known_cmd =
      cmd == "generate" || cmd == "run" || cmd == "analyze";
  if (known_cmd) {
    const auto unknown = args.unknown_options(known_flags(cmd));
    if (!unknown.empty()) {
      for (const auto& name : unknown) {
        std::fprintf(stderr, "error: unknown flag '--%s' for '%s'\n",
                     name.c_str(), cmd.c_str());
      }
      usage();
      return 2;
    }
  }
  try {
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "analyze") return cmd_analyze(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return cmd.empty() ? 0 : 1;
}
