// snicit_cli — the library's command-line front end. Subcommands:
//
//   generate   build a Radix-Net-style network + input batch and write
//              them as SDGC TSV files
//              --neurons N --layers L --batch B --out PREFIX [--mixed-radix]
//   run        run inference on TSV files (or a generated workload) with a
//              chosen engine and report timing + categories
//              --engine snicit|xy2021|snig2020|bf2019|serial|reference
//              [--net PREFIX --neurons N --layers L --bias B] [--batch B]
//              [--threshold T] [--auto-threshold] [--stream CHUNK]
//              [--trace-out FILE] [--metrics-out FILE]
//   analyze    print the per-layer convergence trace of a workload
//              (Figure 1-style: density, saturation, distinct columns)
//   verify-manifest
//              hash every weight file a model manifest pins (sha256) and
//              report mismatches without loading anything — the
//              pre-deployment integrity gate (exit 4 on any mismatch)
//   serve-replay
//              play a seeded load script through the virtual-clock
//              replayer and print its decision/output digests; with
//              --journal it doubles as the crash victim of the chaos
//              lane (--pace-ms widens the SIGKILL window,
//              --halt-after-batches simulates one)
//   replay-journal
//              recover a crashed serve run from its write-ahead journal:
//              replay the script to completion, partition answered vs
//              resubmitted requests, cross-check journaled output
//              digests (exit 4 on any divergence)
//
// Everything defaults to a generated workload so each subcommand runs out
// of the box: `snicit_cli run --engine snicit`. Unknown flags are hard
// errors (exit 2), never silently ignored: a typo like "--worker 4" would
// otherwise run serial and report the wrong numbers.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/autotune.hpp"
#include "baselines/bf2019.hpp"
#include "baselines/serial.hpp"
#include "baselines/snig2020.hpp"
#include "baselines/xy2021.hpp"
#include "data/synthetic.hpp"
#include "dnn/analysis.hpp"
#include "dnn/reference.hpp"
#include "platform/cli.hpp"
#include "platform/fault_injection.hpp"
#include "platform/metrics.hpp"
#include "platform/shutdown.hpp"
#include "platform/trace.hpp"
#include "radixnet/mixed_radix.hpp"
#include "radixnet/radixnet.hpp"
#include "radixnet/sdgc_io.hpp"
#include "serve/dynamic_batcher.hpp"
#include "serve/journal.hpp"
#include "serve/load_replay.hpp"
#include "serve/load_script.hpp"
#include "serve/router.hpp"
#include "snicit/engine.hpp"
#include "snicit/parallel_stream.hpp"
#include "snicit/stream.hpp"
#include "snicit/warm_cache.hpp"

namespace {

using namespace snicit;

// Flag vocabulary per subcommand (workload flags are shared by all).
const std::vector<std::string> kWorkloadFlags = {
    "neurons", "layers", "batch", "seed", "mixed-radix",
    "net",     "input",  "bias"};

std::vector<std::string> known_flags(const std::string& cmd) {
  std::vector<std::string> flags = kWorkloadFlags;
  if (cmd == "generate") {
    flags.push_back("out");
  } else if (cmd == "run") {
    for (const char* f :
         {"engine", "threshold", "sample-size", "downsample", "prune",
          "auto-threshold", "stream", "workers", "queue", "trace-out",
          "metrics-out", "spmm", "spmm-tile", "faults", "faults-seed",
          "max-attempts", "deadline-ms", "serve-requests", "batch-timeout",
          "packer", "models", "admission-depth", "admission-work-ms",
          "record-script", "journal", "journal-fsync", "self-sigterm",
          "save-state", "restore-state"}) {
      flags.push_back(f);
    }
  } else if (cmd == "serve-replay" || cmd == "replay-journal") {
    for (const char* f :
         {"engine", "threshold", "sample-size", "downsample", "prune",
          "spmm", "spmm-tile", "faults", "faults-seed", "script-shape",
          "requests", "mean-gap", "deadline-ms", "script-seed",
          "serve-requests", "batch-timeout", "packer", "admission-depth",
          "admission-work-ms", "journal", "journal-fsync"}) {
      flags.push_back(f);
    }
    if (cmd == "serve-replay") {
      for (const char* f :
           {"journal-features", "halt-after-batches", "pace-ms"}) {
        flags.push_back(f);
      }
    } else {
      flags.push_back("journal-only");
    }
  } else if (cmd == "verify-manifest") {
    flags.push_back("models");
  }
  return flags;
}

struct Workload {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
};

Workload build_workload(const platform::CliArgs& args) {
  const auto neurons =
      static_cast<sparse::Index>(args.get_int("neurons", 1024));
  const auto layers = static_cast<int>(args.get_int("layers", 48));
  const auto batch = static_cast<std::size_t>(args.get_int("batch", 256));

  dnn::SparseDnn net = [&] {
    if (args.has("net")) {
      const float bias = static_cast<float>(
          args.get_double("bias", radixnet::table1_bias(neurons)));
      return radixnet::load_network_tsv(args.get("net", ""), neurons, layers,
                                        bias, 32.0f);
    }
    if (args.has("mixed-radix")) {
      radixnet::MixedRadixOptions opt;
      opt.radices = radixnet::default_radices(neurons);
      opt.layers = layers;
      return radixnet::make_mixed_radix_net(opt);
    }
    radixnet::RadixNetOptions opt;
    opt.neurons = neurons;
    opt.layers = layers;
    opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    return radixnet::make_radixnet(opt);
  }();

  dnn::DenseMatrix input = [&] {
    if (args.has("input")) {
      return radixnet::load_matrix_tsv(args.get("input", ""),
                                       static_cast<std::size_t>(neurons),
                                       batch);
    }
    data::SdgcInputOptions in_opt;
    in_opt.neurons = static_cast<std::size_t>(neurons);
    in_opt.batch = batch;
    in_opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 42)) + 1;
    return data::make_sdgc_input(in_opt).features;
  }();
  return {std::move(net), std::move(input)};
}

// spMM kernel policy from flags on top of the environment: SNICIT_SPMM /
// SNICIT_SPMM_TILE set the baseline, --spmm / --spmm-tile override it.
sparse::SpmmPolicy cli_spmm_policy(const platform::CliArgs& args) {
  sparse::SpmmPolicy policy = sparse::SpmmPolicy::from_env();
  if (args.has("spmm")) {
    const std::string name = args.get("spmm", "auto");
    if (!sparse::apply_spmm_spec(name, policy)) {
      throw std::invalid_argument(
          "unknown --spmm spec '" + name +
          "' (expected VARIANT[+EPILOGUE] with VARIANT one of "
          "auto|gather|gather_simd|gather_threaded|tiled|scatter|"
          "scatter_simd and EPILOGUE fused|split, or a bare "
          "fused|split)");
    }
  }
  if (args.has("spmm-tile")) {
    policy.tile = static_cast<std::size_t>(
        std::max<std::int64_t>(args.get_int("spmm-tile", 16), 1));
  }
  return policy;
}

std::unique_ptr<dnn::InferenceEngine> build_engine(
    const platform::CliArgs& args, const Workload& wl) {
  const std::string name = args.get("engine", "snicit");
  const sparse::SpmmPolicy policy = cli_spmm_policy(args);
  if (name == "xy2021") {
    baselines::Xy2021Options opt;
    opt.policy = policy;
    return std::make_unique<baselines::Xy2021Engine>(opt);
  }
  if (name == "snig2020") {
    return std::make_unique<baselines::Snig2020Engine>(0, 4, policy);
  }
  if (name == "bf2019") {
    return std::make_unique<baselines::Bf2019Engine>(0, policy);
  }
  if (name == "autotune") {
    baselines::AutotuneOptions opt;
    opt.policy = policy;
    return std::make_unique<baselines::AutotuneEngine>(opt);
  }
  if (name == "serial") return std::make_unique<baselines::SerialEngine>();
  if (name == "reference") return std::make_unique<dnn::ReferenceEngine>();
  if (name != "snicit" && name != "snicit-warm") {
    throw std::invalid_argument(
        "unknown engine '" + name +
        "' (expected snicit|snicit-warm|xy2021|snig2020|bf2019|autotune|"
        "serial|reference)");
  }
  core::SnicitParams params;
  const auto layers = static_cast<int>(wl.net.num_layers());
  params.threshold_layer = static_cast<int>(
      args.get_int("threshold", layers >= 120 ? 30 : layers / 2));
  params.sample_size = static_cast<int>(args.get_int("sample-size", 32));
  params.downsample_dim =
      static_cast<int>(args.get_int("downsample", 16));
  params.prune_threshold =
      static_cast<float>(args.get_double("prune", 0.0));
  params.auto_threshold = args.has("auto-threshold");
  params.spmm = policy;
  if (name == "snicit-warm") {
    if (params.auto_threshold) {
      throw std::invalid_argument(
          "snicit-warm pins the threshold layer (its cached centroids "
          "were captured at one t); --auto-threshold is unsupported");
    }
    return std::make_unique<core::WarmSnicitEngine>(params);
  }
  return std::make_unique<core::SnicitEngine>(params);
}

// Restores a warm engine's centroid cache before serving. Restore
// failures are *typed fallbacks*: a stale, corrupt, or mismatched
// snapshot logs why and the engine cold-starts — crash recovery must
// never turn an optimisation artifact into a new crash. Returns false
// only for the usage error of pointing the flags at a non-warm engine.
bool apply_restore_state(const platform::CliArgs& args,
                         dnn::InferenceEngine& engine,
                         const Workload& wl) {
  const std::string path = args.get("restore-state", "");
  if (path.empty()) return true;
  auto* warm = dynamic_cast<core::WarmSnicitEngine*>(&engine);
  if (warm == nullptr) {
    std::fprintf(stderr,
                 "error: --restore-state requires --engine snicit-warm\n");
    return false;
  }
  const auto restored = warm->restore_state(
      path, static_cast<std::size_t>(wl.net.neurons()));
  if (restored.ok()) {
    std::printf("restored warm state from %s (%zu centroid(s))\n",
                path.c_str(), warm->cache().size());
  } else {
    std::printf("warm-state restore: %s; cold-starting\n",
                restored.error().message.c_str());
  }
  return true;
}

// Saves the warm engine's centroid cache after a run. Save failures are
// reported but never flip the exit code — the run's answers were already
// delivered; only the *next* restart loses the warm start.
bool apply_save_state(const platform::CliArgs& args,
                      dnn::InferenceEngine& engine) {
  const std::string path = args.get("save-state", "");
  if (path.empty()) return true;
  auto* warm = dynamic_cast<core::WarmSnicitEngine*>(&engine);
  if (warm == nullptr) {
    std::fprintf(stderr,
                 "error: --save-state requires --engine snicit-warm\n");
    return false;
  }
  const auto saved = warm->save_state(path);
  if (saved.ok()) {
    std::printf("saved warm state (%zu centroid(s)) to %s\n",
                warm->cache().size(), path.c_str());
  } else {
    std::fprintf(stderr, "warm-state save failed: %s\n",
                 saved.error().message.c_str());
  }
  return true;
}

void usage();

// Serve policy shared by the single-model (--serve-requests) and
// multi-model (--models) paths. Returns false after printing a usage
// error when the packer name is unknown.
bool parse_serve_options(const platform::CliArgs& args,
                         serve::ServeOptions& opt) {
  opt.max_batch = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("serve-requests", 64), 1));
  opt.batch_timeout_ms =
      std::max(args.get_double("batch-timeout", 2.0), 0.0);
  opt.packer = args.get("packer", "similarity");
  opt.workers = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("workers", 1), 0));
  opt.queue_capacity = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("queue", 0), 0));
  opt.max_attempts = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("max-attempts", 5), 1));
  // Overload control: either admission flag switches the controller on.
  // --admission-depth caps queued-but-undispatched requests per tenant;
  // --admission-work-ms caps the estimated backlog the cost model prices.
  if (args.has("admission-depth") || args.has("admission-work-ms")) {
    opt.admission.enabled = true;
    opt.admission.max_queue_depth = static_cast<std::size_t>(
        std::max<std::int64_t>(args.get_int("admission-depth", 256), 0));
    opt.admission.max_backlog_ms =
        std::max(args.get_double("admission-work-ms", 0.0), 0.0);
  }
  const auto packers = serve::known_packers();
  if (std::find(packers.begin(), packers.end(), opt.packer) ==
      packers.end()) {
    std::fprintf(stderr, "error: unknown --packer '%s'\n",
                 opt.packer.c_str());
    usage();
    return false;
  }
  return true;
}

// Opens the write-ahead journal named by --journal (null when the flag
// is absent). Returns false after printing an error: a bad fsync policy
// is a usage error, an unopenable path a runtime error — either way a
// run that *asked* for durability must not silently run without it.
bool open_cli_journal(const platform::CliArgs& args,
                      std::shared_ptr<serve::JournalWriter>& journal,
                      int& exit_code) {
  const std::string path = args.get("journal", "");
  if (path.empty()) return true;
  const auto policy =
      serve::parse_fsync_policy(args.get("journal-fsync", "always"));
  if (!policy.ok()) {
    std::fprintf(stderr, "error: --journal-fsync: %s\n",
                 policy.error().message.c_str());
    exit_code = 2;
    return false;
  }
  auto opened = serve::JournalWriter::open(path, policy.value());
  if (!opened.ok()) {
    std::fprintf(stderr, "error: --journal: %s\n",
                 opened.error().message.c_str());
    exit_code = 1;
    return false;
  }
  journal = std::shared_ptr<serve::JournalWriter>(std::move(opened).value());
  return true;
}

// The seeded script serve-replay and replay-journal share. Both sides of
// the kill-replay harness MUST pass identical script flags: the script
// is the anchor that makes the replay bit-identical to the oracle.
bool cli_load_script(const platform::CliArgs& args,
                     std::size_t sample_pool,
                     serve::LoadScript& script) {
  serve::LoadScriptSpec spec;
  spec.shape = args.get("script-shape", "poisson");
  if (spec.shape != "poisson" && spec.shape != "burst" &&
      spec.shape != "ramp" && spec.shape != "storm") {
    std::fprintf(stderr,
                 "error: unknown --script-shape '%s' (expected "
                 "poisson|burst|ramp|storm)\n",
                 spec.shape.c_str());
    return false;
  }
  spec.tenants = {""};
  spec.requests_per_tenant = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("requests", 64), 1));
  spec.mean_gap_ms = std::max(args.get_double("mean-gap", 1.0), 0.0);
  spec.deadline_ms = std::max(args.get_double("deadline-ms", 0.0), 0.0);
  spec.seed = static_cast<std::uint64_t>(
      std::max<std::int64_t>(args.get_int("script-seed", 1), 0));
  spec.samples = sample_pool;
  script = serve::make_load_script(spec);
  return true;
}

// Virtual-clock replay policy from flags (the serve-replay/replay-journal
// analogue of parse_serve_options).
bool cli_replay_options(const platform::CliArgs& args,
                        serve::ReplayOptions& opt) {
  opt.max_batch = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("serve-requests", 16), 1));
  opt.batch_timeout_ms =
      std::max(args.get_double("batch-timeout", 2.0), 0.0);
  opt.packer = args.get("packer", "similarity");
  if (args.has("admission-depth") || args.has("admission-work-ms")) {
    opt.admission.enabled = true;
    opt.admission.max_queue_depth = static_cast<std::size_t>(
        std::max<std::int64_t>(args.get_int("admission-depth", 256), 0));
    opt.admission.max_backlog_ms =
        std::max(args.get_double("admission-work-ms", 0.0), 0.0);
  }
  const auto packers = serve::known_packers();
  if (std::find(packers.begin(), packers.end(), opt.packer) ==
      packers.end()) {
    std::fprintf(stderr, "error: unknown --packer '%s'\n",
                 opt.packer.c_str());
    return false;
  }
  return true;
}

// Arms --faults/--faults-seed (same grammar as SNICIT_FAULTS); a typo'd
// spec is a usage error, not a silently fault-free drill.
bool arm_cli_faults(const platform::CliArgs& args) {
  if (!args.has("faults")) return true;
  const auto armed = platform::fault::FaultRegistry::global().configure(
      args.get("faults", ""),
      static_cast<std::uint64_t>(args.get_int("faults-seed", 42)));
  if (!armed.ok()) {
    std::fprintf(stderr, "error: --faults: %s\n",
                 armed.error().message.c_str());
    return false;
  }
  return true;
}

// Writes the recorded submission trace in the load-script text form so a
// live traffic shape can be replayed deterministically afterwards.
bool write_recorded_script(const serve::LoadScriptRecorder& recorder,
                           const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string text = recorder.script().to_text();
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

int cmd_generate(const platform::CliArgs& args) {
  const auto wl = build_workload(args);
  const std::string prefix = args.get("out", "snicit-workload");
  std::printf("writing %zu layer files + input to %s-*.tsv\n",
              wl.net.num_layers(), prefix.c_str());
  radixnet::save_network_tsv(wl.net, prefix);
  radixnet::save_matrix_tsv(wl.input, prefix + "-input.tsv");
  std::printf("done: %s (%lld connections)\n", wl.net.name().c_str(),
              static_cast<long long>(wl.net.connections()));
  return 0;
}

void usage();

int cmd_run(const platform::CliArgs& args) {
  // Observability: --trace-out / --metrics-out switch the runtime flags on
  // for this run and dump the capture on exit (chrome://tracing JSON and a
  // counters/gauges/series document respectively).
  const std::string trace_out = args.get("trace-out", "");
  const std::string metrics_out = args.get("metrics-out", "");
  if (!trace_out.empty()) {
    platform::trace::clear();
    platform::trace::set_enabled(true);
  }
  if (!metrics_out.empty()) {
    platform::metrics::MetricsRegistry::global().reset();
    platform::metrics::set_enabled(true);
  }
  const auto write_observability = [&] {
    if (!trace_out.empty()) {
      if (platform::trace::write_chrome_trace(trace_out)) {
        std::printf("wrote %zu trace events to %s\n",
                    platform::trace::event_count(), trace_out.c_str());
      } else {
        std::fprintf(stderr, "failed to write trace to %s\n",
                     trace_out.c_str());
      }
    }
    if (!metrics_out.empty()) {
      auto& registry = platform::metrics::MetricsRegistry::global();
      if (registry.write_json(metrics_out)) {
        std::printf("wrote metrics dump to %s\n", metrics_out.c_str());
      } else {
        std::fprintf(stderr, "failed to write metrics to %s\n",
                     metrics_out.c_str());
      }
    }
  };

  // --faults arms the deterministic fault-injection registry for this
  // run (same spec grammar as SNICIT_FAULTS); a malformed spec is a
  // usage error, not a silently fault-free drill.
  if (!arm_cli_faults(args)) return 2;

  // --self-sigterm N raises SIGTERM after the N-th submission — the
  // deterministic stand-in for an operator's kill that the exit-code
  // regression tests drive. Serving paths install the handler so a real
  // SIGTERM/SIGINT takes the same graceful-drain path.
  const std::int64_t self_sigterm =
      args.has("self-sigterm") ? args.get_int("self-sigterm", 0) : -1;

  if (args.has("models")) {
    // Multi-model serving: load every model of the manifest into a
    // registry and route an interleaved request stream through per-tenant
    // lanes sharing one worker budget.
    if (!args.has("serve-requests")) {
      std::fprintf(stderr,
                   "error: --models requires --serve-requests "
                   "(multi-model serving is request-level)\n");
      usage();
      return 2;
    }
    serve::ServeOptions opt;
    if (!parse_serve_options(args, opt)) return 2;
    int journal_exit = 0;
    std::shared_ptr<serve::JournalWriter> journal;
    if (!open_cli_journal(args, journal, journal_exit)) return journal_exit;
    opt.journal = journal;
    platform::ShutdownController::global().reset();
    platform::ShutdownController::global().install();
    const double deadline_ms =
        std::max(args.get_double("deadline-ms", 0.0), 0.0);

    serve::ModelRegistry registry;
    const auto loaded = registry.load_manifest(args.get("models", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.error().message.c_str());
      // Corrupt/tampered artifacts (sha256 mismatch, bad weight bytes)
      // exit 4 so deploy scripts can tell integrity from a typo'd flag.
      return loaded.error().code == platform::ErrorCode::kBadModelFile ? 4
                                                                       : 2;
    }
    const auto ids = registry.ids();
    std::printf("serving %zu model(s):", ids.size());
    for (const auto& id : ids) {
      const auto model = registry.find(id);
      std::printf(" %s(%s)", id.c_str(), model->prototype->name().c_str());
    }
    std::printf("\n");

    // One synthetic input batch per model, --batch requests each,
    // submitted round-robin so tenants genuinely interleave.
    const auto batch = static_cast<std::size_t>(
        std::max<std::int64_t>(args.get_int("batch", 256), 1));
    std::vector<dnn::DenseMatrix> inputs;
    for (const auto& id : ids) {
      const auto model = registry.find(id);
      data::SdgcInputOptions in_opt;
      in_opt.neurons = static_cast<std::size_t>(model->net->neurons());
      in_opt.batch = batch;
      in_opt.seed = model->spec.seed + 1;
      inputs.push_back(data::make_sdgc_input(in_opt).features);
    }

    serve::RouterOptions ropt;
    ropt.serve = opt;
    serve::Router router(registry, ropt);
    serve::LoadScriptRecorder recorder;
    const std::string record_path = args.get("record-script", "");
    bool submit_failed = false;
    bool intake_closed = false;
    std::size_t rejected = 0;
    std::size_t submitted = 0;
    for (std::size_t j = 0; j < batch && !submit_failed && !intake_closed;
         ++j) {
      for (std::size_t m = 0; m < ids.size(); ++m) {
        if (self_sigterm >= 0 &&
            submitted == static_cast<std::size_t>(self_sigterm)) {
          std::raise(SIGTERM);
        }
        ++submitted;
        const auto& input = inputs[m];
        std::vector<float> features(input.col(j),
                                    input.col(j) + input.rows());
        // The script records the *offered* load (including what admission
        // refuses) — replaying it reproduces the same overload.
        if (!record_path.empty()) {
          recorder.record(ids[m], j, serve::Priority::kStandard,
                          deadline_ms);
        }
        const auto sub =
            router.submit(ids[m], std::move(features), deadline_ms);
        if (!sub.ok()) {
          if (sub.error().code ==
              platform::ErrorCode::kRejectedOverload) {
            ++rejected;  // fast-fail is the contract; keep offering load
            continue;
          }
          if (sub.error().code == platform::ErrorCode::kQueueClosed &&
              platform::ShutdownController::global().requested()) {
            // The signal closed intake mid-stream: stop offering load and
            // let accepted requests drain — the graceful path, not an
            // error.
            intake_closed = true;
            break;
          }
          std::fprintf(stderr, "error: submit to '%s' failed: %s\n",
                       ids[m].c_str(), sub.error().message.c_str());
          submit_failed = true;
          break;
        }
      }
    }
    const auto report = router.finish();
    if (!record_path.empty()) {
      if (write_recorded_script(recorder, record_path)) {
        std::printf("recorded %zu arrival(s) to %s\n", recorder.size(),
                    record_path.c_str());
      } else {
        std::fprintf(stderr, "failed to write load script to %s\n",
                     record_path.c_str());
      }
    }
    std::printf(
        "served %zu tenant(s) in %.2f ms (%zu shared worker(s), max batch "
        "%zu, packer %s)\n",
        report.tenants.size(), report.wall_ms,
        std::max<std::size_t>(opt.workers, 1), opt.max_batch,
        opt.packer.c_str());
    bool complete = !submit_failed;
    std::size_t shed = 0;
    int max_level = 0;
    for (const auto& [id, tenant] : report.tenants) {
      shed += tenant.shed_requests;
      max_level = std::max(max_level, tenant.max_brownout_level);
      std::printf(
          "  %-16s %5zu req / %4zu round(s) / %4zu batch(es)  fill %.2f  "
          "latency p50 %.2f ms p95 %.2f ms%s\n",
          id.c_str(), tenant.requests, tenant.rounds, tenant.batches,
          tenant.mean_fill(), tenant.latency.p50(), tenant.latency.p95(),
          tenant.complete() ? "" : "  [INCOMPLETE]");
      if (!tenant.complete()) {
        complete = false;
        std::printf(
            "    %zu failed request(s), %zu timed out, %zu shed\n",
            tenant.failed_requests, tenant.timed_out_requests,
            tenant.shed_requests);
      }
    }
    if (opt.admission.enabled) {
      // Intake rejections are overload control *working* — fast-failed
      // before acceptance, so they never flip the exit code. Sheds hit
      // accepted requests and count against complete() like any failure.
      std::printf(
          "overload control: %zu rejected at intake, %zu shed, max "
          "brownout level %d (%s)\n",
          rejected, shed, max_level,
          serve::to_string(static_cast<serve::BrownoutLevel>(max_level)));
    }
    std::size_t journal_errors = 0;
    for (const auto& [id, tenant] : report.tenants) {
      journal_errors += tenant.journal_errors;
    }
    if (journal != nullptr) {
      journal->close();
      if (journal_errors > 0) {
        std::fprintf(stderr, "warning: %zu journal append(s) failed\n",
                     journal_errors);
      }
    }
    if (report.drained_on_signal) {
      std::printf("drained on signal: intake closed, accepted requests "
                  "served, report flushed\n");
    }
    write_observability();
    // Precedence: lost work (3) always beats a clean signal drain (5) —
    // an operator's kill that still lost requests must read as loss.
    if (!complete) return 3;
    return report.drained_on_signal ? 5 : 0;
  }

  const auto wl = build_workload(args);
  auto engine = build_engine(args, wl);
  wl.net.ensure_csc();
  if (!apply_restore_state(args, *engine, wl)) return 2;

  std::printf("running %s on %s, batch %zu\n", engine->name().c_str(),
              wl.net.name().c_str(), wl.input.cols());

  if (args.has("serve-requests")) {
    // Request-level serving: every input column is submitted as an
    // individual request and the dynamic batcher re-forms engine batches
    // under the max-batch / batch-timeout policy with the chosen packer.
    serve::ServeOptions opt;
    if (!parse_serve_options(args, opt)) return 2;
    int journal_exit = 0;
    std::shared_ptr<serve::JournalWriter> journal;
    if (!open_cli_journal(args, journal, journal_exit)) return journal_exit;
    opt.journal = journal;
    platform::ShutdownController::global().reset();
    platform::ShutdownController::global().install();
    // In serve mode --deadline-ms is the per-request latency budget.
    const double deadline_ms =
        std::max(args.get_double("deadline-ms", 0.0), 0.0);

    serve::DynamicBatcher batcher(*engine, wl.net, opt);
    serve::LoadScriptRecorder recorder;
    const std::string record_path = args.get("record-script", "");
    std::size_t rejected = 0;
    for (std::size_t j = 0; j < wl.input.cols(); ++j) {
      if (self_sigterm >= 0 &&
          j == static_cast<std::size_t>(self_sigterm)) {
        std::raise(SIGTERM);
      }
      std::vector<float> features(wl.input.col(j),
                                  wl.input.col(j) + wl.input.rows());
      if (!record_path.empty()) {
        recorder.record("", j, serve::Priority::kStandard, deadline_ms);
      }
      const auto id = batcher.submit(std::move(features), deadline_ms);
      if (!id.ok()) {
        if (id.error().code == platform::ErrorCode::kRejectedOverload) {
          ++rejected;  // typed fast-fail under overload; keep offering
          continue;
        }
        if (id.error().code == platform::ErrorCode::kQueueClosed &&
            platform::ShutdownController::global().requested()) {
          break;  // signal closed intake; drain what was accepted
        }
        std::fprintf(stderr, "error: submit failed: %s\n",
                     id.error().message.c_str());
        break;
      }
    }
    const auto report = batcher.finish();
    if (!record_path.empty()) {
      if (write_recorded_script(recorder, record_path)) {
        std::printf("recorded %zu arrival(s) to %s\n", recorder.size(),
                    record_path.c_str());
      } else {
        std::fprintf(stderr, "failed to write load script to %s\n",
                     record_path.c_str());
      }
    }
    std::printf(
        "served %zu request(s) as %zu round(s) / %zu engine batch(es) "
        "(max batch %zu, timeout %.2f ms, packer %s, %zu worker(s))\n",
        report.requests, report.rounds, report.batches, opt.max_batch,
        opt.batch_timeout_ms, opt.packer.c_str(),
        std::max<std::size_t>(opt.workers, 1));
    std::printf(
        "batch fill %.2f, packing similarity %.3f, throughput %.0f "
        "requests/s\n",
        report.mean_fill(), report.mean_similarity(), report.throughput());
    std::printf("queue wait: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
                report.queue_wait.p50(), report.queue_wait.p95(),
                report.queue_wait.p99());
    std::printf("request latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
                report.latency.p50(), report.latency.p95(),
                report.latency.p99());
    if (opt.admission.enabled) {
      std::printf(
          "overload control: %zu rejected at intake, %zu shed, max "
          "brownout level %d (%s)\n",
          rejected, report.shed_requests, report.max_brownout_level,
          serve::to_string(static_cast<serve::BrownoutLevel>(
              report.max_brownout_level)));
    }
    auto& fault_registry = platform::fault::FaultRegistry::global();
    if (report.retries > 0 || report.degraded_batches > 0 ||
        !report.complete() || fault_registry.armed()) {
      std::printf(
          "fault tolerance: %zu retr%s, %zu degraded batch(es), "
          "%zu failed request(s), %zu timed-out request(s)\n",
          report.retries, report.retries == 1 ? "y" : "ies",
          report.degraded_batches, report.failed_requests,
          report.timed_out_requests);
      for (const auto& result : report.results) {
        if (!result.ok()) {
          std::printf("  request %zu failed: [%s] %s\n", result.id,
                      platform::to_string(result.code),
                      result.message.c_str());
        }
      }
      if (fault_registry.armed()) {
        std::printf("  armed faults: %s (seed %llu)\n",
                    fault_registry.spec().c_str(),
                    static_cast<unsigned long long>(fault_registry.seed()));
      }
    }
    if (journal != nullptr) {
      journal->close();
      if (report.journal_errors > 0) {
        std::fprintf(stderr, "warning: %zu journal append(s) failed\n",
                     report.journal_errors);
      }
    }
    if (report.drained_on_signal) {
      std::printf("drained on signal: intake closed, accepted requests "
                  "served, report flushed\n");
    }
    if (!apply_save_state(args, *engine)) return 2;
    write_observability();
    // Precedence: lost work (3) always beats a clean signal drain (5).
    if (!report.complete()) return 3;
    return report.drained_on_signal ? 5 : 0;
  }

  if (args.has("stream")) {
    core::ParallelStreamOptions opt;
    opt.batch_size =
        static_cast<std::size_t>(args.get_int("stream", 256));
    opt.workers = static_cast<std::size_t>(
        std::max<std::int64_t>(args.get_int("workers", 1), 0));
    opt.queue_capacity = static_cast<std::size_t>(
        std::max<std::int64_t>(args.get_int("queue", 0), 0));
    opt.max_attempts = static_cast<std::size_t>(
        std::max<std::int64_t>(args.get_int("max-attempts", 5), 1));
    opt.batch_deadline_ms = args.get_double("deadline-ms", 0.0);
    const core::ParallelStreamExecutor executor(opt);
    const auto streamed = executor.run(*engine, wl.net, wl.input);
    std::printf("%zu batches of <= %zu on %zu worker(s): total %.2f ms, "
                "mean %.2f ms, throughput %.0f samples/s\n",
                streamed.batches, opt.batch_size,
                std::max<std::size_t>(opt.workers, 1), streamed.total_ms,
                streamed.mean_batch_ms(),
                streamed.throughput(wl.input.cols()));
    std::printf("batch latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
                streamed.latency.p50(), streamed.latency.p95(),
                streamed.latency.p99());
    // Fault-tolerance ledger: what was retried, degraded, or lost. Lost
    // batches (zeroed output columns) make the run exit nonzero so fault
    // drills in scripts cannot silently pass.
    auto& fault_registry = platform::fault::FaultRegistry::global();
    if (streamed.retries > 0 || streamed.degraded_batches > 0 ||
        !streamed.failures.empty() || fault_registry.armed()) {
      std::printf(
          "fault tolerance: %zu retr%s, %zu degraded batch(es), "
          "%zu lost batch(es)\n",
          streamed.retries, streamed.retries == 1 ? "y" : "ies",
          streamed.degraded_batches, streamed.lost_batches());
      for (const auto& failure : streamed.failures) {
        std::printf("  batch %zu lost after %zu attempt(s): [%s] %s\n",
                    failure.batch, failure.attempts,
                    platform::to_string(failure.code),
                    failure.message.c_str());
      }
      if (fault_registry.armed()) {
        std::printf("  armed faults: %s (seed %llu)\n",
                    fault_registry.spec().c_str(),
                    static_cast<unsigned long long>(fault_registry.seed()));
      }
    }
    write_observability();
    return streamed.complete() ? 0 : 3;
  }

  const auto result = engine->run(wl.net, wl.input);
  std::printf("total: %.2f ms\n", result.total_ms());
  for (const auto& stage : result.stages.entries()) {
    std::printf("  %-20s %10.2f ms\n", stage.name.c_str(), stage.ms);
  }
  for (const auto& [key, value] : result.diagnostics) {
    std::printf("  %-20s %10g\n", key.c_str(), value);
  }
  const auto cats = dnn::sdgc_categories(result.output, 1e-3f);
  std::size_t active = 0;
  for (int c : cats) active += static_cast<std::size_t>(c);
  std::printf("active outputs: %zu / %zu\n", active, cats.size());
  if (!apply_save_state(args, *engine)) return 2;
  write_observability();
  return 0;
}

int cmd_verify_manifest(const platform::CliArgs& args) {
  if (!args.has("models")) {
    std::fprintf(stderr, "error: verify-manifest requires --models FILE\n");
    usage();
    return 2;
  }
  const std::string path = args.get("models", "");
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open model manifest '%s'\n",
                 path.c_str());
    return 4;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto specs = serve::ModelRegistry::parse_manifest_text(text.str());
  if (!specs.ok()) {
    std::fprintf(stderr, "error: %s\n", specs.error().message.c_str());
    return 4;
  }
  int rc = 0;
  std::size_t pinned = 0;
  for (const auto& spec : specs.value()) {
    const auto verified = serve::ModelRegistry::verify_artifacts(spec);
    if (!verified.ok()) {
      std::printf("%-16s FAIL  %s\n", spec.id.c_str(),
                  verified.error().message.c_str());
      rc = 4;
    } else if (verified.value() == 0) {
      std::printf("%-16s unpinned (no sha256 in manifest)\n",
                  spec.id.c_str());
    } else {
      std::printf("%-16s ok    %zu weight file(s) verified\n",
                  spec.id.c_str(), verified.value());
      ++pinned;
    }
  }
  std::printf("%zu model(s), %zu pinned, %s\n", specs.value().size(),
              pinned, rc == 0 ? "all verified" : "INTEGRITY FAILURE");
  return rc;
}

// Builds the single-tenant replay substrate + script + options the
// serve-replay and replay-journal subcommands share, then hands off.
int cmd_serve_replay(const platform::CliArgs& args) {
  if (!arm_cli_faults(args)) return 2;
  const auto wl = build_workload(args);
  auto engine = build_engine(args, wl);
  wl.net.ensure_csc();

  serve::LoadScript script;
  if (!cli_load_script(args, wl.input.cols(), script)) return 2;
  serve::ReplayOptions opt;
  if (!cli_replay_options(args, opt)) return 2;

  int journal_exit = 0;
  std::shared_ptr<serve::JournalWriter> journal;
  if (!open_cli_journal(args, journal, journal_exit)) return journal_exit;
  opt.journal = journal.get();
  opt.journal_features = args.has("journal-features");
  opt.halt_after_batches = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("halt-after-batches", 0), 0));
  opt.pace_ms = std::max(args.get_double("pace-ms", 0.0), 0.0);

  serve::LoadReplayer replayer(opt);
  replayer.add_tenant("", *engine, wl.net, wl.input);
  const auto report = replayer.run(script);
  if (journal != nullptr) journal->close();

  std::printf(
      "replayed %s script (%zu event(s), seed %llu) on %s: %zu "
      "completed, %zu rejected, %zu shed, %zu batch(es)%s\n",
      script.name.c_str(), script.events.size(),
      static_cast<unsigned long long>(script.seed), engine->name().c_str(),
      report.completed(), report.rejected(), report.shed(),
      report.batches.size(),
      report.halted ? "  [HALTED mid-run]" : "");
  if (report.journal_errors > 0) {
    std::fprintf(stderr, "warning: %zu journal append(s) failed\n",
                 report.journal_errors);
  }
  std::printf("decision digest %016llx\n",
              static_cast<unsigned long long>(report.decision_digest()));
  std::printf("output digest %016llx\n",
              static_cast<unsigned long long>(report.output_digest()));
  return 0;
}

int cmd_replay_journal(const platform::CliArgs& args) {
  if (!args.has("journal")) {
    std::fprintf(stderr, "error: replay-journal requires --journal FILE\n");
    usage();
    return 2;
  }
  if (!arm_cli_faults(args)) return 2;
  const auto contents = serve::read_journal(args.get("journal", ""));
  if (!contents.ok()) {
    std::fprintf(stderr, "error: %s\n", contents.error().message.c_str());
    return 4;
  }
  if (contents.value().truncated_tail) {
    std::printf("journal tail recovered: %s\n",
                contents.value().truncation_reason.c_str());
  }
  std::printf("journal: %zu admit(s), %zu completion(s)\n",
              contents.value().admits.size(),
              contents.value().completes.size());

  const auto wl = build_workload(args);
  auto engine = build_engine(args, wl);
  wl.net.ensure_csc();

  serve::ReplayOptions opt;
  if (!cli_replay_options(args, opt)) return 2;
  std::map<std::string, serve::JournalTenant> tenants;
  tenants[""] = serve::JournalTenant{engine.get(), &wl.net, &wl.input};

  serve::LoadScript script;
  const bool journal_only = args.has("journal-only");
  if (!journal_only &&
      !cli_load_script(args, wl.input.cols(), script)) {
    return 2;
  }
  const auto replayed = serve::replay_journal(
      contents.value(), journal_only ? nullptr : &script, tenants, opt);
  if (!replayed.ok()) {
    std::fprintf(stderr, "error: %s\n", replayed.error().message.c_str());
    return 4;
  }
  const auto& result = replayed.value();
  std::printf(
      "recovered: %zu answered pre-crash (suppressed), %zu resubmitted "
      "and served by replay\n",
      result.suppressed.size(), result.resubmitted.size());
  if (result.digest_mismatches > 0) {
    std::fprintf(stderr,
                 "error: %zu journaled completion(s) disagree with the "
                 "replayed outputs — pre-crash and replay diverged\n",
                 result.digest_mismatches);
  }
  std::printf("decision digest %016llx\n",
              static_cast<unsigned long long>(result.decision_digest()));
  std::printf("output digest %016llx\n",
              static_cast<unsigned long long>(result.output_digest()));
  return result.digest_mismatches == 0 ? 0 : 4;
}

int cmd_analyze(const platform::CliArgs& args) {
  const auto wl = build_workload(args);
  std::printf("per-layer trace of %s (batch %zu):\n", wl.net.name().c_str(),
              wl.input.cols());
  std::printf("%6s %10s %10s %10s\n", "layer", "density", "saturated",
              "distinct");
  for (const auto& row : dnn::layer_trace(wl.net, wl.input)) {
    std::printf("%6zu %10.4f %10.4f %10zu\n", row.layer, row.density,
                row.saturated_fraction, row.distinct_columns);
  }
  return 0;
}

void usage() {
  std::printf(
      "usage: snicit_cli <generate|run|analyze> [options]\n"
      "  common:   --neurons N --layers L --batch B --seed S\n"
      "            --mixed-radix | --net PREFIX --input FILE --bias B\n"
      "  generate: --out PREFIX\n"
      "  run:      --engine snicit|xy2021|snig2020|bf2019|autotune|serial|"
      "reference\n"
      "            --threshold T --sample-size S --downsample N --prune P\n"
      "            --auto-threshold --stream CHUNK --workers N --queue C\n"
      "            --spmm VARIANT[+fused|+split] | fused | split\n"
      "              (VARIANT: auto|gather|gather_simd|gather_threaded|"
      "tiled|scatter|scatter_simd;\n"
      "               the epilogue arm picks fused bias+ReLU stores vs a "
      "separate pass)\n"
      "            --spmm-tile W (batch-tile width of the tiled kernel)\n"
      "            --trace-out FILE (chrome://tracing JSON)\n"
      "            --metrics-out FILE (workload counters/series JSON)\n"
      "            --faults SPEC (deterministic fault drill, e.g.\n"
      "              worker_throw:0.05,nan_tile:0.01 — same grammar as\n"
      "              SNICIT_FAULTS) --faults-seed S (default 42)\n"
      "            --max-attempts N (per-batch retry budget, default 5)\n"
      "            --deadline-ms D (per-batch deadline, 0 = none;\n"
      "              in serve mode: per-request latency budget)\n"
      "            --serve-requests [B] (request-level serving: submit\n"
      "              every input column as an individual request; B is the\n"
      "              max engine batch the dynamic batcher packs, default "
      "64)\n"
      "            --batch-timeout MS (serve round fill window, default "
      "2.0)\n"
      "            --packer fifo|similarity (serve batch packing "
      "strategy)\n"
      "            --admission-depth N (overload control: per-tenant cap\n"
      "              on queued requests; refused submits fast-fail with\n"
      "              rejected_overload + a retry-after hint)\n"
      "            --admission-work-ms MS (cap on estimated queued work\n"
      "              priced by the EWMA cost model; either admission flag\n"
      "              enables the controller and the brownout ladder)\n"
      "            --record-script FILE (record the offered submission\n"
      "              stream as a load script replayable by the overload\n"
      "              conformance harness)\n"
      "            --models FILE (multi-model serving: JSON manifest\n"
      "              {\"models\":[{\"id\":...,\"engine\":...,...}]}; routes\n"
      "              --batch requests per model through per-tenant lanes\n"
      "              sharing the --workers budget; needs --serve-requests)\n"
      "            --journal FILE (write-ahead request journal: admits\n"
      "              before batching, terminal outcomes on resolve)\n"
      "            --journal-fsync none|always (default always)\n"
      "            --self-sigterm N (raise SIGTERM after the N-th\n"
      "              submission: deterministic graceful-drain drill)\n"
      "            --save-state FILE / --restore-state FILE (snicit-warm\n"
      "              centroid-cache snapshot; a stale or corrupt snapshot\n"
      "              cold-starts, never crashes)\n"
      "  analyze:  (common options only)\n"
      "  verify-manifest: --models FILE (hash pinned weight files; exit 4\n"
      "              on any sha256 mismatch or unreadable artifact)\n"
      "  serve-replay: deterministic virtual-clock serve of a seeded load\n"
      "              script; prints decision/output digests\n"
      "            --script-shape poisson|burst|ramp|storm --requests N\n"
      "            --mean-gap MS --script-seed S --deadline-ms D\n"
      "            --serve-requests B --batch-timeout MS --packer P\n"
      "            --admission-depth N --admission-work-ms MS\n"
      "            --journal FILE --journal-fsync none|always\n"
      "            --journal-features (journal each admit's sample column)\n"
      "            --halt-after-batches K (simulated SIGKILL between\n"
      "              rounds) --pace-ms MS (real sleep per batch: widens\n"
      "              the chaos lane's kill window)\n"
      "  replay-journal: recover a crashed serve-replay run\n"
      "            --journal FILE (required) + the SAME workload/script\n"
      "              flags as the crashed run (the script anchors the\n"
      "              bit-identical replay); --journal-only reconstructs\n"
      "              the script from journaled admits instead\n"
      "exit codes: 0 ok, 1 runtime error, 2 usage error, 3 lost batches /"
      " failed requests,\n"
      "            4 integrity failure (sha256/journal digest mismatch), "
      "5 drained on signal\n");
}

}  // namespace

int main(int argc, char** argv) {
  const platform::CliArgs args(argc, argv);
  const std::string cmd = args.positional(0, "");
  const bool known_cmd = cmd == "generate" || cmd == "run" ||
                         cmd == "analyze" || cmd == "verify-manifest" ||
                         cmd == "serve-replay" || cmd == "replay-journal";
  if (known_cmd) {
    const auto unknown = args.unknown_options(known_flags(cmd));
    if (!unknown.empty()) {
      for (const auto& name : unknown) {
        std::fprintf(stderr, "error: unknown flag '--%s' for '%s'\n",
                     name.c_str(), cmd.c_str());
      }
      usage();
      return 2;
    }
  }
  try {
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "verify-manifest") return cmd_verify_manifest(args);
    if (cmd == "serve-replay") return cmd_serve_replay(args);
    if (cmd == "replay-journal") return cmd_replay_journal(args);
  } catch (const std::invalid_argument& e) {
    // Bad flag *values* (unknown engine, malformed spec) are usage
    // errors, same as unknown flags — deploy scripts branch on 2 vs 1.
    std::fprintf(stderr, "error: %s\n", e.what());
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return cmd.empty() ? 0 : 2;
}
