// End-to-end MNIST-format pipeline: exports a synthetic digit corpus as
// real IDX files (the format MNIST ships in), loads them back through the
// IDX codec, trains a sparse classifier, and serves it with SNICIT —
// exactly the flow a user with the real MNIST files on disk would run.
//
//   ./mnist_pipeline [dir]   (default: a temp directory)
#include <cstdio>
#include <filesystem>

#include "data/idx_io.hpp"
#include "data/synthetic.hpp"
#include "snicit/engine.hpp"
#include "train/loss.hpp"
#include "train/metrics.hpp"
#include "train/mlp.hpp"

int main(int argc, char** argv) {
  using namespace snicit;

  const std::filesystem::path dir =
      argc > 1 ? argv[1]
               : std::filesystem::temp_directory_path() / "snicit_mnist";
  std::filesystem::create_directories(dir);

  // 1. Synthesize a digit-like corpus and write it as IDX files.
  data::ClusteredOptions dopt;
  dopt.dim = 784;  // 28 x 28
  dopt.classes = 10;
  dopt.count = 1500;
  dopt.noise = 0.25;
  dopt.class_separation = 0.6;
  const auto corpus = data::make_clustered_dataset(dopt);

  data::IdxImages images;
  images.count = corpus.size();
  images.rows = 28;
  images.cols = 28;
  images.pixels.resize(images.count * 784);
  std::vector<std::uint8_t> labels(corpus.size());
  for (std::size_t j = 0; j < corpus.size(); ++j) {
    for (std::size_t d = 0; d < 784; ++d) {
      images.pixels[j * 784 + d] = static_cast<std::uint8_t>(
          corpus.features.at(d, j) * 255.0f);
    }
    labels[j] = static_cast<std::uint8_t>(corpus.labels[j]);
  }
  const auto img_path = (dir / "train-images-idx3-ubyte").string();
  const auto lbl_path = (dir / "train-labels-idx1-ubyte").string();
  data::save_idx_images(images, img_path);
  data::save_idx_labels(labels, lbl_path);
  std::printf("wrote IDX corpus to %s (%zu images)\n", dir.c_str(),
              images.count);

  // 2. Load through the IDX codec (the path real MNIST files take).
  const auto ds = data::idx_to_dataset(data::load_idx_images(img_path),
                                       data::load_idx_labels(lbl_path));
  const auto train_set = ds.slice(0, 1000);
  const auto test_set = ds.slice(1000, 1500);

  // 3. Train the sparse classifier.
  train::MlpOptions mopt;
  mopt.in_dim = 784;
  mopt.hidden = 128;
  mopt.sparse_layers = 12;
  mopt.density = 0.55;
  train::SparseMlp mlp(mopt);
  train::TrainOptions topt;
  topt.epochs = 8;
  topt.batch_size = 50;
  topt.adam.lr = 1e-3f;
  topt.use_schedule = true;
  topt.schedule.base_lr = 1e-3f;
  topt.schedule.decay = train::LrDecay::kCosine;
  topt.schedule.total_epochs = topt.epochs;
  topt.schedule.warmup_epochs = 1;
  mlp.fit(train_set, topt);

  // 4. Serve with SNICIT and report full classification metrics.
  const auto net = mlp.to_sparse_dnn("mnist-pipeline");
  const auto hidden0 = mlp.hidden_input(test_set.features);
  core::SnicitParams params;
  params.threshold_layer = 6;
  params.sample_size = 128;
  params.downsample_dim = 0;
  params.prune_threshold = 0.05f;
  core::SnicitEngine engine(params);
  const auto result = engine.run(net, hidden0);
  const auto preds =
      train::predict(mlp.logits_from_hidden(result.output));
  const auto cm =
      train::ConfusionMatrix::from_predictions(preds, test_set.labels, 10);

  std::printf("SNICIT inference: %.2f ms for %zu samples\n",
              result.total_ms(), test_set.size());
  std::printf("accuracy %.2f%%, macro-F1 %.3f\n", 100.0 * cm.accuracy(),
              cm.macro_f1());
  std::printf("%5s %10s %10s %10s\n", "class", "precision", "recall", "F1");
  for (int c = 0; c < 10; ++c) {
    std::printf("%5d %10.3f %10.3f %10.3f\n", c, cm.precision(c),
                cm.recall(c), cm.f1(c));
  }
  return cm.accuracy() > 0.5 ? 0 : 1;
}
