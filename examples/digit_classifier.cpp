// Medium-scale classifier workflow (the paper's §4.2 scenario): train a
// sparse MLP on a clustered digit-like dataset, export its hidden stack
// as a SparseDnn, and serve inference through SNICIT vs SNIG-2020,
// reporting accuracy and latency.
//
//   ./digit_classifier [hidden] [layers] [epochs]
#include <cstdio>
#include <cstdlib>

#include "baselines/snig2020.hpp"
#include "data/synthetic.hpp"
#include "platform/timer.hpp"
#include "snicit/engine.hpp"
#include "train/loss.hpp"
#include "train/mlp.hpp"

int main(int argc, char** argv) {
  using namespace snicit;

  const std::size_t hidden =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 128;
  const std::size_t layers =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 12;
  const int epochs = argc > 3 ? std::atoi(argv[3]) : 10;

  // A 784-dimensional, 10-class MNIST stand-in with genuine class overlap.
  data::ClusteredOptions dopt;
  dopt.dim = 784;
  dopt.classes = 10;
  dopt.count = 2100;
  dopt.noise = 0.30;
  dopt.flip_prob = 0.10;
  dopt.class_separation = 0.65;
  const auto corpus = data::make_clustered_dataset(dopt);
  const auto train_set = corpus.slice(0, 1100);
  const auto test_set = corpus.slice(1100, 2100);

  std::printf("training %zu-%zu sparse MLP (%d epochs) on %zu samples...\n",
              hidden, layers, epochs, train_set.size());
  train::MlpOptions mopt;
  mopt.in_dim = 784;
  mopt.hidden = hidden;
  mopt.sparse_layers = layers;
  mopt.density = 0.55;
  train::SparseMlp mlp(mopt);

  train::TrainOptions topt;
  topt.epochs = epochs;
  topt.batch_size = 50;
  topt.adam.lr = 1e-3f;
  platform::Stopwatch train_clock;
  const auto history = mlp.fit(train_set, topt);
  std::printf("trained in %.1f s, final loss %.4f\n",
              train_clock.elapsed_ms() / 1000.0,
              history.loss_per_epoch.back());

  const double exact_acc = mlp.evaluate(test_set);
  std::printf("exact test accuracy: %.2f%% (hidden density %.0f%%)\n",
              100.0 * exact_acc, 100.0 * mlp.hidden_density());

  // Serve the sparse hidden stack through the engines.
  const auto net = mlp.to_sparse_dnn("digit-classifier");
  const auto hidden0 = mlp.hidden_input(test_set.features);
  net.ensure_csc();

  baselines::Snig2020Engine snig;
  const auto r_snig = snig.run(net, hidden0);
  const double snig_acc = train::accuracy(
      mlp.logits_from_hidden(r_snig.output), test_set.labels);

  core::SnicitParams params;
  params.threshold_layer = static_cast<int>(layers / 2) & ~1;
  params.sample_size = 128;
  params.downsample_dim = 0;
  params.prune_threshold = 0.05f;
  core::SnicitEngine snicit(params);
  const auto r_snicit = snicit.run(net, hidden0);
  const double snicit_acc = train::accuracy(
      mlp.logits_from_hidden(r_snicit.output), test_set.labels);

  std::printf("\n%-10s %10s %10s\n", "engine", "ms", "accuracy");
  std::printf("%-10s %10.2f %9.2f%%\n", "SNIG-2020", r_snig.total_ms(),
              100.0 * snig_acc);
  std::printf("%-10s %10.2f %9.2f%%   (%.2fx, accuracy loss %.2f%%)\n",
              "SNICIT", r_snicit.total_ms(), 100.0 * snicit_acc,
              r_snig.total_ms() / r_snicit.total_ms(),
              100.0 * (snig_acc - snicit_acc));
  return 0;
}
