file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_formats.dir/test_sparse_formats.cpp.o"
  "CMakeFiles/test_sparse_formats.dir/test_sparse_formats.cpp.o.d"
  "test_sparse_formats"
  "test_sparse_formats.pdb"
  "test_sparse_formats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
