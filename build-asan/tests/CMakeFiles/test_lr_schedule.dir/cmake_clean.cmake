file(REMOVE_RECURSE
  "CMakeFiles/test_lr_schedule.dir/test_lr_schedule.cpp.o"
  "CMakeFiles/test_lr_schedule.dir/test_lr_schedule.cpp.o.d"
  "test_lr_schedule"
  "test_lr_schedule.pdb"
  "test_lr_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lr_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
