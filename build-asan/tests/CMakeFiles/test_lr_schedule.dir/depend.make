# Empty dependencies file for test_lr_schedule.
# This may be replaced when dependencies are built.
