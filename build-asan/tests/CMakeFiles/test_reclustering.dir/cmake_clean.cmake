file(REMOVE_RECURSE
  "CMakeFiles/test_reclustering.dir/test_reclustering.cpp.o"
  "CMakeFiles/test_reclustering.dir/test_reclustering.cpp.o.d"
  "test_reclustering"
  "test_reclustering.pdb"
  "test_reclustering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reclustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
