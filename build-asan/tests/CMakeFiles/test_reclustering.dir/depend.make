# Empty dependencies file for test_reclustering.
# This may be replaced when dependencies are built.
