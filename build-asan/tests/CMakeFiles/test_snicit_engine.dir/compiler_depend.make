# Empty compiler generated dependencies file for test_snicit_engine.
# This may be replaced when dependencies are built.
