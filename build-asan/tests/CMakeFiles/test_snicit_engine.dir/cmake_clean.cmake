file(REMOVE_RECURSE
  "CMakeFiles/test_snicit_engine.dir/test_snicit_engine.cpp.o"
  "CMakeFiles/test_snicit_engine.dir/test_snicit_engine.cpp.o.d"
  "test_snicit_engine"
  "test_snicit_engine.pdb"
  "test_snicit_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snicit_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
