# Empty compiler generated dependencies file for test_sample_prune.
# This may be replaced when dependencies are built.
