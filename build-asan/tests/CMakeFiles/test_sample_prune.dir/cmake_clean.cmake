file(REMOVE_RECURSE
  "CMakeFiles/test_sample_prune.dir/test_sample_prune.cpp.o"
  "CMakeFiles/test_sample_prune.dir/test_sample_prune.cpp.o.d"
  "test_sample_prune"
  "test_sample_prune.pdb"
  "test_sample_prune[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sample_prune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
