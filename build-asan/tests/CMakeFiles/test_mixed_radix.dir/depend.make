# Empty dependencies file for test_mixed_radix.
# This may be replaced when dependencies are built.
