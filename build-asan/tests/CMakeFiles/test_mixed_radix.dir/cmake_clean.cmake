file(REMOVE_RECURSE
  "CMakeFiles/test_mixed_radix.dir/test_mixed_radix.cpp.o"
  "CMakeFiles/test_mixed_radix.dir/test_mixed_radix.cpp.o.d"
  "test_mixed_radix"
  "test_mixed_radix.pdb"
  "test_mixed_radix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixed_radix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
