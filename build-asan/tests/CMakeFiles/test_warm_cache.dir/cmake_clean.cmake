file(REMOVE_RECURSE
  "CMakeFiles/test_warm_cache.dir/test_warm_cache.cpp.o"
  "CMakeFiles/test_warm_cache.dir/test_warm_cache.cpp.o.d"
  "test_warm_cache"
  "test_warm_cache.pdb"
  "test_warm_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_warm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
