# Empty dependencies file for test_parallel_stream.
# This may be replaced when dependencies are built.
