file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_stream.dir/test_parallel_stream.cpp.o"
  "CMakeFiles/test_parallel_stream.dir/test_parallel_stream.cpp.o.d"
  "test_parallel_stream"
  "test_parallel_stream.pdb"
  "test_parallel_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
