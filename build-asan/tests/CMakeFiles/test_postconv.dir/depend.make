# Empty dependencies file for test_postconv.
# This may be replaced when dependencies are built.
