file(REMOVE_RECURSE
  "CMakeFiles/test_postconv.dir/test_postconv.cpp.o"
  "CMakeFiles/test_postconv.dir/test_postconv.cpp.o.d"
  "test_postconv"
  "test_postconv.pdb"
  "test_postconv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_postconv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
