# Empty dependencies file for test_ell.
# This may be replaced when dependencies are built.
