file(REMOVE_RECURSE
  "CMakeFiles/test_ell.dir/test_ell.cpp.o"
  "CMakeFiles/test_ell.dir/test_ell.cpp.o.d"
  "test_ell"
  "test_ell.pdb"
  "test_ell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
