file(REMOVE_RECURSE
  "CMakeFiles/test_quantized.dir/test_quantized.cpp.o"
  "CMakeFiles/test_quantized.dir/test_quantized.cpp.o.d"
  "test_quantized"
  "test_quantized.pdb"
  "test_quantized[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
