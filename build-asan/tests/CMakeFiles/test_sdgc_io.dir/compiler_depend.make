# Empty compiler generated dependencies file for test_sdgc_io.
# This may be replaced when dependencies are built.
