file(REMOVE_RECURSE
  "CMakeFiles/test_sdgc_io.dir/test_sdgc_io.cpp.o"
  "CMakeFiles/test_sdgc_io.dir/test_sdgc_io.cpp.o.d"
  "test_sdgc_io"
  "test_sdgc_io.pdb"
  "test_sdgc_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdgc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
