# Empty dependencies file for test_radixnet.
# This may be replaced when dependencies are built.
