file(REMOVE_RECURSE
  "CMakeFiles/test_radixnet.dir/test_radixnet.cpp.o"
  "CMakeFiles/test_radixnet.dir/test_radixnet.cpp.o.d"
  "test_radixnet"
  "test_radixnet.pdb"
  "test_radixnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radixnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
