# Empty dependencies file for test_serial_baseline.
# This may be replaced when dependencies are built.
