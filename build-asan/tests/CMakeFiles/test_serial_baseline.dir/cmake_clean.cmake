file(REMOVE_RECURSE
  "CMakeFiles/test_serial_baseline.dir/test_serial_baseline.cpp.o"
  "CMakeFiles/test_serial_baseline.dir/test_serial_baseline.cpp.o.d"
  "test_serial_baseline"
  "test_serial_baseline.pdb"
  "test_serial_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serial_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
