file(REMOVE_RECURSE
  "CMakeFiles/test_dense_matrix.dir/test_dense_matrix.cpp.o"
  "CMakeFiles/test_dense_matrix.dir/test_dense_matrix.cpp.o.d"
  "test_dense_matrix"
  "test_dense_matrix.pdb"
  "test_dense_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
