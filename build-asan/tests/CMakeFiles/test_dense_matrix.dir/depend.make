# Empty dependencies file for test_dense_matrix.
# This may be replaced when dependencies are built.
