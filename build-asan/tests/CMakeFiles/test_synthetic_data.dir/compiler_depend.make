# Empty compiler generated dependencies file for test_synthetic_data.
# This may be replaced when dependencies are built.
