file(REMOVE_RECURSE
  "CMakeFiles/test_synthetic_data.dir/test_synthetic_data.cpp.o"
  "CMakeFiles/test_synthetic_data.dir/test_synthetic_data.cpp.o.d"
  "test_synthetic_data"
  "test_synthetic_data.pdb"
  "test_synthetic_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synthetic_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
