file(REMOVE_RECURSE
  "CMakeFiles/test_challenge.dir/test_challenge.cpp.o"
  "CMakeFiles/test_challenge.dir/test_challenge.cpp.o.d"
  "test_challenge"
  "test_challenge.pdb"
  "test_challenge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_challenge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
