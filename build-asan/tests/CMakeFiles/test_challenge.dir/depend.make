# Empty dependencies file for test_challenge.
# This may be replaced when dependencies are built.
