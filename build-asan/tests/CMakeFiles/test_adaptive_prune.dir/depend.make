# Empty dependencies file for test_adaptive_prune.
# This may be replaced when dependencies are built.
