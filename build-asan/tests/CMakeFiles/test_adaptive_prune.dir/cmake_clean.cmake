file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_prune.dir/test_adaptive_prune.cpp.o"
  "CMakeFiles/test_adaptive_prune.dir/test_adaptive_prune.cpp.o.d"
  "test_adaptive_prune"
  "test_adaptive_prune.pdb"
  "test_adaptive_prune[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_prune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
