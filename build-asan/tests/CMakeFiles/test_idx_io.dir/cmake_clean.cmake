file(REMOVE_RECURSE
  "CMakeFiles/test_idx_io.dir/test_idx_io.cpp.o"
  "CMakeFiles/test_idx_io.dir/test_idx_io.cpp.o.d"
  "test_idx_io"
  "test_idx_io.pdb"
  "test_idx_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idx_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
