# Empty dependencies file for test_idx_io.
# This may be replaced when dependencies are built.
