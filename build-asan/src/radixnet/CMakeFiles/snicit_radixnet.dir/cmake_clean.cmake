file(REMOVE_RECURSE
  "../../lib/libsnicit_radixnet.a"
  "../../lib/libsnicit_radixnet.pdb"
  "CMakeFiles/snicit_radixnet.dir/challenge.cpp.o"
  "CMakeFiles/snicit_radixnet.dir/challenge.cpp.o.d"
  "CMakeFiles/snicit_radixnet.dir/mixed_radix.cpp.o"
  "CMakeFiles/snicit_radixnet.dir/mixed_radix.cpp.o.d"
  "CMakeFiles/snicit_radixnet.dir/radixnet.cpp.o"
  "CMakeFiles/snicit_radixnet.dir/radixnet.cpp.o.d"
  "CMakeFiles/snicit_radixnet.dir/sdgc_io.cpp.o"
  "CMakeFiles/snicit_radixnet.dir/sdgc_io.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicit_radixnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
