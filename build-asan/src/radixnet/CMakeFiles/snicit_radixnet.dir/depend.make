# Empty dependencies file for snicit_radixnet.
# This may be replaced when dependencies are built.
