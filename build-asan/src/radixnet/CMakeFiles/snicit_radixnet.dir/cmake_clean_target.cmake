file(REMOVE_RECURSE
  "../../lib/libsnicit_radixnet.a"
)
