file(REMOVE_RECURSE
  "../../lib/libsnicit_train.a"
)
