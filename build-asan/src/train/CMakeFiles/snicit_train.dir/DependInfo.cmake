
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/adam.cpp" "src/train/CMakeFiles/snicit_train.dir/adam.cpp.o" "gcc" "src/train/CMakeFiles/snicit_train.dir/adam.cpp.o.d"
  "/root/repo/src/train/linear.cpp" "src/train/CMakeFiles/snicit_train.dir/linear.cpp.o" "gcc" "src/train/CMakeFiles/snicit_train.dir/linear.cpp.o.d"
  "/root/repo/src/train/loss.cpp" "src/train/CMakeFiles/snicit_train.dir/loss.cpp.o" "gcc" "src/train/CMakeFiles/snicit_train.dir/loss.cpp.o.d"
  "/root/repo/src/train/lr_schedule.cpp" "src/train/CMakeFiles/snicit_train.dir/lr_schedule.cpp.o" "gcc" "src/train/CMakeFiles/snicit_train.dir/lr_schedule.cpp.o.d"
  "/root/repo/src/train/metrics.cpp" "src/train/CMakeFiles/snicit_train.dir/metrics.cpp.o" "gcc" "src/train/CMakeFiles/snicit_train.dir/metrics.cpp.o.d"
  "/root/repo/src/train/mlp.cpp" "src/train/CMakeFiles/snicit_train.dir/mlp.cpp.o" "gcc" "src/train/CMakeFiles/snicit_train.dir/mlp.cpp.o.d"
  "/root/repo/src/train/serialize.cpp" "src/train/CMakeFiles/snicit_train.dir/serialize.cpp.o" "gcc" "src/train/CMakeFiles/snicit_train.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/dnn/CMakeFiles/snicit_dnn.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/data/CMakeFiles/snicit_data.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sparse/CMakeFiles/snicit_sparse.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/platform/CMakeFiles/snicit_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
