file(REMOVE_RECURSE
  "../../lib/libsnicit_train.a"
  "../../lib/libsnicit_train.pdb"
  "CMakeFiles/snicit_train.dir/adam.cpp.o"
  "CMakeFiles/snicit_train.dir/adam.cpp.o.d"
  "CMakeFiles/snicit_train.dir/linear.cpp.o"
  "CMakeFiles/snicit_train.dir/linear.cpp.o.d"
  "CMakeFiles/snicit_train.dir/loss.cpp.o"
  "CMakeFiles/snicit_train.dir/loss.cpp.o.d"
  "CMakeFiles/snicit_train.dir/lr_schedule.cpp.o"
  "CMakeFiles/snicit_train.dir/lr_schedule.cpp.o.d"
  "CMakeFiles/snicit_train.dir/metrics.cpp.o"
  "CMakeFiles/snicit_train.dir/metrics.cpp.o.d"
  "CMakeFiles/snicit_train.dir/mlp.cpp.o"
  "CMakeFiles/snicit_train.dir/mlp.cpp.o.d"
  "CMakeFiles/snicit_train.dir/serialize.cpp.o"
  "CMakeFiles/snicit_train.dir/serialize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicit_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
