# Empty dependencies file for snicit_train.
# This may be replaced when dependencies are built.
