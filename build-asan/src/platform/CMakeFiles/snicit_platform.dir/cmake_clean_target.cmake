file(REMOVE_RECURSE
  "../../lib/libsnicit_platform.a"
)
