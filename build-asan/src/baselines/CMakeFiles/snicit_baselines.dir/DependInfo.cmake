
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/autotune.cpp" "src/baselines/CMakeFiles/snicit_baselines.dir/autotune.cpp.o" "gcc" "src/baselines/CMakeFiles/snicit_baselines.dir/autotune.cpp.o.d"
  "/root/repo/src/baselines/bf2019.cpp" "src/baselines/CMakeFiles/snicit_baselines.dir/bf2019.cpp.o" "gcc" "src/baselines/CMakeFiles/snicit_baselines.dir/bf2019.cpp.o.d"
  "/root/repo/src/baselines/serial.cpp" "src/baselines/CMakeFiles/snicit_baselines.dir/serial.cpp.o" "gcc" "src/baselines/CMakeFiles/snicit_baselines.dir/serial.cpp.o.d"
  "/root/repo/src/baselines/snig2020.cpp" "src/baselines/CMakeFiles/snicit_baselines.dir/snig2020.cpp.o" "gcc" "src/baselines/CMakeFiles/snicit_baselines.dir/snig2020.cpp.o.d"
  "/root/repo/src/baselines/xy2021.cpp" "src/baselines/CMakeFiles/snicit_baselines.dir/xy2021.cpp.o" "gcc" "src/baselines/CMakeFiles/snicit_baselines.dir/xy2021.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/dnn/CMakeFiles/snicit_dnn.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sparse/CMakeFiles/snicit_sparse.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/platform/CMakeFiles/snicit_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
