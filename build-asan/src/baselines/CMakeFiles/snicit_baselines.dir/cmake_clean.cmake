file(REMOVE_RECURSE
  "../../lib/libsnicit_baselines.a"
  "../../lib/libsnicit_baselines.pdb"
  "CMakeFiles/snicit_baselines.dir/autotune.cpp.o"
  "CMakeFiles/snicit_baselines.dir/autotune.cpp.o.d"
  "CMakeFiles/snicit_baselines.dir/bf2019.cpp.o"
  "CMakeFiles/snicit_baselines.dir/bf2019.cpp.o.d"
  "CMakeFiles/snicit_baselines.dir/serial.cpp.o"
  "CMakeFiles/snicit_baselines.dir/serial.cpp.o.d"
  "CMakeFiles/snicit_baselines.dir/snig2020.cpp.o"
  "CMakeFiles/snicit_baselines.dir/snig2020.cpp.o.d"
  "CMakeFiles/snicit_baselines.dir/xy2021.cpp.o"
  "CMakeFiles/snicit_baselines.dir/xy2021.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicit_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
