file(REMOVE_RECURSE
  "../../lib/libsnicit_baselines.a"
)
