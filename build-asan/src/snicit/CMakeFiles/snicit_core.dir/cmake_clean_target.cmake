file(REMOVE_RECURSE
  "../../lib/libsnicit_core.a"
)
