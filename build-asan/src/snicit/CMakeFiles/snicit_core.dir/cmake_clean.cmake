file(REMOVE_RECURSE
  "../../lib/libsnicit_core.a"
  "../../lib/libsnicit_core.pdb"
  "CMakeFiles/snicit_core.dir/adaptive_prune.cpp.o"
  "CMakeFiles/snicit_core.dir/adaptive_prune.cpp.o.d"
  "CMakeFiles/snicit_core.dir/convergence.cpp.o"
  "CMakeFiles/snicit_core.dir/convergence.cpp.o.d"
  "CMakeFiles/snicit_core.dir/convert.cpp.o"
  "CMakeFiles/snicit_core.dir/convert.cpp.o.d"
  "CMakeFiles/snicit_core.dir/engine.cpp.o"
  "CMakeFiles/snicit_core.dir/engine.cpp.o.d"
  "CMakeFiles/snicit_core.dir/parallel_stream.cpp.o"
  "CMakeFiles/snicit_core.dir/parallel_stream.cpp.o.d"
  "CMakeFiles/snicit_core.dir/postconv.cpp.o"
  "CMakeFiles/snicit_core.dir/postconv.cpp.o.d"
  "CMakeFiles/snicit_core.dir/recovery.cpp.o"
  "CMakeFiles/snicit_core.dir/recovery.cpp.o.d"
  "CMakeFiles/snicit_core.dir/reorder.cpp.o"
  "CMakeFiles/snicit_core.dir/reorder.cpp.o.d"
  "CMakeFiles/snicit_core.dir/sample_prune.cpp.o"
  "CMakeFiles/snicit_core.dir/sample_prune.cpp.o.d"
  "CMakeFiles/snicit_core.dir/sampling.cpp.o"
  "CMakeFiles/snicit_core.dir/sampling.cpp.o.d"
  "CMakeFiles/snicit_core.dir/stream.cpp.o"
  "CMakeFiles/snicit_core.dir/stream.cpp.o.d"
  "CMakeFiles/snicit_core.dir/warm_cache.cpp.o"
  "CMakeFiles/snicit_core.dir/warm_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
