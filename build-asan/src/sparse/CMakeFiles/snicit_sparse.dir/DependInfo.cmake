
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/coo.cpp" "src/sparse/CMakeFiles/snicit_sparse.dir/coo.cpp.o" "gcc" "src/sparse/CMakeFiles/snicit_sparse.dir/coo.cpp.o.d"
  "/root/repo/src/sparse/csc.cpp" "src/sparse/CMakeFiles/snicit_sparse.dir/csc.cpp.o" "gcc" "src/sparse/CMakeFiles/snicit_sparse.dir/csc.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/snicit_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/snicit_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/dense_matrix.cpp" "src/sparse/CMakeFiles/snicit_sparse.dir/dense_matrix.cpp.o" "gcc" "src/sparse/CMakeFiles/snicit_sparse.dir/dense_matrix.cpp.o.d"
  "/root/repo/src/sparse/ell.cpp" "src/sparse/CMakeFiles/snicit_sparse.dir/ell.cpp.o" "gcc" "src/sparse/CMakeFiles/snicit_sparse.dir/ell.cpp.o.d"
  "/root/repo/src/sparse/quantized.cpp" "src/sparse/CMakeFiles/snicit_sparse.dir/quantized.cpp.o" "gcc" "src/sparse/CMakeFiles/snicit_sparse.dir/quantized.cpp.o.d"
  "/root/repo/src/sparse/spgemm.cpp" "src/sparse/CMakeFiles/snicit_sparse.dir/spgemm.cpp.o" "gcc" "src/sparse/CMakeFiles/snicit_sparse.dir/spgemm.cpp.o.d"
  "/root/repo/src/sparse/spmm.cpp" "src/sparse/CMakeFiles/snicit_sparse.dir/spmm.cpp.o" "gcc" "src/sparse/CMakeFiles/snicit_sparse.dir/spmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/platform/CMakeFiles/snicit_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
