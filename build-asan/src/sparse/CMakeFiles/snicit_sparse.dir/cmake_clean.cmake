file(REMOVE_RECURSE
  "../../lib/libsnicit_sparse.a"
  "../../lib/libsnicit_sparse.pdb"
  "CMakeFiles/snicit_sparse.dir/coo.cpp.o"
  "CMakeFiles/snicit_sparse.dir/coo.cpp.o.d"
  "CMakeFiles/snicit_sparse.dir/csc.cpp.o"
  "CMakeFiles/snicit_sparse.dir/csc.cpp.o.d"
  "CMakeFiles/snicit_sparse.dir/csr.cpp.o"
  "CMakeFiles/snicit_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/snicit_sparse.dir/dense_matrix.cpp.o"
  "CMakeFiles/snicit_sparse.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/snicit_sparse.dir/ell.cpp.o"
  "CMakeFiles/snicit_sparse.dir/ell.cpp.o.d"
  "CMakeFiles/snicit_sparse.dir/quantized.cpp.o"
  "CMakeFiles/snicit_sparse.dir/quantized.cpp.o.d"
  "CMakeFiles/snicit_sparse.dir/spgemm.cpp.o"
  "CMakeFiles/snicit_sparse.dir/spgemm.cpp.o.d"
  "CMakeFiles/snicit_sparse.dir/spmm.cpp.o"
  "CMakeFiles/snicit_sparse.dir/spmm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicit_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
