file(REMOVE_RECURSE
  "../../lib/libsnicit_sparse.a"
)
