file(REMOVE_RECURSE
  "../../lib/libsnicit_data.a"
)
