file(REMOVE_RECURSE
  "../../lib/libsnicit_data.a"
  "../../lib/libsnicit_data.pdb"
  "CMakeFiles/snicit_data.dir/idx_io.cpp.o"
  "CMakeFiles/snicit_data.dir/idx_io.cpp.o.d"
  "CMakeFiles/snicit_data.dir/synthetic.cpp.o"
  "CMakeFiles/snicit_data.dir/synthetic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicit_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
