# Empty dependencies file for snicit_dnn.
# This may be replaced when dependencies are built.
