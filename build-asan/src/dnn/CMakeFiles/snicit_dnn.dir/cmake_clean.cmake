file(REMOVE_RECURSE
  "../../lib/libsnicit_dnn.a"
  "../../lib/libsnicit_dnn.pdb"
  "CMakeFiles/snicit_dnn.dir/analysis.cpp.o"
  "CMakeFiles/snicit_dnn.dir/analysis.cpp.o.d"
  "CMakeFiles/snicit_dnn.dir/builder.cpp.o"
  "CMakeFiles/snicit_dnn.dir/builder.cpp.o.d"
  "CMakeFiles/snicit_dnn.dir/engine.cpp.o"
  "CMakeFiles/snicit_dnn.dir/engine.cpp.o.d"
  "CMakeFiles/snicit_dnn.dir/harness.cpp.o"
  "CMakeFiles/snicit_dnn.dir/harness.cpp.o.d"
  "CMakeFiles/snicit_dnn.dir/memory.cpp.o"
  "CMakeFiles/snicit_dnn.dir/memory.cpp.o.d"
  "CMakeFiles/snicit_dnn.dir/reference.cpp.o"
  "CMakeFiles/snicit_dnn.dir/reference.cpp.o.d"
  "CMakeFiles/snicit_dnn.dir/sparse_dnn.cpp.o"
  "CMakeFiles/snicit_dnn.dir/sparse_dnn.cpp.o.d"
  "CMakeFiles/snicit_dnn.dir/validate.cpp.o"
  "CMakeFiles/snicit_dnn.dir/validate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicit_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
