file(REMOVE_RECURSE
  "../../lib/libsnicit_dnn.a"
)
