#!/usr/bin/env sh
# CI serve lane: run the request-level serving suites (`ctest -L serve`),
# the multi-model registry/router suites (`-L multimodel`), the
# overload-control conformance suites (`-L overload`), and the fault
# drills they share machinery with (`-L fault`) in a build instrumented
# with TSan, so the concurrency surface — client threads in submit(), the
# server thread's collect/pack/execute loop, the router thread's
# round-robin lane sweep with hot add/swap/remove, the engine-pool
# handoff, close/drain shutdown — is exercised with data-race checking
# on.
#
#   scripts/ci_serve_lane.sh [build-dir]     (default: build-serve)
#
# The lane uses its own tree: sanitized and plain objects don't mix.
# Exits nonzero if configure, build, or any serve/fault test fails.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-serve"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSNICIT_SANITIZE=thread \
  -DSNICIT_BUILD_BENCH=OFF \
  -DSNICIT_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

# halt_on_error: a race report must fail the lane, not scroll past it.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$build_dir" -L "serve|fault|multimodel|overload" --output-on-failure

echo "serve lane clean: all serve/fault/multimodel/overload-labelled tests passed under TSan"
