#!/usr/bin/env sh
# CI fault lane: run every fault-injection drill and degradation suite
# (`ctest -L fault`) in a build instrumented with ASan+UBSan, so the
# recovery paths — worker retries, queue close/drain, the SNICIT dense
# fallback — are exercised with memory and UB checking on.
#
#   scripts/ci_fault_lane.sh [build-dir]     (default: build-fault)
#
# The lane uses its own tree: sanitized and plain objects don't mix.
# Exits nonzero if configure, build, or any fault-labelled test fails.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-fault"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSNICIT_SANITIZE=address,undefined \
  -DSNICIT_BUILD_BENCH=OFF \
  -DSNICIT_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

# halt_on_error: a UB report must fail the lane, not scroll past it.
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  ctest --test-dir "$build_dir" -L fault --output-on-failure

echo "fault lane clean: all fault-labelled tests passed under ASan+UBSan"
