#!/usr/bin/env sh
# CI perf lane: the regression gates behind the fused-epilogue /
# zero-allocation execution core.
#
#   1. bench_spmm_kernels --check — every optimized kernel holds its
#      speedup over scalar gather, every fused epilogue form is at least
#      as fast as its split counterpart at density >= 0.1, and a warm
#      kernel run performs zero heap allocations;
#   2. ctest -L allocfree — the workspace suite's steady-state proofs
#      (engine hot paths and warm DynamicBatcher rounds allocation-free);
#   3. bench_batching --check — the serving-side batching conformance
#      gate the execution core feeds;
#   4. the tier1 suite once per fused kernel arm, forced via SNICIT_SPMM
#      ("VARIANT+fused"), so every engine runs every fused kernel — the
#      golden-digest suites inside tier1 then pin fused == split
#      bit-for-bit system-wide.
#
#   scripts/ci_perf_lane.sh [build-dir]     (default: build-perf)
#
# The lane uses its own plain Release tree (no sanitizers: these are
# timing gates). Exits nonzero if configure, build, or any gate fails.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-perf"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Release \
  -DSNICIT_BUILD_BENCH=ON \
  -DSNICIT_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

echo "== gate 1/4: spMM kernel grid (fused vs split, steady-state allocs) =="
"$build_dir/bench/bench_spmm_kernels" --check --reps 3 \
  --out "$build_dir/bench_spmm_kernels.json"

echo "== gate 2/4: allocfree-labelled steady-state proofs =="
ctest --test-dir "$build_dir" -L allocfree --output-on-failure

echo "== gate 3/4: batching conformance =="
"$build_dir/bench/bench_batching" --check

echo "== gate 4/4: tier1 under each forced fused kernel arm =="
for arm in gather gather_simd gather_threaded tiled scatter scatter_simd; do
  echo "-- SNICIT_SPMM=${arm}+fused --"
  SNICIT_SPMM="${arm}+fused" \
    ctest --test-dir "$build_dir" -L tier1 --output-on-failure
done

echo "perf lane clean: kernel and allocation gates hold, tier1 passes under every fused arm"
