#!/usr/bin/env sh
# CI chaos lane: crash-recovery verification under ASan+UBSan.
#
# Two stages:
#
#   1. `ctest -L chaos` — the durability suites (journal corpus, warm
#      snapshots, kill–replay conformance, CLI exit codes) with memory
#      and UB checking on.
#   2. A real kill–replay drill: for each (shape, engine, seed) trial a
#      paced `snicit_cli serve-replay` run is SIGKILL'd at a seeded
#      pseudo-random offset, then `snicit_cli replay-journal` recovers
#      the crashed run from its write-ahead journal and the decision /
#      output digests are diffed against an uninterrupted oracle run.
#      Any divergence (or a replay exit 4) fails the lane: recovery must
#      be bit-identical, not merely plausible.
#
#   scripts/ci_chaos_lane.sh [build-dir]     (default: build-chaos)
#
# The lane uses its own tree: sanitized and plain objects don't mix.
# Exits nonzero if configure, build, any chaos-labelled test, or any
# kill–replay trial fails.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-chaos"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSNICIT_SANITIZE=address,undefined \
  -DSNICIT_BUILD_BENCH=OFF \
  -DSNICIT_BUILD_EXAMPLES=ON
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

# halt_on_error: a UB report must fail the lane, not scroll past it.
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  ctest --test-dir "$build_dir" -L chaos --output-on-failure

cli="$build_dir/examples/snicit_cli"
work=$(mktemp -d "${TMPDIR:-/tmp}/snicit_chaos.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM

# Small-but-real workload: enough batches that a kill usually lands
# mid-run, small enough that each trial is sub-second even under ASan.
net_flags="--neurons 64 --layers 8 --batch 32"
script_flags="--script-shape SHAPE --requests 48 --mean-gap 0.2 \
  --deadline-ms 6 --serve-requests 8 --batch-timeout 1.5"

trials=0
failures=0
for shape in poisson burst; do
  for engine in reference snicit; do
    for seed in 1 2; do
      trials=$((trials + 1))
      tag="${shape}_${engine}_s${seed}"
      flags="$net_flags --engine $engine --threshold 4 --sample-size 8 \
        --downsample 8 $(printf '%s' "$script_flags" |
                          sed "s/SHAPE/$shape/") --script-seed $seed"

      # Oracle: the uninterrupted run's digests.
      # shellcheck disable=SC2086
      "$cli" serve-replay $flags > "$work/$tag.oracle" 2>&1 || {
        echo "chaos lane: oracle run failed for $tag" >&2
        cat "$work/$tag.oracle" >&2
        exit 1
      }
      grep 'digest' "$work/$tag.oracle" > "$work/$tag.oracle.digests"

      # Victim: same run, journaled and paced, SIGKILL'd at a seeded
      # pseudo-random offset inside the paced window (40ms pace x up to
      # ~12 batches; the offset walks the whole run).
      offset_ms=$(( (seed * 37 + trials * 53) % 240 + 20 ))
      # shellcheck disable=SC2086
      "$cli" serve-replay $flags --journal "$work/$tag.journal" \
        --pace-ms 40 > "$work/$tag.victim" 2>&1 &
      victim=$!
      sleep "$(awk "BEGIN { printf \"%.3f\", $offset_ms / 1000 }")"
      kill -9 "$victim" 2>/dev/null || true
      wait "$victim" 2>/dev/null || true

      # Replay the journal against the same script; diff the digests.
      # shellcheck disable=SC2086
      if ! "$cli" replay-journal $flags --journal "$work/$tag.journal" \
          > "$work/$tag.replay" 2>&1; then
        echo "chaos lane: replay-journal failed for $tag (kill at ${offset_ms}ms)" >&2
        cat "$work/$tag.replay" >&2
        failures=$((failures + 1))
        continue
      fi
      grep 'digest' "$work/$tag.replay" > "$work/$tag.replay.digests"
      if ! diff -u "$work/$tag.oracle.digests" "$work/$tag.replay.digests"; then
        echo "chaos lane: digest divergence for $tag (kill at ${offset_ms}ms)" >&2
        failures=$((failures + 1))
        continue
      fi
      recovered=$(grep -c 'recovered:' "$work/$tag.replay" || true)
      echo "chaos trial $tag: kill at ${offset_ms}ms, digests match (recovered lines: $recovered)"
    done
  done
done

if [ "$failures" -ne 0 ]; then
  echo "chaos lane: $failures of $trials kill–replay trial(s) diverged" >&2
  exit 1
fi

echo "chaos lane clean: chaos-labelled tests passed under ASan+UBSan and $trials kill–replay trial(s) recovered bit-identically"
