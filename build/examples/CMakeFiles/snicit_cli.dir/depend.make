# Empty dependencies file for snicit_cli.
# This may be replaced when dependencies are built.
