file(REMOVE_RECURSE
  "CMakeFiles/snicit_cli.dir/snicit_cli.cpp.o"
  "CMakeFiles/snicit_cli.dir/snicit_cli.cpp.o.d"
  "snicit_cli"
  "snicit_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
