# Empty dependencies file for digit_classifier.
# This may be replaced when dependencies are built.
