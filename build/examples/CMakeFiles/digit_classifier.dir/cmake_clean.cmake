file(REMOVE_RECURSE
  "CMakeFiles/digit_classifier.dir/digit_classifier.cpp.o"
  "CMakeFiles/digit_classifier.dir/digit_classifier.cpp.o.d"
  "digit_classifier"
  "digit_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digit_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
