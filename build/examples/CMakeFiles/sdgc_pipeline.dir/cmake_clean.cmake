file(REMOVE_RECURSE
  "CMakeFiles/sdgc_pipeline.dir/sdgc_pipeline.cpp.o"
  "CMakeFiles/sdgc_pipeline.dir/sdgc_pipeline.cpp.o.d"
  "sdgc_pipeline"
  "sdgc_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdgc_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
