# Empty dependencies file for sdgc_pipeline.
# This may be replaced when dependencies are built.
