
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/test_trace.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/radixnet/CMakeFiles/snicit_radixnet.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/snicit_train.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/snicit_data.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/snicit_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/snicit/CMakeFiles/snicit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/snicit_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/snicit_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/snicit_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
