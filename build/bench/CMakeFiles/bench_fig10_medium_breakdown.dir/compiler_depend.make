# Empty compiler generated dependencies file for bench_fig10_medium_breakdown.
# This may be replaced when dependencies are built.
