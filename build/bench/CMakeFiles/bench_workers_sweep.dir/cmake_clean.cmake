file(REMOVE_RECURSE
  "CMakeFiles/bench_workers_sweep.dir/bench_workers_sweep.cpp.o"
  "CMakeFiles/bench_workers_sweep.dir/bench_workers_sweep.cpp.o.d"
  "bench_workers_sweep"
  "bench_workers_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workers_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
