# Empty dependencies file for bench_workers_sweep.
# This may be replaced when dependencies are built.
