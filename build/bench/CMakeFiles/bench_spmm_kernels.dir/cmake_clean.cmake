file(REMOVE_RECURSE
  "CMakeFiles/bench_spmm_kernels.dir/bench_spmm_kernels.cpp.o"
  "CMakeFiles/bench_spmm_kernels.dir/bench_spmm_kernels.cpp.o.d"
  "bench_spmm_kernels"
  "bench_spmm_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spmm_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
