file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_threshold.dir/bench_fig8_threshold.cpp.o"
  "CMakeFiles/bench_fig8_threshold.dir/bench_fig8_threshold.cpp.o.d"
  "bench_fig8_threshold"
  "bench_fig8_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
