# Empty dependencies file for bench_fig9_batch.
# This may be replaced when dependencies are built.
