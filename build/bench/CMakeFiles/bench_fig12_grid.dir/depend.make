# Empty dependencies file for bench_fig12_grid.
# This may be replaced when dependencies are built.
