file(REMOVE_RECURSE
  "../lib/libsnicit_bench_common.a"
)
