# Empty compiler generated dependencies file for snicit_bench_common.
# This may be replaced when dependencies are built.
