file(REMOVE_RECURSE
  "../lib/libsnicit_bench_common.a"
  "../lib/libsnicit_bench_common.pdb"
  "CMakeFiles/snicit_bench_common.dir/bench_util.cpp.o"
  "CMakeFiles/snicit_bench_common.dir/bench_util.cpp.o.d"
  "CMakeFiles/snicit_bench_common.dir/medium_nets.cpp.o"
  "CMakeFiles/snicit_bench_common.dir/medium_nets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicit_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
