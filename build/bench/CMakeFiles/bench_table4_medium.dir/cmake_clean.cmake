file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_medium.dir/bench_table4_medium.cpp.o"
  "CMakeFiles/bench_table4_medium.dir/bench_table4_medium.cpp.o.d"
  "bench_table4_medium"
  "bench_table4_medium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_medium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
