
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cli.cpp" "src/platform/CMakeFiles/snicit_platform.dir/cli.cpp.o" "gcc" "src/platform/CMakeFiles/snicit_platform.dir/cli.cpp.o.d"
  "/root/repo/src/platform/env.cpp" "src/platform/CMakeFiles/snicit_platform.dir/env.cpp.o" "gcc" "src/platform/CMakeFiles/snicit_platform.dir/env.cpp.o.d"
  "/root/repo/src/platform/json.cpp" "src/platform/CMakeFiles/snicit_platform.dir/json.cpp.o" "gcc" "src/platform/CMakeFiles/snicit_platform.dir/json.cpp.o.d"
  "/root/repo/src/platform/metrics.cpp" "src/platform/CMakeFiles/snicit_platform.dir/metrics.cpp.o" "gcc" "src/platform/CMakeFiles/snicit_platform.dir/metrics.cpp.o.d"
  "/root/repo/src/platform/stats.cpp" "src/platform/CMakeFiles/snicit_platform.dir/stats.cpp.o" "gcc" "src/platform/CMakeFiles/snicit_platform.dir/stats.cpp.o.d"
  "/root/repo/src/platform/task_graph.cpp" "src/platform/CMakeFiles/snicit_platform.dir/task_graph.cpp.o" "gcc" "src/platform/CMakeFiles/snicit_platform.dir/task_graph.cpp.o.d"
  "/root/repo/src/platform/thread_pool.cpp" "src/platform/CMakeFiles/snicit_platform.dir/thread_pool.cpp.o" "gcc" "src/platform/CMakeFiles/snicit_platform.dir/thread_pool.cpp.o.d"
  "/root/repo/src/platform/trace.cpp" "src/platform/CMakeFiles/snicit_platform.dir/trace.cpp.o" "gcc" "src/platform/CMakeFiles/snicit_platform.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
