file(REMOVE_RECURSE
  "../../lib/libsnicit_platform.a"
  "../../lib/libsnicit_platform.pdb"
  "CMakeFiles/snicit_platform.dir/cli.cpp.o"
  "CMakeFiles/snicit_platform.dir/cli.cpp.o.d"
  "CMakeFiles/snicit_platform.dir/env.cpp.o"
  "CMakeFiles/snicit_platform.dir/env.cpp.o.d"
  "CMakeFiles/snicit_platform.dir/json.cpp.o"
  "CMakeFiles/snicit_platform.dir/json.cpp.o.d"
  "CMakeFiles/snicit_platform.dir/metrics.cpp.o"
  "CMakeFiles/snicit_platform.dir/metrics.cpp.o.d"
  "CMakeFiles/snicit_platform.dir/stats.cpp.o"
  "CMakeFiles/snicit_platform.dir/stats.cpp.o.d"
  "CMakeFiles/snicit_platform.dir/task_graph.cpp.o"
  "CMakeFiles/snicit_platform.dir/task_graph.cpp.o.d"
  "CMakeFiles/snicit_platform.dir/thread_pool.cpp.o"
  "CMakeFiles/snicit_platform.dir/thread_pool.cpp.o.d"
  "CMakeFiles/snicit_platform.dir/trace.cpp.o"
  "CMakeFiles/snicit_platform.dir/trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snicit_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
