# Empty compiler generated dependencies file for snicit_platform.
# This may be replaced when dependencies are built.
