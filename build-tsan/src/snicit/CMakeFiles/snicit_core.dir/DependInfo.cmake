
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snicit/adaptive_prune.cpp" "src/snicit/CMakeFiles/snicit_core.dir/adaptive_prune.cpp.o" "gcc" "src/snicit/CMakeFiles/snicit_core.dir/adaptive_prune.cpp.o.d"
  "/root/repo/src/snicit/convergence.cpp" "src/snicit/CMakeFiles/snicit_core.dir/convergence.cpp.o" "gcc" "src/snicit/CMakeFiles/snicit_core.dir/convergence.cpp.o.d"
  "/root/repo/src/snicit/convert.cpp" "src/snicit/CMakeFiles/snicit_core.dir/convert.cpp.o" "gcc" "src/snicit/CMakeFiles/snicit_core.dir/convert.cpp.o.d"
  "/root/repo/src/snicit/engine.cpp" "src/snicit/CMakeFiles/snicit_core.dir/engine.cpp.o" "gcc" "src/snicit/CMakeFiles/snicit_core.dir/engine.cpp.o.d"
  "/root/repo/src/snicit/parallel_stream.cpp" "src/snicit/CMakeFiles/snicit_core.dir/parallel_stream.cpp.o" "gcc" "src/snicit/CMakeFiles/snicit_core.dir/parallel_stream.cpp.o.d"
  "/root/repo/src/snicit/postconv.cpp" "src/snicit/CMakeFiles/snicit_core.dir/postconv.cpp.o" "gcc" "src/snicit/CMakeFiles/snicit_core.dir/postconv.cpp.o.d"
  "/root/repo/src/snicit/recovery.cpp" "src/snicit/CMakeFiles/snicit_core.dir/recovery.cpp.o" "gcc" "src/snicit/CMakeFiles/snicit_core.dir/recovery.cpp.o.d"
  "/root/repo/src/snicit/reorder.cpp" "src/snicit/CMakeFiles/snicit_core.dir/reorder.cpp.o" "gcc" "src/snicit/CMakeFiles/snicit_core.dir/reorder.cpp.o.d"
  "/root/repo/src/snicit/sample_prune.cpp" "src/snicit/CMakeFiles/snicit_core.dir/sample_prune.cpp.o" "gcc" "src/snicit/CMakeFiles/snicit_core.dir/sample_prune.cpp.o.d"
  "/root/repo/src/snicit/sampling.cpp" "src/snicit/CMakeFiles/snicit_core.dir/sampling.cpp.o" "gcc" "src/snicit/CMakeFiles/snicit_core.dir/sampling.cpp.o.d"
  "/root/repo/src/snicit/stream.cpp" "src/snicit/CMakeFiles/snicit_core.dir/stream.cpp.o" "gcc" "src/snicit/CMakeFiles/snicit_core.dir/stream.cpp.o.d"
  "/root/repo/src/snicit/warm_cache.cpp" "src/snicit/CMakeFiles/snicit_core.dir/warm_cache.cpp.o" "gcc" "src/snicit/CMakeFiles/snicit_core.dir/warm_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/dnn/CMakeFiles/snicit_dnn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sparse/CMakeFiles/snicit_sparse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/platform/CMakeFiles/snicit_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
