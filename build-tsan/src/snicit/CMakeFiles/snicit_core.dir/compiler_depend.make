# Empty compiler generated dependencies file for snicit_core.
# This may be replaced when dependencies are built.
