
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/analysis.cpp" "src/dnn/CMakeFiles/snicit_dnn.dir/analysis.cpp.o" "gcc" "src/dnn/CMakeFiles/snicit_dnn.dir/analysis.cpp.o.d"
  "/root/repo/src/dnn/builder.cpp" "src/dnn/CMakeFiles/snicit_dnn.dir/builder.cpp.o" "gcc" "src/dnn/CMakeFiles/snicit_dnn.dir/builder.cpp.o.d"
  "/root/repo/src/dnn/engine.cpp" "src/dnn/CMakeFiles/snicit_dnn.dir/engine.cpp.o" "gcc" "src/dnn/CMakeFiles/snicit_dnn.dir/engine.cpp.o.d"
  "/root/repo/src/dnn/harness.cpp" "src/dnn/CMakeFiles/snicit_dnn.dir/harness.cpp.o" "gcc" "src/dnn/CMakeFiles/snicit_dnn.dir/harness.cpp.o.d"
  "/root/repo/src/dnn/memory.cpp" "src/dnn/CMakeFiles/snicit_dnn.dir/memory.cpp.o" "gcc" "src/dnn/CMakeFiles/snicit_dnn.dir/memory.cpp.o.d"
  "/root/repo/src/dnn/reference.cpp" "src/dnn/CMakeFiles/snicit_dnn.dir/reference.cpp.o" "gcc" "src/dnn/CMakeFiles/snicit_dnn.dir/reference.cpp.o.d"
  "/root/repo/src/dnn/sparse_dnn.cpp" "src/dnn/CMakeFiles/snicit_dnn.dir/sparse_dnn.cpp.o" "gcc" "src/dnn/CMakeFiles/snicit_dnn.dir/sparse_dnn.cpp.o.d"
  "/root/repo/src/dnn/validate.cpp" "src/dnn/CMakeFiles/snicit_dnn.dir/validate.cpp.o" "gcc" "src/dnn/CMakeFiles/snicit_dnn.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sparse/CMakeFiles/snicit_sparse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/platform/CMakeFiles/snicit_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
