
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radixnet/challenge.cpp" "src/radixnet/CMakeFiles/snicit_radixnet.dir/challenge.cpp.o" "gcc" "src/radixnet/CMakeFiles/snicit_radixnet.dir/challenge.cpp.o.d"
  "/root/repo/src/radixnet/mixed_radix.cpp" "src/radixnet/CMakeFiles/snicit_radixnet.dir/mixed_radix.cpp.o" "gcc" "src/radixnet/CMakeFiles/snicit_radixnet.dir/mixed_radix.cpp.o.d"
  "/root/repo/src/radixnet/radixnet.cpp" "src/radixnet/CMakeFiles/snicit_radixnet.dir/radixnet.cpp.o" "gcc" "src/radixnet/CMakeFiles/snicit_radixnet.dir/radixnet.cpp.o.d"
  "/root/repo/src/radixnet/sdgc_io.cpp" "src/radixnet/CMakeFiles/snicit_radixnet.dir/sdgc_io.cpp.o" "gcc" "src/radixnet/CMakeFiles/snicit_radixnet.dir/sdgc_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/dnn/CMakeFiles/snicit_dnn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sparse/CMakeFiles/snicit_sparse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/platform/CMakeFiles/snicit_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
