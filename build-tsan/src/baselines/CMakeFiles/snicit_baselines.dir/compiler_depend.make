# Empty compiler generated dependencies file for snicit_baselines.
# This may be replaced when dependencies are built.
