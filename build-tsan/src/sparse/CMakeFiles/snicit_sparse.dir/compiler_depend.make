# Empty compiler generated dependencies file for snicit_sparse.
# This may be replaced when dependencies are built.
