# Empty compiler generated dependencies file for snicit_data.
# This may be replaced when dependencies are built.
