#include "train/serialize.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace snicit::train {

namespace {

using platform::ErrorCode;
using platform::ErrorException;
using platform::Result;

constexpr char kMagic[8] = {'S', 'N', 'I', 'C', 'M', 'L', 'P', '1'};

/// Plausibility bounds for header dimensions: a hostile header drives the
/// SparseMlp constructor's allocations, so dims are capped before any
/// buffer is sized from them.
constexpr std::uint64_t kMaxDim = 1ULL << 20;        // per-dimension
constexpr std::uint64_t kMaxLayerElems = 1ULL << 31; // per weight matrix

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* data, std::size_t size) {
  if (std::fwrite(data, 1, size, f) != size) {
    throw ErrorException(ErrorCode::kBadModelFile,
                         "short write while saving model");
  }
}

void read_bytes(std::FILE* f, void* data, std::size_t size) {
  if (std::fread(data, 1, size, f) != size) {
    throw ErrorException(ErrorCode::kBadModelFile,
                         "short read while loading model");
  }
}

template <typename T>
void write_pod(std::FILE* f, const T& v) {
  write_bytes(f, &v, sizeof(T));
}

template <typename T>
T read_pod(std::FILE* f) {
  T v{};
  read_bytes(f, &v, sizeof(T));
  return v;
}

template <typename T>
void write_vec(std::FILE* f, const std::vector<T>& v) {
  write_pod<std::uint64_t>(f, v.size());
  write_bytes(f, v.data(), v.size() * sizeof(T));
}

/// Reads a length-prefixed vector whose size is already known from the
/// layer shape: a mismatched prefix means a corrupt file, and checking it
/// here keeps the bytes from ever reaching SparseLinear::restore's
/// aborting invariant.
template <typename T>
std::vector<T> read_vec_expect(std::FILE* f, std::uint64_t expected,
                               const char* what) {
  const auto size = read_pod<std::uint64_t>(f);
  if (size != expected) {
    throw ErrorException(ErrorCode::kBadModelFile,
                         std::string("corrupt model file: ") + what +
                             " size mismatch");
  }
  std::vector<T> v(static_cast<std::size_t>(size));
  read_bytes(f, v.data(), v.size() * sizeof(T));
  return v;
}

void write_layer(std::FILE* f, const SparseLinear& layer) {
  write_pod<std::uint64_t>(f, layer.in_dim());
  write_pod<std::uint64_t>(f, layer.out_dim());
  write_vec(f, layer.weights());
  write_vec(f, layer.mask());
  write_vec(f, layer.bias());
}

void read_layer_into(std::FILE* f, SparseLinear& layer) {
  const auto in = read_pod<std::uint64_t>(f);
  const auto out = read_pod<std::uint64_t>(f);
  if (in != layer.in_dim() || out != layer.out_dim()) {
    throw ErrorException(ErrorCode::kBadModelFile,
                         "corrupt model file: layer shape mismatch");
  }
  const std::uint64_t elems = in * out;  // dims pre-capped: no overflow
  auto w = read_vec_expect<float>(f, elems, "weights");
  auto m = read_vec_expect<std::uint8_t>(f, elems, "mask");
  auto b = read_vec_expect<float>(f, out, "bias");
  layer.restore(std::move(w), std::move(m), std::move(b));
}

std::uint64_t checked_dim(std::FILE* f, const char* what) {
  const auto v = read_pod<std::uint64_t>(f);
  if (v < 1 || v > kMaxDim) {
    throw ErrorException(ErrorCode::kBadModelFile,
                         std::string("corrupt model file: implausible ") +
                             what);
  }
  return v;
}

}  // namespace

void save_mlp(const SparseMlp& mlp, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) {
    throw ErrorException(ErrorCode::kBadModelFile,
                         "cannot open for write: " + path);
  }
  write_bytes(f.get(), kMagic, sizeof(kMagic));
  const auto& opt = mlp.options();
  write_pod<std::uint64_t>(f.get(), opt.in_dim);
  write_pod<std::uint64_t>(f.get(), opt.hidden);
  write_pod<std::uint64_t>(f.get(), opt.sparse_layers);
  write_pod<std::uint64_t>(f.get(), opt.classes);
  write_pod<double>(f.get(), opt.density);
  write_pod<float>(f.get(), opt.ymax);
  write_pod<std::uint64_t>(f.get(), opt.seed);
  write_layer(f.get(), mlp.input_layer());
  for (const auto& layer : mlp.hidden_layers()) {
    write_layer(f.get(), layer);
  }
  write_layer(f.get(), mlp.output_layer());
}

platform::Result<SparseMlp> try_load_mlp(const std::string& path) {
  try {
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f) {
      throw ErrorException(ErrorCode::kBadModelFile,
                           "cannot open for read: " + path);
    }
    char magic[8];
    read_bytes(f.get(), magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      throw ErrorException(ErrorCode::kBadModelFile,
                           "not a SNICIT model file: " + path);
    }
    MlpOptions opt;
    opt.in_dim =
        static_cast<std::size_t>(checked_dim(f.get(), "in_dim"));
    opt.hidden =
        static_cast<std::size_t>(checked_dim(f.get(), "hidden"));
    opt.sparse_layers =
        static_cast<std::size_t>(read_pod<std::uint64_t>(f.get()));
    opt.classes =
        static_cast<std::size_t>(checked_dim(f.get(), "classes"));
    opt.density = read_pod<double>(f.get());
    opt.ymax = read_pod<float>(f.get());
    opt.seed = read_pod<std::uint64_t>(f.get());
    if (opt.sparse_layers > kMaxDim) {
      throw ErrorException(ErrorCode::kBadModelFile,
                           "corrupt model file: implausible sparse_layers");
    }
    const std::uint64_t hidden = opt.hidden;
    if (static_cast<std::uint64_t>(opt.in_dim) * hidden > kMaxLayerElems ||
        hidden * hidden > kMaxLayerElems ||
        hidden * static_cast<std::uint64_t>(opt.classes) > kMaxLayerElems) {
      throw ErrorException(ErrorCode::kBadModelFile,
                           "corrupt model file: implausible layer size");
    }

    SparseMlp mlp(opt);
    read_layer_into(f.get(), mlp.input_layer());
    for (auto& layer : mlp.hidden_layers()) {
      read_layer_into(f.get(), layer);
    }
    read_layer_into(f.get(), mlp.output_layer());
    if (std::fgetc(f.get()) != EOF) {
      throw ErrorException(ErrorCode::kBadModelFile,
                           "trailing bytes after model payload in " + path);
    }
    return Result<SparseMlp>(std::move(mlp));
  } catch (const ErrorException& e) {
    return Result<SparseMlp>(e.error());
  }
}

SparseMlp load_mlp(const std::string& path) {
  return try_load_mlp(path).value_or_throw();
}

}  // namespace snicit::train
