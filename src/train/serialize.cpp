#include "train/serialize.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace snicit::train {

namespace {

constexpr char kMagic[8] = {'S', 'N', 'I', 'C', 'M', 'L', 'P', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* data, std::size_t size) {
  if (std::fwrite(data, 1, size, f) != size) {
    throw std::runtime_error("short write while saving model");
  }
}

void read_bytes(std::FILE* f, void* data, std::size_t size) {
  if (std::fread(data, 1, size, f) != size) {
    throw std::runtime_error("short read while loading model");
  }
}

template <typename T>
void write_pod(std::FILE* f, const T& v) {
  write_bytes(f, &v, sizeof(T));
}

template <typename T>
T read_pod(std::FILE* f) {
  T v{};
  read_bytes(f, &v, sizeof(T));
  return v;
}

template <typename T>
void write_vec(std::FILE* f, const std::vector<T>& v) {
  write_pod<std::uint64_t>(f, v.size());
  write_bytes(f, v.data(), v.size() * sizeof(T));
}

template <typename T>
std::vector<T> read_vec(std::FILE* f) {
  const auto size = read_pod<std::uint64_t>(f);
  if (size > (1ULL << 32)) {
    throw std::runtime_error("corrupt model file: vector too large");
  }
  std::vector<T> v(static_cast<std::size_t>(size));
  read_bytes(f, v.data(), v.size() * sizeof(T));
  return v;
}

void write_layer(std::FILE* f, const SparseLinear& layer) {
  write_pod<std::uint64_t>(f, layer.in_dim());
  write_pod<std::uint64_t>(f, layer.out_dim());
  write_vec(f, layer.weights());
  write_vec(f, layer.mask());
  write_vec(f, layer.bias());
}

void read_layer_into(std::FILE* f, SparseLinear& layer) {
  const auto in = read_pod<std::uint64_t>(f);
  const auto out = read_pod<std::uint64_t>(f);
  if (in != layer.in_dim() || out != layer.out_dim()) {
    throw std::runtime_error("corrupt model file: layer shape mismatch");
  }
  auto w = read_vec<float>(f);
  auto m = read_vec<std::uint8_t>(f);
  auto b = read_vec<float>(f);
  layer.restore(std::move(w), std::move(m), std::move(b));
}

}  // namespace

void save_mlp(const SparseMlp& mlp, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  write_bytes(f.get(), kMagic, sizeof(kMagic));
  const auto& opt = mlp.options();
  write_pod<std::uint64_t>(f.get(), opt.in_dim);
  write_pod<std::uint64_t>(f.get(), opt.hidden);
  write_pod<std::uint64_t>(f.get(), opt.sparse_layers);
  write_pod<std::uint64_t>(f.get(), opt.classes);
  write_pod<double>(f.get(), opt.density);
  write_pod<float>(f.get(), opt.ymax);
  write_pod<std::uint64_t>(f.get(), opt.seed);
  write_layer(f.get(), mlp.input_layer());
  for (const auto& layer : mlp.hidden_layers()) {
    write_layer(f.get(), layer);
  }
  write_layer(f.get(), mlp.output_layer());
}

SparseMlp load_mlp(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  char magic[8];
  read_bytes(f.get(), magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a SNICIT model file: " + path);
  }
  MlpOptions opt;
  opt.in_dim = static_cast<std::size_t>(read_pod<std::uint64_t>(f.get()));
  opt.hidden = static_cast<std::size_t>(read_pod<std::uint64_t>(f.get()));
  opt.sparse_layers =
      static_cast<std::size_t>(read_pod<std::uint64_t>(f.get()));
  opt.classes = static_cast<std::size_t>(read_pod<std::uint64_t>(f.get()));
  opt.density = read_pod<double>(f.get());
  opt.ymax = read_pod<float>(f.get());
  opt.seed = read_pod<std::uint64_t>(f.get());

  SparseMlp mlp(opt);
  read_layer_into(f.get(), mlp.input_layer());
  for (auto& layer : mlp.hidden_layers()) {
    read_layer_into(f.get(), layer);
  }
  read_layer_into(f.get(), mlp.output_layer());
  return mlp;
}

}  // namespace snicit::train
