#include "train/adam.hpp"

#include <cmath>

#include "platform/common.hpp"

namespace snicit::train {

Adam::Adam(std::size_t size, AdamOptions options)
    : options_(options), m_(size, 0.0f), v_(size, 0.0f) {}

void Adam::step(std::vector<float>& params, const std::vector<float>& grads) {
  SNICIT_CHECK(params.size() == m_.size() && grads.size() == m_.size(),
               "Adam parameter size mismatch");
  ++t_;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float correction1 =
      1.0f - std::pow(b1, static_cast<float>(t_));
  const float correction2 =
      1.0f - std::pow(b2, static_cast<float>(t_));
  const float decay = 1.0f - options_.lr * options_.weight_decay;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (options_.weight_decay != 0.0f) params[i] *= decay;
    const float g = grads[i];
    m_[i] = b1 * m_[i] + (1.0f - b1) * g;
    v_[i] = b2 * v_[i] + (1.0f - b2) * g * g;
    const float m_hat = m_[i] / correction1;
    const float v_hat = v_[i] / correction2;
    params[i] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
  }
}

}  // namespace snicit::train
