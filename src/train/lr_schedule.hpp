// Learning-rate schedules for the trainer: constant, step decay, cosine
// annealing, and linear warmup composed with any of the former.
#pragma once

#include <cstddef>

namespace snicit::train {

enum class LrDecay {
  kConstant,  // lr(e) = base
  kStep,      // lr(e) = base * gamma^(e / step_every)
  kCosine,    // lr(e) = floor + (base - floor) * (1 + cos(pi e/E)) / 2
};

struct LrSchedule {
  float base_lr = 1e-3f;
  LrDecay decay = LrDecay::kConstant;

  int total_epochs = 1;    // horizon E for cosine
  int step_every = 10;     // epochs per step-decay notch
  float gamma = 0.5f;      // step-decay factor
  float floor_lr = 0.0f;   // cosine floor

  /// Linear warmup over the first `warmup_epochs` epochs (0 disables):
  /// lr ramps from base/`warmup_epochs+1` up to the schedule value.
  int warmup_epochs = 0;

  /// Learning rate for 0-based epoch index `epoch`.
  float at(int epoch) const;
};

}  // namespace snicit::train
