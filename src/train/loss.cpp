#include "train/loss.hpp"

#include <algorithm>
#include <cmath>

#include "platform/common.hpp"

namespace snicit::train {

float softmax_cross_entropy(const DenseMatrix& logits,
                            const std::vector<int>& labels,
                            DenseMatrix& dlogits) {
  SNICIT_CHECK(labels.size() == logits.cols(), "one label per column");
  SNICIT_CHECK(dlogits.rows() == logits.rows() &&
                   dlogits.cols() == logits.cols(),
               "dlogits shape mismatch");
  const std::size_t classes = logits.rows();
  const std::size_t batch = logits.cols();
  const float inv_batch = 1.0f / static_cast<float>(batch);

  double loss = 0.0;
  for (std::size_t j = 0; j < batch; ++j) {
    const float* z = logits.col(j);
    float* d = dlogits.col(j);
    const float zmax = *std::max_element(z, z + classes);
    float denom = 0.0f;
    for (std::size_t c = 0; c < classes; ++c) {
      d[c] = std::exp(z[c] - zmax);
      denom += d[c];
    }
    const int label = labels[j];
    SNICIT_DCHECK(label >= 0 && static_cast<std::size_t>(label) < classes,
                  "label out of range");
    for (std::size_t c = 0; c < classes; ++c) {
      const float p = d[c] / denom;
      d[c] = (p - (static_cast<int>(c) == label ? 1.0f : 0.0f)) * inv_batch;
      if (static_cast<int>(c) == label) {
        loss -= std::log(std::max(p, 1e-12f));
      }
    }
  }
  return static_cast<float>(loss * inv_batch);
}

std::vector<int> predict(const DenseMatrix& logits) {
  std::vector<int> out(logits.cols());
  for (std::size_t j = 0; j < logits.cols(); ++j) {
    const float* z = logits.col(j);
    out[j] = static_cast<int>(
        std::max_element(z, z + logits.rows()) - z);
  }
  return out;
}

double accuracy(const DenseMatrix& logits, const std::vector<int>& labels) {
  SNICIT_CHECK(labels.size() == logits.cols(), "one label per column");
  if (labels.empty()) return 0.0;
  const auto preds = predict(logits);
  std::size_t hit = 0;
  for (std::size_t j = 0; j < labels.size(); ++j) {
    if (preds[j] == labels[j]) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(labels.size());
}

}  // namespace snicit::train
