// The medium-scale sparse MLP family of §4.2: a dense input layer
// (in_dim x N), l sparsely connected N x N hidden layers with clipped
// ReLU, and a dense N x classes output head. Networks A-D of Table 4 are
// instances of this model. After training, the hidden stack exports to a
// SparseDnn so every inference engine (baselines + SNICIT) can run it.
#pragma once

#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "dnn/sparse_dnn.hpp"
#include "train/adam.hpp"
#include "train/lr_schedule.hpp"
#include "train/linear.hpp"

namespace snicit::train {

struct MlpOptions {
  std::size_t in_dim = 784;
  std::size_t hidden = 256;      // N
  std::size_t sparse_layers = 12;  // l
  std::size_t classes = 10;
  double density = 0.55;  // hidden-layer weight density (paper: 50-60 %)
  float hidden_init_scale = 1.0f;  // init bound multiplier for the deep
                                   // hidden stack (see SparseLinear)
  float ymax = 1.0f;      // clipped-ReLU bound (1 for medium nets, §4.2)
  std::uint64_t seed = 123;
};

struct TrainOptions {
  int epochs = 12;
  std::size_t batch_size = 64;
  AdamOptions adam;  // paper defaults: Adam, lr 6e-5 — but on the small
                     // synthetic sets a larger lr converges in far fewer
                     // epochs; callers override as needed.
  /// Optional per-epoch learning-rate schedule; when set, it overrides
  /// adam.lr each epoch (schedule.base_lr is the driving rate).
  bool use_schedule = false;
  LrSchedule schedule;
};

struct TrainHistory {
  std::vector<float> loss_per_epoch;
  std::vector<double> train_accuracy_per_epoch;
};

class SparseMlp {
 public:
  explicit SparseMlp(const MlpOptions& options);

  const MlpOptions& options() const { return options_; }

  /// Full forward pass: logits for a batch (in_dim x B -> classes x B).
  DenseMatrix forward(const DenseMatrix& x) const;

  /// Activations entering the first sparse hidden layer (N x B): the
  /// input-layer output. This is the Y(0) the inference engines consume.
  DenseMatrix hidden_input(const DenseMatrix& x) const;

  /// Applies the output head to last-hidden activations (N x B).
  DenseMatrix logits_from_hidden(const DenseMatrix& h) const;

  /// Minibatch Adam training with softmax cross-entropy.
  TrainHistory fit(const data::Dataset& train_set,
                   const TrainOptions& topts);

  /// Test accuracy via the full forward pass.
  double evaluate(const data::Dataset& test_set) const;

  /// Exports the l sparse hidden layers (weights + biases + clip) as a
  /// SparseDnn named like the paper ("A 128-18" etc. is up to callers).
  dnn::SparseDnn to_sparse_dnn(const std::string& name) const;

  std::size_t num_sparse_layers() const { return hidden_.size(); }
  double hidden_density() const;

  /// Layer access for inspection and serialization.
  SparseLinear& input_layer() { return input_; }
  const SparseLinear& input_layer() const { return input_; }
  std::vector<SparseLinear>& hidden_layers() { return hidden_; }
  const std::vector<SparseLinear>& hidden_layers() const { return hidden_; }
  SparseLinear& output_layer() { return output_; }
  const SparseLinear& output_layer() const { return output_; }

 private:
  MlpOptions options_;
  SparseLinear input_;
  std::vector<SparseLinear> hidden_;
  SparseLinear output_;
};

}  // namespace snicit::train
