// Binary (de)serialization of trained SparseMlp models, so benchmark
// harnesses can train networks A-D once and reload them across runs and
// binaries (the paper trains its four networks offline in PyTorch).
#pragma once

#include <string>

#include "train/mlp.hpp"

namespace snicit::train {

/// Writes the full model (options + every layer's weights/mask/bias) to
/// `path`. Throws std::runtime_error on I/O failure.
void save_mlp(const SparseMlp& mlp, const std::string& path);

/// Reads a model written by save_mlp. Throws std::runtime_error on I/O or
/// format errors.
SparseMlp load_mlp(const std::string& path);

/// Access to layer internals needed by save/load (kept out of the public
/// SparseMlp interface).
struct MlpSerializer;

}  // namespace snicit::train
