// Binary (de)serialization of trained SparseMlp models, so benchmark
// harnesses can train networks A-D once and reload them across runs and
// binaries (the paper trains its four networks offline in PyTorch).
#pragma once

#include <string>

#include "platform/error.hpp"
#include "train/mlp.hpp"

namespace snicit::train {

/// Writes the full model (options + every layer's weights/mask/bias) to
/// `path`. Throws platform::ErrorException (a std::runtime_error) on I/O
/// failure.
void save_mlp(const SparseMlp& mlp, const std::string& path);

/// Reads a model written by save_mlp. Fails with kBadModelFile on I/O or
/// format errors: bad magic, implausible dimensions, truncated or
/// size-inconsistent layer payloads, trailing bytes after the last layer.
/// Every check runs before the bytes reach SparseLinear::restore, whose
/// size contract is an internal invariant (SNICIT_CHECK aborts).
platform::Result<SparseMlp> try_load_mlp(const std::string& path);

/// Throwing wrapper around try_load_mlp.
SparseMlp load_mlp(const std::string& path);

/// Access to layer internals needed by save/load (kept out of the public
/// SparseMlp interface).
struct MlpSerializer;

}  // namespace snicit::train
