#include "train/mlp.hpp"

#include <algorithm>
#include <numeric>

#include "platform/common.hpp"
#include "platform/rng.hpp"
#include "train/loss.hpp"

namespace snicit::train {

namespace {

platform::Rng make_rng(std::uint64_t seed) { return platform::Rng(seed); }

}  // namespace

SparseMlp::SparseMlp(const MlpOptions& options)
    : options_(options),
      input_([&] {
        auto rng = make_rng(options.seed);
        return SparseLinear(options.in_dim, options.hidden, 1.0, rng);
      }()),
      output_([&] {
        auto rng = make_rng(options.seed + 1);
        return SparseLinear(options.hidden, options.classes, 1.0, rng);
      }()) {
  hidden_.reserve(options.sparse_layers);
  for (std::size_t i = 0; i < options.sparse_layers; ++i) {
    auto rng = make_rng(options.seed + 2 + i);
    hidden_.emplace_back(options.hidden, options.hidden, options.density,
                         rng, options.hidden_init_scale);
  }
}

DenseMatrix SparseMlp::hidden_input(const DenseMatrix& x) const {
  DenseMatrix h(options_.hidden, x.cols());
  input_.forward(x, h);
  clipped_relu(h, options_.ymax);
  return h;
}

DenseMatrix SparseMlp::logits_from_hidden(const DenseMatrix& h) const {
  DenseMatrix logits(options_.classes, h.cols());
  output_.forward(h, logits);
  return logits;
}

DenseMatrix SparseMlp::forward(const DenseMatrix& x) const {
  DenseMatrix h = hidden_input(x);
  DenseMatrix next(options_.hidden, x.cols());
  for (const auto& layer : hidden_) {
    layer.forward(h, next);
    clipped_relu(next, options_.ymax);
    std::swap(h, next);
  }
  return logits_from_hidden(h);
}

TrainHistory SparseMlp::fit(const data::Dataset& train_set,
                            const TrainOptions& topts) {
  SNICIT_CHECK(train_set.dim() == options_.in_dim, "dataset dim mismatch");
  const std::size_t n = train_set.size();
  const std::size_t bs = std::min(topts.batch_size, n);

  // One Adam state per parameter vector.
  Adam opt_in_w(input_.weights().size(), topts.adam);
  Adam opt_in_b(input_.bias().size(), topts.adam);
  Adam opt_out_w(output_.weights().size(), topts.adam);
  Adam opt_out_b(output_.bias().size(), topts.adam);
  std::vector<Adam> opt_h_w;
  std::vector<Adam> opt_h_b;
  for (auto& layer : hidden_) {
    opt_h_w.emplace_back(layer.weights().size(), topts.adam);
    opt_h_b.emplace_back(layer.bias().size(), topts.adam);
  }

  platform::Rng shuffle_rng(options_.seed ^ 0xabcdefULL);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  TrainHistory history;
  const std::size_t L = hidden_.size();
  for (int epoch = 0; epoch < topts.epochs; ++epoch) {
    if (topts.use_schedule) {
      const float lr = topts.schedule.at(epoch);
      opt_in_w.set_lr(lr);
      opt_in_b.set_lr(lr);
      opt_out_w.set_lr(lr);
      opt_out_b.set_lr(lr);
      for (auto& o : opt_h_w) o.set_lr(lr);
      for (auto& o : opt_h_b) o.set_lr(lr);
    }
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[shuffle_rng.next_below(i)]);
    }
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    std::size_t correct = 0;

    for (std::size_t start = 0; start + bs <= n; start += bs) {
      // Gather the minibatch.
      DenseMatrix x(options_.in_dim, bs);
      std::vector<int> labels(bs);
      for (std::size_t j = 0; j < bs; ++j) {
        const std::size_t src = order[start + j];
        std::copy_n(train_set.features.col(src), options_.in_dim, x.col(j));
        labels[j] = train_set.labels[src];
      }

      // Forward with stored activations (post-activation values).
      std::vector<DenseMatrix> acts;  // acts[0] = hidden input, etc.
      acts.reserve(L + 1);
      acts.push_back(DenseMatrix(options_.hidden, bs));
      input_.forward(x, acts[0]);
      clipped_relu(acts[0], options_.ymax);
      for (std::size_t l = 0; l < L; ++l) {
        acts.push_back(DenseMatrix(options_.hidden, bs));
        hidden_[l].forward(acts[l], acts[l + 1]);
        clipped_relu(acts[l + 1], options_.ymax);
      }
      DenseMatrix logits(options_.classes, bs);
      output_.forward(acts[L], logits);

      DenseMatrix dlogits(options_.classes, bs);
      epoch_loss += softmax_cross_entropy(logits, labels, dlogits);
      const auto preds = predict(logits);
      for (std::size_t j = 0; j < bs; ++j) {
        if (preds[j] == labels[j]) ++correct;
      }
      ++batches;

      // Backward.
      input_.zero_grad();
      output_.zero_grad();
      for (auto& layer : hidden_) layer.zero_grad();

      DenseMatrix grad(options_.hidden, bs);
      output_.backward(acts[L], dlogits, grad);
      for (std::size_t l = L; l-- > 0;) {
        clipped_relu_backward(acts[l + 1], grad, options_.ymax);
        DenseMatrix grad_in(options_.hidden, bs);
        hidden_[l].backward(acts[l], grad, grad_in);
        grad = std::move(grad_in);
      }
      clipped_relu_backward(acts[0], grad, options_.ymax);
      DenseMatrix no_dx;  // input gradients are not needed
      input_.backward(x, grad, no_dx);

      // Optimizer steps + re-masking.
      opt_in_w.step(input_.weights(), input_.weight_grad());
      opt_in_b.step(input_.bias(), input_.bias_grad());
      opt_out_w.step(output_.weights(), output_.weight_grad());
      opt_out_b.step(output_.bias(), output_.bias_grad());
      for (std::size_t l = 0; l < L; ++l) {
        opt_h_w[l].step(hidden_[l].weights(), hidden_[l].weight_grad());
        opt_h_b[l].step(hidden_[l].bias(), hidden_[l].bias_grad());
        hidden_[l].apply_mask();
      }
      input_.apply_mask();
      output_.apply_mask();
    }

    history.loss_per_epoch.push_back(
        batches == 0 ? 0.0f
                     : static_cast<float>(epoch_loss /
                                          static_cast<double>(batches)));
    history.train_accuracy_per_epoch.push_back(
        batches == 0 ? 0.0
                     : static_cast<double>(correct) /
                           static_cast<double>(batches * bs));
  }
  return history;
}

double SparseMlp::evaluate(const data::Dataset& test_set) const {
  const DenseMatrix logits = forward(test_set.features);
  return accuracy(logits, test_set.labels);
}

dnn::SparseDnn SparseMlp::to_sparse_dnn(const std::string& name) const {
  std::vector<sparse::CsrMatrix> weights;
  std::vector<std::vector<float>> biases;
  weights.reserve(hidden_.size());
  biases.reserve(hidden_.size());
  for (const auto& layer : hidden_) {
    weights.push_back(layer.to_csr());
    biases.push_back(layer.bias());
  }
  return dnn::SparseDnn(static_cast<dnn::Index>(options_.hidden),
                        std::move(weights), std::move(biases), options_.ymax,
                        name);
}

double SparseMlp::hidden_density() const {
  if (hidden_.empty()) return 0.0;
  double d = 0.0;
  for (const auto& layer : hidden_) d += layer.density();
  return d / static_cast<double>(hidden_.size());
}

}  // namespace snicit::train
