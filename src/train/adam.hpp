// Adam optimizer (Kingma & Ba 2014) — the paper trains networks A-D with
// Adam at lr = 6e-5 (§4.2).
#pragma once

#include <cstddef>
#include <vector>

namespace snicit::train {

struct AdamOptions {
  float lr = 6e-5f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  /// Decoupled weight decay (AdamW): params *= (1 - lr*weight_decay)
  /// before the adaptive step. 0 recovers plain Adam.
  float weight_decay = 0.0f;
};

/// Optimizer state for one parameter vector.
class Adam {
 public:
  Adam(std::size_t size, AdamOptions options = {});

  /// One update: params -= lr * m_hat / (sqrt(v_hat) + eps).
  void step(std::vector<float>& params, const std::vector<float>& grads);

  const AdamOptions& options() const { return options_; }

  /// Adjusts the learning rate mid-training (used by LR schedules).
  void set_lr(float lr) { options_.lr = lr; }

 private:
  AdamOptions options_;
  std::vector<float> m_;
  std::vector<float> v_;
  long t_ = 0;
};

}  // namespace snicit::train
