#include "train/lr_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "platform/common.hpp"

namespace snicit::train {

float LrSchedule::at(int epoch) const {
  SNICIT_CHECK(epoch >= 0, "epoch must be non-negative");
  float lr = base_lr;
  switch (decay) {
    case LrDecay::kConstant:
      break;
    case LrDecay::kStep: {
      const int notches = step_every <= 0 ? 0 : epoch / step_every;
      lr = base_lr * std::pow(gamma, static_cast<float>(notches));
      break;
    }
    case LrDecay::kCosine: {
      const int horizon = std::max(1, total_epochs);
      const float progress =
          std::min(1.0f, static_cast<float>(epoch) /
                             static_cast<float>(horizon));
      lr = floor_lr + (base_lr - floor_lr) *
                          (1.0f + std::cos(3.14159265358979f * progress)) /
                          2.0f;
      break;
    }
  }
  if (warmup_epochs > 0 && epoch < warmup_epochs) {
    lr *= static_cast<float>(epoch + 1) /
          static_cast<float>(warmup_epochs + 1);
  }
  return lr;
}

}  // namespace snicit::train
