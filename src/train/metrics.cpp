#include "train/metrics.hpp"

#include "platform/common.hpp"

namespace snicit::train {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : classes_(num_classes), counts_(num_classes * num_classes, 0) {
  SNICIT_CHECK(num_classes >= 1, "need at least one class");
}

ConfusionMatrix ConfusionMatrix::from_predictions(
    const std::vector<int>& predicted, const std::vector<int>& actual,
    std::size_t num_classes) {
  SNICIT_CHECK(predicted.size() == actual.size(),
               "prediction/label count mismatch");
  ConfusionMatrix cm(num_classes);
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    cm.add(predicted[i], actual[i]);
  }
  return cm;
}

void ConfusionMatrix::add(int predicted, int actual) {
  SNICIT_CHECK(predicted >= 0 &&
                   static_cast<std::size_t>(predicted) < classes_ &&
                   actual >= 0 && static_cast<std::size_t>(actual) < classes_,
               "class index out of range");
  ++counts_[static_cast<std::size_t>(actual) * classes_ +
            static_cast<std::size_t>(predicted)];
  ++total_;
}

std::size_t ConfusionMatrix::count(int actual, int predicted) const {
  return counts_[static_cast<std::size_t>(actual) * classes_ +
                 static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < classes_; ++c) {
    correct += counts_[c * classes_ + c];
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::size_t predicted_as = 0;
  for (std::size_t a = 0; a < classes_; ++a) {
    predicted_as += counts_[a * classes_ + c];
  }
  if (predicted_as == 0) return 1.0;
  return static_cast<double>(counts_[c * classes_ + c]) /
         static_cast<double>(predicted_as);
}

double ConfusionMatrix::recall(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::size_t actually = 0;
  for (std::size_t p = 0; p < classes_; ++p) {
    actually += counts_[c * classes_ + p];
  }
  if (actually == 0) return 1.0;
  return static_cast<double>(counts_[c * classes_ + c]) /
         static_cast<double>(actually);
}

double ConfusionMatrix::f1(int cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (std::size_t c = 0; c < classes_; ++c) {
    sum += f1(static_cast<int>(c));
  }
  return sum / static_cast<double>(classes_);
}

}  // namespace snicit::train
