#include "train/linear.hpp"

#include <algorithm>
#include <cmath>

#include "platform/common.hpp"
#include "platform/thread_pool.hpp"
#include "sparse/coo.hpp"

namespace snicit::train {

SparseLinear::SparseLinear(std::size_t in_dim, std::size_t out_dim,
                           double density, platform::Rng& rng,
                           float init_scale)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      w_(in_dim * out_dim, 0.0f),
      mask_(in_dim * out_dim, 0),
      b_(out_dim, 0.0f),
      gw_(in_dim * out_dim, 0.0f),
      gb_(out_dim, 0.0f) {
  SNICIT_CHECK(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
  // Sparse-aware Kaiming-uniform: masked-out weights carry no variance,
  // so the surviving ones are widened by 1/sqrt(density) to keep the
  // layer's signal gain at 1 through deep stacks.
  const float bound =
      init_scale * std::sqrt(6.0f / (static_cast<float>(in_dim) *
                                     static_cast<float>(density)));
  for (std::size_t i = 0; i < w_.size(); ++i) {
    if (density >= 1.0 || rng.next_bool(density)) {
      mask_[i] = 1;
      w_[i] = rng.uniform(-bound, bound);
    }
  }
}

double SparseLinear::density() const {
  std::size_t kept = 0;
  for (auto m : mask_) kept += m;
  return static_cast<double>(kept) / static_cast<double>(mask_.size());
}

void SparseLinear::forward(const DenseMatrix& x, DenseMatrix& y) const {
  SNICIT_CHECK(x.rows() == in_dim_ && y.rows() == out_dim_ &&
                   x.cols() == y.cols(),
               "SparseLinear::forward shape mismatch");
  platform::parallel_for_ranges(0, x.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      const float* SNICIT_RESTRICT xc = x.col(j);
      float* SNICIT_RESTRICT yc = y.col(j);
      for (std::size_t o = 0; o < out_dim_; ++o) {
        const float* SNICIT_RESTRICT row = w_.data() + o * in_dim_;
        float acc = b_[o];
        for (std::size_t i = 0; i < in_dim_; ++i) {
          acc += row[i] * xc[i];
        }
        yc[o] = acc;
      }
    }
  });
}

void SparseLinear::backward(const DenseMatrix& x, const DenseMatrix& dy,
                            DenseMatrix& dx) {
  SNICIT_CHECK(x.rows() == in_dim_ && dy.rows() == out_dim_ &&
                   x.cols() == dy.cols(),
               "SparseLinear::backward shape mismatch");
  // Parameter gradients (serial over batch to avoid atomics; training
  // batches are small by design on this substrate).
  for (std::size_t j = 0; j < x.cols(); ++j) {
    const float* SNICIT_RESTRICT xc = x.col(j);
    const float* SNICIT_RESTRICT dc = dy.col(j);
    for (std::size_t o = 0; o < out_dim_; ++o) {
      const float d = dc[o];
      if (d == 0.0f) continue;
      float* SNICIT_RESTRICT grow = gw_.data() + o * in_dim_;
      for (std::size_t i = 0; i < in_dim_; ++i) {
        grow[i] += d * xc[i];
      }
      gb_[o] += d;
    }
  }
  // Masked entries accumulate no gradient.
  for (std::size_t i = 0; i < gw_.size(); ++i) {
    if (mask_[i] == 0) gw_[i] = 0.0f;
  }

  if (dx.empty()) return;
  SNICIT_CHECK(dx.rows() == in_dim_ && dx.cols() == dy.cols(),
               "SparseLinear::backward dx shape mismatch");
  platform::parallel_for_ranges(0, dy.cols(), [&](std::size_t lo,
                                                  std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      const float* SNICIT_RESTRICT dc = dy.col(j);
      float* SNICIT_RESTRICT dxc = dx.col(j);
      std::fill_n(dxc, in_dim_, 0.0f);
      for (std::size_t o = 0; o < out_dim_; ++o) {
        const float d = dc[o];
        if (d == 0.0f) continue;
        const float* SNICIT_RESTRICT row = w_.data() + o * in_dim_;
        for (std::size_t i = 0; i < in_dim_; ++i) {
          dxc[i] += row[i] * d;
        }
      }
    }
  });
}

void SparseLinear::zero_grad() {
  std::fill(gw_.begin(), gw_.end(), 0.0f);
  std::fill(gb_.begin(), gb_.end(), 0.0f);
}

void SparseLinear::apply_mask() {
  for (std::size_t i = 0; i < w_.size(); ++i) {
    if (mask_[i] == 0) w_[i] = 0.0f;
  }
}

sparse::CsrMatrix SparseLinear::to_csr() const {
  sparse::CooMatrix coo(static_cast<sparse::Index>(out_dim_),
                        static_cast<sparse::Index>(in_dim_));
  for (std::size_t o = 0; o < out_dim_; ++o) {
    for (std::size_t i = 0; i < in_dim_; ++i) {
      const float v = w_[o * in_dim_ + i];
      if (mask_[o * in_dim_ + i] != 0 && v != 0.0f) {
        coo.add(static_cast<sparse::Index>(o), static_cast<sparse::Index>(i),
                v);
      }
    }
  }
  return sparse::CsrMatrix::from_coo(coo);
}

void SparseLinear::restore(std::vector<float> weights,
                           std::vector<std::uint8_t> mask,
                           std::vector<float> bias) {
  SNICIT_CHECK(weights.size() == w_.size() && mask.size() == mask_.size() &&
                   bias.size() == b_.size(),
               "restore size mismatch");
  w_ = std::move(weights);
  mask_ = std::move(mask);
  b_ = std::move(bias);
  apply_mask();
}

void clipped_relu(DenseMatrix& y, float ymax) {
  float* d = y.data();
  const std::size_t n = y.rows() * y.cols();
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = std::min(std::max(d[i], 0.0f), ymax);
  }
}

void clipped_relu_backward(const DenseMatrix& y, DenseMatrix& dy,
                           float ymax) {
  SNICIT_CHECK(y.rows() == dy.rows() && y.cols() == dy.cols(),
               "clipped_relu_backward shape mismatch");
  const float* a = y.data();
  float* d = dy.data();
  const std::size_t n = y.rows() * y.cols();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] <= 0.0f || a[i] >= ymax) d[i] = 0.0f;
  }
}

}  // namespace snicit::train
