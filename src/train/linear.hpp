// Trainable linear layers. SparseLinear carries a fixed binary mask over
// its weights (the SparseLinear-toolkit setup the paper trains networks
// A-D with, §4.2): masked entries stay exactly zero through training, so
// the trained layer exports directly to a sparse CSR weight matrix.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/rng.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense_matrix.hpp"

namespace snicit::train {

using sparse::DenseMatrix;

class SparseLinear {
 public:
  /// density = fraction of weights kept trainable (1.0 = dense layer).
  /// Weights get Kaiming-uniform init on the unmasked entries, scaled by
  /// init_scale (deep clipped-ReLU stacks train better with < 1: the
  /// activation clip saturates units that a plain ReLU would not).
  SparseLinear(std::size_t in_dim, std::size_t out_dim, double density,
               platform::Rng& rng, float init_scale = 1.0f);

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }
  double density() const;

  /// y = W x + b for every column; y must be out_dim x batch.
  void forward(const DenseMatrix& x, DenseMatrix& y) const;

  /// Accumulates parameter gradients from (x, dy) and writes dx = W^T dy.
  /// dx may be empty() to skip input-gradient computation (first layer).
  void backward(const DenseMatrix& x, const DenseMatrix& dy, DenseMatrix& dx);

  void zero_grad();

  std::vector<float>& weights() { return w_; }
  const std::vector<float>& weights() const { return w_; }
  std::vector<float>& bias() { return b_; }
  const std::vector<float>& bias() const { return b_; }
  const std::vector<float>& weight_grad() const { return gw_; }
  const std::vector<float>& bias_grad() const { return gb_; }
  const std::vector<std::uint8_t>& mask() const { return mask_; }

  /// Re-applies the mask (call after optimizer steps to keep masked
  /// weights exactly zero).
  void apply_mask();

  /// Exports the masked weight matrix as CSR (out_dim x in_dim).
  sparse::CsrMatrix to_csr() const;

  /// Replaces parameters wholesale (deserialization); sizes must match.
  void restore(std::vector<float> weights, std::vector<std::uint8_t> mask,
               std::vector<float> bias);

 private:
  std::size_t in_dim_;
  std::size_t out_dim_;
  std::vector<float> w_;           // out x in, row-major
  std::vector<std::uint8_t> mask_; // 1 = trainable
  std::vector<float> b_;
  std::vector<float> gw_;
  std::vector<float> gb_;
};

/// In place clipped ReLU: y = min(max(y, 0), ymax).
void clipped_relu(DenseMatrix& y, float ymax);

/// dx masked by the activation: passes where 0 < y < ymax (y is the
/// *post-activation* value).
void clipped_relu_backward(const DenseMatrix& y, DenseMatrix& dy, float ymax);

}  // namespace snicit::train
