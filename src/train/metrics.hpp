// Classification quality metrics beyond plain accuracy: confusion matrix
// and per-class precision/recall/F1 — used when comparing exact inference
// against SNICIT's pruned inference (accuracy alone can hide class-skewed
// degradation).
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/dense_matrix.hpp"

namespace snicit::train {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  /// Builds from predictions and ground truth (equal-length vectors with
  /// values in [0, num_classes)).
  static ConfusionMatrix from_predictions(const std::vector<int>& predicted,
                                          const std::vector<int>& actual,
                                          std::size_t num_classes);

  std::size_t num_classes() const { return classes_; }
  std::size_t total() const { return total_; }

  void add(int predicted, int actual);

  /// counts[actual][predicted].
  std::size_t count(int actual, int predicted) const;

  double accuracy() const;
  /// Of samples predicted as `cls`, the fraction truly `cls` (1 when the
  /// class is never predicted).
  double precision(int cls) const;
  /// Of samples truly `cls`, the fraction predicted `cls` (1 when the
  /// class never occurs).
  double recall(int cls) const;
  double f1(int cls) const;
  /// Unweighted mean F1 across classes.
  double macro_f1() const;

 private:
  std::size_t classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // classes_ x classes_, row = actual
};

}  // namespace snicit::train
