// Softmax cross-entropy, the paper's training loss for networks A-D.
#pragma once

#include <vector>

#include "sparse/dense_matrix.hpp"

namespace snicit::train {

using sparse::DenseMatrix;

/// Computes mean cross-entropy over the batch and writes dlogits
/// (= (softmax - onehot) / batch) into `dlogits` (same shape as logits).
float softmax_cross_entropy(const DenseMatrix& logits,
                            const std::vector<int>& labels,
                            DenseMatrix& dlogits);

/// Argmax over rows, per column.
std::vector<int> predict(const DenseMatrix& logits);

/// Fraction of columns whose argmax equals the label.
double accuracy(const DenseMatrix& logits, const std::vector<int>& labels);

}  // namespace snicit::train
