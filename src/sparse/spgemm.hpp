// Sparse-sparse matrix multiplication (spGEMM) and dense<->compressed
// batch conversion.
//
// SNICIT §3.3.1 considers running post-convergence updates as spGEMM —
// W (sparse) times the compressed batch Ŷ stored in CSC — and rejects it:
// Ŷ would need recompression every layer, and the mixed dense-centroid /
// sparse-residue columns make the work highly irregular. These routines
// implement that rejected alternative so bench_ablation can measure the
// paper's claim instead of just citing it.
#pragma once

#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense_matrix.hpp"

namespace snicit::sparse {

/// Compresses a dense column-major batch into CSC, dropping entries with
/// |v| <= tol (the per-layer recompression step the paper warns about).
CscMatrix dense_to_csc(const DenseMatrix& y, float tol = 0.0f);

/// Expands a CSC batch back to dense.
DenseMatrix csc_to_dense(const CscMatrix& y);

/// C = A * B with both operands compressed: A in CSC (m x k), B in CSC
/// (k x n); result dense (the feed-forward use densifies via bias +
/// activation anyway). Column-by-column Gustavson: for every nonzero
/// B(k, j), scatter A's column k scaled by it into out(:, j).
void spgemm(const CscMatrix& a, const CscMatrix& b, DenseMatrix& out);

}  // namespace snicit::sparse
