// Compressed Sparse Row matrix — the format used by the gather-style spMM
// kernels (one weight row per output neuron).
#pragma once

#include <span>
#include <vector>

#include "sparse/coo.hpp"

namespace snicit::sparse {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from COO (coalesces a copy; the input is left untouched).
  static CsrMatrix from_coo(const CooMatrix& coo);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Offset nnz() const { return static_cast<Offset>(values_.size()); }

  const std::vector<Offset>& row_ptr() const { return row_ptr_; }
  const std::vector<Index>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  std::span<const Index> row_cols(Index r) const {
    return {col_idx_.data() + row_ptr_[r],
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }
  std::span<const float> row_vals(Index r) const {
    return {values_.data() + row_ptr_[r],
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }

  /// Fraction of nonzero entries.
  double density() const {
    return rows_ == 0 || cols_ == 0
               ? 0.0
               : static_cast<double>(nnz()) /
                     (static_cast<double>(rows_) * cols_);
  }

  /// Structural invariants (monotone row_ptr, sorted in-range columns).
  bool is_valid() const;

  friend class CscMatrix;
  friend CsrMatrix transpose(const CsrMatrix&);

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Offset> row_ptr_;  // size rows_+1
  std::vector<Index> col_idx_;   // size nnz
  std::vector<float> values_;    // size nnz
};

/// Returns A^T in CSR form.
CsrMatrix transpose(const CsrMatrix& a);

}  // namespace snicit::sparse
