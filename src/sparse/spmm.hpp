// The spMM kernel family: sparse weight (N_out x N_in) times dense,
// column-major activation batch (N_in x B).
//
// The scalar strategies span the optimisation space XY-2021 explores on GPU:
//   * gather   — CSR, per output column, per output row (dense-input case)
//   * tiled    — CSR, amortises each weight-row traversal over a tile of
//                batch columns (cache blocking)
//   * scatter  — CSC, skips zero input activations entirely (the
//                activation-sparsity trick; wins when Y is sparse)
//   * gather over a column subset — SNICIT's load-reduced spMM, §3.3.1
//
// On top of those sits the optimized tier (the `_simd` / `_threaded`
// variants): register-blocked kernels that stream each weight row once per
// group of 8 batch columns with a `#pragma omp simd` lane loop (enabled by
// the SNICIT_SIMD build toggle; without it the same code compiles to
// portable scalar and stays correct), plus row-parallel drivers that split
// *output rows* across the thread pool for workloads with too few batch
// columns to fill it. Every optimized variant accumulates each output
// element in the exact nnz order of its scalar counterpart, so results are
// equal element-for-element — the property the differential equivalence
// suite (test_spmm_equivalence) locks down.
//
// The plain kernels compute *multiplication only*, with bias and
// activation as a separate pass (the paper's post-convergence kernels
// also split multiply and bias/activation, §3.3.1 adjustment (2)). Each
// kernel additionally has a `_fused` form that applies the SDGC epilogue
// min(max(acc + bias, 0), ymax) to each output column while it is still
// cache-hot from the core's stores, eliminating the second
// read-modify-write pass over the (by then cold) output. Because the
// epilogue touches each element only *after* its accumulation chain
// finishes, a fused kernel is bit-identical to its split counterpart
// followed by apply_bias_activation — the equivalence suite locks this
// down cell by cell.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense_matrix.hpp"

namespace snicit::sparse {

/// Bias + clipped-ReLU epilogue the fused kernels apply:
/// out = min(max(acc + b, 0), ymax), with b either per output row
/// (`bias[row]`, size must equal the weight's rows) or the scalar
/// `scalar_bias` when `bias` is empty (the SDGC benchmark nets).
struct BiasAct {
  std::span<const float> bias{};
  float scalar_bias = 0.0f;
  float ymax = 0.0f;
};

/// out = W * y for every column of y. out is fully overwritten.
void spmm_gather(const CsrMatrix& w, const DenseMatrix& y, DenseMatrix& out);

/// Gather kernel restricted to the listed batch columns; all other columns
/// of `out` are left untouched (callers own their contents).
void spmm_gather_cols(const CsrMatrix& w, const DenseMatrix& y,
                      std::span<const Index> columns, DenseMatrix& out);

/// Cache-blocked gather: each weight row is streamed once per tile of
/// `tile` batch columns.
void spmm_tiled(const CsrMatrix& w, const DenseMatrix& y, DenseMatrix& out,
                std::size_t tile = 16);

/// Scatter kernel over CSC weights: per batch column, only nonzero input
/// activations contribute, so cost scales with activation density.
void spmm_scatter(const CscMatrix& w, const DenseMatrix& y, DenseMatrix& out);

/// Scatter kernel restricted to the listed batch columns.
void spmm_scatter_cols(const CscMatrix& w, const DenseMatrix& y,
                       std::span<const Index> columns, DenseMatrix& out);

// --- Optimized kernel tier -------------------------------------------------

/// True when the library was compiled with SNICIT_SIMD (the blocked kernels
/// carry vectorization pragmas). The variants below exist either way.
bool simd_compiled();

/// Register-blocked gather: each weight row is streamed once per group of
/// 8 batch columns, lanes accumulate independently (same nnz order as
/// spmm_gather per element). Parallel over column groups.
void spmm_gather_simd(const CsrMatrix& w, const DenseMatrix& y,
                      DenseMatrix& out);

/// Blocked gather over a column subset; untouched columns are not written.
void spmm_gather_cols_simd(const CsrMatrix& w, const DenseMatrix& y,
                           std::span<const Index> columns, DenseMatrix& out);

/// Row-parallel blocked gather: output rows are split across the thread
/// pool, each range processing every column group. Wins over the
/// column-parallel variants when the (possibly load-reduced) batch has
/// fewer column groups than the pool has threads.
void spmm_gather_threaded(const CsrMatrix& w, const DenseMatrix& y,
                          DenseMatrix& out);

/// Row-parallel blocked gather over a column subset — the load-reduced
/// spMM front end used by snicit::postconv when few columns stay active.
void spmm_gather_cols_threaded(const CsrMatrix& w, const DenseMatrix& y,
                               std::span<const Index> columns,
                               DenseMatrix& out);

/// Register-blocked scatter: input rows whose activation is zero in every
/// lane of the group are skipped; nonzero groups scatter to 8 output
/// columns per weight-column traversal. Per-element accumulation order
/// matches spmm_scatter (zero lanes contribute exact zeros).
void spmm_scatter_simd(const CscMatrix& w, const DenseMatrix& y,
                       DenseMatrix& out);

/// Blocked scatter over a column subset.
void spmm_scatter_cols_simd(const CscMatrix& w, const DenseMatrix& y,
                            std::span<const Index> columns, DenseMatrix& out);

// --- Fused-epilogue tier ---------------------------------------------------
//
// Each form below runs the kernel of the same name and applies `epi` on
// the accumulator before the single store (for the scatter family, which
// accumulates in place / in its transpose panel, the epilogue rides the
// final write-out of each column instead). Results are bit-identical to
// the split kernel followed by apply_bias_activation on the same columns.

void spmm_gather_fused(const CsrMatrix& w, const DenseMatrix& y,
                       DenseMatrix& out, const BiasAct& epi);

void spmm_gather_cols_fused(const CsrMatrix& w, const DenseMatrix& y,
                            std::span<const Index> columns, DenseMatrix& out,
                            const BiasAct& epi);

void spmm_tiled_fused(const CsrMatrix& w, const DenseMatrix& y,
                      DenseMatrix& out, const BiasAct& epi,
                      std::size_t tile = 16);

void spmm_scatter_fused(const CscMatrix& w, const DenseMatrix& y,
                        DenseMatrix& out, const BiasAct& epi);

void spmm_scatter_cols_fused(const CscMatrix& w, const DenseMatrix& y,
                             std::span<const Index> columns, DenseMatrix& out,
                             const BiasAct& epi);

void spmm_gather_simd_fused(const CsrMatrix& w, const DenseMatrix& y,
                            DenseMatrix& out, const BiasAct& epi);

void spmm_gather_cols_simd_fused(const CsrMatrix& w, const DenseMatrix& y,
                                 std::span<const Index> columns,
                                 DenseMatrix& out, const BiasAct& epi);

void spmm_gather_threaded_fused(const CsrMatrix& w, const DenseMatrix& y,
                                DenseMatrix& out, const BiasAct& epi);

void spmm_gather_cols_threaded_fused(const CsrMatrix& w, const DenseMatrix& y,
                                     std::span<const Index> columns,
                                     DenseMatrix& out, const BiasAct& epi);

void spmm_scatter_simd_fused(const CscMatrix& w, const DenseMatrix& y,
                             DenseMatrix& out, const BiasAct& epi);

void spmm_scatter_cols_simd_fused(const CscMatrix& w, const DenseMatrix& y,
                                  std::span<const Index> columns,
                                  DenseMatrix& out, const BiasAct& epi);

/// In place: y = clamp(y + bias, 0, ymax), the SDGC activation
/// σ(x) = min(max(x, 0), ymax) with per-row bias.
void apply_bias_activation(DenseMatrix& y, std::span<const float> bias,
                           float ymax);

/// Same with a single scalar bias for every neuron (SDGC benchmarks).
void apply_bias_activation(DenseMatrix& y, float bias, float ymax);

/// The epilogue restricted to the listed columns — the split counterpart
/// of the `_cols_fused` kernels (other columns are left untouched).
void apply_bias_activation_cols(DenseMatrix& y, std::span<const Index> columns,
                                const BiasAct& epi);

/// Fraction of nonzero entries in the listed columns (density estimator
/// used by the XY-2021-style cost model). Samples at most `max_rows` rows
/// per column for large matrices.
double estimate_column_density(const DenseMatrix& y,
                               std::span<const Index> columns,
                               std::size_t max_rows = 1024);

}  // namespace snicit::sparse
