// The spMM kernel family: sparse weight (N_out x N_in) times dense,
// column-major activation batch (N_in x B).
//
// The four strategies span the optimisation space XY-2021 explores on GPU:
//   * gather   — CSR, per output column, per output row (dense-input case)
//   * tiled    — CSR, amortises each weight-row traversal over a tile of
//                batch columns (cache blocking)
//   * scatter  — CSC, skips zero input activations entirely (the
//                activation-sparsity trick; wins when Y is sparse)
//   * gather over a column subset — SNICIT's load-reduced spMM, §3.3.1
//
// All kernels compute *multiplication only*; bias and activation are a
// separate fused pass (the paper's post-convergence kernels also split
// multiply and bias/activation, §3.3.1 adjustment (2)).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense_matrix.hpp"

namespace snicit::sparse {

/// out = W * y for every column of y. out is fully overwritten.
void spmm_gather(const CsrMatrix& w, const DenseMatrix& y, DenseMatrix& out);

/// Gather kernel restricted to the listed batch columns; all other columns
/// of `out` are left untouched (callers own their contents).
void spmm_gather_cols(const CsrMatrix& w, const DenseMatrix& y,
                      std::span<const Index> columns, DenseMatrix& out);

/// Cache-blocked gather: each weight row is streamed once per tile of
/// `tile` batch columns.
void spmm_tiled(const CsrMatrix& w, const DenseMatrix& y, DenseMatrix& out,
                std::size_t tile = 16);

/// Scatter kernel over CSC weights: per batch column, only nonzero input
/// activations contribute, so cost scales with activation density.
void spmm_scatter(const CscMatrix& w, const DenseMatrix& y, DenseMatrix& out);

/// Scatter kernel restricted to the listed batch columns.
void spmm_scatter_cols(const CscMatrix& w, const DenseMatrix& y,
                       std::span<const Index> columns, DenseMatrix& out);

/// In place: y = clamp(y + bias, 0, ymax), the SDGC activation
/// σ(x) = min(max(x, 0), ymax) with per-row bias.
void apply_bias_activation(DenseMatrix& y, std::span<const float> bias,
                           float ymax);

/// Same with a single scalar bias for every neuron (SDGC benchmarks).
void apply_bias_activation(DenseMatrix& y, float bias, float ymax);

/// Fraction of nonzero entries in the listed columns (density estimator
/// used by the XY-2021-style cost model). Samples at most `max_rows` rows
/// per column for large matrices.
double estimate_column_density(const DenseMatrix& y,
                               std::span<const Index> columns,
                               std::size_t max_rows = 1024);

}  // namespace snicit::sparse
