#include "sparse/dense_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "platform/common.hpp"

namespace snicit::sparse {

DenseMatrix DenseMatrix::columns(std::size_t begin, std::size_t end) const {
  SNICIT_CHECK(begin <= end && end <= cols_, "column slice out of range");
  DenseMatrix out(rows_, end - begin);
  std::copy_n(col(begin), rows_ * (end - begin), out.data());
  return out;
}

std::size_t DenseMatrix::count_nonzeros(float tol) const {
  std::size_t n = 0;
  for (float v : data_) {
    if (std::fabs(v) > tol) ++n;
  }
  return n;
}

std::size_t DenseMatrix::column_nonzeros(std::size_t j, float tol) const {
  const float* c = col(j);
  std::size_t n = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (std::fabs(c[r]) > tol) ++n;
  }
  return n;
}

float DenseMatrix::max_abs_diff(const DenseMatrix& a, const DenseMatrix& b) {
  SNICIT_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
               "shape mismatch in max_abs_diff");
  float m = 0.0f;
  const std::size_t n = a.rows() * a.cols();
  for (std::size_t i = 0; i < n; ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace snicit::sparse
