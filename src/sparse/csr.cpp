#include "sparse/csr.hpp"

#include <algorithm>

#include "platform/common.hpp"

namespace snicit::sparse {

CsrMatrix CsrMatrix::from_coo(const CooMatrix& coo) {
  CooMatrix sorted = coo;
  sorted.coalesce();

  CsrMatrix m;
  m.rows_ = coo.rows();
  m.cols_ = coo.cols();
  m.row_ptr_.assign(static_cast<std::size_t>(m.rows_) + 1, 0);
  m.col_idx_.resize(sorted.entries().size());
  m.values_.resize(sorted.entries().size());

  for (const auto& t : sorted.entries()) {
    ++m.row_ptr_[static_cast<std::size_t>(t.row) + 1];
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(m.rows_); ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  // Entries are already (row, col)-sorted, so a single pass fills in order.
  for (std::size_t i = 0; i < sorted.entries().size(); ++i) {
    m.col_idx_[i] = sorted.entries()[i].col;
    m.values_[i] = sorted.entries()[i].value;
  }
  return m;
}

bool CsrMatrix::is_valid() const {
  if (row_ptr_.size() != static_cast<std::size_t>(rows_) + 1) return false;
  if (row_ptr_.front() != 0) return false;
  if (row_ptr_.back() != nnz()) return false;
  for (Index r = 0; r < rows_; ++r) {
    if (row_ptr_[r] > row_ptr_[r + 1]) return false;
    for (Offset k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k] < 0 || col_idx_[k] >= cols_) return false;
      if (k > row_ptr_[r] && col_idx_[k - 1] >= col_idx_[k]) return false;
    }
  }
  return true;
}

CsrMatrix transpose(const CsrMatrix& a) {
  CsrMatrix t;
  t.rows_ = a.cols();
  t.cols_ = a.rows();
  t.row_ptr_.assign(static_cast<std::size_t>(t.rows_) + 1, 0);
  t.col_idx_.resize(a.nnz());
  t.values_.resize(a.nnz());

  for (Offset k = 0; k < a.nnz(); ++k) {
    ++t.row_ptr_[static_cast<std::size_t>(a.col_idx()[k]) + 1];
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(t.rows_); ++r) {
    t.row_ptr_[r + 1] += t.row_ptr_[r];
  }
  std::vector<Offset> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (Index r = 0; r < a.rows(); ++r) {
    for (Offset k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      const Index c = a.col_idx()[k];
      const Offset pos = cursor[c]++;
      t.col_idx_[pos] = r;
      t.values_[pos] = a.values()[k];
    }
  }
  return t;
}

}  // namespace snicit::sparse
