#include "sparse/coo.hpp"

#include <algorithm>

#include "platform/common.hpp"

namespace snicit::sparse {

void CooMatrix::add(Index row, Index col, float value) {
  SNICIT_DCHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                "COO entry out of range");
  entries_.push_back({row, col, value});
}

void CooMatrix::coalesce() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].row == entries_[i].row &&
        entries_[out - 1].col == entries_[i].col) {
      entries_[out - 1].value += entries_[i].value;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

}  // namespace snicit::sparse
