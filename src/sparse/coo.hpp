// Coordinate-format sparse matrix: the assembly/interchange format.
// Weight generators and file importers build COO; kernels consume the
// compressed formats produced from it (CsrMatrix / CscMatrix).
#pragma once

#include <cstdint>
#include <vector>

namespace snicit::sparse {

using Index = std::int32_t;   // row/col index; SDGC tops out at 65536 rows
using Offset = std::int64_t;  // nnz offsets (> 2^31 for the largest nets)

struct Triplet {
  Index row;
  Index col;
  float value;
};

class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(Index rows, Index cols) : rows_(rows), cols_(cols) {}

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Offset nnz() const { return static_cast<Offset>(entries_.size()); }

  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Appends an entry; duplicate (row, col) pairs are summed on conversion.
  void add(Index row, Index col, float value);

  const std::vector<Triplet>& entries() const { return entries_; }
  std::vector<Triplet>& entries() { return entries_; }

  /// Sorts entries by (row, col) and merges duplicates by summation.
  void coalesce();

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Triplet> entries_;
};

}  // namespace snicit::sparse
