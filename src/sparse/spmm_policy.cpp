#include "sparse/spmm_policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "platform/common.hpp"
#include "platform/env.hpp"
#include "platform/fault_injection.hpp"
#include "platform/thread_pool.hpp"
#include "sparse/spmm.hpp"

namespace snicit::sparse {

const char* to_string(SpmmVariant v) {
  switch (v) {
    case SpmmVariant::kAuto: return "auto";
    case SpmmVariant::kGatherScalar: return "gather";
    case SpmmVariant::kGatherSimd: return "gather_simd";
    case SpmmVariant::kGatherThreaded: return "gather_threaded";
    case SpmmVariant::kTiled: return "tiled";
    case SpmmVariant::kScatter: return "scatter";
    case SpmmVariant::kScatterSimd: return "scatter_simd";
  }
  return "unknown";
}

std::optional<SpmmVariant> parse_spmm_variant(std::string_view name) {
  for (int i = -1; i < kNumSpmmVariants; ++i) {
    const auto v = static_cast<SpmmVariant>(i);
    if (name == to_string(v)) return v;
  }
  return std::nullopt;
}

const char* to_string(SpmmEpilogue e) {
  switch (e) {
    case SpmmEpilogue::kFused: return "fused";
    case SpmmEpilogue::kSplit: return "split";
  }
  return "unknown";
}

std::optional<SpmmEpilogue> parse_spmm_epilogue(std::string_view name) {
  if (name == "fused") return SpmmEpilogue::kFused;
  if (name == "split") return SpmmEpilogue::kSplit;
  return std::nullopt;
}

bool apply_spmm_spec(std::string_view spec, SpmmPolicy& policy) {
  std::string_view variant_part = spec;
  std::string_view epilogue_part;
  if (const auto plus = spec.find('+'); plus != std::string_view::npos) {
    variant_part = spec.substr(0, plus);
    epilogue_part = spec.substr(plus + 1);
    if (epilogue_part.empty()) return false;
  }
  // Bare epilogue name: force the mode, leave the variant alone.
  if (epilogue_part.empty()) {
    if (const auto e = parse_spmm_epilogue(variant_part)) {
      policy.epilogue = *e;
      return true;
    }
  }
  const auto v = parse_spmm_variant(variant_part);
  if (!v) return false;
  SpmmEpilogue epi = policy.epilogue;
  if (!epilogue_part.empty()) {
    const auto e = parse_spmm_epilogue(epilogue_part);
    if (!e) return false;
    epi = *e;
  }
  policy.variant = *v;
  policy.epilogue = epi;
  return true;
}

SpmmPolicy SpmmPolicy::from_env() {
  SpmmPolicy policy;
  const std::string name = platform::env_string("SNICIT_SPMM", "");
  if (!name.empty()) {
    apply_spmm_spec(name, policy);
  }
  const auto tile = platform::env_int("SNICIT_SPMM_TILE", 0);
  if (tile >= 1 && tile <= 64) {
    policy.tile = static_cast<std::size_t>(tile);
  }
  return policy;
}

namespace {

/// Lanes a blocked kernel actually fills for this batch width.
std::size_t lane_width(std::size_t batch_cols) {
  return std::min<std::size_t>(8, std::max<std::size_t>(1, batch_cols));
}

/// Weight-stream amortisation of a bw-lane blocked kernel: the row
/// pointers/indices/values are read once per group instead of once per
/// column and the lane loop runs as one bw-wide vector FMA against the
/// transposed activation panel, leaving a small per-lane floor. The curve
/// is fitted to the bench_spmm_kernels grid (8 lanes measure ~0.12-0.23x
/// scalar gather on the SDGC-shaped workloads).
double amortised(std::size_t bw) {
  return 0.12 + 0.88 / static_cast<double>(bw);
}

std::size_t pool_size(const SpmmPolicy& policy) {
  if (!policy.allow_threads || platform::in_serial_region()) return 1;
  return platform::ThreadPool::global().size();
}

}  // namespace

double spmm_epilogue_cost(const SpmmProblem& p, const SpmmPolicy& policy) {
  if (!p.has_epilogue || p.batch_cols == 0) return 0.0;
  if (policy.epilogue == SpmmEpilogue::kFused) return 0.0;
  // Split: one more read-modify-write sweep over the output column —
  // rows elements against nnz units of gather work, floored so the term
  // never vanishes entirely on very dense weights.
  return std::max(0.01, static_cast<double>(p.rows) /
                            static_cast<double>(
                                std::max<std::size_t>(1, p.nnz)));
}

namespace {

double variant_cost_base(SpmmVariant v, const SpmmProblem& p,
                         const SpmmPolicy& policy) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (p.batch_cols == 0) return 0.0;
  const std::size_t pool = pool_size(policy);
  const std::size_t bw = lane_width(p.batch_cols);
  const bool blockable = p.batch_cols >= policy.min_cols_for_blocking;
  // Parallel slots each driver can actually occupy.
  const auto slots = [&](std::size_t work_items) {
    return static_cast<double>(
        std::min<std::size_t>(pool, std::max<std::size_t>(1, work_items)));
  };
  const std::size_t groups = (p.batch_cols + 7) / 8;
  // Scatter zeroes its output column before accumulating: rows writes per
  // column, i.e. rows/nnz per unit of gather work, plus the constant
  // zero-test overhead from the policy.
  const double scatter_setup =
      policy.scatter_setup_cost +
      static_cast<double>(p.rows) /
          static_cast<double>(std::max<std::size_t>(1, p.nnz));
  switch (v) {
    case SpmmVariant::kGatherScalar:
      return 1.0 / slots(p.batch_cols);
    case SpmmVariant::kGatherSimd:
      return (blockable ? amortised(bw) : 1.0) / slots(groups);
    case SpmmVariant::kGatherThreaded: {
      // Row split keeps every thread busy regardless of batch width, but
      // re-reads the column-group pointers per row range; only worth it
      // for tall-enough weights.
      if (p.rows < policy.row_parallel_min_rows && pool > 1) return kInf;
      return (blockable ? amortised(bw) : 1.0) / static_cast<double>(pool) +
             0.02;
    }
    case SpmmVariant::kTiled: {
      const double tw = static_cast<double>(
          std::min<std::size_t>(policy.tile, p.batch_cols));
      const std::size_t tiles =
          (p.batch_cols + policy.tile - 1) / std::max<std::size_t>(1, policy.tile);
      // Runtime-width inner loop: same amortisation idea as the blocked
      // kernels but with a variable trip count the compiler cannot keep
      // fully register-resident (measures ~0.65x scalar gather at the
      // default tile on the bench grid).
      return (0.60 + 0.40 / tw) / slots(tiles);
    }
    case SpmmVariant::kScatter:
      if (!p.has_csc) return kInf;
      return (p.density + scatter_setup) / slots(p.batch_cols);
    case SpmmVariant::kScatterSimd: {
      if (!p.has_csc || !blockable) return kInf;
      // Group-level zero skip: an input row is processed when *any* of the
      // bw lanes is nonzero. The setup (accumulator memset + panel
      // transpose-out) scales per lane-column just like scalar scatter's,
      // so it is not amortised by the group.
      const double group_density =
          1.0 - std::pow(1.0 - std::clamp(p.density, 0.0, 1.0),
                         static_cast<double>(bw));
      return (group_density * amortised(bw) + scatter_setup) / slots(groups);
    }
    case SpmmVariant::kAuto: break;
  }
  return kInf;
}

}  // namespace

double spmm_variant_cost(SpmmVariant v, const SpmmProblem& p,
                         const SpmmPolicy& policy) {
  // The epilogue term is uniform across variants (every arm stores the
  // same number of output elements), so it shifts the whole cost surface
  // without disturbing which arm wins — but keeps the reported costs
  // honest for the bench grid and lets callers compare fused vs split.
  return variant_cost_base(v, p, policy) + spmm_epilogue_cost(p, policy);
}

SpmmVariant select_spmm_variant(const SpmmProblem& p,
                                const SpmmPolicy& policy) {
  if (policy.variant != SpmmVariant::kAuto) return policy.variant;
  SpmmVariant best = SpmmVariant::kGatherScalar;
  double best_cost = spmm_variant_cost(best, p, policy);
  for (int i = 1; i < kNumSpmmVariants; ++i) {
    const auto v = static_cast<SpmmVariant>(i);
    const double cost = spmm_variant_cost(v, p, policy);
    if (cost < best_cost) {
      best = v;
      best_cost = cost;
    }
  }
  return best;
}

namespace {

SpmmProblem make_problem(const CsrMatrix& w, const CscMatrix* w_csc,
                         std::size_t batch_cols, double density) {
  SpmmProblem p;
  p.rows = static_cast<std::size_t>(w.rows());
  p.nnz = static_cast<std::size_t>(w.nnz());
  p.batch_cols = batch_cols;
  p.density = density;
  p.has_csc = (w_csc != nullptr);
  return p;
}

const CscMatrix& require_csc(const CscMatrix* w_csc) {
  SNICIT_CHECK(w_csc != nullptr,
               "scatter spMM variant forced without a CSC weight mirror");
  return *w_csc;
}

}  // namespace

SpmmVariant spmm_dispatch(const CsrMatrix& w, const CscMatrix* w_csc,
                          const DenseMatrix& y, DenseMatrix& out,
                          double density, const SpmmPolicy& policy) {
  const auto v = select_spmm_variant(
      make_problem(w, w_csc, y.cols(), density), policy);
  switch (v) {
    case SpmmVariant::kGatherScalar: spmm_gather(w, y, out); break;
    case SpmmVariant::kGatherSimd: spmm_gather_simd(w, y, out); break;
    case SpmmVariant::kGatherThreaded: spmm_gather_threaded(w, y, out); break;
    case SpmmVariant::kTiled: spmm_tiled(w, y, out, policy.tile); break;
    case SpmmVariant::kScatter: spmm_scatter(require_csc(w_csc), y, out); break;
    case SpmmVariant::kScatterSimd:
      spmm_scatter_simd(require_csc(w_csc), y, out);
      break;
    case SpmmVariant::kAuto:
      platform::fatal(__FILE__, __LINE__, "selector returned kAuto");
  }
  // Injected kernel corruption (drills): one NaN in the output tile, the
  // signature of a bad reduction/race a production kernel could produce.
  if (platform::fault::should_fire("spmm_nan") && out.rows() > 0 &&
      out.cols() > 0) {
    out.col(0)[0] = std::numeric_limits<float>::quiet_NaN();
  }
  return v;
}

SpmmVariant spmm_dispatch_cols(const CsrMatrix& w, const CscMatrix* w_csc,
                               const DenseMatrix& y,
                               std::span<const Index> columns,
                               DenseMatrix& out, double density,
                               const SpmmPolicy& policy) {
  const auto v = select_spmm_variant(
      make_problem(w, w_csc, columns.size(), density), policy);
  switch (v) {
    case SpmmVariant::kGatherScalar: spmm_gather_cols(w, y, columns, out); break;
    case SpmmVariant::kGatherSimd:
      spmm_gather_cols_simd(w, y, columns, out);
      break;
    case SpmmVariant::kGatherThreaded:
      spmm_gather_cols_threaded(w, y, columns, out);
      break;
    case SpmmVariant::kTiled:
      // No subset form of the tiled kernel: the 8-wide blocked gather is
      // the same cache-blocking idea with a fixed tile.
      spmm_gather_cols_simd(w, y, columns, out);
      break;
    case SpmmVariant::kScatter:
      spmm_scatter_cols(require_csc(w_csc), y, columns, out);
      break;
    case SpmmVariant::kScatterSimd:
      spmm_scatter_cols_simd(require_csc(w_csc), y, columns, out);
      break;
    case SpmmVariant::kAuto:
      platform::fatal(__FILE__, __LINE__, "selector returned kAuto");
  }
  // Injected corruption of the load-reduced (post-convergence) multiply:
  // poisons the first column actually dispatched, which the Eq. (5)
  // update reads — the SNICIT divergence guard must detect it.
  if (platform::fault::should_fire("nan_tile") && !columns.empty() &&
      out.rows() > 0) {
    out.col(static_cast<std::size_t>(columns.front()))[0] =
        std::numeric_limits<float>::quiet_NaN();
  }
  return v;
}

SpmmVariant spmm_dispatch_fused(const CsrMatrix& w, const CscMatrix* w_csc,
                                const DenseMatrix& y, DenseMatrix& out,
                                double density, const BiasAct& epi,
                                const SpmmPolicy& policy) {
  SpmmProblem p = make_problem(w, w_csc, y.cols(), density);
  p.has_epilogue = true;
  const auto v = select_spmm_variant(p, policy);
  if (policy.epilogue == SpmmEpilogue::kSplit) {
    switch (v) {
      case SpmmVariant::kGatherScalar: spmm_gather(w, y, out); break;
      case SpmmVariant::kGatherSimd: spmm_gather_simd(w, y, out); break;
      case SpmmVariant::kGatherThreaded:
        spmm_gather_threaded(w, y, out);
        break;
      case SpmmVariant::kTiled: spmm_tiled(w, y, out, policy.tile); break;
      case SpmmVariant::kScatter:
        spmm_scatter(require_csc(w_csc), y, out);
        break;
      case SpmmVariant::kScatterSimd:
        spmm_scatter_simd(require_csc(w_csc), y, out);
        break;
      case SpmmVariant::kAuto:
        platform::fatal(__FILE__, __LINE__, "selector returned kAuto");
    }
    if (!epi.bias.empty()) {
      apply_bias_activation(out, epi.bias, epi.ymax);
    } else {
      apply_bias_activation(out, epi.scalar_bias, epi.ymax);
    }
  } else {
    switch (v) {
      case SpmmVariant::kGatherScalar: spmm_gather_fused(w, y, out, epi); break;
      case SpmmVariant::kGatherSimd:
        spmm_gather_simd_fused(w, y, out, epi);
        break;
      case SpmmVariant::kGatherThreaded:
        spmm_gather_threaded_fused(w, y, out, epi);
        break;
      case SpmmVariant::kTiled:
        spmm_tiled_fused(w, y, out, epi, policy.tile);
        break;
      case SpmmVariant::kScatter:
        spmm_scatter_fused(require_csc(w_csc), y, out, epi);
        break;
      case SpmmVariant::kScatterSimd:
        spmm_scatter_simd_fused(require_csc(w_csc), y, out, epi);
        break;
      case SpmmVariant::kAuto:
        platform::fatal(__FILE__, __LINE__, "selector returned kAuto");
    }
  }
  // The spmm_nan drill fires after the epilogue in both modes: min/max
  // propagate NaN, so a poisoned accumulator survives the fused store too
  // and the detection contract is mode-independent.
  if (platform::fault::should_fire("spmm_nan") && out.rows() > 0 &&
      out.cols() > 0) {
    out.col(0)[0] = std::numeric_limits<float>::quiet_NaN();
  }
  return v;
}

SpmmVariant spmm_dispatch_cols_fused(const CsrMatrix& w,
                                     const CscMatrix* w_csc,
                                     const DenseMatrix& y,
                                     std::span<const Index> columns,
                                     DenseMatrix& out, double density,
                                     const BiasAct& epi,
                                     const SpmmPolicy& policy) {
  SpmmProblem p = make_problem(w, w_csc, columns.size(), density);
  p.has_epilogue = true;
  const auto v = select_spmm_variant(p, policy);
  if (policy.epilogue == SpmmEpilogue::kSplit) {
    switch (v) {
      case SpmmVariant::kGatherScalar:
        spmm_gather_cols(w, y, columns, out);
        break;
      case SpmmVariant::kGatherSimd:
        spmm_gather_cols_simd(w, y, columns, out);
        break;
      case SpmmVariant::kGatherThreaded:
        spmm_gather_cols_threaded(w, y, columns, out);
        break;
      case SpmmVariant::kTiled:
        // No subset form of the tiled kernel: the 8-wide blocked gather is
        // the same cache-blocking idea with a fixed tile.
        spmm_gather_cols_simd(w, y, columns, out);
        break;
      case SpmmVariant::kScatter:
        spmm_scatter_cols(require_csc(w_csc), y, columns, out);
        break;
      case SpmmVariant::kScatterSimd:
        spmm_scatter_cols_simd(require_csc(w_csc), y, columns, out);
        break;
      case SpmmVariant::kAuto:
        platform::fatal(__FILE__, __LINE__, "selector returned kAuto");
    }
    apply_bias_activation_cols(out, columns, epi);
  } else {
    switch (v) {
      case SpmmVariant::kGatherScalar:
        spmm_gather_cols_fused(w, y, columns, out, epi);
        break;
      case SpmmVariant::kGatherSimd:
        spmm_gather_cols_simd_fused(w, y, columns, out, epi);
        break;
      case SpmmVariant::kGatherThreaded:
        spmm_gather_cols_threaded_fused(w, y, columns, out, epi);
        break;
      case SpmmVariant::kTiled:
        spmm_gather_cols_simd_fused(w, y, columns, out, epi);
        break;
      case SpmmVariant::kScatter:
        spmm_scatter_cols_fused(require_csc(w_csc), y, columns, out, epi);
        break;
      case SpmmVariant::kScatterSimd:
        spmm_scatter_cols_simd_fused(require_csc(w_csc), y, columns, out, epi);
        break;
      case SpmmVariant::kAuto:
        platform::fatal(__FILE__, __LINE__, "selector returned kAuto");
    }
  }
  // Same post-epilogue poison point as spmm_dispatch_cols — the SNICIT
  // divergence guard must detect it regardless of epilogue mode.
  if (platform::fault::should_fire("nan_tile") && !columns.empty() &&
      out.rows() > 0) {
    out.col(static_cast<std::size_t>(columns.front()))[0] =
        std::numeric_limits<float>::quiet_NaN();
  }
  return v;
}

}  // namespace snicit::sparse
