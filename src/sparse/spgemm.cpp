#include "sparse/spgemm.hpp"

#include <cmath>
#include <cstring>

#include "platform/common.hpp"
#include "platform/thread_pool.hpp"
#include "sparse/coo.hpp"

namespace snicit::sparse {

CscMatrix dense_to_csc(const DenseMatrix& y, float tol) {
  CooMatrix coo(static_cast<Index>(y.rows()), static_cast<Index>(y.cols()));
  for (std::size_t j = 0; j < y.cols(); ++j) {
    const float* col = y.col(j);
    for (std::size_t r = 0; r < y.rows(); ++r) {
      if (std::fabs(col[r]) > tol) {
        coo.add(static_cast<Index>(r), static_cast<Index>(j), col[r]);
      }
    }
  }
  return CscMatrix::from_coo(coo);
}

DenseMatrix csc_to_dense(const CscMatrix& y) {
  DenseMatrix out(static_cast<std::size_t>(y.rows()),
                  static_cast<std::size_t>(y.cols()));
  for (Index c = 0; c < y.cols(); ++c) {
    const auto rows = y.col_rows(c);
    const auto vals = y.col_vals(c);
    float* col = out.col(static_cast<std::size_t>(c));
    for (std::size_t k = 0; k < rows.size(); ++k) {
      col[rows[k]] = vals[k];
    }
  }
  return out;
}

void spgemm(const CscMatrix& a, const CscMatrix& b, DenseMatrix& out) {
  SNICIT_CHECK(a.cols() == b.rows(), "spGEMM inner dimension mismatch");
  SNICIT_CHECK(out.rows() == static_cast<std::size_t>(a.rows()) &&
                   out.cols() == static_cast<std::size_t>(b.cols()),
               "spGEMM output shape mismatch");
  platform::parallel_for_ranges(
      0, static_cast<std::size_t>(b.cols()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          float* SNICIT_RESTRICT acc = out.col(j);
          std::memset(acc, 0,
                      sizeof(float) * static_cast<std::size_t>(a.rows()));
          const auto b_rows = b.col_rows(static_cast<Index>(j));
          const auto b_vals = b.col_vals(static_cast<Index>(j));
          for (std::size_t p = 0; p < b_rows.size(); ++p) {
            const Index k = b_rows[p];
            const float scale = b_vals[p];
            const auto a_rows = a.col_rows(k);
            const auto a_vals = a.col_vals(k);
            for (std::size_t q = 0; q < a_rows.size(); ++q) {
              acc[a_rows[q]] += a_vals[q] * scale;
            }
          }
        }
      });
}

}  // namespace snicit::sparse
