// Compressed Sparse Column matrix — the format used by the scatter-style
// spMM kernel, which skips zero activations of the input column entirely
// (the activation-sparsity trick SDGC codes rely on).
#pragma once

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace snicit::sparse {

class CscMatrix {
 public:
  CscMatrix() = default;

  static CscMatrix from_coo(const CooMatrix& coo);
  static CscMatrix from_csr(const CsrMatrix& csr);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Offset nnz() const { return static_cast<Offset>(values_.size()); }

  const std::vector<Offset>& col_ptr() const { return col_ptr_; }
  const std::vector<Index>& row_idx() const { return row_idx_; }
  const std::vector<float>& values() const { return values_; }

  std::span<const Index> col_rows(Index c) const {
    return {row_idx_.data() + col_ptr_[c],
            static_cast<std::size_t>(col_ptr_[c + 1] - col_ptr_[c])};
  }
  std::span<const float> col_vals(Index c) const {
    return {values_.data() + col_ptr_[c],
            static_cast<std::size_t>(col_ptr_[c + 1] - col_ptr_[c])};
  }

  bool is_valid() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Offset> col_ptr_;  // size cols_+1
  std::vector<Index> row_idx_;   // size nnz
  std::vector<float> values_;    // size nnz
};

}  // namespace snicit::sparse
