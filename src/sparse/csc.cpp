#include "sparse/csc.hpp"

#include <algorithm>

#include "platform/common.hpp"

namespace snicit::sparse {

CscMatrix CscMatrix::from_coo(const CooMatrix& coo) {
  return from_csr(CsrMatrix::from_coo(coo));
}

CscMatrix CscMatrix::from_csr(const CsrMatrix& csr) {
  CscMatrix m;
  m.rows_ = csr.rows();
  m.cols_ = csr.cols();
  m.col_ptr_.assign(static_cast<std::size_t>(m.cols_) + 1, 0);
  m.row_idx_.resize(csr.nnz());
  m.values_.resize(csr.nnz());

  for (Offset k = 0; k < csr.nnz(); ++k) {
    ++m.col_ptr_[static_cast<std::size_t>(csr.col_idx()[k]) + 1];
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(m.cols_); ++c) {
    m.col_ptr_[c + 1] += m.col_ptr_[c];
  }
  std::vector<Offset> cursor(m.col_ptr_.begin(), m.col_ptr_.end() - 1);
  for (Index r = 0; r < csr.rows(); ++r) {
    for (Offset k = csr.row_ptr()[r]; k < csr.row_ptr()[r + 1]; ++k) {
      const Index c = csr.col_idx()[k];
      const Offset pos = cursor[c]++;
      m.row_idx_[pos] = r;
      m.values_[pos] = csr.values()[k];
    }
  }
  return m;
}

bool CscMatrix::is_valid() const {
  if (col_ptr_.size() != static_cast<std::size_t>(cols_) + 1) return false;
  if (col_ptr_.front() != 0) return false;
  if (col_ptr_.back() != nnz()) return false;
  for (Index c = 0; c < cols_; ++c) {
    if (col_ptr_[c] > col_ptr_[c + 1]) return false;
    for (Offset k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      if (row_idx_[k] < 0 || row_idx_[k] >= rows_) return false;
      if (k > col_ptr_[c] && row_idx_[k - 1] >= row_idx_[k]) return false;
    }
  }
  return true;
}

}  // namespace snicit::sparse
