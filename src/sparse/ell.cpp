#include "sparse/ell.hpp"

#include <algorithm>

#include "platform/common.hpp"
#include "platform/thread_pool.hpp"

namespace snicit::sparse {

EllMatrix EllMatrix::from_csr(const CsrMatrix& csr) {
  EllMatrix m;
  m.rows_ = csr.rows();
  m.cols_ = csr.cols();
  m.nnz_ = csr.nnz();
  Offset width = 0;
  for (Index r = 0; r < csr.rows(); ++r) {
    width = std::max<Offset>(width, csr.row_ptr()[r + 1] - csr.row_ptr()[r]);
  }
  m.width_ = static_cast<Index>(width);
  const std::size_t slots =
      static_cast<std::size_t>(m.rows_) * static_cast<std::size_t>(m.width_);
  m.col_idx_.assign(slots, kPad);
  m.values_.assign(slots, 0.0f);
  for (Index r = 0; r < csr.rows(); ++r) {
    const auto cols = csr.row_cols(r);
    const auto vals = csr.row_vals(r);
    const std::size_t base = static_cast<std::size_t>(r) * m.width_;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      m.col_idx_[base + k] = cols[k];
      m.values_[base + k] = vals[k];
    }
  }
  return m;
}

EllMatrix EllMatrix::from_coo(const CooMatrix& coo) {
  return from_csr(CsrMatrix::from_coo(coo));
}

double EllMatrix::padding_ratio() const {
  const std::size_t slots = col_idx_.size();
  if (slots == 0) return 0.0;
  return 1.0 - static_cast<double>(nnz_) / static_cast<double>(slots);
}

bool EllMatrix::is_valid() const {
  if (col_idx_.size() != values_.size()) return false;
  if (col_idx_.size() !=
      static_cast<std::size_t>(rows_) * static_cast<std::size_t>(width_)) {
    return false;
  }
  Offset real = 0;
  for (std::size_t i = 0; i < col_idx_.size(); ++i) {
    const Index c = col_idx_[i];
    if (c == kPad) {
      if (values_[i] != 0.0f) return false;  // padding must carry 0
      continue;
    }
    if (c < 0 || c >= cols_) return false;
    ++real;
  }
  return real == nnz_;
}

namespace {

void ell_column(const EllMatrix& w, const float* SNICIT_RESTRICT y_col,
                float* SNICIT_RESTRICT out_col) {
  const Index* SNICIT_RESTRICT ci = w.col_idx().data();
  const float* SNICIT_RESTRICT vs = w.values().data();
  const Index rows = w.rows();
  const Index width = w.width();
  for (Index i = 0; i < rows; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * width;
    float acc = 0.0f;
    for (Index k = 0; k < width; ++k) {
      // Padding slots carry value 0, so clamping their index to 0 keeps
      // the loop branch-free without affecting the sum.
      const Index c = std::max<Index>(ci[base + k], 0);
      acc += vs[base + k] * y_col[c];
    }
    out_col[i] = acc;
  }
}

}  // namespace

void spmm_ell(const EllMatrix& w, const DenseMatrix& y, DenseMatrix& out) {
  SNICIT_CHECK(static_cast<std::size_t>(w.cols()) == y.rows(),
               "ELL spMM inner dimension mismatch");
  SNICIT_CHECK(static_cast<std::size_t>(w.rows()) == out.rows() &&
                   y.cols() == out.cols(),
               "ELL spMM output shape mismatch");
  platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      ell_column(w, y.col(j), out.col(j));
    }
  });
}

void spmm_ell_cols(const EllMatrix& w, const DenseMatrix& y,
                   std::span<const Index> columns, DenseMatrix& out) {
  SNICIT_CHECK(static_cast<std::size_t>(w.cols()) == y.rows(),
               "ELL spMM inner dimension mismatch");
  SNICIT_CHECK(static_cast<std::size_t>(w.rows()) == out.rows() &&
                   y.cols() == out.cols(),
               "ELL spMM output shape mismatch");
  platform::parallel_for_ranges(0, columns.size(), [&](std::size_t lo,
                                                       std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const auto j = static_cast<std::size_t>(columns[k]);
      ell_column(w, y.col(j), out.col(j));
    }
  });
}

}  // namespace snicit::sparse
