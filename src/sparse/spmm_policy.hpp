// Cost-model kernel selection for the spMM family — the library-level
// generalisation of XY-2021's optimisation-space search.
//
// XY-2021 predicts the best kernel per layer from a measured activation
// density; baselines/autotune measures instead of predicting. Both engines
// previously hard-coded a two-or-three-arm space. This header owns the
// *full* space — scalar gather, register-blocked SIMD gather, row-parallel
// threaded gather, cache-tiled gather, scatter, blocked scatter — plus the
// analytic cost model that picks among them from the facts every engine
// already has on hand: measured activation density, weight nnz/row, batch
// width, and thread-pool size. A forced `SpmmPolicy::variant` pins one arm
// for the whole run (the regression suites sweep every arm this way), and
// SNICIT_SPMM / SNICIT_SPMM_TILE give the same control from the
// environment for serving deployments.
//
// The policy additionally carries an *epilogue* dimension: the dispatch
// entry points that take a bias+activation epilogue
// (spmm_dispatch_fused / spmm_dispatch_cols_fused) run the fused kernel
// arm by default, or fall back to the classic split multiply +
// apply_bias_activation when SpmmEpilogue::kSplit is forced — the A/B
// lever the golden digests and perf gates sweep. A forcing spec is
// "VARIANT[+EPILOGUE]" (e.g. "gather_simd+split") or a bare epilogue name
// ("fused"/"split"), accepted by SNICIT_SPMM and --spmm alike.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense_matrix.hpp"
#include "sparse/spmm.hpp"  // BiasAct, the kernel family the dispatch runs

namespace snicit::sparse {

enum class SpmmVariant : int {
  kAuto = -1,          // let the cost model decide per call
  kGatherScalar = 0,   // CSR gather, column-parallel (the scalar reference)
  kGatherSimd = 1,     // register-blocked gather, column-group-parallel
  kGatherThreaded = 2, // register-blocked gather, row-range-parallel
  kTiled = 3,          // cache-tiled gather (runtime tile width)
  kScatter = 4,        // CSC scatter, skips zero activations per column
  kScatterSimd = 5,    // register-blocked scatter, group-level zero skip
};

/// Number of concrete (non-auto) variants.
inline constexpr int kNumSpmmVariants = 6;

/// Stable lowercase name ("gather_simd", ...), used by flags/env/JSON.
const char* to_string(SpmmVariant v);

/// Inverse of to_string; also accepts "auto". Returns nullopt on junk.
std::optional<SpmmVariant> parse_spmm_variant(std::string_view name);

/// How the fused dispatch entry points run their bias+activation epilogue:
/// inside the kernel store (kFused, the default) or as the classic second
/// pass (kSplit). Results are bit-identical either way.
enum class SpmmEpilogue : int {
  kFused = 0,
  kSplit = 1,
};

/// Stable lowercase name ("fused" / "split"), used by flags/env/JSON.
const char* to_string(SpmmEpilogue e);

/// Inverse of to_string(SpmmEpilogue). Returns nullopt on junk.
std::optional<SpmmEpilogue> parse_spmm_epilogue(std::string_view name);

struct SpmmPolicy {
  /// kAuto defers to the cost model; anything else forces that kernel.
  SpmmVariant variant = SpmmVariant::kAuto;
  /// Batch-tile width of the kTiled arm (clamped to [1, 64] by the kernel).
  std::size_t tile = 16;
  /// Fixed per-(nnz x column) overhead of the scatter arms relative to
  /// gather: branch/zero-test cost on top of the accumulator zeroing the
  /// model derives from rows/nnz.
  double scatter_setup_cost = 0.15;
  /// Below this many active columns the blocked arms stop paying for
  /// themselves (lane underfill) and the model treats them as scalar.
  std::size_t min_cols_for_blocking = 4;
  /// Row-parallel arm needs at least this many output rows per the model
  /// before splitting rows across the pool beats column parallelism.
  std::size_t row_parallel_min_rows = 256;
  /// When false the model prices every arm at pool size 1 (forced arms
  /// still run; their inner parallel loops degrade to serial inline).
  bool allow_threads = true;
  /// Epilogue mode for the fused dispatch entry points. kFused applies
  /// bias + clipped ReLU at the kernel store; kSplit keeps the separate
  /// apply_bias_activation pass (same bits, one extra sweep over Y).
  SpmmEpilogue epilogue = SpmmEpilogue::kFused;

  /// Policy from SNICIT_SPMM (a "VARIANT[+EPILOGUE]" spec) and
  /// SNICIT_SPMM_TILE (int); unset/invalid fields keep the defaults above.
  static SpmmPolicy from_env();
};

/// Applies a forcing spec to `policy`: "VARIANT", "VARIANT+EPILOGUE", or a
/// bare epilogue name ("fused"/"split"). Returns false (policy untouched)
/// when the spec parses as neither.
bool apply_spmm_spec(std::string_view spec, SpmmPolicy& policy);

/// The facts the cost model consumes, all O(1) to produce at a call site.
struct SpmmProblem {
  std::size_t rows = 0;        // weight rows (output dimension)
  std::size_t nnz = 0;         // weight nonzeros
  std::size_t batch_cols = 0;  // columns actually multiplied (load-reduced)
  double density = 1.0;        // estimated activation density in [0, 1]
  bool has_csc = true;         // scatter arms selectable?
  bool has_epilogue = false;   // a bias+activation epilogue rides this call
};

/// Extra cost of carrying the epilogue under the policy's mode, in the
/// same per-(nnz x column) units as spmm_variant_cost: ~free when fused
/// (it rides a store the kernel already performs), one more
/// read-modify-write pass over the output column (rows/nnz units) when
/// split. Zero when the problem carries no epilogue.
double spmm_epilogue_cost(const SpmmProblem& p, const SpmmPolicy& policy);

/// Relative cost of running `v` on `p` (scalar gather == 1.0 per
/// nnz x column; lower is better). Exposed for tests and the bench grid.
double spmm_variant_cost(SpmmVariant v, const SpmmProblem& p,
                         const SpmmPolicy& policy);

/// The selector: the forced variant when policy.variant != kAuto (always —
/// a forced arm is never second-guessed), otherwise the cheapest arm under
/// spmm_variant_cost. Never returns a scatter arm when !p.has_csc.
SpmmVariant select_spmm_variant(const SpmmProblem& p,
                                const SpmmPolicy& policy);

/// Selects and runs in one step: out = W * y over all batch columns.
/// `w_csc` may be null when no CSC mirror exists (scatter arms are then
/// excluded from auto selection; forcing one is a hard error). `density`
/// is the caller's activation-density estimate (estimate_column_density).
/// Returns the variant that actually ran.
SpmmVariant spmm_dispatch(const CsrMatrix& w, const CscMatrix* w_csc,
                          const DenseMatrix& y, DenseMatrix& out,
                          double density, const SpmmPolicy& policy = {});

/// Column-subset dispatch (SNICIT's load-reduced spMM, partition engines).
/// kTiled has no subset form and runs as blocked gather over the subset.
SpmmVariant spmm_dispatch_cols(const CsrMatrix& w, const CscMatrix* w_csc,
                               const DenseMatrix& y,
                               std::span<const Index> columns,
                               DenseMatrix& out, double density,
                               const SpmmPolicy& policy = {});

/// Dispatch carrying the bias+activation epilogue: runs the selected
/// kernel's fused form (policy.epilogue == kFused, the default) or the
/// split kernel followed by apply_bias_activation (kSplit). Both modes
/// produce bit-identical output; the fused mode saves the second pass.
SpmmVariant spmm_dispatch_fused(const CsrMatrix& w, const CscMatrix* w_csc,
                                const DenseMatrix& y, DenseMatrix& out,
                                double density, const BiasAct& epi,
                                const SpmmPolicy& policy = {});

/// Column-subset dispatch with the epilogue (load-reduced front end).
SpmmVariant spmm_dispatch_cols_fused(const CsrMatrix& w,
                                     const CscMatrix* w_csc,
                                     const DenseMatrix& y,
                                     std::span<const Index> columns,
                                     DenseMatrix& out, double density,
                                     const BiasAct& epi,
                                     const SpmmPolicy& policy = {});

}  // namespace snicit::sparse
