#include "sparse/spmm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "platform/common.hpp"
#include "platform/thread_pool.hpp"

namespace snicit::sparse {

namespace {

void check_shapes(Index w_rows, Index w_cols, const DenseMatrix& y,
                  const DenseMatrix& out) {
  SNICIT_CHECK(static_cast<std::size_t>(w_cols) == y.rows(),
               "spMM inner dimension mismatch");
  SNICIT_CHECK(static_cast<std::size_t>(w_rows) == out.rows() &&
                   y.cols() == out.cols(),
               "spMM output shape mismatch");
}

/// One output column of the gather kernel: out_col[i] = W.row(i) . y_col.
void gather_column(const CsrMatrix& w, const float* SNICIT_RESTRICT y_col,
                   float* SNICIT_RESTRICT out_col) {
  const Offset* SNICIT_RESTRICT rp = w.row_ptr().data();
  const Index* SNICIT_RESTRICT ci = w.col_idx().data();
  const float* SNICIT_RESTRICT vs = w.values().data();
  const Index rows = w.rows();
  for (Index i = 0; i < rows; ++i) {
    float acc = 0.0f;
    for (Offset k = rp[i]; k < rp[i + 1]; ++k) {
      acc += vs[k] * y_col[ci[k]];
    }
    out_col[i] = acc;
  }
}

/// One output column of the scatter kernel: only nonzero inputs contribute.
void scatter_column(const CscMatrix& w, const float* SNICIT_RESTRICT y_col,
                    float* SNICIT_RESTRICT out_col) {
  std::memset(out_col, 0, sizeof(float) * static_cast<std::size_t>(w.rows()));
  const Offset* SNICIT_RESTRICT cp = w.col_ptr().data();
  const Index* SNICIT_RESTRICT ri = w.row_idx().data();
  const float* SNICIT_RESTRICT vs = w.values().data();
  const Index in_dim = w.cols();
  for (Index k = 0; k < in_dim; ++k) {
    const float x = y_col[k];
    if (x == 0.0f) continue;
    for (Offset p = cp[k]; p < cp[k + 1]; ++p) {
      out_col[ri[p]] += vs[p] * x;
    }
  }
}

}  // namespace

void spmm_gather(const CsrMatrix& w, const DenseMatrix& y, DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      gather_column(w, y.col(j), out.col(j));
    }
  });
}

void spmm_gather_cols(const CsrMatrix& w, const DenseMatrix& y,
                      std::span<const Index> columns, DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  platform::parallel_for_ranges(0, columns.size(), [&](std::size_t lo,
                                                       std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const auto j = static_cast<std::size_t>(columns[k]);
      gather_column(w, y.col(j), out.col(j));
    }
  });
}

void spmm_tiled(const CsrMatrix& w, const DenseMatrix& y, DenseMatrix& out,
                std::size_t tile) {
  check_shapes(w.rows(), w.cols(), y, out);
  SNICIT_CHECK(tile >= 1 && tile <= 64, "tile must be in [1, 64]");
  const std::size_t num_tiles = (y.cols() + tile - 1) / tile;
  platform::parallel_for(0, num_tiles, [&](std::size_t tidx) {
    const std::size_t j0 = tidx * tile;
    const std::size_t j1 = std::min(y.cols(), j0 + tile);
    const std::size_t width = j1 - j0;
    float acc[64];
    const Offset* SNICIT_RESTRICT rp = w.row_ptr().data();
    const Index* SNICIT_RESTRICT ci = w.col_idx().data();
    const float* SNICIT_RESTRICT vs = w.values().data();
    for (Index i = 0; i < w.rows(); ++i) {
      std::fill(acc, acc + width, 0.0f);
      for (Offset k = rp[i]; k < rp[i + 1]; ++k) {
        const float wv = vs[k];
        const float* SNICIT_RESTRICT yrow = y.data() + ci[k];
        for (std::size_t j = 0; j < width; ++j) {
          acc[j] += wv * yrow[(j0 + j) * y.rows()];
        }
      }
      for (std::size_t j = 0; j < width; ++j) {
        out.at(static_cast<std::size_t>(i), j0 + j) = acc[j];
      }
    }
  });
}

void spmm_scatter(const CscMatrix& w, const DenseMatrix& y, DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      scatter_column(w, y.col(j), out.col(j));
    }
  });
}

void spmm_scatter_cols(const CscMatrix& w, const DenseMatrix& y,
                       std::span<const Index> columns, DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  platform::parallel_for_ranges(0, columns.size(), [&](std::size_t lo,
                                                       std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const auto j = static_cast<std::size_t>(columns[k]);
      scatter_column(w, y.col(j), out.col(j));
    }
  });
}

void apply_bias_activation(DenseMatrix& y, std::span<const float> bias,
                           float ymax) {
  SNICIT_CHECK(bias.size() == y.rows(), "bias size mismatch");
  platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      float* SNICIT_RESTRICT c = y.col(j);
      for (std::size_t r = 0; r < y.rows(); ++r) {
        c[r] = std::min(std::max(c[r] + bias[r], 0.0f), ymax);
      }
    }
  });
}

void apply_bias_activation(DenseMatrix& y, float bias, float ymax) {
  platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      float* SNICIT_RESTRICT c = y.col(j);
      for (std::size_t r = 0; r < y.rows(); ++r) {
        c[r] = std::min(std::max(c[r] + bias, 0.0f), ymax);
      }
    }
  });
}

double estimate_column_density(const DenseMatrix& y,
                               std::span<const Index> columns,
                               std::size_t max_rows) {
  if (columns.empty() || y.rows() == 0) return 0.0;
  const std::size_t stride =
      std::max<std::size_t>(1, y.rows() / std::max<std::size_t>(1, max_rows));
  std::size_t seen = 0;
  std::size_t nonzero = 0;
  for (Index jc : columns) {
    const float* c = y.col(static_cast<std::size_t>(jc));
    for (std::size_t r = 0; r < y.rows(); r += stride) {
      ++seen;
      if (c[r] != 0.0f) ++nonzero;
    }
  }
  return seen == 0 ? 0.0 : static_cast<double>(nonzero) / seen;
}

}  // namespace snicit::sparse
