#include "sparse/spmm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "platform/common.hpp"
#include "platform/thread_pool.hpp"

// SNICIT_SIMD (set by the CMake toggle of the same name) turns the lane
// loops of the blocked kernels into `#pragma omp simd` regions. The pragma
// never licenses reassociation across a single lane's accumulator chain —
// vectorization happens *across* lanes — so the blocked kernels stay
// element-for-element equal to their scalar counterparts either way.
#if defined(SNICIT_SIMD)
#define SNICIT_SIMD_LOOP _Pragma("omp simd")
#else
#define SNICIT_SIMD_LOOP
#endif

namespace snicit::sparse {

namespace {

void check_shapes(Index w_rows, Index w_cols, const DenseMatrix& y,
                  const DenseMatrix& out) {
  SNICIT_CHECK(static_cast<std::size_t>(w_cols) == y.rows(),
               "spMM inner dimension mismatch");
  SNICIT_CHECK(static_cast<std::size_t>(w_rows) == out.rows() &&
                   y.cols() == out.cols(),
               "spMM output shape mismatch");
}

// --- Fused epilogues --------------------------------------------------------
//
// The kernel cores themselves are epilogue-free — fused and plain entry
// points share the exact same core instantiations. The fused forms run
// epi_sweep over each finished output column segment while it is still
// cache-hot (that locality is the fusion win; the saved second pass over
// a cold matrix is the other half). NoEpi is the identity;
// RowBiasEpi / ScalarBiasEpi are the SDGC bias + clipped ReLU. The sweep
// touches every element only after its accumulation chain is complete, so
// a fused run is bit-identical to the plain kernel followed by
// apply_bias_activation.

struct NoEpi {
  float operator()(float v, Index) const { return v; }
};

// Two branch-free instantiations instead of one functor with a per-row
// `bias != nullptr` test: the per-element branch is invariant, but inside
// the epilogue loops it blocks if-conversion and with it vectorization —
// measured at up to ~25% of whole-kernel time on dense batches. Choosing
// the functor once per call (with_epi below) keeps every epilogue loop a
// straight add/min/max chain the compiler turns into vector ops.

struct RowBiasEpi {
  const float* SNICIT_RESTRICT bias;
  float ymax;
  float operator()(float v, Index row) const {
    return std::min(std::max(v + bias[row], 0.0f), ymax);
  }
};

struct ScalarBiasEpi {
  float bias;
  float ymax;
  float operator()(float v, Index) const {
    return std::min(std::max(v + bias, 0.0f), ymax);
  }
};

/// Applies the epilogue to out[r0, r1) of one contiguous column. Every
/// kernel core funnels its epilogue through this sweep rather than the
/// store itself: the stores of a core are scattered (lane loops, strided
/// tiles), so an epi call per store is scalar work, while this loop is a
/// straight add/min/max chain over contiguous floats the compiler
/// vectorizes — measured, the per-store form lost up to ~25% of kernel
/// time versus the split pass it was meant to beat. The sweep runs right
/// after the core finishes the column segment, so the data is cache-hot
/// (the actual fusion win) and each element still sees its epilogue after
/// its full accumulation chain — bit-identical to the split form.
template <typename Epi>
inline void epi_sweep(float* SNICIT_RESTRICT c, Index r0, Index r1,
                      Epi epi) {
  if constexpr (!std::is_same_v<Epi, NoEpi>) {
    for (Index r = r0; r < r1; ++r) {
      c[r] = epi(c[r], r);
    }
  }
}

/// Invokes `fn` with the branch-free epilogue functor matching `epi`.
template <typename Fn>
void with_epi(const BiasAct& epi, Index rows, Fn&& fn) {
  if (!epi.bias.empty()) {
    SNICIT_CHECK(epi.bias.size() == static_cast<std::size_t>(rows),
                 "fused epilogue bias size mismatch");
    fn(RowBiasEpi{epi.bias.data(), epi.ymax});
  } else {
    fn(ScalarBiasEpi{epi.scalar_bias, epi.ymax});
  }
}

/// One output column of the gather kernel: out_col[i] = W.row(i) . y_col.
/// Deliberately NOT templated on the epilogue: the fused entry points call
/// this exact instantiation and run epi_sweep on the finished column, so
/// the core's machine code is byte-for-byte the plain kernel's (an Epi
/// template parameter here measurably perturbed GCC's codegen for the
/// accumulation loop even though the functor was only used after it).
void gather_column(const CsrMatrix& w, const float* SNICIT_RESTRICT y_col,
                   float* SNICIT_RESTRICT out_col) {
  const Offset* SNICIT_RESTRICT rp = w.row_ptr().data();
  const Index* SNICIT_RESTRICT ci = w.col_idx().data();
  const float* SNICIT_RESTRICT vs = w.values().data();
  const Index rows = w.rows();
  for (Index i = 0; i < rows; ++i) {
    float acc = 0.0f;
    for (Offset k = rp[i]; k < rp[i + 1]; ++k) {
      acc += vs[k] * y_col[ci[k]];
    }
    out_col[i] = acc;
  }
}

/// One output column of the scatter kernel: only nonzero inputs contribute.
/// The scatter accumulates *in place* in the output column; the fused
/// epilogue rides a caller-side epi_sweep over the (cache-hot) column.
/// Untemplated for the same core-parity reason as gather_column.
void scatter_column(const CscMatrix& w, const float* SNICIT_RESTRICT y_col,
                    float* SNICIT_RESTRICT out_col) {
  const std::size_t rows = static_cast<std::size_t>(w.rows());
  std::memset(out_col, 0, sizeof(float) * rows);
  const Offset* SNICIT_RESTRICT cp = w.col_ptr().data();
  const Index* SNICIT_RESTRICT ri = w.row_idx().data();
  const float* SNICIT_RESTRICT vs = w.values().data();
  const Index in_dim = w.cols();
  for (Index k = 0; k < in_dim; ++k) {
    const float x = y_col[k];
    if (x == 0.0f) continue;
    for (Offset p = cp[k]; p < cp[k + 1]; ++p) {
      out_col[ri[p]] += vs[p] * x;
    }
  }
}

// --- Blocked kernel cores ---------------------------------------------------
//
// The register-blocked tier processes batch columns in groups of
// kLaneBlock: each weight row (gather) or weight column (scatter) is
// streamed from memory once per *group* instead of once per column, and
// the per-lane accumulate is a fixed-trip-count loop the compiler can keep
// in registers and vectorize. Groups narrower than kLaneBlock (batch tail,
// small subsets) fall through 4/2/1-wide instantiations of the same core.

constexpr std::size_t kLaneBlock = 8;

/// Grows `scratch` to hold `n` floats and returns its base rounded up to a
/// 64-byte boundary. The blocked cores hit the panel with a B-wide vector
/// access per nnz; off a plain malloc'd base (16-byte aligned at best)
/// every one of those straddles a cache line. Because each template
/// instantiation owns its own thread_local scratch, whether a given
/// kernel's panel happened to land aligned was per-process allocation
/// luck — measured as a bimodal ~20% swing on the whole blocked kernel,
/// flipping fused-vs-plain comparisons run to run. Rounding up makes every
/// panel deterministically cache-line aligned.
inline float* aligned_panel(std::vector<float>& scratch, std::size_t n) {
  constexpr std::size_t kPad = 64 / sizeof(float);
  scratch.resize(n + kPad - 1);
  const auto addr = reinterpret_cast<std::uintptr_t>(scratch.data());
  const auto aligned = (addr + 63) & ~static_cast<std::uintptr_t>(63);
  return reinterpret_cast<float*>(aligned);
}

/// Gather over rows [r0, r1) for B column lanes. Lane b accumulates
/// out_cols[b][i] over the row's nnz in ascending-k order — the exact
/// float sequence of gather_column.
///
/// `y_panel` holds the group's activations transposed row-major
/// (y_panel[c * B + b] == y_cols[b][c]): in the column-major matrix the B
/// lanes of input row c sit whole columns apart, so the lane loop would be
/// B scattered loads per nnz; in the panel they are contiguous and the
/// loop is one B-wide vector FMA.
template <int B>
void gather_rows_block(const CsrMatrix& w, Index r0, Index r1,
                       const float* SNICIT_RESTRICT y_panel,
                       float* const* SNICIT_RESTRICT out_cols) {
  const Offset* SNICIT_RESTRICT rp = w.row_ptr().data();
  const Index* SNICIT_RESTRICT ci = w.col_idx().data();
  const float* SNICIT_RESTRICT vs = w.values().data();
  for (Index i = r0; i < r1; ++i) {
    float acc[B] = {};
    for (Offset k = rp[i]; k < rp[i + 1]; ++k) {
      const float wv = vs[k];
      const float* SNICIT_RESTRICT yr =
          y_panel + static_cast<std::size_t>(ci[k]) * static_cast<std::size_t>(B);
      SNICIT_SIMD_LOOP
      for (int b = 0; b < B; ++b) acc[b] += wv * yr[b];
    }
    for (int b = 0; b < B; ++b) out_cols[b][i] = acc[b];
  }
}

/// Runs the widest gather cores that fit `width` lanes over rows [r0, r1).
/// `cols == nullptr` means the identity column list (j0, j0+1, ...).
/// Each sub-block transposes its lanes into a per-thread panel first; with
/// fan-in f every panel element is reused ~f times by the core, so the one
/// strided pass pays for itself whenever r1 - r0 covers a decent share of
/// the rows (the row-parallel driver uses a coarse grain for this reason).
template <typename Epi>
void gather_group(const CsrMatrix& w, const DenseMatrix& y, const Index* cols,
                  std::size_t j0, std::size_t width, Index r0, Index r1,
                  DenseMatrix& out, Epi epi) {
  const float* yc[kLaneBlock];
  float* oc[kLaneBlock];
  for (std::size_t b = 0; b < width; ++b) {
    const std::size_t j =
        cols != nullptr ? static_cast<std::size_t>(cols[j0 + b]) : j0 + b;
    yc[b] = y.col(j);
    oc[b] = out.col(j);
  }
  static thread_local std::vector<float> scratch;
  float* panel = aligned_panel(scratch, y.rows() * kLaneBlock);
  const std::size_t in_dim = y.rows();
  std::size_t done = 0;
  while (done < width) {
    const std::size_t left = width - done;
    const std::size_t B = left >= 8 ? 8 : left >= 4 ? 4 : left >= 2 ? 2 : 1;
    for (std::size_t c = 0; c < in_dim; ++c) {
      for (std::size_t b = 0; b < B; ++b) {
        panel[c * B + b] = yc[done + b][c];
      }
    }
    switch (B) {
      case 8: gather_rows_block<8>(w, r0, r1, panel, oc + done); break;
      case 4: gather_rows_block<4>(w, r0, r1, panel, oc + done); break;
      case 2: gather_rows_block<2>(w, r0, r1, panel, oc + done); break;
      default: gather_rows_block<1>(w, r0, r1, panel, oc + done); break;
    }
    // Cache-hot epilogue over the rows this block just wrote.
    for (std::size_t b = 0; b < B; ++b) {
      epi_sweep(oc[done + b], r0, r1, epi);
    }
    done += B;
  }
}

/// Column-group-parallel driver shared by spmm_gather_simd and its
/// column-subset form.
template <typename Epi>
void gather_blocked(const CsrMatrix& w, const DenseMatrix& y,
                    const Index* cols, std::size_t n, DenseMatrix& out,
                    Epi epi) {
  const std::size_t groups = (n + kLaneBlock - 1) / kLaneBlock;
  platform::parallel_for(0, groups, [&](std::size_t g) {
    const std::size_t j0 = g * kLaneBlock;
    gather_group(w, y, cols, j0, std::min(kLaneBlock, n - j0), 0, w.rows(),
                 out, epi);
  });
}

/// Row-range-parallel driver: splits output rows across the pool; every
/// range walks all column groups.
template <typename Epi>
void gather_row_parallel(const CsrMatrix& w, const DenseMatrix& y,
                         const Index* cols, std::size_t n, DenseMatrix& out,
                         Epi epi) {
  platform::parallel_for_ranges(
      0, static_cast<std::size_t>(w.rows()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j0 = 0; j0 < n; j0 += kLaneBlock) {
          gather_group(w, y, cols, j0, std::min(kLaneBlock, n - j0),
                       static_cast<Index>(lo), static_cast<Index>(hi), out,
                       epi);
        }
      },
      // Coarse grain: each range re-transposes the y panel, so row chunks
      // must be large enough to amortise that pass.
      /*grain=*/256);
}

/// Scatter for B column lanes. An input row is skipped only when *every*
/// lane is zero; a zero lane inside a live group contributes wv * 0.0f,
/// which leaves its accumulator numerically unchanged, so each lane still
/// matches scatter_column element-for-element (finite weights assumed,
/// as everywhere in the library).
///
/// Accumulation runs in a caller-provided row-major panel `buf` of
/// rows x B floats: the column-major output would put the B lanes of one
/// output row whole columns (kilobytes) apart, turning the per-nnz update
/// into B scattered read-modify-writes; in the panel they are contiguous,
/// so the lane loop is one B-wide vector FMA. The panel is transposed into
/// the real output columns once at the end; the fused epilogue is a
/// caller-side sweep over those columns (core untemplated — see
/// gather_column).
template <int B>
void scatter_rows_block(const CscMatrix& w,
                        const float* const* SNICIT_RESTRICT y_cols,
                        float* const* SNICIT_RESTRICT out_cols,
                        float* SNICIT_RESTRICT buf) {
  const std::size_t rows = static_cast<std::size_t>(w.rows());
  std::memset(buf, 0, sizeof(float) * rows * static_cast<std::size_t>(B));
  const Offset* SNICIT_RESTRICT cp = w.col_ptr().data();
  const Index* SNICIT_RESTRICT ri = w.row_idx().data();
  const float* SNICIT_RESTRICT vs = w.values().data();
  const Index in_dim = w.cols();
  for (Index k = 0; k < in_dim; ++k) {
    float x[B];
    bool any = false;
    for (int b = 0; b < B; ++b) {
      x[b] = y_cols[b][k];
      any |= (x[b] != 0.0f);
    }
    if (!any) continue;
    for (Offset p = cp[k]; p < cp[k + 1]; ++p) {
      const float wv = vs[p];
      float* SNICIT_RESTRICT row =
          buf + static_cast<std::size_t>(ri[p]) * static_cast<std::size_t>(B);
      SNICIT_SIMD_LOOP
      for (int b = 0; b < B; ++b) row[b] += wv * x[b];
    }
  }
  for (int b = 0; b < B; ++b) {
    float* SNICIT_RESTRICT oc = out_cols[b];
    for (std::size_t r = 0; r < rows; ++r) {
      oc[r] =
          buf[r * static_cast<std::size_t>(B) + static_cast<std::size_t>(b)];
    }
  }
}

template <typename Epi>
void scatter_group(const CscMatrix& w, const DenseMatrix& y,
                   const Index* cols, std::size_t j0, std::size_t width,
                   DenseMatrix& out, Epi epi) {
  const float* yc[kLaneBlock];
  float* oc[kLaneBlock];
  for (std::size_t b = 0; b < width; ++b) {
    const std::size_t j =
        cols != nullptr ? static_cast<std::size_t>(cols[j0 + b]) : j0 + b;
    yc[b] = y.col(j);
    oc[b] = out.col(j);
  }
  // Per-thread accumulation panel; aligned_panel only grows the backing
  // vector, so steady-state calls reuse the same allocation.
  static thread_local std::vector<float> scratch;
  float* buf = aligned_panel(
      scratch, static_cast<std::size_t>(w.rows()) * kLaneBlock);
  const Index rows = w.rows();
  std::size_t done = 0;
  while (done < width) {
    const std::size_t left = width - done;
    const std::size_t B = left >= 8 ? 8 : left >= 4 ? 4 : left >= 2 ? 2 : 1;
    switch (B) {
      case 8: scatter_rows_block<8>(w, yc + done, oc + done, buf); break;
      case 4: scatter_rows_block<4>(w, yc + done, oc + done, buf); break;
      case 2: scatter_rows_block<2>(w, yc + done, oc + done, buf); break;
      default: scatter_rows_block<1>(w, yc + done, oc + done, buf); break;
    }
    // Cache-hot epilogue over the columns this block just wrote.
    for (std::size_t b = 0; b < B; ++b) {
      epi_sweep(oc[done + b], 0, rows, epi);
    }
    done += B;
  }
}

template <typename Epi>
void scatter_blocked(const CscMatrix& w, const DenseMatrix& y,
                     const Index* cols, std::size_t n, DenseMatrix& out,
                     Epi epi) {
  const std::size_t groups = (n + kLaneBlock - 1) / kLaneBlock;
  platform::parallel_for(0, groups, [&](std::size_t g) {
    const std::size_t j0 = g * kLaneBlock;
    scatter_group(w, y, cols, j0, std::min(kLaneBlock, n - j0), out, epi);
  });
}

/// One batch-column tile of the tiled gather. Untemplated for the same
/// core-parity reason as gather_column: fused and plain runs must execute
/// this exact instantiation.
void tiled_tile(const CsrMatrix& w, const DenseMatrix& y, DenseMatrix& out,
                std::size_t j0, std::size_t j1) {
  const std::size_t width = j1 - j0;
  float acc[64];
  const Offset* SNICIT_RESTRICT rp = w.row_ptr().data();
  const Index* SNICIT_RESTRICT ci = w.col_idx().data();
  const float* SNICIT_RESTRICT vs = w.values().data();
  for (Index i = 0; i < w.rows(); ++i) {
    std::fill(acc, acc + width, 0.0f);
    for (Offset k = rp[i]; k < rp[i + 1]; ++k) {
      const float wv = vs[k];
      const float* SNICIT_RESTRICT yrow = y.data() + ci[k];
      SNICIT_SIMD_LOOP
      for (std::size_t j = 0; j < width; ++j) {
        acc[j] += wv * yrow[(j0 + j) * y.rows()];
      }
    }
    for (std::size_t j = 0; j < width; ++j) {
      out.at(static_cast<std::size_t>(i), j0 + j) = acc[j];
    }
  }
}

template <typename Epi>
void tiled_impl(const CsrMatrix& w, const DenseMatrix& y, DenseMatrix& out,
                std::size_t tile, Epi epi) {
  check_shapes(w.rows(), w.cols(), y, out);
  SNICIT_CHECK(tile >= 1 && tile <= 64, "tile must be in [1, 64]");
  const std::size_t num_tiles = (y.cols() + tile - 1) / tile;
  platform::parallel_for(0, num_tiles, [&](std::size_t tidx) {
    const std::size_t j0 = tidx * tile;
    const std::size_t j1 = std::min(y.cols(), j0 + tile);
    tiled_tile(w, y, out, j0, j1);
    for (std::size_t j = j0; j < j1; ++j) {
      epi_sweep(out.col(j), 0, w.rows(), epi);
    }
  });
}

}  // namespace

bool simd_compiled() {
#if defined(SNICIT_SIMD)
  return true;
#else
  return false;
#endif
}

void spmm_gather(const CsrMatrix& w, const DenseMatrix& y, DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      gather_column(w, y.col(j), out.col(j));
    }
  });
}

void spmm_gather_cols(const CsrMatrix& w, const DenseMatrix& y,
                      std::span<const Index> columns, DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  platform::parallel_for_ranges(0, columns.size(), [&](std::size_t lo,
                                                       std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const auto j = static_cast<std::size_t>(columns[k]);
      gather_column(w, y.col(j), out.col(j));
    }
  });
}

void spmm_tiled(const CsrMatrix& w, const DenseMatrix& y, DenseMatrix& out,
                std::size_t tile) {
  tiled_impl(w, y, out, tile, NoEpi{});
}

void spmm_scatter(const CscMatrix& w, const DenseMatrix& y, DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      scatter_column(w, y.col(j), out.col(j));
    }
  });
}

void spmm_scatter_cols(const CscMatrix& w, const DenseMatrix& y,
                       std::span<const Index> columns, DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  platform::parallel_for_ranges(0, columns.size(), [&](std::size_t lo,
                                                       std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const auto j = static_cast<std::size_t>(columns[k]);
      scatter_column(w, y.col(j), out.col(j));
    }
  });
}

void spmm_gather_simd(const CsrMatrix& w, const DenseMatrix& y,
                      DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  gather_blocked(w, y, nullptr, y.cols(), out, NoEpi{});
}

void spmm_gather_cols_simd(const CsrMatrix& w, const DenseMatrix& y,
                           std::span<const Index> columns, DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  gather_blocked(w, y, columns.data(), columns.size(), out, NoEpi{});
}

void spmm_gather_threaded(const CsrMatrix& w, const DenseMatrix& y,
                          DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  gather_row_parallel(w, y, nullptr, y.cols(), out, NoEpi{});
}

void spmm_gather_cols_threaded(const CsrMatrix& w, const DenseMatrix& y,
                               std::span<const Index> columns,
                               DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  gather_row_parallel(w, y, columns.data(), columns.size(), out, NoEpi{});
}

void spmm_scatter_simd(const CscMatrix& w, const DenseMatrix& y,
                       DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  scatter_blocked(w, y, nullptr, y.cols(), out, NoEpi{});
}

void spmm_scatter_cols_simd(const CscMatrix& w, const DenseMatrix& y,
                            std::span<const Index> columns,
                            DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  scatter_blocked(w, y, columns.data(), columns.size(), out, NoEpi{});
}

void spmm_gather_fused(const CsrMatrix& w, const DenseMatrix& y,
                       DenseMatrix& out, const BiasAct& epi) {
  check_shapes(w.rows(), w.cols(), y, out);
  with_epi(epi, w.rows(), [&](auto e) {
    platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                   std::size_t hi) {
      for (std::size_t j = lo; j < hi; ++j) {
        gather_column(w, y.col(j), out.col(j));
        epi_sweep(out.col(j), 0, w.rows(), e);
      }
    });
  });
}

void spmm_gather_cols_fused(const CsrMatrix& w, const DenseMatrix& y,
                            std::span<const Index> columns, DenseMatrix& out,
                            const BiasAct& epi) {
  check_shapes(w.rows(), w.cols(), y, out);
  with_epi(epi, w.rows(), [&](auto e) {
    platform::parallel_for_ranges(0, columns.size(), [&](std::size_t lo,
                                                         std::size_t hi) {
      for (std::size_t k = lo; k < hi; ++k) {
        const auto j = static_cast<std::size_t>(columns[k]);
        gather_column(w, y.col(j), out.col(j));
        epi_sweep(out.col(j), 0, w.rows(), e);
      }
    });
  });
}

void spmm_tiled_fused(const CsrMatrix& w, const DenseMatrix& y,
                      DenseMatrix& out, const BiasAct& epi, std::size_t tile) {
  with_epi(epi, w.rows(),
           [&](auto e) { tiled_impl(w, y, out, tile, e); });
}

void spmm_scatter_fused(const CscMatrix& w, const DenseMatrix& y,
                        DenseMatrix& out, const BiasAct& epi) {
  check_shapes(w.rows(), w.cols(), y, out);
  with_epi(epi, w.rows(), [&](auto e) {
    platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                   std::size_t hi) {
      for (std::size_t j = lo; j < hi; ++j) {
        scatter_column(w, y.col(j), out.col(j));
        epi_sweep(out.col(j), 0, w.rows(), e);
      }
    });
  });
}

void spmm_scatter_cols_fused(const CscMatrix& w, const DenseMatrix& y,
                             std::span<const Index> columns, DenseMatrix& out,
                             const BiasAct& epi) {
  check_shapes(w.rows(), w.cols(), y, out);
  with_epi(epi, w.rows(), [&](auto e) {
    platform::parallel_for_ranges(0, columns.size(), [&](std::size_t lo,
                                                         std::size_t hi) {
      for (std::size_t k = lo; k < hi; ++k) {
        const auto j = static_cast<std::size_t>(columns[k]);
        scatter_column(w, y.col(j), out.col(j));
        epi_sweep(out.col(j), 0, w.rows(), e);
      }
    });
  });
}

void spmm_gather_simd_fused(const CsrMatrix& w, const DenseMatrix& y,
                            DenseMatrix& out, const BiasAct& epi) {
  check_shapes(w.rows(), w.cols(), y, out);
  with_epi(epi, w.rows(),
           [&](auto e) { gather_blocked(w, y, nullptr, y.cols(), out, e); });
}

void spmm_gather_cols_simd_fused(const CsrMatrix& w, const DenseMatrix& y,
                                 std::span<const Index> columns,
                                 DenseMatrix& out, const BiasAct& epi) {
  check_shapes(w.rows(), w.cols(), y, out);
  with_epi(epi, w.rows(), [&](auto e) {
    gather_blocked(w, y, columns.data(), columns.size(), out, e);
  });
}

void spmm_gather_threaded_fused(const CsrMatrix& w, const DenseMatrix& y,
                                DenseMatrix& out, const BiasAct& epi) {
  check_shapes(w.rows(), w.cols(), y, out);
  with_epi(epi, w.rows(), [&](auto e) {
    gather_row_parallel(w, y, nullptr, y.cols(), out, e);
  });
}

void spmm_gather_cols_threaded_fused(const CsrMatrix& w, const DenseMatrix& y,
                                     std::span<const Index> columns,
                                     DenseMatrix& out, const BiasAct& epi) {
  check_shapes(w.rows(), w.cols(), y, out);
  with_epi(epi, w.rows(), [&](auto e) {
    gather_row_parallel(w, y, columns.data(), columns.size(), out, e);
  });
}

void spmm_scatter_simd_fused(const CscMatrix& w, const DenseMatrix& y,
                             DenseMatrix& out, const BiasAct& epi) {
  check_shapes(w.rows(), w.cols(), y, out);
  with_epi(epi, w.rows(), [&](auto e) {
    scatter_blocked(w, y, nullptr, y.cols(), out, e);
  });
}

void spmm_scatter_cols_simd_fused(const CscMatrix& w, const DenseMatrix& y,
                                  std::span<const Index> columns,
                                  DenseMatrix& out, const BiasAct& epi) {
  check_shapes(w.rows(), w.cols(), y, out);
  with_epi(epi, w.rows(), [&](auto e) {
    scatter_blocked(w, y, columns.data(), columns.size(), out, e);
  });
}

void apply_bias_activation(DenseMatrix& y, std::span<const float> bias,
                           float ymax) {
  SNICIT_CHECK(bias.size() == y.rows(), "bias size mismatch");
  platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      float* SNICIT_RESTRICT c = y.col(j);
      for (std::size_t r = 0; r < y.rows(); ++r) {
        c[r] = std::min(std::max(c[r] + bias[r], 0.0f), ymax);
      }
    }
  });
}

void apply_bias_activation(DenseMatrix& y, float bias, float ymax) {
  platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      float* SNICIT_RESTRICT c = y.col(j);
      for (std::size_t r = 0; r < y.rows(); ++r) {
        c[r] = std::min(std::max(c[r] + bias, 0.0f), ymax);
      }
    }
  });
}

void apply_bias_activation_cols(DenseMatrix& y, std::span<const Index> columns,
                                const BiasAct& epi) {
  with_epi(epi, static_cast<Index>(y.rows()), [&](auto e) {
    platform::parallel_for_ranges(0, columns.size(), [&](std::size_t lo,
                                                         std::size_t hi) {
      for (std::size_t k = lo; k < hi; ++k) {
        float* SNICIT_RESTRICT c =
            y.col(static_cast<std::size_t>(columns[k]));
        for (std::size_t r = 0; r < y.rows(); ++r) {
          c[r] = e(c[r], static_cast<Index>(r));
        }
      }
    });
  });
}

double estimate_column_density(const DenseMatrix& y,
                               std::span<const Index> columns,
                               std::size_t max_rows) {
  if (columns.empty() || y.rows() == 0) return 0.0;
  const std::size_t stride =
      std::max<std::size_t>(1, y.rows() / std::max<std::size_t>(1, max_rows));
  std::size_t seen = 0;
  std::size_t nonzero = 0;
  for (Index jc : columns) {
    const float* c = y.col(static_cast<std::size_t>(jc));
    for (std::size_t r = 0; r < y.rows(); r += stride) {
      ++seen;
      if (c[r] != 0.0f) ++nonzero;
    }
  }
  return seen == 0 ? 0.0 : static_cast<double>(nonzero) / seen;
}

}  // namespace snicit::sparse
