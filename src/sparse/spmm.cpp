#include "sparse/spmm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "platform/common.hpp"
#include "platform/thread_pool.hpp"

// SNICIT_SIMD (set by the CMake toggle of the same name) turns the lane
// loops of the blocked kernels into `#pragma omp simd` regions. The pragma
// never licenses reassociation across a single lane's accumulator chain —
// vectorization happens *across* lanes — so the blocked kernels stay
// element-for-element equal to their scalar counterparts either way.
#if defined(SNICIT_SIMD)
#define SNICIT_SIMD_LOOP _Pragma("omp simd")
#else
#define SNICIT_SIMD_LOOP
#endif

namespace snicit::sparse {

namespace {

void check_shapes(Index w_rows, Index w_cols, const DenseMatrix& y,
                  const DenseMatrix& out) {
  SNICIT_CHECK(static_cast<std::size_t>(w_cols) == y.rows(),
               "spMM inner dimension mismatch");
  SNICIT_CHECK(static_cast<std::size_t>(w_rows) == out.rows() &&
                   y.cols() == out.cols(),
               "spMM output shape mismatch");
}

/// One output column of the gather kernel: out_col[i] = W.row(i) . y_col.
void gather_column(const CsrMatrix& w, const float* SNICIT_RESTRICT y_col,
                   float* SNICIT_RESTRICT out_col) {
  const Offset* SNICIT_RESTRICT rp = w.row_ptr().data();
  const Index* SNICIT_RESTRICT ci = w.col_idx().data();
  const float* SNICIT_RESTRICT vs = w.values().data();
  const Index rows = w.rows();
  for (Index i = 0; i < rows; ++i) {
    float acc = 0.0f;
    for (Offset k = rp[i]; k < rp[i + 1]; ++k) {
      acc += vs[k] * y_col[ci[k]];
    }
    out_col[i] = acc;
  }
}

/// One output column of the scatter kernel: only nonzero inputs contribute.
void scatter_column(const CscMatrix& w, const float* SNICIT_RESTRICT y_col,
                    float* SNICIT_RESTRICT out_col) {
  std::memset(out_col, 0, sizeof(float) * static_cast<std::size_t>(w.rows()));
  const Offset* SNICIT_RESTRICT cp = w.col_ptr().data();
  const Index* SNICIT_RESTRICT ri = w.row_idx().data();
  const float* SNICIT_RESTRICT vs = w.values().data();
  const Index in_dim = w.cols();
  for (Index k = 0; k < in_dim; ++k) {
    const float x = y_col[k];
    if (x == 0.0f) continue;
    for (Offset p = cp[k]; p < cp[k + 1]; ++p) {
      out_col[ri[p]] += vs[p] * x;
    }
  }
}

// --- Blocked kernel cores ---------------------------------------------------
//
// The register-blocked tier processes batch columns in groups of
// kLaneBlock: each weight row (gather) or weight column (scatter) is
// streamed from memory once per *group* instead of once per column, and
// the per-lane accumulate is a fixed-trip-count loop the compiler can keep
// in registers and vectorize. Groups narrower than kLaneBlock (batch tail,
// small subsets) fall through 4/2/1-wide instantiations of the same core.

constexpr std::size_t kLaneBlock = 8;

/// Gather over rows [r0, r1) for B column lanes. Lane b accumulates
/// out_cols[b][i] over the row's nnz in ascending-k order — the exact
/// float sequence of gather_column.
///
/// `y_panel` holds the group's activations transposed row-major
/// (y_panel[c * B + b] == y_cols[b][c]): in the column-major matrix the B
/// lanes of input row c sit whole columns apart, so the lane loop would be
/// B scattered loads per nnz; in the panel they are contiguous and the
/// loop is one B-wide vector FMA.
template <int B>
void gather_rows_block(const CsrMatrix& w, Index r0, Index r1,
                       const float* SNICIT_RESTRICT y_panel,
                       float* const* SNICIT_RESTRICT out_cols) {
  const Offset* SNICIT_RESTRICT rp = w.row_ptr().data();
  const Index* SNICIT_RESTRICT ci = w.col_idx().data();
  const float* SNICIT_RESTRICT vs = w.values().data();
  for (Index i = r0; i < r1; ++i) {
    float acc[B] = {};
    for (Offset k = rp[i]; k < rp[i + 1]; ++k) {
      const float wv = vs[k];
      const float* SNICIT_RESTRICT yr =
          y_panel + static_cast<std::size_t>(ci[k]) * static_cast<std::size_t>(B);
      SNICIT_SIMD_LOOP
      for (int b = 0; b < B; ++b) acc[b] += wv * yr[b];
    }
    for (int b = 0; b < B; ++b) out_cols[b][i] = acc[b];
  }
}

/// Runs the widest gather cores that fit `width` lanes over rows [r0, r1).
/// `cols == nullptr` means the identity column list (j0, j0+1, ...).
/// Each sub-block transposes its lanes into a per-thread panel first; with
/// fan-in f every panel element is reused ~f times by the core, so the one
/// strided pass pays for itself whenever r1 - r0 covers a decent share of
/// the rows (the row-parallel driver uses a coarse grain for this reason).
void gather_group(const CsrMatrix& w, const DenseMatrix& y, const Index* cols,
                  std::size_t j0, std::size_t width, Index r0, Index r1,
                  DenseMatrix& out) {
  const float* yc[kLaneBlock];
  float* oc[kLaneBlock];
  for (std::size_t b = 0; b < width; ++b) {
    const std::size_t j =
        cols != nullptr ? static_cast<std::size_t>(cols[j0 + b]) : j0 + b;
    yc[b] = y.col(j);
    oc[b] = out.col(j);
  }
  static thread_local std::vector<float> scratch;
  scratch.resize(y.rows() * kLaneBlock);
  float* panel = scratch.data();
  const std::size_t in_dim = y.rows();
  std::size_t done = 0;
  while (done < width) {
    const std::size_t left = width - done;
    const std::size_t B = left >= 8 ? 8 : left >= 4 ? 4 : left >= 2 ? 2 : 1;
    for (std::size_t c = 0; c < in_dim; ++c) {
      for (std::size_t b = 0; b < B; ++b) {
        panel[c * B + b] = yc[done + b][c];
      }
    }
    switch (B) {
      case 8: gather_rows_block<8>(w, r0, r1, panel, oc + done); break;
      case 4: gather_rows_block<4>(w, r0, r1, panel, oc + done); break;
      case 2: gather_rows_block<2>(w, r0, r1, panel, oc + done); break;
      default: gather_rows_block<1>(w, r0, r1, panel, oc + done); break;
    }
    done += B;
  }
}

/// Column-group-parallel driver shared by spmm_gather_simd and its
/// column-subset form.
void gather_blocked(const CsrMatrix& w, const DenseMatrix& y,
                    const Index* cols, std::size_t n, DenseMatrix& out) {
  const std::size_t groups = (n + kLaneBlock - 1) / kLaneBlock;
  platform::parallel_for(0, groups, [&](std::size_t g) {
    const std::size_t j0 = g * kLaneBlock;
    gather_group(w, y, cols, j0, std::min(kLaneBlock, n - j0), 0, w.rows(),
                 out);
  });
}

/// Row-range-parallel driver: splits output rows across the pool; every
/// range walks all column groups.
void gather_row_parallel(const CsrMatrix& w, const DenseMatrix& y,
                         const Index* cols, std::size_t n, DenseMatrix& out) {
  platform::parallel_for_ranges(
      0, static_cast<std::size_t>(w.rows()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j0 = 0; j0 < n; j0 += kLaneBlock) {
          gather_group(w, y, cols, j0, std::min(kLaneBlock, n - j0),
                       static_cast<Index>(lo), static_cast<Index>(hi), out);
        }
      },
      // Coarse grain: each range re-transposes the y panel, so row chunks
      // must be large enough to amortise that pass.
      /*grain=*/256);
}

/// Scatter for B column lanes. An input row is skipped only when *every*
/// lane is zero; a zero lane inside a live group contributes wv * 0.0f,
/// which leaves its accumulator numerically unchanged, so each lane still
/// matches scatter_column element-for-element (finite weights assumed,
/// as everywhere in the library).
///
/// Accumulation runs in a caller-provided row-major panel `buf` of
/// rows x B floats: the column-major output would put the B lanes of one
/// output row whole columns (kilobytes) apart, turning the per-nnz update
/// into B scattered read-modify-writes; in the panel they are contiguous,
/// so the lane loop is one B-wide vector FMA. The panel is transposed into
/// the real output columns once at the end.
template <int B>
void scatter_rows_block(const CscMatrix& w,
                        const float* const* SNICIT_RESTRICT y_cols,
                        float* const* SNICIT_RESTRICT out_cols,
                        float* SNICIT_RESTRICT buf) {
  const std::size_t rows = static_cast<std::size_t>(w.rows());
  std::memset(buf, 0, sizeof(float) * rows * static_cast<std::size_t>(B));
  const Offset* SNICIT_RESTRICT cp = w.col_ptr().data();
  const Index* SNICIT_RESTRICT ri = w.row_idx().data();
  const float* SNICIT_RESTRICT vs = w.values().data();
  const Index in_dim = w.cols();
  for (Index k = 0; k < in_dim; ++k) {
    float x[B];
    bool any = false;
    for (int b = 0; b < B; ++b) {
      x[b] = y_cols[b][k];
      any |= (x[b] != 0.0f);
    }
    if (!any) continue;
    for (Offset p = cp[k]; p < cp[k + 1]; ++p) {
      const float wv = vs[p];
      float* SNICIT_RESTRICT row =
          buf + static_cast<std::size_t>(ri[p]) * static_cast<std::size_t>(B);
      SNICIT_SIMD_LOOP
      for (int b = 0; b < B; ++b) row[b] += wv * x[b];
    }
  }
  for (int b = 0; b < B; ++b) {
    float* SNICIT_RESTRICT oc = out_cols[b];
    for (std::size_t r = 0; r < rows; ++r) {
      oc[r] = buf[r * static_cast<std::size_t>(B) + static_cast<std::size_t>(b)];
    }
  }
}

void scatter_group(const CscMatrix& w, const DenseMatrix& y,
                   const Index* cols, std::size_t j0, std::size_t width,
                   DenseMatrix& out) {
  const float* yc[kLaneBlock];
  float* oc[kLaneBlock];
  for (std::size_t b = 0; b < width; ++b) {
    const std::size_t j =
        cols != nullptr ? static_cast<std::size_t>(cols[j0 + b]) : j0 + b;
    yc[b] = y.col(j);
    oc[b] = out.col(j);
  }
  // Per-thread accumulation panel; resize() only grows it, so steady-state
  // calls reuse the same allocation.
  static thread_local std::vector<float> scratch;
  scratch.resize(static_cast<std::size_t>(w.rows()) * kLaneBlock);
  float* buf = scratch.data();
  std::size_t done = 0;
  while (done < width) {
    const std::size_t left = width - done;
    if (left >= 8) {
      scatter_rows_block<8>(w, yc + done, oc + done, buf);
      done += 8;
    } else if (left >= 4) {
      scatter_rows_block<4>(w, yc + done, oc + done, buf);
      done += 4;
    } else if (left >= 2) {
      scatter_rows_block<2>(w, yc + done, oc + done, buf);
      done += 2;
    } else {
      scatter_rows_block<1>(w, yc + done, oc + done, buf);
      done += 1;
    }
  }
}

void scatter_blocked(const CscMatrix& w, const DenseMatrix& y,
                     const Index* cols, std::size_t n, DenseMatrix& out) {
  const std::size_t groups = (n + kLaneBlock - 1) / kLaneBlock;
  platform::parallel_for(0, groups, [&](std::size_t g) {
    const std::size_t j0 = g * kLaneBlock;
    scatter_group(w, y, cols, j0, std::min(kLaneBlock, n - j0), out);
  });
}

}  // namespace

bool simd_compiled() {
#if defined(SNICIT_SIMD)
  return true;
#else
  return false;
#endif
}

void spmm_gather(const CsrMatrix& w, const DenseMatrix& y, DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      gather_column(w, y.col(j), out.col(j));
    }
  });
}

void spmm_gather_cols(const CsrMatrix& w, const DenseMatrix& y,
                      std::span<const Index> columns, DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  platform::parallel_for_ranges(0, columns.size(), [&](std::size_t lo,
                                                       std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const auto j = static_cast<std::size_t>(columns[k]);
      gather_column(w, y.col(j), out.col(j));
    }
  });
}

void spmm_tiled(const CsrMatrix& w, const DenseMatrix& y, DenseMatrix& out,
                std::size_t tile) {
  check_shapes(w.rows(), w.cols(), y, out);
  SNICIT_CHECK(tile >= 1 && tile <= 64, "tile must be in [1, 64]");
  const std::size_t num_tiles = (y.cols() + tile - 1) / tile;
  platform::parallel_for(0, num_tiles, [&](std::size_t tidx) {
    const std::size_t j0 = tidx * tile;
    const std::size_t j1 = std::min(y.cols(), j0 + tile);
    const std::size_t width = j1 - j0;
    float acc[64];
    const Offset* SNICIT_RESTRICT rp = w.row_ptr().data();
    const Index* SNICIT_RESTRICT ci = w.col_idx().data();
    const float* SNICIT_RESTRICT vs = w.values().data();
    for (Index i = 0; i < w.rows(); ++i) {
      std::fill(acc, acc + width, 0.0f);
      for (Offset k = rp[i]; k < rp[i + 1]; ++k) {
        const float wv = vs[k];
        const float* SNICIT_RESTRICT yrow = y.data() + ci[k];
        SNICIT_SIMD_LOOP
        for (std::size_t j = 0; j < width; ++j) {
          acc[j] += wv * yrow[(j0 + j) * y.rows()];
        }
      }
      for (std::size_t j = 0; j < width; ++j) {
        out.at(static_cast<std::size_t>(i), j0 + j) = acc[j];
      }
    }
  });
}

void spmm_scatter(const CscMatrix& w, const DenseMatrix& y, DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      scatter_column(w, y.col(j), out.col(j));
    }
  });
}

void spmm_scatter_cols(const CscMatrix& w, const DenseMatrix& y,
                       std::span<const Index> columns, DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  platform::parallel_for_ranges(0, columns.size(), [&](std::size_t lo,
                                                       std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const auto j = static_cast<std::size_t>(columns[k]);
      scatter_column(w, y.col(j), out.col(j));
    }
  });
}

void spmm_gather_simd(const CsrMatrix& w, const DenseMatrix& y,
                      DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  gather_blocked(w, y, nullptr, y.cols(), out);
}

void spmm_gather_cols_simd(const CsrMatrix& w, const DenseMatrix& y,
                           std::span<const Index> columns, DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  gather_blocked(w, y, columns.data(), columns.size(), out);
}

void spmm_gather_threaded(const CsrMatrix& w, const DenseMatrix& y,
                          DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  gather_row_parallel(w, y, nullptr, y.cols(), out);
}

void spmm_gather_cols_threaded(const CsrMatrix& w, const DenseMatrix& y,
                               std::span<const Index> columns,
                               DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  gather_row_parallel(w, y, columns.data(), columns.size(), out);
}

void spmm_scatter_simd(const CscMatrix& w, const DenseMatrix& y,
                       DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  scatter_blocked(w, y, nullptr, y.cols(), out);
}

void spmm_scatter_cols_simd(const CscMatrix& w, const DenseMatrix& y,
                            std::span<const Index> columns,
                            DenseMatrix& out) {
  check_shapes(w.rows(), w.cols(), y, out);
  scatter_blocked(w, y, columns.data(), columns.size(), out);
}

void apply_bias_activation(DenseMatrix& y, std::span<const float> bias,
                           float ymax) {
  SNICIT_CHECK(bias.size() == y.rows(), "bias size mismatch");
  platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      float* SNICIT_RESTRICT c = y.col(j);
      for (std::size_t r = 0; r < y.rows(); ++r) {
        c[r] = std::min(std::max(c[r] + bias[r], 0.0f), ymax);
      }
    }
  });
}

void apply_bias_activation(DenseMatrix& y, float bias, float ymax) {
  platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      float* SNICIT_RESTRICT c = y.col(j);
      for (std::size_t r = 0; r < y.rows(); ++r) {
        c[r] = std::min(std::max(c[r] + bias, 0.0f), ymax);
      }
    }
  });
}

double estimate_column_density(const DenseMatrix& y,
                               std::span<const Index> columns,
                               std::size_t max_rows) {
  if (columns.empty() || y.rows() == 0) return 0.0;
  const std::size_t stride =
      std::max<std::size_t>(1, y.rows() / std::max<std::size_t>(1, max_rows));
  std::size_t seen = 0;
  std::size_t nonzero = 0;
  for (Index jc : columns) {
    const float* c = y.col(static_cast<std::size_t>(jc));
    for (std::size_t r = 0; r < y.rows(); r += stride) {
      ++seen;
      if (c[r] != 0.0f) ++nonzero;
    }
  }
  return seen == 0 ? 0.0 : static_cast<double>(nonzero) / seen;
}

}  // namespace snicit::sparse
