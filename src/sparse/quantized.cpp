#include "sparse/quantized.hpp"

#include <algorithm>
#include <cmath>

#include "platform/common.hpp"
#include "platform/thread_pool.hpp"
#include "sparse/coo.hpp"

namespace snicit::sparse {

QuantizedCsr QuantizedCsr::from_csr(const CsrMatrix& csr) {
  QuantizedCsr q;
  q.rows_ = csr.rows();
  q.cols_ = csr.cols();
  q.row_ptr_ = csr.row_ptr();
  q.col_idx_ = csr.col_idx();
  q.values_.resize(static_cast<std::size_t>(csr.nnz()));
  q.row_scale_.assign(static_cast<std::size_t>(csr.rows()), 0.0f);

  for (Index r = 0; r < csr.rows(); ++r) {
    const auto vals = csr.row_vals(r);
    float max_abs = 0.0f;
    for (float v : vals) {
      max_abs = std::max(max_abs, std::fabs(v));
    }
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    q.row_scale_[static_cast<std::size_t>(r)] = scale;
    const Offset base = csr.row_ptr()[r];
    for (std::size_t k = 0; k < vals.size(); ++k) {
      const float scaled = vals[k] / scale;
      q.values_[static_cast<std::size_t>(base) + k] =
          static_cast<std::int8_t>(
              std::clamp(std::lround(scaled), -127L, 127L));
    }
  }
  return q;
}

CsrMatrix QuantizedCsr::dequantize() const {
  CooMatrix coo(rows_, cols_);
  for (Index r = 0; r < rows_; ++r) {
    const float scale = row_scale_[static_cast<std::size_t>(r)];
    for (Offset k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      coo.add(r, col_idx_[static_cast<std::size_t>(k)],
              static_cast<float>(values_[static_cast<std::size_t>(k)]) *
                  scale);
    }
  }
  return CsrMatrix::from_coo(coo);
}

float QuantizedCsr::max_quantization_error(const CsrMatrix& source) const {
  SNICIT_CHECK(source.nnz() == nnz() && source.rows() == rows_,
               "source matrix does not match quantized structure");
  float err = 0.0f;
  for (Index r = 0; r < rows_; ++r) {
    const float scale = row_scale_[static_cast<std::size_t>(r)];
    for (Offset k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const float reconstructed =
          static_cast<float>(values_[static_cast<std::size_t>(k)]) * scale;
      err = std::max(err,
                     std::fabs(reconstructed -
                               source.values()[static_cast<std::size_t>(k)]));
    }
  }
  return err;
}

void spmm_quantized(const QuantizedCsr& w, const DenseMatrix& y,
                    DenseMatrix& out) {
  SNICIT_CHECK(static_cast<std::size_t>(w.cols()) == y.rows(),
               "quantized spMM inner dimension mismatch");
  SNICIT_CHECK(static_cast<std::size_t>(w.rows()) == out.rows() &&
                   y.cols() == out.cols(),
               "quantized spMM output shape mismatch");
  platform::parallel_for_ranges(0, y.cols(), [&](std::size_t lo,
                                                 std::size_t hi) {
    const Offset* SNICIT_RESTRICT rp = w.row_ptr().data();
    const Index* SNICIT_RESTRICT ci = w.col_idx().data();
    const std::int8_t* SNICIT_RESTRICT vs = w.values().data();
    const float* SNICIT_RESTRICT scales = w.row_scale().data();
    for (std::size_t j = lo; j < hi; ++j) {
      const float* SNICIT_RESTRICT y_col = y.col(j);
      float* SNICIT_RESTRICT out_col = out.col(j);
      for (Index i = 0; i < w.rows(); ++i) {
        // Accumulate in the integer-scaled domain; one multiply by the
        // row scale at the end.
        float acc = 0.0f;
        for (Offset k = rp[i]; k < rp[i + 1]; ++k) {
          acc += static_cast<float>(vs[k]) * y_col[ci[k]];
        }
        out_col[i] = acc * scales[i];
      }
    }
  });
}

}  // namespace snicit::sparse
