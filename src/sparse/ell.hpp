// ELLPACK sparse format: a dense (rows x max_row_nnz) grid of column
// indices and values. For SDGC networks every neuron has exactly 32
// in-edges, so ELL wastes no padding and gives perfectly regular,
// branch-free inner loops — the layout several Graph Challenge champions
// run their kernels on.
#pragma once

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense_matrix.hpp"

namespace snicit::sparse {

class EllMatrix {
 public:
  EllMatrix() = default;

  static EllMatrix from_csr(const CsrMatrix& csr);
  static EllMatrix from_coo(const CooMatrix& coo);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  /// Entries per row including padding.
  Index width() const { return width_; }
  /// Real nonzeros (excluding padding).
  Offset nnz() const { return nnz_; }

  /// Row-major slabs: entry (r, k) at r*width + k. Padded entries carry
  /// column index kPad and value 0.
  const std::vector<Index>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  std::span<const Index> row_cols(Index r) const {
    return {col_idx_.data() + static_cast<std::size_t>(r) * width_,
            static_cast<std::size_t>(width_)};
  }
  std::span<const float> row_vals(Index r) const {
    return {values_.data() + static_cast<std::size_t>(r) * width_,
            static_cast<std::size_t>(width_)};
  }

  /// Fraction of grid slots that are padding (0 for fixed-fan-in nets).
  double padding_ratio() const;

  bool is_valid() const;

  static constexpr Index kPad = -1;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  Index width_ = 0;
  Offset nnz_ = 0;
  std::vector<Index> col_idx_;  // rows * width
  std::vector<float> values_;   // rows * width
};

/// out = W * y (gather over the regular ELL grid); out fully overwritten.
void spmm_ell(const EllMatrix& w, const DenseMatrix& y, DenseMatrix& out);

/// ELL gather restricted to the listed batch columns.
void spmm_ell_cols(const EllMatrix& w, const DenseMatrix& y,
                   std::span<const Index> columns, DenseMatrix& out);

}  // namespace snicit::sparse
