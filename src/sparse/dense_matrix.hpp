// Column-major dense matrix of floats.
//
// Activations in this library are stored as N x B matrices with one
// *contiguous column per input sample*, matching the paper's column-centric
// kernels (conversion, residue update, recovery all walk whole columns).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace snicit::sparse {

/// Fill policy for DenseMatrix::reset. kNo skips the zero-fill for hot
/// loops where the caller provably writes every element before reading
/// it back (fused spMM stores, whole-column copies); until then the
/// contents are unspecified.
enum class ZeroFill { kYes, kNo };

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* col(std::size_t j) { return data_.data() + j * rows_; }
  const float* col(std::size_t j) const { return data_.data() + j * rows_; }

  std::span<float> col_span(std::size_t j) { return {col(j), rows_}; }
  std::span<const float> col_span(std::size_t j) const {
    return {col(j), rows_};
  }

  float& at(std::size_t r, std::size_t c) { return data_[c * rows_ + r]; }
  float at(std::size_t r, std::size_t c) const { return data_[c * rows_ + r]; }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Resizes without preserving contents (values are zero-filled).
  void reset(std::size_t rows, std::size_t cols) {
    reset(rows, cols, ZeroFill::kYes);
  }

  /// Capacity-preserving resize: never shrinks the underlying storage, so
  /// a workspace matrix cycled through varying shapes stops allocating
  /// once it has seen its largest. ZeroFill::kNo leaves the contents
  /// unspecified.
  void reset(std::size_t rows, std::size_t cols, ZeroFill fill) {
    rows_ = rows;
    cols_ = cols;
    if (fill == ZeroFill::kYes) {
      data_.assign(rows * cols, 0.0f);
    } else {
      data_.resize(rows * cols);
    }
  }

  /// Elements the underlying storage can hold without reallocating.
  std::size_t capacity() const { return data_.capacity(); }

  /// Copy of columns [begin, end) as a new rows() x (end - begin) matrix
  /// (one contiguous memcpy — columns are the storage unit).
  DenseMatrix columns(std::size_t begin, std::size_t end) const;

  /// Number of entries with |x| > tol.
  std::size_t count_nonzeros(float tol = 0.0f) const;

  /// Number of entries in column j with |x| > tol.
  std::size_t column_nonzeros(std::size_t j, float tol = 0.0f) const;

  /// Largest |a - b| over all entries; matrices must have equal shape.
  static float max_abs_diff(const DenseMatrix& a, const DenseMatrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace snicit::sparse
