// Int8-quantized sparse weights — the *static* model-compression axis the
// paper's related work contrasts with SNICIT's *dynamic* data compression
// (§2.2). Provided so the two can be composed and compared: weights are
// stored as int8 with one scale per row (symmetric quantization), and the
// gather kernel dequantizes on the fly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/dense_matrix.hpp"

namespace snicit::sparse {

class QuantizedCsr {
 public:
  QuantizedCsr() = default;

  /// Quantizes symmetrically: per row, scale = max|w| / 127; stored value
  /// q = round(w / scale) in [-127, 127].
  static QuantizedCsr from_csr(const CsrMatrix& csr);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Offset nnz() const { return static_cast<Offset>(values_.size()); }

  const std::vector<Offset>& row_ptr() const { return row_ptr_; }
  const std::vector<Index>& col_idx() const { return col_idx_; }
  const std::vector<std::int8_t>& values() const { return values_; }
  const std::vector<float>& row_scale() const { return row_scale_; }

  /// Reconstructs the float matrix (for error analysis).
  CsrMatrix dequantize() const;

  /// Largest |w - dequantize(quantize(w))| over all entries of `source`
  /// (must be the matrix this was built from).
  float max_quantization_error(const CsrMatrix& source) const;

  /// Bytes of weight payload (values + scales; indices excluded since
  /// both representations share them).
  std::size_t payload_bytes() const {
    return values_.size() * sizeof(std::int8_t) +
           row_scale_.size() * sizeof(float);
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Offset> row_ptr_;
  std::vector<Index> col_idx_;
  std::vector<std::int8_t> values_;
  std::vector<float> row_scale_;  // one scale per row
};

/// out = dequantize(W) * y, fused (no materialized float weights).
void spmm_quantized(const QuantizedCsr& w, const DenseMatrix& y,
                    DenseMatrix& out);

}  // namespace snicit::sparse
