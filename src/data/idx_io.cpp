#include "data/idx_io.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "platform/common.hpp"

namespace snicit::data {

namespace {

using platform::ErrorCode;
using platform::ErrorException;
using platform::Result;

constexpr std::uint32_t kImageMagic = 0x00000803;  // idx3-ubyte
constexpr std::uint32_t kLabelMagic = 0x00000801;  // idx1-ubyte

/// Sanity cap on a declared payload: a hostile header can claim up to
/// 2^96 bytes; refuse anything past 4 GiB before allocating for it.
constexpr std::uint64_t kMaxPayload = 1ULL << 32;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) throw ErrorException(ErrorCode::kBadInput, "cannot open: " + path);
  return f;
}

std::uint32_t read_be32(std::FILE* f, const std::string& path) {
  std::uint8_t b[4];
  if (std::fread(b, 1, 4, f) != 4) {
    throw ErrorException(ErrorCode::kBadInput,
                         "truncated IDX header in " + path);
  }
  return (static_cast<std::uint32_t>(b[0]) << 24) |
         (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) |
         static_cast<std::uint32_t>(b[3]);
}

void write_be32(std::FILE* f, std::uint32_t v) {
  const std::uint8_t b[4] = {static_cast<std::uint8_t>(v >> 24),
                             static_cast<std::uint8_t>(v >> 16),
                             static_cast<std::uint8_t>(v >> 8),
                             static_cast<std::uint8_t>(v)};
  if (std::fwrite(b, 1, 4, f) != 4) {
    throw ErrorException(ErrorCode::kBadInput, "short write in IDX header");
  }
}

void require_eof(std::FILE* f, const std::string& path) {
  if (std::fgetc(f) != EOF) {
    throw ErrorException(ErrorCode::kBadInput,
                         "trailing bytes after IDX payload in " + path);
  }
}

template <typename T, typename Fn>
Result<T> as_result(Fn&& fn) {
  try {
    return Result<T>(fn());
  } catch (const ErrorException& e) {
    return Result<T>(e.error());
  }
}

}  // namespace

platform::Result<IdxImages> try_load_idx_images(const std::string& path) {
  return as_result<IdxImages>([&] {
    auto f = open_or_throw(path, "rb");
    if (read_be32(f.get(), path) != kImageMagic) {
      throw ErrorException(ErrorCode::kBadInput,
                           "not an idx3-ubyte image file: " + path);
    }
    IdxImages images;
    images.count = read_be32(f.get(), path);
    images.rows = read_be32(f.get(), path);
    images.cols = read_be32(f.get(), path);
    // Each dimension is < 2^32, so count*rows < 2^64 is exact; guard the
    // final multiply and the overall size before allocating.
    const std::uint64_t cr = static_cast<std::uint64_t>(images.count) *
                             static_cast<std::uint64_t>(images.rows);
    if (images.cols != 0 && cr > kMaxPayload / images.cols) {
      throw ErrorException(ErrorCode::kBadInput,
                           "implausible IDX image dimensions in " + path);
    }
    const std::uint64_t payload = cr * images.cols;
    if (payload > kMaxPayload) {
      throw ErrorException(ErrorCode::kBadInput,
                           "implausible IDX image dimensions in " + path);
    }
    images.pixels.resize(static_cast<std::size_t>(payload));
    if (std::fread(images.pixels.data(), 1, images.pixels.size(), f.get()) !=
        images.pixels.size()) {
      throw ErrorException(ErrorCode::kBadInput,
                           "truncated IDX image payload in " + path);
    }
    require_eof(f.get(), path);
    return images;
  });
}

IdxImages load_idx_images(const std::string& path) {
  return try_load_idx_images(path).value_or_throw();
}

platform::Result<std::vector<std::uint8_t>> try_load_idx_labels(
    const std::string& path) {
  return as_result<std::vector<std::uint8_t>>([&] {
    auto f = open_or_throw(path, "rb");
    if (read_be32(f.get(), path) != kLabelMagic) {
      throw ErrorException(ErrorCode::kBadInput,
                           "not an idx1-ubyte label file: " + path);
    }
    const std::uint32_t count = read_be32(f.get(), path);
    std::vector<std::uint8_t> labels(count);
    if (std::fread(labels.data(), 1, count, f.get()) != count) {
      throw ErrorException(ErrorCode::kBadInput,
                           "truncated IDX label payload in " + path);
    }
    require_eof(f.get(), path);
    return labels;
  });
}

std::vector<std::uint8_t> load_idx_labels(const std::string& path) {
  return try_load_idx_labels(path).value_or_throw();
}

void save_idx_images(const IdxImages& images, const std::string& path) {
  SNICIT_CHECK(images.pixels.size() ==
                   images.count * images.rows * images.cols,
               "IdxImages payload size mismatch");
  auto f = open_or_throw(path, "wb");
  write_be32(f.get(), kImageMagic);
  write_be32(f.get(), static_cast<std::uint32_t>(images.count));
  write_be32(f.get(), static_cast<std::uint32_t>(images.rows));
  write_be32(f.get(), static_cast<std::uint32_t>(images.cols));
  if (std::fwrite(images.pixels.data(), 1, images.pixels.size(), f.get()) !=
      images.pixels.size()) {
    throw ErrorException(ErrorCode::kBadInput,
                         "short write in IDX image payload");
  }
}

void save_idx_labels(const std::vector<std::uint8_t>& labels,
                     const std::string& path) {
  auto f = open_or_throw(path, "wb");
  write_be32(f.get(), kLabelMagic);
  write_be32(f.get(), static_cast<std::uint32_t>(labels.size()));
  if (std::fwrite(labels.data(), 1, labels.size(), f.get()) !=
      labels.size()) {
    throw ErrorException(ErrorCode::kBadInput,
                         "short write in IDX label payload");
  }
}

Dataset idx_to_dataset(const IdxImages& images,
                       const std::vector<std::uint8_t>& labels,
                       std::size_t num_classes) {
  SNICIT_CHECK(images.count == labels.size(),
               "image/label count mismatch");
  const std::size_t dim = images.rows * images.cols;
  Dataset ds;
  ds.num_classes = num_classes;
  ds.features.reset(dim, images.count);
  ds.labels.resize(images.count);
  for (std::size_t j = 0; j < images.count; ++j) {
    const std::uint8_t* src = images.pixels.data() + j * dim;
    float* dst = ds.features.col(j);
    for (std::size_t d = 0; d < dim; ++d) {
      dst[d] = static_cast<float>(src[d]) / 255.0f;
    }
    ds.labels[j] = static_cast<int>(labels[j]);
  }
  return ds;
}

}  // namespace snicit::data
