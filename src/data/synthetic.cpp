#include "data/synthetic.hpp"

#include <algorithm>
#include <numeric>

#include "platform/common.hpp"
#include "platform/rng.hpp"

namespace snicit::data {

namespace {

/// Fisher–Yates shuffle of column order, applied to features and labels.
void shuffle_columns(Dataset& ds, platform::Rng& rng) {
  const std::size_t n = ds.size();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  DenseMatrix shuffled(ds.features.rows(), n);
  std::vector<int> labels(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = perm[j];
    std::copy_n(ds.features.col(src), ds.features.rows(), shuffled.col(j));
    labels[j] = ds.labels[src];
  }
  ds.features = std::move(shuffled);
  ds.labels = std::move(labels);
}

}  // namespace

Dataset Dataset::slice(std::size_t begin, std::size_t end) const {
  SNICIT_CHECK(begin <= end && end <= size(), "slice range out of bounds");
  Dataset out;
  out.num_classes = num_classes;
  out.features.reset(features.rows(), end - begin);
  out.labels.assign(labels.begin() + static_cast<std::ptrdiff_t>(begin),
                    labels.begin() + static_cast<std::ptrdiff_t>(end));
  for (std::size_t j = begin; j < end; ++j) {
    std::copy_n(features.col(j), features.rows(), out.features.col(j - begin));
  }
  return out;
}

Dataset make_clustered_dataset(const ClusteredOptions& options) {
  SNICIT_CHECK(options.classes >= 1, "need at least one class");
  SNICIT_CHECK(options.dim >= options.classes, "dim must be >= classes");
  platform::Rng rng(options.seed);

  // Per-class prototypes: a sparse support with values in [0.5, 1],
  // blended toward a shared base image by (1 - class_separation) so that
  // classes can overlap.
  std::vector<float> base(options.dim, 0.0f);
  for (std::size_t d = 0; d < options.dim; ++d) {
    if (rng.next_bool(options.active_fraction)) {
      base[d] = rng.uniform(0.5f, 1.0f);
    }
  }
  const auto sep = static_cast<float>(options.class_separation);
  DenseMatrix prototypes(options.dim, options.classes);
  for (std::size_t c = 0; c < options.classes; ++c) {
    float* p = prototypes.col(c);
    for (std::size_t d = 0; d < options.dim; ++d) {
      const float own =
          rng.next_bool(options.active_fraction) ? rng.uniform(0.5f, 1.0f)
                                                 : 0.0f;
      p[d] = sep * own + (1.0f - sep) * base[d];
    }
  }

  Dataset ds;
  ds.num_classes = options.classes;
  ds.features.reset(options.dim, options.count);
  ds.labels.resize(options.count);
  for (std::size_t j = 0; j < options.count; ++j) {
    const std::size_t c = j % options.classes;
    ds.labels[j] = rng.next_bool(options.label_noise)
                       ? static_cast<int>(rng.next_below(options.classes))
                       : static_cast<int>(c);
    const float* p = prototypes.col(c);
    float* x = ds.features.col(j);
    for (std::size_t d = 0; d < options.dim; ++d) {
      float v = p[d] + static_cast<float>(rng.next_gaussian() * options.noise);
      if (rng.next_bool(options.flip_prob)) {
        v = (v > 0.25f) ? 0.0f : rng.uniform(0.5f, 1.0f);
      }
      x[d] = std::clamp(v, 0.0f, 1.0f);
    }
  }
  shuffle_columns(ds, rng);
  return ds;
}

Dataset make_sdgc_input(const SdgcInputOptions& options) {
  SNICIT_CHECK(options.classes >= 1, "need at least one class");
  platform::Rng rng(options.seed);

  // Binary class prototype masks.
  std::vector<std::vector<bool>> prototypes(options.classes);
  for (auto& mask : prototypes) {
    mask.resize(options.neurons);
    for (std::size_t d = 0; d < options.neurons; ++d) {
      mask[d] = rng.next_bool(options.on_fraction);
    }
  }

  Dataset ds;
  ds.num_classes = options.classes;
  ds.features.reset(options.neurons, options.batch);
  ds.labels.resize(options.batch);
  for (std::size_t j = 0; j < options.batch; ++j) {
    const std::size_t c = j % options.classes;
    ds.labels[j] = static_cast<int>(c);
    float* x = ds.features.col(j);
    const auto& mask = prototypes[c];
    for (std::size_t d = 0; d < options.neurons; ++d) {
      bool on = mask[d];
      if (rng.next_bool(options.flip_prob)) on = !on;
      x[d] = on ? 1.0f : 0.0f;
    }
  }
  shuffle_columns(ds, rng);
  return ds;
}

}  // namespace snicit::data
