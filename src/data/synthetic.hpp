// Synthetic clustered datasets standing in for MNIST / CIFAR-10 and for
// the SDGC input batches (see DESIGN.md §2: the official datasets are not
// available offline; what SNICIT needs from them is (a) class structure so
// deep activations converge into clusters and (b) shuffled class order so
// the paper's take-the-first-s column sampling covers all classes).
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace snicit::data {

struct ClusteredOptions {
  std::size_t dim = 784;       // feature dimension (784 MNIST, 3072 CIFAR)
  std::size_t classes = 10;    // number of labels
  std::size_t count = 1000;    // total samples (classes round-robin, then
                               // shuffled)
  double active_fraction = 0.25;  // fraction of dimensions active per class
                                  // prototype (MNIST-like sparsity)
  double class_separation = 1.0;  // 1 = independent prototypes; < 1 blends
                                  // each class prototype toward a shared
                                  // base image, creating class overlap
                                  // (a real Bayes-error floor)
  double noise = 0.10;         // per-sample gaussian noise scale
  double flip_prob = 0.02;     // per-pixel on/off flips
  double label_noise = 0.0;    // probability a sample's label is
                               // re-drawn uniformly (injects a Bayes
                               // error floor, so trained accuracy lands
                               // below 100% like real datasets)
  std::uint64_t seed = 7;
};

/// Continuous-valued clustered data in [0, 1]: per-class sparse prototype
/// plus clipped gaussian noise and rare pixel flips.
Dataset make_clustered_dataset(const ClusteredOptions& options);

struct SdgcInputOptions {
  std::size_t neurons = 1024;  // rows of Y(0) (resized-image pixel count)
  std::size_t batch = 1024;    // columns of Y(0)
  std::size_t classes = 10;
  double on_fraction = 0.20;   // fraction of pixels set in a prototype
  double flip_prob = 0.03;     // per-pixel flip noise
  std::uint64_t seed = 11;
};

/// Binary {0, 1} "resized MNIST" batches in the SDGC style: class
/// prototype bit-masks with flip noise, classes shuffled across columns.
Dataset make_sdgc_input(const SdgcInputOptions& options);

}  // namespace snicit::data
