// Reader/writer for the IDX binary format used by the MNIST distribution
// (http://yann.lecun.com/exdb/mnist/). When the real dataset files are
// available offline the library can consume them directly; the test suite
// exercises the codec with synthetic files, so no download is required.
//
// Readers come in two flavours: `try_*` returns platform::Result with
// ErrorCode::kBadInput on unreadable, malformed, truncated, implausibly
// sized, or trailing-junk files; the legacy-signature functions wrap them
// and throw platform::ErrorException (a std::runtime_error).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "platform/error.hpp"

namespace snicit::data {

/// A stack of images as stored in an idx3-ubyte file.
struct IdxImages {
  std::size_t count = 0;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint8_t> pixels;  // count * rows * cols, row-major
};

/// Reads an idx3-ubyte image file. Rejects bad magic, truncated headers
/// or payloads, headers whose dimensions multiply past the sanity cap,
/// and files with trailing bytes after the payload.
platform::Result<IdxImages> try_load_idx_images(const std::string& path);

/// Throwing wrapper around try_load_idx_images.
IdxImages load_idx_images(const std::string& path);

/// Reads an idx1-ubyte label file (same failure contract as images).
platform::Result<std::vector<std::uint8_t>> try_load_idx_labels(
    const std::string& path);

/// Throwing wrapper around try_load_idx_labels.
std::vector<std::uint8_t> load_idx_labels(const std::string& path);

/// Writers (used by tests and for exporting synthetic corpora in a
/// format other MNIST tooling can ingest).
void save_idx_images(const IdxImages& images, const std::string& path);
void save_idx_labels(const std::vector<std::uint8_t>& labels,
                     const std::string& path);

/// Converts images+labels into the library's Dataset layout: one
/// flattened, [0,1]-scaled column per image. Sizes must agree.
Dataset idx_to_dataset(const IdxImages& images,
                       const std::vector<std::uint8_t>& labels,
                       std::size_t num_classes = 10);

}  // namespace snicit::data
