// Labelled feature batches used by examples, tests and benchmarks.
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/dense_matrix.hpp"

namespace snicit::data {

using sparse::DenseMatrix;

/// A labelled batch: features is dim x count (one column per sample, the
/// library-wide layout) and labels[j] is the class of column j.
struct Dataset {
  DenseMatrix features;
  std::vector<int> labels;
  std::size_t num_classes = 0;

  std::size_t size() const { return labels.size(); }
  std::size_t dim() const { return features.rows(); }

  /// Copies columns [begin, end) into a new dataset.
  Dataset slice(std::size_t begin, std::size_t end) const;
};

}  // namespace snicit::data
