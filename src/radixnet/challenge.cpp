#include "radixnet/challenge.hpp"

#include "dnn/reference.hpp"
#include "radixnet/sdgc_io.hpp"

namespace snicit::radixnet {

ChallengeResult run_challenge(dnn::InferenceEngine& engine,
                              const dnn::SparseDnn& net,
                              const dnn::DenseMatrix& input,
                              const std::string& category_path, float tol) {
  net.ensure_csc();
  const auto run = engine.run(net, input);

  ChallengeResult result;
  result.runtime_ms = run.total_ms();
  const double edges = static_cast<double>(net.connections()) *
                       static_cast<double>(input.cols());
  result.giga_edges_per_sec =
      result.runtime_ms <= 0.0
          ? 0.0
          : edges / (result.runtime_ms / 1000.0) / 1e9;
  result.categories = dnn::sdgc_categories(run.output, tol);
  for (int c : result.categories) {
    result.active_inputs += static_cast<std::size_t>(c);
  }

  const auto golden =
      dnn::sdgc_categories(dnn::reference_forward(net, input), tol);
  result.matches_golden =
      dnn::category_match_rate(result.categories, golden) == 1.0;

  if (!category_path.empty()) {
    save_categories_tsv(result.categories, category_path);
  }
  return result;
}

double score_submission(const std::string& category_path,
                        const std::vector<int>& golden) {
  const auto submitted = load_categories_tsv(category_path, golden.size());
  return dnn::category_match_rate(submitted, golden);
}

}  // namespace snicit::radixnet
