// Faithful mixed-radix butterfly topology (Kepner & Robinett, "Radix-Net:
// Structured sparse matrices for deep neural networks", IPDPSW 2019).
//
// Neurons are addressed by mixed-radix digits over the radix vector
// [r_0, ..., r_{D-1}] with N = prod r_k. Layer L is a radix-r_{L mod D}
// butterfly stage: neuron i connects to exactly the r_{L mod D} neurons
// that share all of i's digits except digit (L mod D). After D
// consecutive layers every input can reach every output — the full-mixing
// property the SDGC topologies are built from.
//
// make_radixnet (radixnet.hpp) keeps the simpler strided generator used
// for calibrated benchmarks; this module provides the exact Radix-Net
// construction for structural studies and interop experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "dnn/sparse_dnn.hpp"

namespace snicit::radixnet {

using dnn::Index;
using dnn::SparseDnn;

struct MixedRadixOptions {
  std::vector<int> radices = {32, 32};  // N = product (1024 here)
  int layers = 120;
  /// Bias / weights / clip follow the same conventions as RadixNetOptions
  /// (negative weight fields select per-N calibration).
  float bias = -1024.0f;  // sentinel: table1_bias(N)
  float w_lo = -1.0f;
  float w_hi = -1.0f;
  double neg_prob = -1.0;
  float ymax = 32.0f;
  std::uint64_t seed = 42;
};

/// Number of neurons implied by the radix vector.
Index mixed_radix_neurons(const std::vector<int>& radices);

/// Builds the exact Radix-Net butterfly network.
SparseDnn make_mixed_radix_net(const MixedRadixOptions& options);

/// Decomposes `neurons` into a radix vector of factors <= max_radix,
/// preferring large factors (e.g. 4096 -> {32, 32, 4}). Throws
/// std::invalid_argument when `neurons` has a prime factor > max_radix.
std::vector<int> default_radices(Index neurons, int max_radix = 32);

}  // namespace snicit::radixnet
