#include "radixnet/mixed_radix.hpp"

#include <stdexcept>
#include <string>

#include "platform/common.hpp"
#include "platform/rng.hpp"
#include "radixnet/radixnet.hpp"
#include "sparse/coo.hpp"

namespace snicit::radixnet {

Index mixed_radix_neurons(const std::vector<int>& radices) {
  SNICIT_CHECK(!radices.empty(), "radix vector must be non-empty");
  std::int64_t n = 1;
  for (int r : radices) {
    SNICIT_CHECK(r >= 2, "every radix must be >= 2");
    n *= r;
    SNICIT_CHECK(n <= (1LL << 30), "radix product overflows Index");
  }
  return static_cast<Index>(n);
}

std::vector<int> default_radices(Index neurons, int max_radix) {
  if (neurons < 2 || max_radix < 2) {
    throw std::invalid_argument("default_radices: need neurons, max_radix >= 2");
  }
  std::vector<int> radices;
  Index rest = neurons;
  while (rest > 1) {
    int factor = 1;
    // Largest divisor of `rest` that fits the radix cap.
    for (int candidate = std::min<Index>(max_radix, rest); candidate >= 2;
         --candidate) {
      if (rest % candidate == 0) {
        factor = candidate;
        break;
      }
    }
    if (factor == 1) {
      throw std::invalid_argument(
          "default_radices: " + std::to_string(neurons) +
          " has a prime factor above max_radix");
    }
    radices.push_back(factor);
    rest /= factor;
  }
  return radices;
}

SparseDnn make_mixed_radix_net(const MixedRadixOptions& options) {
  SNICIT_CHECK(options.layers > 0, "layers must be positive");
  const Index n = mixed_radix_neurons(options.radices);
  const auto digits = static_cast<int>(options.radices.size());

  const float bias = options.bias == -1024.0f ? table1_bias(n) : options.bias;
  const auto cal = calibrated_weights(n);
  const float w_lo = options.w_lo < 0.0f ? cal.w_lo : options.w_lo;
  const float w_hi = options.w_hi < 0.0f ? cal.w_hi : options.w_hi;
  const double neg_prob =
      options.neg_prob < 0.0 ? cal.neg_prob : options.neg_prob;
  SNICIT_CHECK(w_lo <= w_hi, "invalid weight range");

  // Stride of digit k = product of radices below it.
  std::vector<Index> stride(static_cast<std::size_t>(digits), 1);
  for (int k = 1; k < digits; ++k) {
    stride[static_cast<std::size_t>(k)] =
        stride[static_cast<std::size_t>(k) - 1] *
        options.radices[static_cast<std::size_t>(k) - 1];
  }

  platform::Rng rng(options.seed);
  std::vector<sparse::CsrMatrix> weights;
  weights.reserve(static_cast<std::size_t>(options.layers));
  std::vector<std::vector<float>> biases(
      static_cast<std::size_t>(options.layers),
      std::vector<float>(static_cast<std::size_t>(n), bias));

  for (int layer = 0; layer < options.layers; ++layer) {
    const int d = layer % digits;
    const Index radix = options.radices[static_cast<std::size_t>(d)];
    const Index s = stride[static_cast<std::size_t>(d)];

    sparse::CooMatrix coo(n, n);
    coo.reserve(static_cast<std::size_t>(n) * radix);
    for (Index j = 0; j < n; ++j) {
      // Decompose j's digit d and connect to every value of that digit.
      const Index digit = (j / s) % radix;
      const Index base = j - digit * s;
      for (Index v = 0; v < radix; ++v) {
        float w = rng.uniform(w_lo, w_hi);
        if (rng.next_bool(neg_prob)) w = -w;
        coo.add(j, base + v * s, w);
      }
    }
    coo.coalesce();
    weights.push_back(sparse::CsrMatrix::from_coo(coo));
  }

  std::string name = "radixnet[";
  for (std::size_t k = 0; k < options.radices.size(); ++k) {
    name += (k != 0u ? "x" : "") + std::to_string(options.radices[k]);
  }
  name += "]-" + std::to_string(options.layers);
  return SparseDnn(n, std::move(weights), std::move(biases), options.ymax,
                   std::move(name));
}

}  // namespace snicit::radixnet
