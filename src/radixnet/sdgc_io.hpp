// Import/export in the SDGC file format: one TSV file per layer with
// 1-indexed "row<TAB>col<TAB>weight" lines, and the same layout for the
// input matrix. This lets the library interoperate with the official
// challenge files when they are available.
//
// Loaders come in two flavours: `try_*` returns platform::Result with a
// typed ErrorCode (kBadModelFile for weight files, kBadInput for
// data/category files and bad arguments) so servers can treat a malformed
// upload as control flow; the legacy-signature functions wrap them and
// throw platform::ErrorException (a std::runtime_error) on failure.
// Malformed inputs a loader rejects: unopenable files, out-of-range
// 1-indexed coordinates, non-finite weights, and trailing junk after the
// last parseable record (truncated or corrupted lines).
#pragma once

#include <string>
#include <vector>

#include "dnn/sparse_dnn.hpp"
#include "platform/error.hpp"
#include "sparse/dense_matrix.hpp"

namespace snicit::radixnet {

using dnn::Index;

/// Writes weight(layer) of `net` for every layer as
/// "<prefix>-l<layer+1>.tsv" (SDGC naming: n<N>-l<k>.tsv).
void save_network_tsv(const dnn::SparseDnn& net, const std::string& prefix);

/// Reads `layers` TSV files "<prefix>-l<k>.tsv" (k = 1..layers) into a
/// SparseDnn with constant bias `bias` and clip `ymax`. Fails with
/// kBadModelFile on unreadable/malformed weight files and kBadInput on
/// nonsensical arguments (neurons/layers < 1).
platform::Result<dnn::SparseDnn> try_load_network_tsv(
    const std::string& prefix, Index neurons, int layers, float bias,
    float ymax);

/// Throwing wrapper around try_load_network_tsv.
dnn::SparseDnn load_network_tsv(const std::string& prefix, Index neurons,
                                int layers, float bias, float ymax);

/// Writes a dense matrix as sparse TSV (only nonzero entries, 1-indexed).
void save_matrix_tsv(const sparse::DenseMatrix& m, const std::string& path);

/// Reads a sparse TSV file into a dense rows x cols matrix. Fails with
/// kBadInput on unreadable/malformed files or out-of-range coordinates.
platform::Result<sparse::DenseMatrix> try_load_matrix_tsv(
    const std::string& path, std::size_t rows, std::size_t cols);

/// Throwing wrapper around try_load_matrix_tsv.
sparse::DenseMatrix load_matrix_tsv(const std::string& path,
                                    std::size_t rows, std::size_t cols);

/// Writes per-input categories in the SDGC submission format: one
/// 1-indexed input id per line for every active input.
void save_categories_tsv(const std::vector<int>& categories,
                         const std::string& path);

/// Reads a categories file back into a 0/1 vector of length `batch`.
/// Fails with kBadInput on unreadable/malformed files or ids outside
/// [1, batch].
platform::Result<std::vector<int>> try_load_categories_tsv(
    const std::string& path, std::size_t batch);

/// Throwing wrapper around try_load_categories_tsv.
std::vector<int> load_categories_tsv(const std::string& path,
                                     std::size_t batch);

}  // namespace snicit::radixnet
