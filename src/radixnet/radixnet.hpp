// Radix-Net-style synthetic sparse DNN generator.
//
// The SDGC benchmarks are produced by Kepner & Robinett's Radix-Net
// generator: every neuron has exactly `fanin` (32) incoming edges arranged
// in mixed-radix butterfly layers, biases are one constant per network
// (Table 1 of the paper), and nonzero weights are random. This module
// reproduces that topology family at any size, so the repository can build
// benchmarks structurally equivalent to the official ones without the
// multi-gigabyte challenge files (see DESIGN.md §2).
#pragma once

#include <cstdint>

#include "dnn/sparse_dnn.hpp"

namespace snicit::radixnet {

using dnn::Index;
using dnn::SparseDnn;

struct RadixNetOptions {
  Index neurons = 1024;  // N: neurons per layer
  int layers = 120;      // l: number of sparse layers
  int fanin = 32;        // incoming edges per neuron (32 in every SDGC net)
  /// Constant bias added at every layer; NaN selects the Table 1 value
  /// for `neurons` (see table1_bias).
  float bias = kAutoBias;
  /// Nonzero weight magnitudes are uniform in [w_lo, w_hi], negated with
  /// probability neg_prob. Negative values select the per-N calibrated
  /// defaults (see calibrated_weights): like the official generator's
  /// per-N bias constants, the distribution is tuned per neuron count so
  /// deep layers neither die out nor stay chaotic — the batch converges
  /// into a small set of stable attractor columns by layer ~12-24, which
  /// is the intermediate-result convergence SNICIT exploits (Figure 1).
  float w_lo = kAutoWeights;
  float w_hi = kAutoWeights;
  double neg_prob = kAutoWeights;
  float ymax = 32.0f;  // SDGC activation clip
  std::uint64_t seed = 42;

  static constexpr float kAutoBias = -1024.0f;  // sentinel: use table1_bias
  static constexpr float kAutoWeights = -1.0f;  // sentinel: per-N defaults
};

/// The calibrated weight distribution for a neuron count (paired with the
/// Table 1 bias for that size).
struct WeightCalibration {
  float w_lo;
  float w_hi;
  double neg_prob;
};
WeightCalibration calibrated_weights(Index neurons);

/// Bias constants from Table 1 (−0.3 at 1024 neurons down to −0.45 at
/// 65536); sizes in between are interpolated on log2(N).
float table1_bias(Index neurons);

/// Builds the sparse network. Topology: layer i connects output neuron j
/// to inputs (j + k*stride_i) mod N for k in [0, fanin), with stride_i
/// cycling through the mixed-radix sequence 1, fanin, fanin^2, ... (a
/// radix-`fanin` butterfly, the Radix-Net building block), plus a
/// per-layer rotation so consecutive layers are not identical.
SparseDnn make_radixnet(const RadixNetOptions& options);

/// One row of Table 1: static statistics of an SDGC benchmark.
struct SdgcStats {
  Index neurons;
  int layers;
  float bias;
  double density;           // fanin / neurons
  std::int64_t connections; // fanin * neurons * layers
  double size_gb;           // 12 bytes per edge (row, col, float val)
};

SdgcStats sdgc_stats(Index neurons, int layers);

}  // namespace snicit::radixnet
