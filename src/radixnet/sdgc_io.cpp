#include "radixnet/sdgc_io.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "platform/common.hpp"
#include "sparse/coo.hpp"

namespace snicit::radixnet {

namespace {

using platform::Error;
using platform::ErrorCode;
using platform::ErrorException;
using platform::Result;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path, const char* mode,
                      ErrorCode code = ErrorCode::kBadInput) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) {
    throw ErrorException(code, "cannot open file: " + path);
  }
  return f;
}

std::string layer_path(const std::string& prefix, int layer_1based) {
  return prefix + "-l" + std::to_string(layer_1based) + ".tsv";
}

/// A scanf parse loop stops on EOF (clean) or on bytes it cannot match /
/// a partially matched record (both malformed). `last_matched` is the
/// final fscanf return value.
void require_clean_eof(std::FILE* f, int last_matched,
                       const std::string& path, ErrorCode code) {
  if (last_matched > 0) {
    throw ErrorException(code, "truncated record in " + path);
  }
  // Consume trailing whitespace so a final newline does not read as junk.
  int ch = 0;
  while ((ch = std::fgetc(f)) != EOF) {
    if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') {
      throw ErrorException(code, "trailing junk in " + path);
    }
  }
}

/// Exception -> Result bridge for the try_* entry points: loader
/// internals throw ErrorException at the failure site (which keeps the
/// parse code linear), the boundary converts it back into a typed value.
template <typename T, typename Fn>
Result<T> as_result(Fn&& fn) {
  try {
    return Result<T>(fn());
  } catch (const ErrorException& e) {
    return Result<T>(e.error());
  }
}

}  // namespace

void save_network_tsv(const dnn::SparseDnn& net, const std::string& prefix) {
  for (std::size_t layer = 0; layer < net.num_layers(); ++layer) {
    auto f = open_or_throw(layer_path(prefix, static_cast<int>(layer) + 1),
                           "w");
    const auto& w = net.weight(layer);
    for (Index r = 0; r < w.rows(); ++r) {
      const auto cols = w.row_cols(r);
      const auto vals = w.row_vals(r);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        std::fprintf(f.get(), "%d\t%d\t%.9g\n", r + 1, cols[k] + 1, vals[k]);
      }
    }
  }
}

platform::Result<dnn::SparseDnn> try_load_network_tsv(
    const std::string& prefix, Index neurons, int layers, float bias,
    float ymax) {
  return as_result<dnn::SparseDnn>([&] {
    if (neurons < 1) {
      throw ErrorException(ErrorCode::kBadInput,
                           "load_network_tsv: neurons must be >= 1");
    }
    if (layers < 1) {
      throw ErrorException(ErrorCode::kBadInput,
                           "load_network_tsv: layers must be >= 1");
    }
    std::vector<sparse::CsrMatrix> weights;
    weights.reserve(static_cast<std::size_t>(layers));
    for (int layer = 1; layer <= layers; ++layer) {
      const std::string path = layer_path(prefix, layer);
      auto f = open_or_throw(path, "r", ErrorCode::kBadModelFile);
      sparse::CooMatrix coo(neurons, neurons);
      int r = 0;
      int c = 0;
      float v = 0.0f;
      int matched = 0;
      while ((matched = std::fscanf(f.get(), "%d\t%d\t%f", &r, &c, &v)) ==
             3) {
        if (r < 1 || r > neurons || c < 1 || c > neurons) {
          throw ErrorException(ErrorCode::kBadModelFile,
                               "TSV index out of range in " + path);
        }
        if (!std::isfinite(v)) {
          throw ErrorException(ErrorCode::kBadModelFile,
                               "non-finite weight in " + path);
        }
        coo.add(r - 1, c - 1, v);
      }
      require_clean_eof(f.get(), matched, path, ErrorCode::kBadModelFile);
      weights.push_back(sparse::CsrMatrix::from_coo(coo));
    }
    std::vector<std::vector<float>> biases(
        static_cast<std::size_t>(layers),
        std::vector<float>(static_cast<std::size_t>(neurons), bias));
    return dnn::SparseDnn(neurons, std::move(weights), std::move(biases),
                          ymax, prefix);
  });
}

dnn::SparseDnn load_network_tsv(const std::string& prefix, Index neurons,
                                int layers, float bias, float ymax) {
  return try_load_network_tsv(prefix, neurons, layers, bias, ymax)
      .value_or_throw();
}

void save_matrix_tsv(const sparse::DenseMatrix& m, const std::string& path) {
  auto f = open_or_throw(path, "w");
  for (std::size_t j = 0; j < m.cols(); ++j) {
    const float* col = m.col(j);
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (col[r] != 0.0f) {
        std::fprintf(f.get(), "%zu\t%zu\t%.9g\n", r + 1, j + 1, col[r]);
      }
    }
  }
}

platform::Result<sparse::DenseMatrix> try_load_matrix_tsv(
    const std::string& path, std::size_t rows, std::size_t cols) {
  return as_result<sparse::DenseMatrix>([&] {
    auto f = open_or_throw(path, "r", ErrorCode::kBadInput);
    sparse::DenseMatrix m(rows, cols);
    std::uint64_t r = 0;
    std::uint64_t c = 0;
    float v = 0.0f;
    int matched = 0;
    while ((matched = std::fscanf(f.get(), "%" SCNu64 "\t%" SCNu64 "\t%f",
                                  &r, &c, &v)) == 3) {
      if (r < 1 || r > rows || c < 1 || c > cols) {
        throw ErrorException(ErrorCode::kBadInput,
                             "TSV index out of range in " + path);
      }
      if (!std::isfinite(v)) {
        throw ErrorException(ErrorCode::kBadInput,
                             "non-finite value in " + path);
      }
      m.at(static_cast<std::size_t>(r) - 1,
           static_cast<std::size_t>(c) - 1) = v;
    }
    require_clean_eof(f.get(), matched, path, ErrorCode::kBadInput);
    return m;
  });
}

sparse::DenseMatrix load_matrix_tsv(const std::string& path,
                                    std::size_t rows, std::size_t cols) {
  return try_load_matrix_tsv(path, rows, cols).value_or_throw();
}

void save_categories_tsv(const std::vector<int>& categories,
                         const std::string& path) {
  auto f = open_or_throw(path, "w");
  for (std::size_t j = 0; j < categories.size(); ++j) {
    if (categories[j] != 0) {
      std::fprintf(f.get(), "%zu\n", j + 1);
    }
  }
}

platform::Result<std::vector<int>> try_load_categories_tsv(
    const std::string& path, std::size_t batch) {
  return as_result<std::vector<int>>([&] {
    auto f = open_or_throw(path, "r", ErrorCode::kBadInput);
    std::vector<int> categories(batch, 0);
    unsigned long long id = 0;
    int matched = 0;
    while ((matched = std::fscanf(f.get(), "%llu", &id)) == 1) {
      if (id < 1 || id > batch) {
        throw ErrorException(ErrorCode::kBadInput,
                             "category id out of range in " + path);
      }
      categories[static_cast<std::size_t>(id) - 1] = 1;
    }
    require_clean_eof(f.get(), matched, path, ErrorCode::kBadInput);
    return categories;
  });
}

std::vector<int> load_categories_tsv(const std::string& path,
                                     std::size_t batch) {
  return try_load_categories_tsv(path, batch).value_or_throw();
}

}  // namespace snicit::radixnet
