#include "radixnet/sdgc_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "platform/common.hpp"
#include "sparse/coo.hpp"

namespace snicit::radixnet {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) {
    throw std::runtime_error("cannot open file: " + path);
  }
  return f;
}

std::string layer_path(const std::string& prefix, int layer_1based) {
  return prefix + "-l" + std::to_string(layer_1based) + ".tsv";
}

}  // namespace

void save_network_tsv(const dnn::SparseDnn& net, const std::string& prefix) {
  for (std::size_t layer = 0; layer < net.num_layers(); ++layer) {
    auto f = open_or_throw(layer_path(prefix, static_cast<int>(layer) + 1),
                           "w");
    const auto& w = net.weight(layer);
    for (Index r = 0; r < w.rows(); ++r) {
      const auto cols = w.row_cols(r);
      const auto vals = w.row_vals(r);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        std::fprintf(f.get(), "%d\t%d\t%.9g\n", r + 1, cols[k] + 1, vals[k]);
      }
    }
  }
}

dnn::SparseDnn load_network_tsv(const std::string& prefix, Index neurons,
                                int layers, float bias, float ymax) {
  std::vector<sparse::CsrMatrix> weights;
  weights.reserve(static_cast<std::size_t>(layers));
  for (int layer = 1; layer <= layers; ++layer) {
    auto f = open_or_throw(layer_path(prefix, layer), "r");
    sparse::CooMatrix coo(neurons, neurons);
    int r = 0;
    int c = 0;
    float v = 0.0f;
    while (std::fscanf(f.get(), "%d\t%d\t%f", &r, &c, &v) == 3) {
      if (r < 1 || r > neurons || c < 1 || c > neurons) {
        throw std::runtime_error("TSV index out of range in " +
                                 layer_path(prefix, layer));
      }
      coo.add(r - 1, c - 1, v);
    }
    weights.push_back(sparse::CsrMatrix::from_coo(coo));
  }
  std::vector<std::vector<float>> biases(
      static_cast<std::size_t>(layers),
      std::vector<float>(static_cast<std::size_t>(neurons), bias));
  return dnn::SparseDnn(neurons, std::move(weights), std::move(biases), ymax,
                        prefix);
}

void save_matrix_tsv(const sparse::DenseMatrix& m, const std::string& path) {
  auto f = open_or_throw(path, "w");
  for (std::size_t j = 0; j < m.cols(); ++j) {
    const float* col = m.col(j);
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (col[r] != 0.0f) {
        std::fprintf(f.get(), "%zu\t%zu\t%.9g\n", r + 1, j + 1, col[r]);
      }
    }
  }
}

sparse::DenseMatrix load_matrix_tsv(const std::string& path,
                                    std::size_t rows, std::size_t cols) {
  auto f = open_or_throw(path, "r");
  sparse::DenseMatrix m(rows, cols);
  std::uint64_t r = 0;
  std::uint64_t c = 0;
  float v = 0.0f;
  while (std::fscanf(f.get(), "%" SCNu64 "\t%" SCNu64 "\t%f", &r, &c, &v) ==
         3) {
    if (r < 1 || r > rows || c < 1 || c > cols) {
      throw std::runtime_error("TSV index out of range in " + path);
    }
    m.at(r - 1, c - 1) = v;
  }
  return m;
}

void save_categories_tsv(const std::vector<int>& categories,
                         const std::string& path) {
  auto f = open_or_throw(path, "w");
  for (std::size_t j = 0; j < categories.size(); ++j) {
    if (categories[j] != 0) {
      std::fprintf(f.get(), "%zu\n", j + 1);
    }
  }
}

std::vector<int> load_categories_tsv(const std::string& path,
                                     std::size_t batch) {
  auto f = open_or_throw(path, "r");
  std::vector<int> categories(batch, 0);
  unsigned long long id = 0;
  while (std::fscanf(f.get(), "%llu", &id) == 1) {
    if (id < 1 || id > batch) {
      throw std::runtime_error("category id out of range in " + path);
    }
    categories[static_cast<std::size_t>(id) - 1] = 1;
  }
  return categories;
}

}  // namespace snicit::radixnet
