// The Sparse DNN Graph Challenge evaluation protocol as a library: run an
// engine on a benchmark, produce the challenge's artifacts (category file,
// timing, edges/sec throughput) and verify a submission against the
// golden categories — the flow the paper's "results match the golden
// reference provided by the SDGC evaluation platform" sentence refers to.
#pragma once

#include <string>

#include "dnn/engine.hpp"

namespace snicit::radixnet {

struct ChallengeResult {
  double runtime_ms = 0.0;
  double giga_edges_per_sec = 0.0;  // connections * batch / runtime
  std::size_t active_inputs = 0;    // inputs with any nonzero output
  bool matches_golden = false;
  std::vector<int> categories;      // 0/1 per input column
};

/// Runs `engine` on (net, input), derives SDGC categories from the output
/// and checks them against the exact reference. When `category_path` is
/// non-empty the categories are also written in the submission format.
ChallengeResult run_challenge(dnn::InferenceEngine& engine,
                              const dnn::SparseDnn& net,
                              const dnn::DenseMatrix& input,
                              const std::string& category_path = "",
                              float tol = 1e-3f);

/// Scores a category file against golden categories: fraction matching.
double score_submission(const std::string& category_path,
                        const std::vector<int>& golden);

}  // namespace snicit::radixnet
