#include "radixnet/radixnet.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "platform/common.hpp"
#include "platform/rng.hpp"
#include "sparse/coo.hpp"

namespace snicit::radixnet {

float table1_bias(Index neurons) {
  // Table 1: -0.30 @ 1024, -0.35 @ 4096, -0.40 @ 16384, -0.45 @ 65536.
  // That is linear in log2(N): bias = -0.30 - 0.025 * (log2(N) - 10).
  const double lg = std::log2(static_cast<double>(neurons));
  return static_cast<float>(-0.30 - 0.025 * (lg - 10.0));
}

WeightCalibration calibrated_weights(Index neurons) {
  // Empirically tuned against the Table 1 bias for each size band so the
  // feed-forward dynamics converge (see DESIGN.md): small nets need a
  // slightly wider magnitude band to overcome their shallower butterfly
  // mixing; mid-size nets sit in a sparse-activation regime; large nets
  // need stronger drive against their more negative bias.
  if (neurons <= 512) return {0.14f, 0.28f, 0.30};
  if (neurons <= 2048) return {0.125f, 0.25f, 0.35};
  return {0.15f, 0.30f, 0.30};
}

SparseDnn make_radixnet(const RadixNetOptions& options) {
  SNICIT_CHECK(options.neurons > 0, "neurons must be positive");
  SNICIT_CHECK(options.layers > 0, "layers must be positive");
  SNICIT_CHECK(options.fanin > 0 && options.fanin <= options.neurons,
               "fanin must be in [1, neurons]");

  const Index n = options.neurons;
  const int fanin = options.fanin;
  const float bias = options.bias == RadixNetOptions::kAutoBias
                         ? table1_bias(n)
                         : options.bias;
  const auto cal = calibrated_weights(n);
  const float w_lo = options.w_lo < 0.0f ? cal.w_lo : options.w_lo;
  const float w_hi = options.w_hi < 0.0f ? cal.w_hi : options.w_hi;
  const double neg_prob =
      options.neg_prob < 0.0 ? cal.neg_prob : options.neg_prob;
  SNICIT_CHECK(w_lo <= w_hi, "invalid weight range");

  platform::Rng rng(options.seed);
  std::vector<sparse::CsrMatrix> weights;
  weights.reserve(static_cast<std::size_t>(options.layers));
  std::vector<std::vector<float>> biases(
      static_cast<std::size_t>(options.layers),
      std::vector<float>(static_cast<std::size_t>(n), bias));

  // Mixed-radix butterfly strides: 1, fanin, fanin^2, ... reset once the
  // stride would wrap the layer width, exactly like stacking radix-`fanin`
  // butterfly stages to cover all N inputs.
  std::int64_t stride = 1;
  for (int layer = 0; layer < options.layers; ++layer) {
    sparse::CooMatrix coo(n, n);
    coo.reserve(static_cast<std::size_t>(n) * fanin);
    // Per-layer rotation decorrelates consecutive layers that happen to
    // share the same stride.
    const Index rotation = static_cast<Index>(rng.next_below(n));
    for (Index j = 0; j < n; ++j) {
      for (int k = 0; k < fanin; ++k) {
        const auto src = static_cast<Index>(
            (static_cast<std::int64_t>(j) + rotation +
             static_cast<std::int64_t>(k) * stride) %
            n);
        float w = rng.uniform(w_lo, w_hi);
        if (rng.next_bool(neg_prob)) w = -w;
        coo.add(j, src, w);
      }
    }
    coo.coalesce();
    weights.push_back(sparse::CsrMatrix::from_coo(coo));

    stride *= fanin;
    if (stride * fanin > n) stride = 1;
  }

  const std::string name = std::to_string(n) + "-" +
                           std::to_string(options.layers) + " (radixnet)";
  return SparseDnn(n, std::move(weights), std::move(biases), options.ymax,
                   name);
}

SdgcStats sdgc_stats(Index neurons, int layers) {
  SdgcStats s;
  s.neurons = neurons;
  s.layers = layers;
  s.bias = table1_bias(neurons);
  s.density = 32.0 / static_cast<double>(neurons);
  s.connections =
      static_cast<std::int64_t>(32) * neurons * layers;
  // 12 bytes per stored edge: two 4-byte indices + one 4-byte float,
  // which reproduces Table 1's sizes (e.g. 65536-1920 → 92.5 GB wire size
  // at ~23 bytes/edge in TSV; we report the binary size and the TSV size
  // is derived in the bench).
  s.size_gb = static_cast<double>(s.connections) * 23.0 / 1e9;
  return s;
}

}  // namespace snicit::radixnet
