// The official SDGC serial CPU reference implementation (the baseline the
// challenge ships and against which the paper's "24000x over the official
// CPU baseline" figure is computed): a naive single-threaded triple-loop
// feed-forward with no sparsity-aware scheduling.
#pragma once

#include "dnn/engine.hpp"

namespace snicit::baselines {

class SerialEngine final : public dnn::InferenceEngine {
 public:
  std::string name() const override { return "SDGC-serial"; }
  dnn::RunResult run(const dnn::SparseDnn& net,
                     const dnn::DenseMatrix& input) override;
  void run_into(const dnn::SparseDnn& net, const dnn::DenseMatrix& input,
                platform::Workspace& ws, dnn::RunResult& result) override;
  std::unique_ptr<dnn::InferenceEngine> clone() const override {
    return std::make_unique<SerialEngine>(*this);
  }

 private:
  platform::Workspace ws_;  // scratch behind the plain run() entry point
};

}  // namespace snicit::baselines
