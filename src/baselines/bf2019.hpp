// BF-2019 (Bisson & Fatica), SDGC 2019 champion: partitions the input
// batch into sections and distributes the feed-forward over multiple GPUs,
// double-buffering activations per partition. Here each partition maps to
// a pool task ("one GPU"), and the per-partition kernel is the
// activation-sparsity scatter kernel (the single-GPU inner loop of the
// original). Exact: no compression, bit-identical to the reference.
#pragma once

#include "dnn/engine.hpp"
#include "sparse/spmm_policy.hpp"

namespace snicit::baselines {

class Bf2019Engine final : public dnn::InferenceEngine {
 public:
  /// `partitions` — number of batch sections (the paper's GPU count);
  /// 0 picks one partition per pool thread. `policy` drives the
  /// per-partition spMM: auto cost-model selection by default (the
  /// original's scatter inner loop is one of the arms), or a forced arm.
  explicit Bf2019Engine(std::size_t partitions = 0,
                        sparse::SpmmPolicy policy = {});

  std::string name() const override { return "BF-2019"; }
  dnn::RunResult run(const dnn::SparseDnn& net,
                     const dnn::DenseMatrix& input) override;
  void run_into(const dnn::SparseDnn& net, const dnn::DenseMatrix& input,
                platform::Workspace& ws, dnn::RunResult& result) override;
  std::unique_ptr<dnn::InferenceEngine> clone() const override {
    return std::make_unique<Bf2019Engine>(*this);
  }

 private:
  std::size_t partitions_;
  sparse::SpmmPolicy policy_;
  platform::Workspace ws_;  // scratch behind the plain run() entry point
};

}  // namespace snicit::baselines
