#include "baselines/xy2021.hpp"

#include <algorithm>
#include <vector>

#include "platform/common.hpp"
#include "platform/metrics.hpp"
#include "platform/timer.hpp"
#include "platform/trace.hpp"
#include "sparse/spmm.hpp"

namespace snicit::baselines {

Xy2021Engine::Xy2021Engine(Xy2021Options options) : options_(options) {}

dnn::RunResult Xy2021Engine::run(const dnn::SparseDnn& net,
                                 const dnn::DenseMatrix& input) {
  dnn::RunResult result;
  run_into(net, input, ws_, result);
  return result;
}

void Xy2021Engine::run_into(const dnn::SparseDnn& net,
                            const dnn::DenseMatrix& input,
                            platform::Workspace& ws,
                            dnn::RunResult& result) {
  SNICIT_TRACE_SPAN("xy2021.run", "engine");
  net.ensure_csc();
  result.begin_run();
  // The dense arm runs on the ELL layout when the weight grid is regular
  // enough (fixed fan-in: zero padding).
  const bool use_ell =
      options_.prefer_ell &&
      net.weight_ell(0).padding_ratio() <= options_.max_ell_padding;
  if (use_ell) net.ensure_ell();

  const std::size_t rows = input.rows();
  const std::size_t batch = input.cols();
  const std::size_t layers = net.num_layers();
  result.layer_ms.reserve(layers);

  platform::Stopwatch total;
  if (layers == 0) {
    result.output.reset(rows, batch, sparse::ZeroFill::kNo);
    result.diagnostics["gather_layers"] = 0.0;
    result.diagnostics["scatter_layers"] = 0.0;
    std::copy_n(input.data(), rows * batch, result.output.data());
    result.stages.add("feed-forward", total.elapsed_ms());
    ws.mark_warm();
    return;
  }

  // Density probes reuse a fixed prefix of columns; inputs are shuffled,
  // so a prefix is an unbiased sample.
  const std::size_t probe_n =
      std::min(options_.density_probe_columns,
               std::max<std::size_t>(1, batch));
  auto& probe = ws.vec(platform::Workspace::kColumns, probe_n);
  for (std::size_t j = 0; j < probe_n; ++j) {
    probe[j] = static_cast<sparse::Index>(j);
  }

  // Which spMM arm the cost model picked, per layer (0 = gather/ELL,
  // 1 = scatter) — the decision trace the paper's §2.3 discussion is
  // about; cached so the layer loop does one null check when metrics are
  // off.
  namespace metrics = platform::metrics;
  metrics::Series* variant_series = nullptr;
  metrics::Series* density_series = nullptr;
  if (metrics::enabled()) {
    auto& registry = metrics::MetricsRegistry::global();
    variant_series = &registry.series("xy2021.kernel_variant");
    density_series = &registry.series("xy2021.probe_density");
  }

  auto& ping =
      ws.mat(platform::Workspace::kPing, rows, batch, sparse::ZeroFill::kNo);
  std::copy_n(input.data(), rows * batch, ping.data());
  auto& pong =
      ws.mat(platform::Workspace::kPong, rows, batch, sparse::ZeroFill::kNo);
  dnn::DenseMatrix* cur = &ping;
  dnn::DenseMatrix* nxt = &pong;
  double gather_picks = 0.0;
  double scatter_picks = 0.0;

  // The optimisation-space search now runs through the library-wide cost
  // model (sparse/spmm_policy.hpp): scalar gather, register-blocked SIMD
  // gather, row-parallel gather, tiled, scatter, blocked scatter — priced
  // from the measured density, weight nnz/row and batch width. The legacy
  // option fields feed the policy's knobs.
  sparse::SpmmPolicy policy = options_.policy;
  policy.tile = options_.tile;
  policy.scatter_setup_cost = options_.scatter_setup_cost;

  for (std::size_t layer = 0; layer < layers; ++layer) {
    SNICIT_TRACE_SPAN("xy_layer", "xy2021");
    platform::Stopwatch lt;
    const double density = sparse::estimate_column_density(
        *cur, std::span<const sparse::Index>(probe.data(), probe_n));
    sparse::SpmmProblem problem;
    problem.rows = static_cast<std::size_t>(net.weight(layer).rows());
    problem.nnz = static_cast<std::size_t>(net.weight(layer).nnz());
    problem.batch_cols = batch;
    problem.density = density;
    problem.has_csc = true;
    const auto variant = sparse::select_spmm_variant(problem, policy);
    const bool is_scatter = variant == sparse::SpmmVariant::kScatter ||
                            variant == sparse::SpmmVariant::kScatterSimd;
    // The last layer writes straight into the caller's result, skipping
    // the final buffer copy.
    dnn::DenseMatrix* dst = nxt;
    if (layer + 1 == layers) {
      result.output.reset(rows, batch, sparse::ZeroFill::kNo);
      dst = &result.output;
    }
    if (variant == sparse::SpmmVariant::kGatherScalar && use_ell) {
      // The dense scalar arm runs on the regular ELL layout when the
      // weight grid allows it — the champions' preferred dense format.
      // No fused form exists for ELL, so the epilogue stays a separate
      // pass on this arm.
      sparse::spmm_ell(net.weight_ell(layer), *cur, *dst);
      sparse::apply_bias_activation(*dst, net.bias(layer), net.ymax());
    } else {
      sparse::SpmmPolicy forced = policy;
      forced.variant = variant;
      const sparse::BiasAct epi{net.bias(layer), 0.0f, net.ymax()};
      sparse::spmm_dispatch_fused(net.weight(layer), &net.weight_csc(layer),
                                  *cur, *dst, density, epi, forced);
    }
    if (is_scatter) {
      scatter_picks += 1.0;
    } else {
      gather_picks += 1.0;
    }
    if (layer + 1 < layers) std::swap(cur, nxt);
    result.layer_ms.push_back(lt.elapsed_ms());
    if (variant_series != nullptr) {
      variant_series->record(layer, static_cast<double>(variant));
      density_series->record(layer, density);
    }
  }

  result.stages.add("feed-forward", total.elapsed_ms());
  result.diagnostics["gather_layers"] = gather_picks;
  result.diagnostics["scatter_layers"] = scatter_picks;
  if (metrics::enabled()) {
    auto& registry = metrics::MetricsRegistry::global();
    registry.counter("xy2021.gather_layers")
        .add(static_cast<std::int64_t>(gather_picks));
    registry.counter("xy2021.scatter_layers")
        .add(static_cast<std::int64_t>(scatter_picks));
  }
  ws.mark_warm();
}

}  // namespace snicit::baselines
