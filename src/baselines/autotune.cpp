#include "baselines/autotune.hpp"

#include <limits>
#include <vector>

#include "platform/common.hpp"
#include "platform/thread_pool.hpp"
#include "platform/timer.hpp"
#include "sparse/spmm.hpp"

namespace snicit::baselines {

namespace {

void run_arm(sparse::SpmmVariant variant, const sparse::SpmmPolicy& base,
             const dnn::SparseDnn& net, std::size_t layer,
             const dnn::DenseMatrix& in, dnn::DenseMatrix& out,
             double density, bool use_ell) {
  if (variant == sparse::SpmmVariant::kGatherScalar && use_ell) {
    // The scalar-gather arm runs on the regular ELL layout when the
    // weight grid allows it, matching the analytic engines.
    sparse::spmm_ell(net.weight_ell(layer), in, out);
    return;
  }
  sparse::SpmmPolicy forced = base;
  forced.variant = variant;
  sparse::spmm_dispatch(net.weight(layer), &net.weight_csc(layer), in, out,
                        density, forced);
}

}  // namespace

AutotuneEngine::AutotuneEngine(AutotuneOptions options)
    : options_(options) {
  SNICIT_CHECK(options_.trial_rounds >= 1, "trial_rounds must be >= 1");
  SNICIT_CHECK(options_.low_density <= options_.high_density,
               "density buckets must be ordered");
}

std::vector<sparse::SpmmVariant> AutotuneEngine::arm_list() const {
  std::vector<sparse::SpmmVariant> arms = {
      sparse::SpmmVariant::kGatherScalar,
      sparse::SpmmVariant::kGatherSimd,
      sparse::SpmmVariant::kTiled,
      sparse::SpmmVariant::kScatter,
      sparse::SpmmVariant::kScatterSimd,
  };
  // The row-parallel arm is only a distinct point when the pool has more
  // than one worker; with one it is gather-SIMD plus overhead.
  if (options_.policy.allow_threads &&
      platform::ThreadPool::global().size() > 1) {
    arms.push_back(sparse::SpmmVariant::kGatherThreaded);
  }
  return arms;
}

dnn::RunResult AutotuneEngine::run(const dnn::SparseDnn& net,
                                   const dnn::DenseMatrix& input) {
  net.ensure_csc();
  const bool use_ell = net.weight_ell(0).padding_ratio() <= 0.1;
  if (use_ell) net.ensure_ell();

  const auto arms = arm_list();
  const int num_arms = static_cast<int>(arms.size());
  const bool forced =
      options_.policy.variant != sparse::SpmmVariant::kAuto;
  committed_ = {-1, -1, -1};
  if (forced) {
    const int v = static_cast<int>(options_.policy.variant);
    committed_ = {v, v, v};
  }

  // Per bucket: best time seen per arm during trials, next arm to trial.
  struct BucketState {
    std::vector<double> best_ms;
    std::vector<int> trials;
    int next_arm = 0;
  };
  std::array<BucketState, 3> buckets;
  for (auto& b : buckets) {
    b.best_ms.assign(static_cast<std::size_t>(num_arms),
                     std::numeric_limits<double>::infinity());
    b.trials.assign(static_cast<std::size_t>(num_arms), 0);
  }

  const std::size_t probe_n =
      std::min(options_.density_probe_columns,
               std::max<std::size_t>(1, input.cols()));
  std::vector<sparse::Index> probe(probe_n);
  for (std::size_t j = 0; j < probe_n; ++j) {
    probe[j] = static_cast<sparse::Index>(j);
  }

  dnn::RunResult result;
  result.layer_ms.reserve(net.num_layers());
  platform::Stopwatch total;
  dnn::DenseMatrix cur = input;
  dnn::DenseMatrix next(input.rows(), input.cols());

  for (std::size_t layer = 0; layer < net.num_layers(); ++layer) {
    const double density = sparse::estimate_column_density(cur, probe);
    const int bucket = density < options_.low_density ? 0
                       : density < options_.high_density ? 1
                                                         : 2;
    auto& state = buckets[static_cast<std::size_t>(bucket)];

    const int committed = committed_[static_cast<std::size_t>(bucket)];
    const bool trialling = committed < 0;
    const int arm_idx = trialling ? state.next_arm : -1;
    const sparse::SpmmVariant variant =
        trialling ? arms[static_cast<std::size_t>(arm_idx)]
                  : static_cast<sparse::SpmmVariant>(committed);

    platform::Stopwatch lt;
    run_arm(variant, options_.policy, net, layer, cur, next, density,
            use_ell);
    const double ms = lt.elapsed_ms();

    if (trialling) {
      state.best_ms[static_cast<std::size_t>(arm_idx)] =
          std::min(state.best_ms[static_cast<std::size_t>(arm_idx)], ms);
      if (++state.trials[static_cast<std::size_t>(arm_idx)] >=
          options_.trial_rounds) {
        state.next_arm = arm_idx + 1;
      }
      if (state.next_arm >= num_arms) {
        // All arms trialled: commit to the fastest.
        int best = 0;
        for (int a = 1; a < num_arms; ++a) {
          if (state.best_ms[static_cast<std::size_t>(a)] <
              state.best_ms[static_cast<std::size_t>(best)]) {
            best = a;
          }
        }
        committed_[static_cast<std::size_t>(bucket)] =
            static_cast<int>(arms[static_cast<std::size_t>(best)]);
      }
    }

    sparse::apply_bias_activation(next, net.bias(layer), net.ymax());
    std::swap(cur, next);
    result.layer_ms.push_back(ms);
  }

  result.stages.add("feed-forward", total.elapsed_ms());
  for (int b = 0; b < 3; ++b) {
    result.diagnostics["bucket" + std::to_string(b) + "_arm"] =
        committed_[static_cast<std::size_t>(b)];
  }
  result.output = std::move(cur);
  return result;
}

}  // namespace snicit::baselines
