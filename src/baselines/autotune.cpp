#include "baselines/autotune.hpp"

#include <limits>
#include <vector>

#include "platform/common.hpp"
#include "platform/timer.hpp"
#include "sparse/spmm.hpp"

namespace snicit::baselines {

namespace {

constexpr int kNumArms = 3;  // 0 gather/ELL, 1 scatter, 2 tiled

void run_arm(int arm, const dnn::SparseDnn& net, std::size_t layer,
             const dnn::DenseMatrix& in, dnn::DenseMatrix& out,
             bool use_ell) {
  switch (arm) {
    case 0:
      if (use_ell) {
        sparse::spmm_ell(net.weight_ell(layer), in, out);
      } else {
        sparse::spmm_gather(net.weight(layer), in, out);
      }
      break;
    case 1:
      sparse::spmm_scatter(net.weight_csc(layer), in, out);
      break;
    default:
      sparse::spmm_tiled(net.weight(layer), in, out);
      break;
  }
}

}  // namespace

AutotuneEngine::AutotuneEngine(AutotuneOptions options)
    : options_(options) {
  SNICIT_CHECK(options_.trial_rounds >= 1, "trial_rounds must be >= 1");
  SNICIT_CHECK(options_.low_density <= options_.high_density,
               "density buckets must be ordered");
}

dnn::RunResult AutotuneEngine::run(const dnn::SparseDnn& net,
                                   const dnn::DenseMatrix& input) {
  net.ensure_csc();
  const bool use_ell = net.weight_ell(0).padding_ratio() <= 0.1;
  if (use_ell) net.ensure_ell();
  committed_ = {-1, -1, -1};

  // Per bucket: best time seen per arm during trials, next arm to trial.
  struct BucketState {
    std::array<double, kNumArms> best_ms{
        std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::infinity()};
    std::array<int, kNumArms> trials{0, 0, 0};
    int next_arm = 0;
  };
  std::array<BucketState, 3> buckets;

  const std::size_t probe_n =
      std::min(options_.density_probe_columns,
               std::max<std::size_t>(1, input.cols()));
  std::vector<sparse::Index> probe(probe_n);
  for (std::size_t j = 0; j < probe_n; ++j) {
    probe[j] = static_cast<sparse::Index>(j);
  }

  dnn::RunResult result;
  result.layer_ms.reserve(net.num_layers());
  platform::Stopwatch total;
  dnn::DenseMatrix cur = input;
  dnn::DenseMatrix next(input.rows(), input.cols());

  for (std::size_t layer = 0; layer < net.num_layers(); ++layer) {
    const double density = sparse::estimate_column_density(cur, probe);
    const int bucket = density < options_.low_density ? 0
                       : density < options_.high_density ? 1
                                                         : 2;
    auto& state = buckets[static_cast<std::size_t>(bucket)];

    int arm = committed_[static_cast<std::size_t>(bucket)];
    const bool trialling = arm < 0;
    if (trialling) arm = state.next_arm;

    platform::Stopwatch lt;
    run_arm(arm, net, layer, cur, next, use_ell);
    const double ms = lt.elapsed_ms();

    if (trialling) {
      state.best_ms[static_cast<std::size_t>(arm)] =
          std::min(state.best_ms[static_cast<std::size_t>(arm)], ms);
      if (++state.trials[static_cast<std::size_t>(arm)] >=
          options_.trial_rounds) {
        state.next_arm = arm + 1;
      }
      if (state.next_arm >= kNumArms) {
        // All arms trialled: commit to the fastest.
        int best = 0;
        for (int a = 1; a < kNumArms; ++a) {
          if (state.best_ms[static_cast<std::size_t>(a)] <
              state.best_ms[static_cast<std::size_t>(best)]) {
            best = a;
          }
        }
        committed_[static_cast<std::size_t>(bucket)] = best;
      }
    }

    sparse::apply_bias_activation(next, net.bias(layer), net.ymax());
    std::swap(cur, next);
    result.layer_ms.push_back(ms);
  }

  result.stages.add("feed-forward", total.elapsed_ms());
  for (int b = 0; b < 3; ++b) {
    result.diagnostics["bucket" + std::to_string(b) + "_arm"] =
        committed_[static_cast<std::size_t>(b)];
  }
  result.output = std::move(cur);
  return result;
}

}  // namespace snicit::baselines
