#include "baselines/snig2020.hpp"

#include <algorithm>
#include <vector>

#include "platform/common.hpp"
#include "platform/metrics.hpp"
#include "platform/task_graph.hpp"
#include "platform/thread_pool.hpp"
#include "platform/timer.hpp"
#include "platform/trace.hpp"
#include "sparse/spmm.hpp"

namespace snicit::baselines {

Snig2020Engine::Snig2020Engine(std::size_t partitions,
                               std::size_t layers_per_task,
                               sparse::SpmmPolicy policy)
    : partitions_(partitions),
      layers_per_task_(std::max<std::size_t>(1, layers_per_task)),
      policy_(policy) {}

dnn::RunResult Snig2020Engine::run(const dnn::SparseDnn& net,
                                   const dnn::DenseMatrix& input) {
  dnn::RunResult result;
  run_into(net, input, ws_, result);
  return result;
}

void Snig2020Engine::run_into(const dnn::SparseDnn& net,
                              const dnn::DenseMatrix& input,
                              platform::Workspace& ws,
                              dnn::RunResult& result) {
  SNICIT_TRACE_SPAN("snig2020.run", "engine");
  net.ensure_csc();
  result.begin_run();

  const std::size_t rows = input.rows();
  const std::size_t batch = input.cols();
  const std::size_t parts = std::min(
      std::max<std::size_t>(1, batch),
      partitions_ != 0 ? partitions_
                       : 2 * platform::ThreadPool::global().size());
  const std::size_t layers = net.num_layers();
  const std::size_t stages = (layers + layers_per_task_ - 1) /
                             layers_per_task_;

  result.diagnostics["partitions"] = static_cast<double>(parts);
  result.diagnostics["graph_nodes"] = static_cast<double>(parts * stages);
  if (platform::metrics::enabled()) {
    auto& registry = platform::metrics::MetricsRegistry::global();
    registry.gauge("snig2020.partitions").set(static_cast<double>(parts));
    registry.gauge("snig2020.graph_nodes")
        .set(static_cast<double>(parts * stages));
  }

  platform::Stopwatch total;
  if (layers == 0) {
    result.output.reset(rows, batch, sparse::ZeroFill::kNo);
    std::copy_n(input.data(), rows * batch, result.output.data());
    result.stages.add("feed-forward", total.elapsed_ms());
    ws.mark_warm();
    return;
  }

  auto& ping =
      ws.mat(platform::Workspace::kPing, rows, batch, sparse::ZeroFill::kNo);
  std::copy_n(input.data(), rows * batch, ping.data());
  auto& pong =
      ws.mat(platform::Workspace::kPong, rows, batch, sparse::ZeroFill::kNo);
  const std::size_t chunk = (batch + parts - 1) / parts;

  // Column index lists per partition (built once, reused by every stage;
  // the workspace keeps their capacity across runs).
  auto& part_cols = ws.index_lists();
  part_cols.resize(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t lo = p * chunk;
    const std::size_t hi = std::min(batch, lo + chunk);
    auto& cols = part_cols[p];
    cols.clear();
    for (std::size_t j = lo; j < hi; ++j) {
      cols.push_back(static_cast<sparse::Index>(j));
    }
  }

  // Task graph: one chain of `stages` nodes per partition. Partitions are
  // independent, so chains only carry intra-partition edges — exactly the
  // structure that lets SNIG overlap partitions at different layers. The
  // graph itself (nodes, edges, closures) is rebuilt per run — the one
  // deliberate exception to the zero-steady-state-allocation rule, since
  // the node closures capture per-run state by design.
  platform::TaskGraph graph;
  std::vector<platform::TaskGraph::TaskId> prev_node(parts);
  for (std::size_t s = 0; s < stages; ++s) {
    const std::size_t l0 = s * layers_per_task_;
    const std::size_t l1 = std::min(layers, l0 + layers_per_task_);
    for (std::size_t p = 0; p < parts; ++p) {
      if (part_cols[p].empty()) continue;
      const auto id = graph.add([&net, &ping, &pong, &part_cols, p, l0, l1,
                                 this] {
        SNICIT_TRACE_SPAN("snig_stage", "snig2020");
        // Advance this partition through layers [l0, l1). The shared
        // double buffers alternate per layer; all partitions advance in
        // the same stage before buffers swap, so column ranges never
        // clash. Stage-local buffers alternate via parity of the layer.
        for (std::size_t l = l0; l < l1; ++l) {
          const dnn::DenseMatrix& src = (l % 2 == 0) ? ping : pong;
          dnn::DenseMatrix& dst = (l % 2 == 0) ? pong : ping;
          // Probe this partition's own columns: graph nodes run
          // concurrently, so the estimate must not read other partitions'
          // half-updated buffers.
          const std::size_t probe_n =
              std::min<std::size_t>(part_cols[p].size(), 16);
          const double density = sparse::estimate_column_density(
              src, std::span<const sparse::Index>(part_cols[p].data(),
                                                  probe_n));
          // Bias + clipped ReLU fused into the kernel's store on this
          // partition's columns — element-wise identical to the explicit
          // per-column epilogue loop it replaces.
          const sparse::BiasAct epi{net.bias(l), 0.0f, net.ymax()};
          sparse::spmm_dispatch_cols_fused(net.weight(l), &net.weight_csc(l),
                                           src, part_cols[p], dst, density,
                                           epi, policy_);
        }
      });
      if (s > 0) graph.add_edge(prev_node[p], id);
      prev_node[p] = id;
    }
  }
  graph.run();

  result.stages.add("feed-forward", total.elapsed_ms());
  // With fused stages per-layer timing is not observable; expose the
  // average instead so harnesses can still report per-layer latency.
  result.layer_ms.assign(layers, result.stages.total_ms() /
                                     static_cast<double>(layers));
  // The final activations live in whichever buffer layer parity left them
  // in; both buffers are workspace slots, so copy out to the caller.
  const dnn::DenseMatrix& last = (layers % 2 == 0) ? ping : pong;
  result.output.reset(rows, batch, sparse::ZeroFill::kNo);
  std::copy_n(last.data(), rows * batch, result.output.data());
  ws.mark_warm();
}

}  // namespace snicit::baselines
