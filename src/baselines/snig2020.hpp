// SNIG-2020 (Lin & Huang), SDGC 2020 champion: cuts CPU-GPU
// synchronization by expressing inference as a task graph — the batch is
// split into partitions and each partition advances through layers as an
// independent chain of tasks, so partitions at different depths overlap.
// Here the chains run on the library's TaskGraph executor. Exact engine.
#pragma once

#include "dnn/engine.hpp"
#include "sparse/spmm_policy.hpp"

namespace snicit::baselines {

class Snig2020Engine final : public dnn::InferenceEngine {
 public:
  /// `partitions` — batch partitions (task-graph rows); 0 = 2x pool size.
  /// `layers_per_task` — layers fused into one task node (reduces graph
  /// overhead on deep nets, like SNIG's kernel fusion). `policy` — spMM
  /// kernel policy per partition-stage (auto cost model by default).
  explicit Snig2020Engine(std::size_t partitions = 0,
                          std::size_t layers_per_task = 4,
                          sparse::SpmmPolicy policy = {});

  std::string name() const override { return "SNIG-2020"; }
  dnn::RunResult run(const dnn::SparseDnn& net,
                     const dnn::DenseMatrix& input) override;
  void run_into(const dnn::SparseDnn& net, const dnn::DenseMatrix& input,
                platform::Workspace& ws, dnn::RunResult& result) override;
  std::unique_ptr<dnn::InferenceEngine> clone() const override {
    return std::make_unique<Snig2020Engine>(*this);
  }

 private:
  std::size_t partitions_;
  std::size_t layers_per_task_;
  sparse::SpmmPolicy policy_;
  platform::Workspace ws_;  // scratch behind the plain run() entry point
};

}  // namespace snicit::baselines
