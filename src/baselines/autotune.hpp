// Measurement-driven kernel autotuning — the empirical complement to
// XY-2021's analytic cost model. XY-2021 builds an optimization space of
// spMM kernels and *predicts* the best point; this engine instead *tries*
// every kernel arm on the first layers of the run (densities are roughly
// stationary layer to layer) and then commits to the measured winner per
// density bucket. The arm list is the library's full variant family
// (scalar / SIMD / row-parallel gather, tiled, scalar / blocked scatter);
// a forced SpmmPolicy variant skips trialling entirely. Exact engine:
// every arm computes the same result.
#pragma once

#include <array>
#include <vector>

#include "dnn/engine.hpp"
#include "sparse/spmm_policy.hpp"

namespace snicit::baselines {

struct AutotuneOptions {
  /// Layers spent trialling each kernel arm before committing (per
  /// density bucket).
  int trial_rounds = 1;
  /// Activation-density bucket edges: [0, low) -> bucket 0,
  /// [low, high) -> bucket 1, [high, 1] -> bucket 2.
  double low_density = 0.15;
  double high_density = 0.6;
  /// Columns probed for the density estimate.
  std::size_t density_probe_columns = 16;
  /// Kernel policy. variant == kAuto trials the full arm list; a forced
  /// variant pins every layer to that kernel and skips the trials. The
  /// tile / threading knobs also shape how each arm executes.
  sparse::SpmmPolicy policy = {};
};

class AutotuneEngine final : public dnn::InferenceEngine {
 public:
  explicit AutotuneEngine(AutotuneOptions options = {});

  std::string name() const override { return "autotune"; }
  dnn::RunResult run(const dnn::SparseDnn& net,
                     const dnn::DenseMatrix& input) override;
  /// Clones carry the committed kernel arms, so a pooled clone of a
  /// warmed engine skips the trial rounds.
  std::unique_ptr<dnn::InferenceEngine> clone() const override {
    return std::make_unique<AutotuneEngine>(*this);
  }

  /// Kernel variant (sparse::SpmmVariant as int) committed per density
  /// bucket after the last run (-1 while a bucket is still trialling /
  /// was never seen).
  std::array<int, 3> committed_arms() const { return committed_; }

  /// The arm list a run with this engine's options would trial, in trial
  /// order. Exposed for tests and diagnostics.
  std::vector<sparse::SpmmVariant> arm_list() const;

 private:
  AutotuneOptions options_;
  std::array<int, 3> committed_{-1, -1, -1};
};

}  // namespace snicit::baselines
