#include "baselines/serial.hpp"

#include <algorithm>

#include "platform/timer.hpp"
#include "platform/trace.hpp"

namespace snicit::baselines {

dnn::RunResult SerialEngine::run(const dnn::SparseDnn& net,
                                 const dnn::DenseMatrix& input) {
  SNICIT_TRACE_SPAN("serial.run", "engine");
  dnn::RunResult result;
  result.layer_ms.reserve(net.num_layers());

  platform::Stopwatch total;
  dnn::DenseMatrix cur = input;
  dnn::DenseMatrix next(input.rows(), input.cols());
  for (std::size_t layer = 0; layer < net.num_layers(); ++layer) {
    SNICIT_TRACE_SPAN("serial_layer", "serial");
    platform::Stopwatch lt;
    const auto& w = net.weight(layer);
    const auto& bias = net.bias(layer);
    // Deliberately naive: single thread, no activation-sparsity skipping,
    // no blocking — the shape of the challenge's reference code.
    for (std::size_t j = 0; j < cur.cols(); ++j) {
      const float* in = cur.col(j);
      float* out = next.col(j);
      for (dnn::Index r = 0; r < w.rows(); ++r) {
        const auto cols = w.row_cols(r);
        const auto vals = w.row_vals(r);
        float acc = bias[static_cast<std::size_t>(r)];
        for (std::size_t k = 0; k < cols.size(); ++k) {
          acc += vals[k] * in[cols[k]];
        }
        out[r] = std::min(std::max(acc, 0.0f), net.ymax());
      }
    }
    std::swap(cur, next);
    result.layer_ms.push_back(lt.elapsed_ms());
  }
  result.stages.add("feed-forward", total.elapsed_ms());
  result.output = std::move(cur);
  return result;
}

}  // namespace snicit::baselines
