#include "baselines/serial.hpp"

#include <algorithm>

#include "platform/timer.hpp"
#include "platform/trace.hpp"

namespace snicit::baselines {

dnn::RunResult SerialEngine::run(const dnn::SparseDnn& net,
                                 const dnn::DenseMatrix& input) {
  dnn::RunResult result;
  run_into(net, input, ws_, result);
  return result;
}

void SerialEngine::run_into(const dnn::SparseDnn& net,
                            const dnn::DenseMatrix& input,
                            platform::Workspace& ws,
                            dnn::RunResult& result) {
  SNICIT_TRACE_SPAN("serial.run", "engine");
  result.begin_run();
  const std::size_t rows = input.rows();
  const std::size_t batch = input.cols();
  const std::size_t layers = net.num_layers();
  result.layer_ms.reserve(layers);

  platform::Stopwatch total;
  if (layers == 0) {
    result.output.reset(rows, batch, sparse::ZeroFill::kNo);
    std::copy_n(input.data(), rows * batch, result.output.data());
    result.stages.add("feed-forward", total.elapsed_ms());
    ws.mark_warm();
    return;
  }

  auto& ping =
      ws.mat(platform::Workspace::kPing, rows, batch, sparse::ZeroFill::kNo);
  std::copy_n(input.data(), rows * batch, ping.data());
  auto& pong =
      ws.mat(platform::Workspace::kPong, rows, batch, sparse::ZeroFill::kNo);
  dnn::DenseMatrix* cur = &ping;
  dnn::DenseMatrix* nxt = &pong;
  for (std::size_t layer = 0; layer < layers; ++layer) {
    SNICIT_TRACE_SPAN("serial_layer", "serial");
    platform::Stopwatch lt;
    const auto& w = net.weight(layer);
    const auto& bias = net.bias(layer);
    // The last layer writes straight into the caller's result, skipping
    // the final buffer copy.
    dnn::DenseMatrix* dst = nxt;
    if (layer + 1 == layers) {
      result.output.reset(rows, batch, sparse::ZeroFill::kNo);
      dst = &result.output;
    }
    // Deliberately naive: single thread, no activation-sparsity skipping,
    // no blocking — the shape of the challenge's reference code.
    for (std::size_t j = 0; j < cur->cols(); ++j) {
      const float* in = cur->col(j);
      float* out = dst->col(j);
      for (dnn::Index r = 0; r < w.rows(); ++r) {
        const auto cols = w.row_cols(r);
        const auto vals = w.row_vals(r);
        float acc = bias[static_cast<std::size_t>(r)];
        for (std::size_t k = 0; k < cols.size(); ++k) {
          acc += vals[k] * in[cols[k]];
        }
        out[r] = std::min(std::max(acc, 0.0f), net.ymax());
      }
    }
    if (layer + 1 < layers) std::swap(cur, nxt);
    result.layer_ms.push_back(lt.elapsed_ms());
  }
  result.stages.add("feed-forward", total.elapsed_ms());
  ws.mark_warm();
}

}  // namespace snicit::baselines
