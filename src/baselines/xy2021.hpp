// XY-2021 (Xin et al.), SDGC 2021 champion: generalizes the spMM kernel
// into a parameterized optimization space and picks the best variant with
// a cost model. This port exposes the library's kernel family (gather /
// tiled / scatter) as the space and selects per layer from a measured
// activation-density estimate, mirroring the original's flexible SpMM
// optimisation-space exploration. Exact engine.
#pragma once

#include "dnn/engine.hpp"
#include "sparse/spmm_policy.hpp"

namespace snicit::baselines {

struct Xy2021Options {
  /// Columns sampled when estimating activation density per layer.
  std::size_t density_probe_columns = 16;
  /// Tile width for the tiled kernel arm.
  std::size_t tile = 16;
  /// Fixed per-input-column overhead of the scatter kernel (zeroing the
  /// accumulator), in units of weight-nnz work; part of the cost model.
  double scatter_setup_cost = 0.15;
  /// Kernel-space policy: kAuto explores the library's full optimisation
  /// space (scalar/SIMD/threaded/tiled/scatter) with the analytic cost
  /// model in sparse/spmm_policy.hpp; a forced variant pins one arm.
  /// The tile and scatter_setup_cost fields above are copied in.
  sparse::SpmmPolicy policy = {};
  /// Use the regular ELLPACK layout for the dense arm when the weights
  /// have (near-)uniform fan-in — the champions' preferred layout on the
  /// fixed-32-fan-in SDGC nets.
  bool prefer_ell = true;
  double max_ell_padding = 0.10;
};

class Xy2021Engine final : public dnn::InferenceEngine {
 public:
  explicit Xy2021Engine(Xy2021Options options = {});

  std::string name() const override { return "XY-2021"; }
  dnn::RunResult run(const dnn::SparseDnn& net,
                     const dnn::DenseMatrix& input) override;
  void run_into(const dnn::SparseDnn& net, const dnn::DenseMatrix& input,
                platform::Workspace& ws, dnn::RunResult& result) override;
  std::unique_ptr<dnn::InferenceEngine> clone() const override {
    return std::make_unique<Xy2021Engine>(*this);
  }

 private:
  Xy2021Options options_;
  platform::Workspace ws_;  // scratch behind the plain run() entry point
};

}  // namespace snicit::baselines
