#include "baselines/bf2019.hpp"

#include <algorithm>

#include "platform/common.hpp"
#include "platform/metrics.hpp"
#include "platform/thread_pool.hpp"
#include "platform/timer.hpp"
#include "platform/trace.hpp"
#include "sparse/spmm.hpp"

namespace snicit::baselines {

Bf2019Engine::Bf2019Engine(std::size_t partitions,
                           sparse::SpmmPolicy policy)
    : partitions_(partitions), policy_(policy) {}

dnn::RunResult Bf2019Engine::run(const dnn::SparseDnn& net,
                                 const dnn::DenseMatrix& input) {
  SNICIT_TRACE_SPAN("bf2019.run", "engine");
  net.ensure_csc();  // model preparation, outside the clock

  const std::size_t batch = input.cols();
  const std::size_t parts =
      partitions_ != 0
          ? std::min(partitions_, std::max<std::size_t>(1, batch))
          : std::min(platform::ThreadPool::global().size(),
                     std::max<std::size_t>(1, batch));

  dnn::RunResult result;
  result.layer_ms.reserve(net.num_layers());
  result.diagnostics["partitions"] = static_cast<double>(parts);
  if (platform::metrics::enabled()) {
    platform::metrics::MetricsRegistry::global()
        .gauge("bf2019.partitions")
        .set(static_cast<double>(parts));
  }

  platform::Stopwatch total;
  // Double buffers shared by all partitions: partitions own disjoint
  // column ranges, so there is no overlap.
  dnn::DenseMatrix cur = input;
  dnn::DenseMatrix next(input.rows(), input.cols());
  const std::size_t chunk = (batch + parts - 1) / parts;

  // Density probe for the kernel policy, re-estimated per layer on the
  // first partition's columns (partitions see statistically identical
  // activations — inputs are shuffled).
  std::vector<sparse::Index> probe(std::min<std::size_t>(batch, 16));
  for (std::size_t j = 0; j < probe.size(); ++j) {
    probe[j] = static_cast<sparse::Index>(j);
  }

  for (std::size_t layer = 0; layer < net.num_layers(); ++layer) {
    SNICIT_TRACE_SPAN("bf_layer", "bf2019");
    platform::Stopwatch lt;
    const auto& w = net.weight(layer);
    const auto& w_csc = net.weight_csc(layer);
    const double density = sparse::estimate_column_density(cur, probe);
    platform::ThreadPool::global().run_chunks(parts, [&](std::size_t p) {
      const std::size_t lo = p * chunk;
      const std::size_t hi = std::min(batch, lo + chunk);
      if (lo >= hi) return;
      std::vector<sparse::Index> cols(hi - lo);
      for (std::size_t j = lo; j < hi; ++j) {
        cols[j - lo] = static_cast<sparse::Index>(j);
      }
      // Inside a pool chunk nested parallelism is inline, so each
      // partition runs its chosen kernel serially — one "GPU" each.
      sparse::spmm_dispatch_cols(w, &w_csc, cur, cols, next, density,
                                 policy_);
    });
    sparse::apply_bias_activation(next, net.bias(layer), net.ymax());
    std::swap(cur, next);
    result.layer_ms.push_back(lt.elapsed_ms());
  }

  result.stages.add("feed-forward", total.elapsed_ms());
  result.output = std::move(cur);
  return result;
}

}  // namespace snicit::baselines
