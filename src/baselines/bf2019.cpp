#include "baselines/bf2019.hpp"

#include <algorithm>

#include "platform/common.hpp"
#include "platform/metrics.hpp"
#include "platform/thread_pool.hpp"
#include "platform/timer.hpp"
#include "platform/trace.hpp"
#include "sparse/spmm.hpp"

namespace snicit::baselines {

Bf2019Engine::Bf2019Engine(std::size_t partitions,
                           sparse::SpmmPolicy policy)
    : partitions_(partitions), policy_(policy) {}

dnn::RunResult Bf2019Engine::run(const dnn::SparseDnn& net,
                                 const dnn::DenseMatrix& input) {
  dnn::RunResult result;
  run_into(net, input, ws_, result);
  return result;
}

void Bf2019Engine::run_into(const dnn::SparseDnn& net,
                            const dnn::DenseMatrix& input,
                            platform::Workspace& ws,
                            dnn::RunResult& result) {
  SNICIT_TRACE_SPAN("bf2019.run", "engine");
  net.ensure_csc();  // model preparation, outside the clock
  result.begin_run();

  const std::size_t rows = input.rows();
  const std::size_t batch = input.cols();
  const std::size_t layers = net.num_layers();
  const std::size_t parts =
      partitions_ != 0
          ? std::min(partitions_, std::max<std::size_t>(1, batch))
          : std::min(platform::ThreadPool::global().size(),
                     std::max<std::size_t>(1, batch));

  result.layer_ms.reserve(layers);
  result.diagnostics["partitions"] = static_cast<double>(parts);
  if (platform::metrics::enabled()) {
    platform::metrics::MetricsRegistry::global()
        .gauge("bf2019.partitions")
        .set(static_cast<double>(parts));
  }

  platform::Stopwatch total;
  if (layers == 0) {
    result.output.reset(rows, batch, sparse::ZeroFill::kNo);
    std::copy_n(input.data(), rows * batch, result.output.data());
    result.stages.add("feed-forward", total.elapsed_ms());
    ws.mark_warm();
    return;
  }

  // Double buffers shared by all partitions: partitions own disjoint
  // column ranges, so there is no overlap.
  auto& ping =
      ws.mat(platform::Workspace::kPing, rows, batch, sparse::ZeroFill::kNo);
  std::copy_n(input.data(), rows * batch, ping.data());
  auto& pong =
      ws.mat(platform::Workspace::kPong, rows, batch, sparse::ZeroFill::kNo);
  dnn::DenseMatrix* cur = &ping;
  dnn::DenseMatrix* nxt = &pong;
  const std::size_t chunk = (batch + parts - 1) / parts;

  // Per-partition column lists are layer-invariant: build them once per
  // run, in reusable workspace storage.
  auto& part_cols = ws.index_lists();
  part_cols.resize(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t lo = p * chunk;
    const std::size_t hi = std::min(batch, lo + chunk);
    auto& cols = part_cols[p];
    cols.clear();
    for (std::size_t j = lo; j < hi; ++j) {
      cols.push_back(static_cast<sparse::Index>(j));
    }
  }

  // Density probe for the kernel policy, re-estimated per layer on the
  // first partition's columns (partitions see statistically identical
  // activations — inputs are shuffled).
  auto& probe = ws.vec(platform::Workspace::kColumns,
                       std::min<std::size_t>(batch, 16));
  for (std::size_t j = 0; j < probe.size(); ++j) {
    probe[j] = static_cast<sparse::Index>(j);
  }

  for (std::size_t layer = 0; layer < layers; ++layer) {
    SNICIT_TRACE_SPAN("bf_layer", "bf2019");
    platform::Stopwatch lt;
    const auto& w = net.weight(layer);
    const auto& w_csc = net.weight_csc(layer);
    const double density = sparse::estimate_column_density(
        *cur, std::span<const sparse::Index>(probe.data(), probe.size()));
    dnn::DenseMatrix* dst = nxt;
    if (layer + 1 == layers) {
      // Last layer writes straight into the caller's result — every
      // column belongs to exactly one partition, so the matrix is fully
      // covered.
      result.output.reset(rows, batch, sparse::ZeroFill::kNo);
      dst = &result.output;
    }
    const sparse::BiasAct epi{net.bias(layer), 0.0f, net.ymax()};
    platform::ThreadPool::global().run_chunks(parts, [&](std::size_t p) {
      if (part_cols[p].empty()) return;
      // Inside a pool chunk nested parallelism is inline, so each
      // partition runs its chosen kernel serially — one "GPU" each. The
      // bias + clipped-ReLU epilogue is fused into the partition's kernel
      // store (bit-identical to the old global apply_bias_activation
      // pass, which touched every column exactly once — as the disjoint
      // partitions do).
      sparse::spmm_dispatch_cols_fused(w, &w_csc, *cur, part_cols[p], *dst,
                                       density, epi, policy_);
    });
    if (layer + 1 < layers) std::swap(cur, nxt);
    result.layer_ms.push_back(lt.elapsed_ms());
  }

  result.stages.add("feed-forward", total.elapsed_ms());
  ws.mark_warm();
}

}  // namespace snicit::baselines
