#include "platform/fault_injection.hpp"

#include <cstdio>
#include <cstdlib>

#include "platform/env.hpp"
#include "platform/metrics.hpp"
#include "platform/rng.hpp"

namespace snicit::platform::fault {

namespace {

// FNV-1a over the site name: folds the site identity into the seed so
// distinct sites armed together draw independent fault patterns.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// One SplitMix64 round over (seed ^ site ^ key): a pure stateless mix,
// so a trial's outcome never depends on other trials or threads.
double keyed_uniform(std::uint64_t seed, std::uint64_t site_hash,
                     std::uint64_t key) {
  SplitMix64 mix(seed ^ site_hash ^ (key * 0x9e3779b97f4a7c15ULL));
  return static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
}

}  // namespace

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      "worker_throw", "queue_stall", "nan_tile", "spmm_nan", "convert_nan",
      "alloc_fail",
  };
  return sites;
}

Result<void> FaultRegistry::configure(const std::string& spec,
                                      std::uint64_t seed) {
  std::vector<std::unique_ptr<Site>> parsed;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;

    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return Error{ErrorCode::kBadInput,
                   "fault spec entry '" + entry +
                       "' is not of the form site:probability[:param]"};
    }
    const std::string name = entry.substr(0, colon);
    bool valid_name = false;
    for (const auto& site : known_sites()) valid_name |= (site == name);
    if (!valid_name) {
      std::string expected;
      for (const auto& site : known_sites()) {
        if (!expected.empty()) expected += "|";
        expected += site;
      }
      return Error{ErrorCode::kBadInput, "unknown fault site '" + name +
                                             "' (expected " + expected + ")"};
    }

    SiteConfig config;
    const std::string rest = entry.substr(colon + 1);
    const std::size_t colon2 = rest.find(':');
    const std::string prob_str =
        colon2 == std::string::npos ? rest : rest.substr(0, colon2);
    char* parse_end = nullptr;
    config.probability = std::strtod(prob_str.c_str(), &parse_end);
    if (parse_end == prob_str.c_str() || *parse_end != '\0' ||
        config.probability < 0.0 || config.probability > 1.0) {
      return Error{ErrorCode::kBadInput,
                   "fault probability '" + prob_str + "' for site '" + name +
                       "' is not a number in [0, 1]"};
    }
    if (colon2 != std::string::npos) {
      const std::string param_str = rest.substr(colon2 + 1);
      config.param = std::strtod(param_str.c_str(), &parse_end);
      if (parse_end == param_str.c_str() || *parse_end != '\0' ||
          config.param < 0.0) {
        return Error{ErrorCode::kBadInput,
                     "fault param '" + param_str + "' for site '" + name +
                         "' is not a non-negative number"};
      }
    }

    for (const auto& existing : parsed) {
      if (existing->name == name) {
        return Error{ErrorCode::kBadInput,
                     "fault site '" + name + "' configured twice"};
      }
    }
    auto site = std::make_unique<Site>();
    site->name = name;
    site->config = config;
    parsed.push_back(std::move(site));
  }

  bool any_armed = false;
  for (const auto& site : parsed) any_armed |= (site->config.probability > 0);
  sites_ = std::move(parsed);
  seed_ = seed;
  armed_.store(any_armed, std::memory_order_relaxed);
  return {};
}

void FaultRegistry::configure_from_env() {
  const std::string spec = env_string("SNICIT_FAULTS", "");
  const auto seed =
      static_cast<std::uint64_t>(env_int("SNICIT_FAULTS_SEED", 42));
  auto result = configure(spec, seed);
  if (!result.ok()) {
    // A drill whose spec silently failed to arm would report vacuous
    // success — treat a malformed environment as unrecoverable.
    platform::fatal(__FILE__, __LINE__,
                    "SNICIT_FAULTS: " + result.error().to_string());
  }
}

void FaultRegistry::clear() {
  sites_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

FaultRegistry::Site* FaultRegistry::find(std::string_view site) {
  for (const auto& s : sites_) {
    if (s->name == site) return s.get();
  }
  return nullptr;
}

const FaultRegistry::Site* FaultRegistry::find(std::string_view site) const {
  for (const auto& s : sites_) {
    if (s->name == site) return s.get();
  }
  return nullptr;
}

bool FaultRegistry::should_fire(std::string_view site, std::uint64_t key) {
  Site* s = find(site);
  if (s == nullptr) return false;
  // A configured site counts its trials even at probability 0, so drills
  // can verify a site was actually visited without arming it.
  s->trials.fetch_add(1, std::memory_order_relaxed);
  if (s->config.probability <= 0.0) return false;
  const bool fire =
      keyed_uniform(seed_, hash_name(site), key) < s->config.probability;
  if (fire) {
    s->fired.fetch_add(1, std::memory_order_relaxed);
    if (metrics::enabled()) {
      metrics::MetricsRegistry::global()
          .counter("fault.fired." + s->name)
          .add(1);
    }
  }
  return fire;
}

bool FaultRegistry::should_fire(std::string_view site) {
  Site* s = find(site);
  if (s == nullptr) return false;
  return should_fire(site, s->sequence.fetch_add(1, std::memory_order_relaxed));
}

double FaultRegistry::param(std::string_view site, double fallback) const {
  const Site* s = find(site);
  return (s == nullptr || s->config.param <= 0.0) ? fallback : s->config.param;
}

std::uint64_t FaultRegistry::trials(std::string_view site) const {
  const Site* s = find(site);
  return s == nullptr ? 0 : s->trials.load(std::memory_order_relaxed);
}

std::uint64_t FaultRegistry::fired(std::string_view site) const {
  const Site* s = find(site);
  return s == nullptr ? 0 : s->fired.load(std::memory_order_relaxed);
}

std::string FaultRegistry::spec() const {
  // %g round-trips the usual spec literals ("0.5", not "0.500000").
  const auto number = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return std::string(buf);
  };
  std::string out;
  for (const auto& s : sites_) {
    if (s->config.probability <= 0.0) continue;
    if (!out.empty()) out += ",";
    out += s->name + ":" + number(s->config.probability);
    if (s->config.param > 0.0) out += ":" + number(s->config.param);
  }
  return out;
}

FaultRegistry& FaultRegistry::global() {
  static FaultRegistry* registry = [] {
    auto* r = new FaultRegistry();
    r->configure_from_env();
    return r;
  }();
  return *registry;
}

}  // namespace snicit::platform::fault
