// A bounded multi-producer/multi-consumer queue: the backpressure channel
// between a stream producer slicing batches and the worker pool serving
// them. `push` blocks while the queue is at capacity, so a fast producer
// can never hold more than `capacity` undispatched batches in memory;
// `close` releases every blocked producer and consumer for shutdown: a
// producer parked in `push` wakes and gets ErrorCode::kQueueClosed (it is
// never left blocked, even when close() races the capacity wait), and
// consumers drain what is queued before seeing exhaustion.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "platform/common.hpp"
#include "platform/error.hpp"

namespace snicit::platform {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    SNICIT_CHECK(capacity >= 1, "queue capacity must be >= 1");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. kOk once enqueued; kQueueClosed (dropping
  /// `value`) when the queue is — or becomes, while this call is parked
  /// waiting for room — closed.
  ErrorCode push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return ErrorCode::kQueueClosed;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return ErrorCode::kOk;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty; drains remaining items after close, then
  /// returns nullopt forever.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    std::optional<T> value(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Irreversible: wakes every blocked push (which returns kQueueClosed)
  /// and pop (which drains what is left, then reports exhaustion).
  /// Idempotent and safe to race: exactly one caller observes the
  /// transition (returns true) and pays the wakeup broadcast; later or
  /// concurrent duplicate closes are no-ops (returns false).
  bool close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
    return true;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace snicit::platform
