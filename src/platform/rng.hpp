// Deterministic, seedable random number generation (SplitMix64 seeding a
// xoshiro256** core). Every stochastic component in the library draws from
// an explicitly seeded Rng so that tests and benchmarks are reproducible.
#pragma once

#include <cstdint>
#include <cmath>

namespace snicit::platform {

/// SplitMix64 — used to expand a single 64-bit seed into stream state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, non-cryptographic generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
    has_gauss_ = false;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's unbiased bounded generation (rejection on the low word).
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double next_gaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * mul;
    has_gauss_ = true;
    return u * mul;
  }

  /// Bernoulli with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool has_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace snicit::platform
