#include "platform/workspace.hpp"

#include <atomic>

#include "platform/metrics.hpp"

namespace snicit::platform {

namespace {
std::atomic<long long> g_bytes{0};
std::atomic<std::size_t> g_steady_allocs{0};
}  // namespace

namespace detail {

void workspace_account_bytes(long long delta) {
  g_bytes.fetch_add(delta, std::memory_order_relaxed);
}

void workspace_account_steady_allocs(std::size_t n) {
  g_steady_allocs.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace detail

std::size_t Workspace::global_bytes_reserved() {
  const long long v = g_bytes.load(std::memory_order_relaxed);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

std::size_t Workspace::global_steady_state_allocs() {
  return g_steady_allocs.load(std::memory_order_relaxed);
}

void Workspace::publish_metrics() {
  if (!metrics::enabled()) return;
  auto& registry = metrics::MetricsRegistry::global();
  registry.gauge("workspace.bytes_reserved")
      .set(static_cast<double>(global_bytes_reserved()));
  registry.gauge("workspace.steady_state_allocs")
      .set(static_cast<double>(global_steady_state_allocs()));
}

}  // namespace snicit::platform
