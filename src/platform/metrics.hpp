// Workload-counter metrics: a registry of named counters, gauges, and
// per-layer series that the engines, kernels, and the serving pipeline
// record into, answering *why* a run was fast — how many columns stayed
// non-empty per post-convergence layer, how many residue entries the
// prune threshold removed, which spMM variant a cost model picked, how
// deep the serving queue ran.
//
// Threading: every instrument is safe to record from pool workers.
// Counters are single atomic adds; gauges are atomic stores; series take
// a per-series mutex (they record once per *layer*, not per element, so
// the lock is cold). Instruments are created on first lookup and live for
// the registry's lifetime, so call sites may cache the returned
// references across layers/runs.
//
// Cost model mirrors platform::trace: recording sites in engine code gate
// on `metrics::enabled()` (one relaxed load) so disabled runs pay nothing
// per layer; a registry used directly (tests, local instances) always
// works regardless of the global flag.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace snicit::platform::metrics {

/// Globally gates the *recording sites* in engines/pipeline code. The
/// registry itself is always functional.
void set_enabled(bool on);
bool enabled();

/// Monotonic event count (nnz touched, residues pruned, batches served).
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t get() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written scalar (centroid count, worker count, threshold layer).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double get() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Append-only sample sequence, one value per layer (or per batch/event).
/// record(index, v) writes a specific slot so concurrent recorders (e.g.
/// engine clones at different layers) never shift each other's samples.
class Series {
 public:
  void push(double v) {
    std::lock_guard<std::mutex> lock(mutex_);
    values_.push_back(v);
  }

  /// Writes slot `index`, growing the series with zeros as needed.
  void record(std::size_t index, double v) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (values_.size() <= index) values_.resize(index + 1, 0.0);
    values_[index] = v;
  }

  std::vector<double> values() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return values_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return values_.size();
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    values_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<double> values_;
};

/// Named instrument store. Lookup is a map find under a mutex (cold: once
/// per run per instrument when call sites cache the reference).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Series& series(const std::string& name);

  /// Snapshot views for reporting (name -> current value(s)).
  std::map<std::string, std::int64_t> counter_values() const;
  std::map<std::string, double> gauge_values() const;
  std::map<std::string, std::vector<double>> series_values() const;

  /// Zeroes every instrument (names stay registered).
  void reset();

  /// {"counters":{...},"gauges":{...},"series":{name:[...]}}.
  std::string to_json() const;

  /// Writes to_json() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

  /// The process-wide registry all instrumentation sites record into.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Series>> series_;
};

}  // namespace snicit::platform::metrics
