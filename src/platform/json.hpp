// Minimal JSON writer for machine-readable benchmark reports: objects,
// arrays, strings (escaped), numbers, booleans. Write-only by design — the
// library never needs to parse JSON.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace snicit::platform {

class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits a key inside an object; must be followed by exactly one value
  /// (scalar or begin_object/begin_array).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::size_t v);
  JsonWriter& value(bool v);

  /// The serialized document; valid once all containers are closed.
  const std::string& str() const;

  static std::string escape(const std::string& s);

 private:
  void prepare_for_value();

  enum class Scope : std::uint8_t { kObject, kArray };
  struct Frame {
    Scope scope;
    bool has_items = false;
  };

  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace snicit::platform
