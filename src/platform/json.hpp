// Minimal JSON for machine-readable reports: a streaming writer (objects,
// arrays, strings (escaped), numbers, booleans) plus a small read-back
// parser so tests and tools can round-trip documents the library itself
// emits (trace captures, metrics dumps, harness comparisons). The parser
// is deliberately strict — it exists to validate our own output, not to
// consume arbitrary JSON from the wild.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace snicit::platform {

class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits a key inside an object; must be followed by exactly one value
  /// (scalar or begin_object/begin_array).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::size_t v);
  JsonWriter& value(bool v);

  /// The serialized document; valid once all containers are closed.
  const std::string& str() const;

  static std::string escape(const std::string& s);

 private:
  void prepare_for_value();

  enum class Scope : std::uint8_t { kObject, kArray };
  struct Frame {
    Scope scope;
    bool has_items = false;
  };

  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

/// Parsed JSON document node. Accessors SNICIT_CHECK the node's type, so
/// a malformed assumption in a test fails loudly instead of reading junk.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete document (one value plus optional whitespace);
  /// throws std::invalid_argument with position info on malformed input.
  static JsonValue parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access: element count and i-th element.
  std::size_t size() const;
  const JsonValue& at(std::size_t i) const;

  /// Object access: membership, lookup (aborts when absent), key list in
  /// document order.
  bool has(const std::string& key) const;
  const JsonValue& get(const std::string& key) const;
  const std::vector<std::string>& keys() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;            // array elements
  std::vector<std::string> keys_;           // object keys, document order
  std::map<std::string, JsonValue> members_;  // object key -> value

  friend class JsonParser;
};

}  // namespace snicit::platform
