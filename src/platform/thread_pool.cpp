#include "platform/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "platform/common.hpp"

namespace snicit::platform {

namespace {

std::size_t env_thread_count() {
  if (const char* s = std::getenv("SNICIT_THREADS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = env_thread_count();
  // The caller thread always participates, so spawn threads-1 workers.
  const std::size_t workers = threads > 0 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace {
// Depth of pool-task nesting on this thread. Nested parallel regions
// (e.g. a per-chunk baseline calling a parallel spMM kernel) execute
// serially instead of deadlocking or re-entering the pool.
thread_local int g_pool_depth = 0;
}  // namespace

void ThreadPool::run_chunks_pooled(std::size_t num_chunks,
                                   const std::function<void(std::size_t)>& fn) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (job_ != nullptr) {
      // Another thread's scatter-gather is already in flight. Late
      // submitters run their chunks inline rather than queueing, which
      // keeps the dispatch protocol single-job and deadlock-free when
      // independent threads (e.g. stream-serving workers) share the
      // global pool.
      lock.unlock();
      for (std::size_t i = 0; i < num_chunks; ++i) fn(i);
      return;
    }
    job_ = &fn;
    num_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++epoch_;
  }
  wake_.notify_all();

  // The caller thread drains chunks alongside the workers.
  ++g_pool_depth;
  std::size_t i;
  while ((i = next_chunk_.fetch_add(1, std::memory_order_relaxed)) <
         num_chunks) {
    fn(i);
  }
  --g_pool_depth;

  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return active_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t num_chunks = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
      num_chunks = num_chunks_;
    }
    ++g_pool_depth;
    std::size_t i;
    while ((i = next_chunk_.fetch_add(1, std::memory_order_relaxed)) <
           num_chunks) {
      (*job)(i);
    }
    --g_pool_depth;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_.notify_one();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ScopedSerialRegion::ScopedSerialRegion() { ++g_pool_depth; }
ScopedSerialRegion::~ScopedSerialRegion() { --g_pool_depth; }

bool in_serial_region() { return g_pool_depth > 0; }

namespace detail {

void parallel_ranges_pooled(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t n = end - begin;
  auto& pool = ThreadPool::global();
  const std::size_t target_chunks =
      std::max<std::size_t>(1, pool.size() * 3);
  std::size_t chunk = std::max<std::size_t>(grain, (n + target_chunks - 1) /
                                                       target_chunks);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  pool.run_chunks(num_chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    body(lo, hi);
  });
}

}  // namespace detail

}  // namespace snicit::platform
