// Signal-driven graceful shutdown: converts SIGTERM/SIGINT into a flag
// the serving loops poll, so a rollout kill becomes a deterministic
// drain — lanes close intake, in-flight rounds finish, reports flush —
// instead of work vanishing mid-batch.
//
// The handler is async-signal-safe by construction: it only stores the
// signal number into a static std::atomic<int>. Everything with
// side effects (closing queues, flushing journals) happens on the
// serving threads when they next poll `requested()`. Tests drive the
// same path synthetically via `request()` without raising a real
// signal, and `reset()` re-arms the controller between cases.
#pragma once

#include <atomic>

namespace snicit::platform {

class ShutdownController {
 public:
  ShutdownController() = default;
  ShutdownController(const ShutdownController&) = delete;
  ShutdownController& operator=(const ShutdownController&) = delete;

  /// Installs SIGTERM/SIGINT handlers that mark the *global* controller.
  /// Idempotent; only the CLI calls this (libraries must not steal the
  /// host process's handlers). Returns false if sigaction failed.
  bool install();

  /// True once a shutdown signal has been delivered (or synthesized).
  bool requested() const {
    return signal_.load(std::memory_order_acquire) != 0;
  }

  /// The signal that triggered shutdown (SIGTERM/SIGINT), 0 if none.
  int signal_number() const {
    return signal_.load(std::memory_order_acquire);
  }

  /// Synthesizes a shutdown without raising a real signal — tests and
  /// the CLI's --self-sigterm drill use this to make drain deterministic.
  void request(int signum);

  /// Clears the flag so the controller can be reused (tests).
  void reset() { signal_.store(0, std::memory_order_release); }

  /// The process-wide controller the installed handlers mark. Serving
  /// components poll this one by default.
  static ShutdownController& global();

 private:
  std::atomic<int> signal_{0};
};

}  // namespace snicit::platform
