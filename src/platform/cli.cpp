#include "platform/cli.hpp"

#include <algorithm>
#include <cstdlib>

namespace snicit::platform {

namespace {

bool is_option(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

/// True when `arg` can be an option value (not itself an option). Negative
/// numbers ("-3") are values, not options.
bool is_value(const std::string& arg) { return !is_option(arg); }

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!is_option(arg)) {
      positionals_.push_back(arg);
      continue;
    }
    Option opt;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      // --name=value form.
      opt.name = arg.substr(2, eq - 2);
      opt.value = arg.substr(eq + 1);
      opt.has_value = true;
    } else {
      opt.name = arg.substr(2);
      if (i + 1 < argc && is_value(argv[i + 1])) {
        opt.value = argv[++i];
        opt.has_value = true;
      }
    }
    options_.push_back(std::move(opt));
  }
}

const CliArgs::Option* CliArgs::find(const std::string& name) const {
  // Last occurrence wins, so "--b 10 --b 20" resolves to 20.
  const Option* found = nullptr;
  for (const auto& opt : options_) {
    if (opt.name == name) found = &opt;
  }
  return found;
}

bool CliArgs::has(const std::string& name) const {
  return find(name) != nullptr;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const Option* opt = find(name);
  return (opt != nullptr && opt->has_value) ? opt->value : fallback;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const Option* opt = find(name);
  if (opt == nullptr || !opt->has_value) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(opt->value.c_str(), &end, 10);
  return end == opt->value.c_str() ? fallback
                                   : static_cast<std::int64_t>(v);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const Option* opt = find(name);
  if (opt == nullptr || !opt->has_value) return fallback;
  char* end = nullptr;
  const double v = std::strtod(opt->value.c_str(), &end);
  return end == opt->value.c_str() ? fallback : v;
}

std::vector<std::int64_t> CliArgs::get_int_list(
    const std::string& name,
    const std::vector<std::int64_t>& fallback) const {
  const Option* opt = find(name);
  if (opt == nullptr || !opt->has_value) return fallback;
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos <= opt->value.size()) {
    const std::size_t comma = opt->value.find(',', pos);
    const std::string item = opt->value.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    char* end = nullptr;
    const long long v = std::strtoll(item.c_str(), &end, 10);
    if (end != item.c_str()) out.push_back(static_cast<std::int64_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out.empty() ? fallback : out;
}

std::vector<std::string> CliArgs::option_names() const {
  std::vector<std::string> out;
  out.reserve(options_.size());
  for (const auto& opt : options_) out.push_back(opt.name);
  return out;
}

std::vector<std::string> CliArgs::unknown_options(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& opt : options_) {
    bool is_known = false;
    for (const auto& k : known) {
      if (opt.name == k) {
        is_known = true;
        break;
      }
    }
    const bool seen =
        std::find(out.begin(), out.end(), opt.name) != out.end();
    if (!is_known && !seen) out.push_back(opt.name);
  }
  return out;
}

std::string CliArgs::positional(std::size_t i,
                                const std::string& fallback) const {
  return i < positionals_.size() ? positionals_[i] : fallback;
}

}  // namespace snicit::platform
