// A persistent worker pool that stands in for the GPU in this reproduction.
//
// The paper launches CUDA kernels as <<<blocks, threads>>> grids; here each
// CUDA *block* maps to one pool task and the per-thread loop inside a block
// becomes an ordinary inner loop. On a single-core host the pool degrades
// to serial execution with no locking on the hot path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace snicit::platform {

/// True while the current thread is inside a ScopedSerialRegion (below) or
/// a pool task (where nested parallelism always degrades to inline
/// execution).
bool in_serial_region();

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // +1: caller thread

  /// Runs fn(chunk_index) for chunk_index in [0, num_chunks); blocks until
  /// all chunks finish. The calling thread participates, so a pool with no
  /// workers executes everything serially with zero synchronization.
  ///
  /// Templated so the inline fast path (no workers, one chunk, or a serial
  /// region) calls the body directly without materialising a
  /// std::function — the zero-allocation serving hot path. Only genuinely
  /// pooled dispatches pay the type-erasure.
  template <typename Fn>
  void run_chunks(std::size_t num_chunks, Fn&& fn) {
    if (num_chunks == 0) return;
    if (workers_.empty() || num_chunks == 1 || in_serial_region()) {
      for (std::size_t i = 0; i < num_chunks; ++i) fn(i);
      return;
    }
    run_chunks_pooled(num_chunks,
                      std::function<void(std::size_t)>(std::forward<Fn>(fn)));
  }

  /// The process-wide pool (sized from SNICIT_THREADS or hardware).
  static ThreadPool& global();

 private:
  void run_chunks_pooled(std::size_t num_chunks,
                         const std::function<void(std::size_t)>& fn);
  void worker_loop();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::atomic<std::size_t> next_chunk_{0};
  std::size_t num_chunks_ = 0;
  std::size_t active_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

/// Marks the current thread as a serial region for its lifetime: every
/// run_chunks / parallel_for issued from this thread executes inline on
/// the calling thread instead of entering the shared pool. Coarse-grained
/// executors (e.g. the parallel stream server, whose workers each own a
/// whole engine) use this so W concurrent engine runs do not fight over
/// the pool with their inner kernel loops.
class ScopedSerialRegion {
 public:
  ScopedSerialRegion();
  ~ScopedSerialRegion();

  ScopedSerialRegion(const ScopedSerialRegion&) = delete;
  ScopedSerialRegion& operator=(const ScopedSerialRegion&) = delete;
};

namespace detail {
/// Pooled tail of the parallel loops: splits [begin, end) into ~3 chunks
/// per worker (bounded by `grain`) and dispatches through the global pool.
void parallel_ranges_pooled(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body);
}  // namespace detail

/// Parallel loop over [begin, end): splits the range into ~3 chunks per
/// worker (bounded by `grain`) and runs body(i) for every index. When the
/// loop cannot actually parallelise (single-thread pool, serial region)
/// the body runs inline with no std::function materialisation.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  std::size_t grain = 1) {
  if (begin >= end) return;
  if (in_serial_region() || ThreadPool::global().size() == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  detail::parallel_ranges_pooled(begin, end, grain,
                                 [&body](std::size_t lo, std::size_t hi) {
                                   for (std::size_t i = lo; i < hi; ++i) {
                                     body(i);
                                   }
                                 });
}

/// Parallel loop receiving whole sub-ranges: body(lo, hi). Preferred for
/// hot kernels since it avoids a call per element; the inline fast path
/// hands the body the entire range in one call.
template <typename Body>
void parallel_for_ranges(std::size_t begin, std::size_t end, Body&& body,
                         std::size_t grain = 1) {
  if (begin >= end) return;
  if (in_serial_region() || ThreadPool::global().size() == 1) {
    body(begin, end);
    return;
  }
  detail::parallel_ranges_pooled(
      begin, end, grain,
      std::function<void(std::size_t, std::size_t)>(std::forward<Body>(body)));
}

}  // namespace snicit::platform
