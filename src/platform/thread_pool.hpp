// A persistent worker pool that stands in for the GPU in this reproduction.
//
// The paper launches CUDA kernels as <<<blocks, threads>>> grids; here each
// CUDA *block* maps to one pool task and the per-thread loop inside a block
// becomes an ordinary inner loop. On a single-core host the pool degrades
// to serial execution with no locking on the hot path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace snicit::platform {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // +1: caller thread

  /// Runs fn(chunk_index) for chunk_index in [0, num_chunks); blocks until
  /// all chunks finish. The calling thread participates, so a pool with no
  /// workers executes everything serially with zero synchronization.
  void run_chunks(std::size_t num_chunks,
                  const std::function<void(std::size_t)>& fn);

  /// The process-wide pool (sized from SNICIT_THREADS or hardware).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::atomic<std::size_t> next_chunk_{0};
  std::size_t num_chunks_ = 0;
  std::size_t active_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

/// Marks the current thread as a serial region for its lifetime: every
/// run_chunks / parallel_for issued from this thread executes inline on
/// the calling thread instead of entering the shared pool. Coarse-grained
/// executors (e.g. the parallel stream server, whose workers each own a
/// whole engine) use this so W concurrent engine runs do not fight over
/// the pool with their inner kernel loops.
class ScopedSerialRegion {
 public:
  ScopedSerialRegion();
  ~ScopedSerialRegion();

  ScopedSerialRegion(const ScopedSerialRegion&) = delete;
  ScopedSerialRegion& operator=(const ScopedSerialRegion&) = delete;
};

/// True while the current thread is inside a ScopedSerialRegion or a pool
/// task (where nested parallelism always degrades to inline execution).
bool in_serial_region();

/// Parallel loop over [begin, end): splits the range into ~3 chunks per
/// worker (bounded by `grain`) and runs body(i) for every index.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Parallel loop receiving whole sub-ranges: body(lo, hi). Preferred for
/// hot kernels since it avoids a std::function call per element.
void parallel_for_ranges(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t grain = 1);

}  // namespace snicit::platform
