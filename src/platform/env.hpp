// Environment-variable helpers used by benchmark harnesses to scale
// workloads (e.g. SNICIT_BENCH_SCALE=full on machines that can afford the
// paper-sized configurations).
#pragma once

#include <cstdint>
#include <string>

namespace snicit::platform {

/// Returns the integer value of `name`, or `fallback` when unset/invalid.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Returns the double value of `name`, or `fallback` when unset/invalid.
double env_double(const char* name, double fallback);

/// Returns the string value of `name`, or `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace snicit::platform
