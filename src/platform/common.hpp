// Core macros and small utilities shared by every SNICIT module.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace snicit::platform {

/// Abort with a formatted message. Used for unrecoverable internal errors;
/// recoverable/user errors throw std::invalid_argument instead.
[[noreturn]] inline void fatal(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[snicit fatal] %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace snicit::platform

/// Always-on invariant check (cheap checks on hot boundaries stay enabled
/// in release builds; per-element checks must use SNICIT_DCHECK).
#define SNICIT_CHECK(cond, msg)                                     \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::snicit::platform::fatal(__FILE__, __LINE__,                 \
                                std::string("CHECK failed: " #cond  \
                                            " — ") + (msg));        \
    }                                                               \
  } while (0)

#ifdef NDEBUG
#define SNICIT_DCHECK(cond, msg) ((void)0)
#else
#define SNICIT_DCHECK(cond, msg) SNICIT_CHECK(cond, msg)
#endif

#if defined(__GNUC__) || defined(__clang__)
#define SNICIT_RESTRICT __restrict__
#else
#define SNICIT_RESTRICT
#endif
