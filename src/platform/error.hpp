// The structured error model shared by every API boundary that can fail
// on external input or at runtime: model/input loaders, engine
// construction, the serving pipeline, and the fault-tolerance machinery.
//
// Two shapes, one vocabulary:
//
//   * `Result<T>` — the explicit form. Loaders expose `try_*` overloads
//     returning Result so servers can branch on ErrorCode without
//     exception plumbing (a malformed upload is control flow, not a
//     crash).
//   * `ErrorException` — the same Error carried as an exception, thrown
//     by the legacy-signature wrappers. It derives from
//     std::runtime_error, so every pre-existing `catch (std::exception&)`
//     boundary keeps working while gaining a typed `code()`.
//
// SNICIT_CHECK stays the tool for *internal invariant* violations
// (programming errors abort); Error/Result is for inputs the process
// does not control.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "platform/common.hpp"

namespace snicit::platform {

/// Every way the system can fail at a boundary. Codes are stable: they
/// are surfaced in CLI exit diagnostics, metrics counter names, and
/// StreamResult failure records.
enum class ErrorCode : int {
  kOk = 0,
  kBadModelFile,          // malformed/truncated/out-of-range model bytes
  kBadInput,              // caller-supplied value outside the contract
  kWorkerFault,           // a serving worker threw while running a batch
  kTimeout,               // per-batch deadline exceeded
  kNumericalDivergence,   // NaN/inf or residue blowup detected mid-run
  kQueueClosed,           // operation on a closed work queue
  kRejectedOverload,      // admission control refused or shed the request
  kResourceExhausted,     // allocation/IO resource failure (journal, snapshot)
};

/// Stable lowercase name for logs/JSON ("bad_model_file", ...).
inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kBadModelFile: return "bad_model_file";
    case ErrorCode::kBadInput: return "bad_input";
    case ErrorCode::kWorkerFault: return "worker_fault";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kNumericalDivergence: return "numerical_divergence";
    case ErrorCode::kQueueClosed: return "queue_closed";
    case ErrorCode::kRejectedOverload: return "rejected_overload";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
  }
  return "unknown";
}

/// A typed failure: what class of thing went wrong plus a human message
/// with the specifics (path, offending value, layer index).
struct Error {
  ErrorCode code = ErrorCode::kOk;
  std::string message;

  std::string to_string() const {
    return std::string("[") + platform::to_string(code) + "] " + message;
  }
};

/// Error as an exception, for the throwing wrappers and for faults that
/// must cross a worker-thread boundary. Catchable as std::runtime_error.
class ErrorException : public std::runtime_error {
 public:
  explicit ErrorException(Error error)
      : std::runtime_error(error.to_string()), error_(std::move(error)) {}
  ErrorException(ErrorCode code, std::string message)
      : ErrorException(Error{code, std::move(message)}) {}

  const Error& error() const { return error_; }
  ErrorCode code() const { return error_.code; }

 private:
  Error error_;
};

/// Value-or-Error. Construct from a T (success) or an Error (failure);
/// `value()` / `error()` assert the matching state, `value_or_throw()`
/// bridges back into the exception world at legacy boundaries.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : state_(std::move(error)) {  // NOLINT
    SNICIT_CHECK(std::get<Error>(state_).code != ErrorCode::kOk,
                 "Result error must carry a non-ok code");
  }

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    SNICIT_CHECK(ok(), "Result::value() on an error result");
    return std::get<T>(state_);
  }
  T& value() & {
    SNICIT_CHECK(ok(), "Result::value() on an error result");
    return std::get<T>(state_);
  }
  T&& value() && {
    SNICIT_CHECK(ok(), "Result::value() on an error result");
    return std::get<T>(std::move(state_));
  }

  const Error& error() const {
    SNICIT_CHECK(!ok(), "Result::error() on a success result");
    return std::get<Error>(state_);
  }
  ErrorCode code() const {
    return ok() ? ErrorCode::kOk : error().code;
  }

  /// Success: moves the value out. Failure: throws ErrorException.
  T value_or_throw() && {
    if (!ok()) throw ErrorException(std::get<Error>(state_));
    return std::get<T>(std::move(state_));
  }

 private:
  std::variant<T, Error> state_;
};

/// Status-only form for operations with no payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;  // success
  Result(Error error) : error_(std::move(error)) {  // NOLINT
    SNICIT_CHECK(error_.code != ErrorCode::kOk,
                 "Result error must carry a non-ok code");
  }

  bool ok() const { return error_.code == ErrorCode::kOk; }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    SNICIT_CHECK(!ok(), "Result::error() on a success result");
    return error_;
  }
  ErrorCode code() const { return error_.code; }

  void value_or_throw() const {
    if (!ok()) throw ErrorException(error_);
  }

 private:
  Error error_;
};

}  // namespace snicit::platform
