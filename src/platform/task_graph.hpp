// A minimal dependency-graph executor, standing in for the CUDA-graph /
// Taskflow machinery SNIG-2020 uses to overlap per-partition work and cut
// kernel-launch synchronization. Nodes run on the global ThreadPool as soon
// as their dependencies retire.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace snicit::platform {

class TaskGraph {
 public:
  using TaskId = std::size_t;

  /// Adds a node; returns its id. Tasks must be added before run().
  TaskId add(std::function<void()> work);

  /// Declares that `after` may only start once `before` finished.
  void add_edge(TaskId before, TaskId after);

  std::size_t size() const { return nodes_.size(); }

  /// Executes the whole graph; blocks until every node has retired.
  /// The graph must be acyclic (checked: run aborts if tasks remain).
  void run();

 private:
  struct Node {
    std::function<void()> work;
    std::vector<TaskId> successors;
    std::size_t dependencies = 0;
  };

  std::vector<Node> nodes_;
};

}  // namespace snicit::platform
