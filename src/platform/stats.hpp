// Small statistics utilities used by diagnostics and benchmark reports:
// single-pass running moments (Welford) and a fixed-range histogram.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace snicit::platform {

/// Numerically stable single-pass mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const {
    return count_ == 0 ? 0.0 : min_;
  }
  double max() const {
    return count_ == 0 ? 0.0 : max_;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-range histogram with uniform bins; out-of-range samples clamp to
/// the edge bins (so totals always add up).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double x) {
    const double clamped = std::clamp(x, lo_, hi_);
    const double span = hi_ - lo_;
    auto bin = span <= 0.0
                   ? 0
                   : static_cast<std::size_t>((clamped - lo_) / span *
                                              static_cast<double>(bins()));
    if (bin >= bins()) bin = bins() - 1;
    ++counts_[bin];
    ++total_;
  }

  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }

  double bin_lo(std::size_t bin) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                     static_cast<double>(bins());
  }
  double bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

  /// Value below which `q` (in [0,1]) of the mass lies, interpolated
  /// within the containing bin.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact-quantile accumulator for modest sample counts (per-batch serving
/// latencies, per-layer timings): keeps every sample and answers order
/// statistics on demand with linear interpolation between neighbouring
/// order statistics (the "type 7" definition most tools default to).
/// Complements RunningStats (moments only) and Histogram (fixed range,
/// binned error): use this when the range is unknown and exact p50/p95/p99
/// matter more than O(1) memory.
class QuantileTracker {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = samples_.size() <= 1;
  }

  std::size_t count() const { return samples_.size(); }

  /// q is clamped to [0, 1]; 0 samples yield 0.0. quantile(0) = min,
  /// quantile(1) = max, interior points interpolate.
  double quantile(double q) const;

  double median() const { return quantile(0.5); }
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  // Sorted lazily on query so add() stays O(1) amortized on the hot path.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace snicit::platform
