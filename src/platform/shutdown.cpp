#include "platform/shutdown.hpp"

#include <csignal>

namespace snicit::platform {

namespace {

// The handler may run on any thread at any instruction boundary, so it
// does nothing but store the signal number into the global controller's
// atomic (ShutdownController::request is a lone compare-exchange).
extern "C" void shutdown_signal_handler(int signum) {
  ShutdownController::global().request(signum);
}

}  // namespace

bool ShutdownController::install() {
  struct sigaction action {};
  action.sa_handler = &shutdown_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocked syscalls should wake
  bool ok = true;
  ok &= (sigaction(SIGTERM, &action, nullptr) == 0);
  ok &= (sigaction(SIGINT, &action, nullptr) == 0);
  return ok;
}

void ShutdownController::request(int signum) {
  // First signal wins: a SIGINT arriving during a SIGTERM drain must not
  // flip the reported trigger mid-flush.
  int expected = 0;
  signal_.compare_exchange_strong(expected, signum,
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire);
}

ShutdownController& ShutdownController::global() {
  static ShutdownController controller;
  return controller;
}

}  // namespace snicit::platform
