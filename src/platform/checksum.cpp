#include "platform/checksum.hpp"

#include <array>
#include <cstdio>
#include <cstring>

namespace snicit::platform {

namespace {

// Reflected CRC32C table, generated once at first use.
const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

constexpr std::uint32_t kSha256Init[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};

constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t bytes,
                     std::uint32_t seed) {
  const auto& table = crc32c_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xffu];
  }
  return ~crc;
}

Sha256::Sha256() { std::memcpy(state_, kSha256Init, sizeof(state_)); }

void Sha256::compress(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  length_ += bytes;
  if (buffered_ != 0) {
    const std::size_t take = std::min(bytes, 64 - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    bytes -= take;
    if (buffered_ == 64) {
      compress(buffer_);
      buffered_ = 0;
    }
  }
  while (bytes >= 64) {
    compress(p);
    p += 64;
    bytes -= 64;
  }
  if (bytes != 0) {
    std::memcpy(buffer_, p, bytes);
    buffered_ = bytes;
  }
}

std::string Sha256::hex() const {
  // Finalize a copy: padding + length block, then render the state.
  Sha256 copy = *this;
  const std::uint64_t bit_length = copy.length_ * 8;
  const std::uint8_t one = 0x80;
  copy.update(&one, 1);
  const std::uint8_t zero = 0x00;
  while (copy.buffered_ != 56) copy.update(&zero, 1);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_length >> (8 * (7 - i)));
  }
  copy.update(len_be, 8);

  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const std::uint32_t word : copy.state_) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kHex[(word >> shift) & 0xfu]);
    }
  }
  return out;
}

std::string sha256_hex(const void* data, std::size_t bytes) {
  Sha256 h;
  h.update(data, bytes);
  return h.hex();
}

std::string sha256_hex(const std::string& text) {
  return sha256_hex(text.data(), text.size());
}

Result<std::string> sha256_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error{ErrorCode::kBadModelFile,
                 "cannot open '" + path + "' for integrity check"};
  }
  Sha256 hash;
  char buffer[1 << 16];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    hash.update(buffer, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Error{ErrorCode::kBadModelFile,
                 "read error hashing '" + path + "'"};
  }
  return hash.hex();
}

}  // namespace snicit::platform
