// Minimal command-line parsing for the example programs and tools:
// "--key value" options, "--flag" switches, and positionals. No external
// dependencies, no global state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace snicit::platform {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True when "--name" appears (with or without a value).
  bool has(const std::string& name) const;

  /// Value of "--name value"; `fallback` when absent. A trailing "--name"
  /// with no value also yields `fallback`.
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// Comma-separated integer list: "--workers 1,2,4,8". Returns `fallback`
  /// when the option is absent; malformed elements are skipped (an
  /// all-malformed value also yields `fallback`).
  std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& fallback) const;

  /// Names of every "--option" seen, in order, duplicates included.
  std::vector<std::string> option_names() const;

  /// Option names that are NOT in `known` (order preserved, deduplicated).
  /// Tools use this to reject typos — "--worker 4" silently parsing as a
  /// positional-with-value and defaulting workers to 1 is the failure mode
  /// this guards against.
  std::vector<std::string> unknown_options(
      const std::vector<std::string>& known) const;

  /// Arguments that are not "--options" nor their values, in order.
  const std::vector<std::string>& positionals() const { return positionals_; }

  /// i-th positional, or `fallback` when missing.
  std::string positional(std::size_t i, const std::string& fallback) const;

  const std::string& program() const { return program_; }

 private:
  struct Option {
    std::string name;  // without the leading dashes
    std::string value; // empty when used as a bare flag
    bool has_value = false;
  };

  const Option* find(const std::string& name) const;

  std::string program_;
  std::vector<Option> options_;
  std::vector<std::string> positionals_;
};

}  // namespace snicit::platform
