#include "platform/stats.hpp"

namespace snicit::platform {

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < bins(); ++b) {
    const double next = cumulative + static_cast<double>(counts_[b]);
    if (next >= target) {
      const double within =
          counts_[b] == 0
              ? 0.0
              : (target - cumulative) / static_cast<double>(counts_[b]);
      return bin_lo(b) + within * (bin_hi(b) - bin_lo(b));
    }
    cumulative = next;
  }
  return hi_;
}

}  // namespace snicit::platform
