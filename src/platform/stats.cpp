#include "platform/stats.hpp"

namespace snicit::platform {

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < bins(); ++b) {
    const double next = cumulative + static_cast<double>(counts_[b]);
    if (next >= target) {
      const double within =
          counts_[b] == 0
              ? 0.0
              : (target - cumulative) / static_cast<double>(counts_[b]);
      return bin_lo(b) + within * (bin_hi(b) - bin_lo(b));
    }
    cumulative = next;
  }
  return hi_;
}

double QuantileTracker::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

}  // namespace snicit::platform
