#include "platform/json.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "platform/common.hpp"

namespace snicit::platform {

JsonWriter::JsonWriter() = default;

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::prepare_for_value() {
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top.scope == Scope::kObject) {
    SNICIT_CHECK(pending_key_, "object values need a key() first");
    pending_key_ = false;
    return;
  }
  if (top.has_items) out_ += ',';
  top.has_items = true;
}

JsonWriter& JsonWriter::begin_object() {
  prepare_for_value();
  out_ += '{';
  stack_.push_back({Scope::kObject, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SNICIT_CHECK(!stack_.empty() && stack_.back().scope == Scope::kObject,
               "end_object without matching begin_object");
  SNICIT_CHECK(!pending_key_, "dangling key before end_object");
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_for_value();
  out_ += '[';
  stack_.push_back({Scope::kArray, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SNICIT_CHECK(!stack_.empty() && stack_.back().scope == Scope::kArray,
               "end_array without matching begin_array");
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  SNICIT_CHECK(!stack_.empty() && stack_.back().scope == Scope::kObject,
               "key() outside an object");
  SNICIT_CHECK(!pending_key_, "two keys in a row");
  if (stack_.back().has_items) out_ += ',';
  stack_.back().has_items = true;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  prepare_for_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  prepare_for_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prepare_for_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(bool v) {
  prepare_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

const std::string& JsonWriter::str() const {
  SNICIT_CHECK(stack_.empty(), "unclosed containers in JSON document");
  return out_;
}

// ---------------------------------------------------------------------------
// Read-back parser
// ---------------------------------------------------------------------------

/// Recursive-descent parser over the document string. Error positions are
/// byte offsets, which is all our round-trip tests need.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.type_ = JsonValue::Type::kBool;
    v.bool_ = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (v.members_.count(key) != 0) fail("duplicate key '" + key + "'");
      v.keys_.push_back(key);
      v.members_.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only emits \u00xx for control bytes; decode the
          // Latin-1 range and reject anything wider (we never write it).
          if (code > 0xFF) fail("unsupported \\u escape beyond U+00FF");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = d;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

bool JsonValue::as_bool() const {
  SNICIT_CHECK(type_ == Type::kBool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  SNICIT_CHECK(type_ == Type::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  SNICIT_CHECK(type_ == Type::kString, "JSON value is not a string");
  return string_;
}

std::size_t JsonValue::size() const {
  SNICIT_CHECK(type_ == Type::kArray, "JSON value is not an array");
  return items_.size();
}

const JsonValue& JsonValue::at(std::size_t i) const {
  SNICIT_CHECK(type_ == Type::kArray, "JSON value is not an array");
  SNICIT_CHECK(i < items_.size(), "JSON array index out of range");
  return items_[i];
}

bool JsonValue::has(const std::string& key) const {
  SNICIT_CHECK(type_ == Type::kObject, "JSON value is not an object");
  return members_.count(key) != 0;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  SNICIT_CHECK(type_ == Type::kObject, "JSON value is not an object");
  auto it = members_.find(key);
  SNICIT_CHECK(it != members_.end(), "JSON object key '" + key + "' absent");
  return it->second;
}

const std::vector<std::string>& JsonValue::keys() const {
  SNICIT_CHECK(type_ == Type::kObject, "JSON value is not an object");
  return keys_;
}

}  // namespace snicit::platform
