#include "platform/json.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "platform/common.hpp"

namespace snicit::platform {

JsonWriter::JsonWriter() = default;

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::prepare_for_value() {
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top.scope == Scope::kObject) {
    SNICIT_CHECK(pending_key_, "object values need a key() first");
    pending_key_ = false;
    return;
  }
  if (top.has_items) out_ += ',';
  top.has_items = true;
}

JsonWriter& JsonWriter::begin_object() {
  prepare_for_value();
  out_ += '{';
  stack_.push_back({Scope::kObject, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SNICIT_CHECK(!stack_.empty() && stack_.back().scope == Scope::kObject,
               "end_object without matching begin_object");
  SNICIT_CHECK(!pending_key_, "dangling key before end_object");
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_for_value();
  out_ += '[';
  stack_.push_back({Scope::kArray, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SNICIT_CHECK(!stack_.empty() && stack_.back().scope == Scope::kArray,
               "end_array without matching begin_array");
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  SNICIT_CHECK(!stack_.empty() && stack_.back().scope == Scope::kObject,
               "key() outside an object");
  SNICIT_CHECK(!pending_key_, "two keys in a row");
  if (stack_.back().has_items) out_ += ',';
  stack_.back().has_items = true;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  prepare_for_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  prepare_for_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prepare_for_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(bool v) {
  prepare_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

const std::string& JsonWriter::str() const {
  SNICIT_CHECK(stack_.empty(), "unclosed containers in JSON document");
  return out_;
}

}  // namespace snicit::platform
