#include "platform/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>

#include "platform/json.hpp"

namespace snicit::platform::trace {

namespace {

using clock = std::chrono::steady_clock;

std::atomic<bool> g_enabled{false};

/// One buffer per recording thread. Appends take the buffer's own mutex —
/// uncontended in steady state (only snapshot() ever touches another
/// thread's buffer), so the hot path is a lock/unlock pair on a private
/// line plus a vector push.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

/// Registry keeps buffers alive (shared_ptr) past thread exit, so spans
/// recorded by short-lived pool workers survive until export.
struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  clock::time_point epoch = clock::now();
  std::uint32_t next_tid = 0;
};

Registry& registry() {
  static Registry r;
  return r;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

double now_us() {
  return std::chrono::duration<double, std::micro>(clock::now() -
                                                   registry().epoch)
      .count();
}

void append(TraceEvent event) {
  ThreadBuffer& buf = local_buffer();
  event.tid = buf.tid;
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(event);
}

}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& buf : r.buffers) {
    std::lock_guard<std::mutex> inner(buf->mutex);
    buf->events.clear();
  }
  r.epoch = clock::now();
}

void counter(const char* name, double value) {
  if (!enabled()) return;
  append({name, "", 'C', now_us(), 0.0, value, 0});
}

const char* intern(const std::string& name) {
  // node-based set: pointers stay stable as the set grows, and entries
  // live for the process lifetime (the interner is never cleared — span
  // names must survive any capture that references them).
  static std::mutex mutex;
  static std::set<std::string> names;
  std::lock_guard<std::mutex> lock(mutex);
  return names.insert(name).first->c_str();
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : name_(name), category_(category), active_(enabled()) {
  if (active_) start_us_ = now_us();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const double end_us = now_us();
  append({name_, category_, 'X', start_us_, end_us - start_us_, 0.0, 0});
}

std::vector<TraceEvent> snapshot() {
  std::vector<TraceEvent> all;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& buf : r.buffers) {
    std::lock_guard<std::mutex> inner(buf->mutex);
    all.insert(all.end(), buf->events.begin(), buf->events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return all;
}

std::size_t event_count() {
  std::size_t n = 0;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& buf : r.buffers) {
    std::lock_guard<std::mutex> inner(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

std::string chrome_trace_json() {
  JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("traceEvents").begin_array();
  for (const TraceEvent& e : snapshot()) {
    json.begin_object();
    json.key("name").value(e.name);
    if (e.phase == 'X' && e.category[0] != '\0') {
      json.key("cat").value(e.category);
    }
    json.key("ph").value(std::string(1, e.phase));
    json.key("ts").value(e.ts_us);
    if (e.phase == 'X') json.key("dur").value(e.dur_us);
    json.key("pid").value(std::int64_t{0});
    json.key("tid").value(static_cast<std::int64_t>(e.tid));
    if (e.phase == 'C') {
      json.key("args").begin_object().key("value").value(e.value)
          .end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

bool write_chrome_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = chrome_trace_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace snicit::platform::trace
