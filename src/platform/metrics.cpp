#include "platform/metrics.hpp"

#include <cstdio>

#include "platform/json.hpp"

namespace snicit::platform::metrics {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Series& MetricsRegistry::series(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = series_[name];
  if (!slot) slot = std::make_unique<Series>();
  return *slot;
}

std::map<std::string, std::int64_t> MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->get();
  return out;
}

std::map<std::string, double> MetricsRegistry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out[name] = g->get();
  return out;
}

std::map<std::string, std::vector<double>> MetricsRegistry::series_values()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::vector<double>> out;
  for (const auto& [name, s] : series_) out[name] = s->values();
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, s] : series_) s->reset();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& [name, v] : counter_values()) {
    json.key(name).value(v);
  }
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, v] : gauge_values()) {
    json.key(name).value(v);
  }
  json.end_object();
  json.key("series").begin_object();
  for (const auto& [name, vs] : series_values()) {
    json.key(name).begin_array();
    for (double v : vs) json.value(v);
    json.end_array();
  }
  json.end_object();
  json.end_object();
  return json.str();
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace snicit::platform::metrics
