// Wall-clock timing utilities used by all engines and benchmark harnesses.
#pragma once

#include <chrono>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace snicit::platform {

/// Monotonic stopwatch with millisecond reporting.
class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset() { start_ = clock::now(); }

  /// Elapsed milliseconds since construction / last reset().
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named stage durations (e.g. the four SNICIT stages) while
/// preserving insertion order for reporting.
class StageBreakdown {
 public:
  void add(const std::string& stage, double ms) {
    auto it = index_.find(stage);
    if (it == index_.end()) {
      index_.emplace(stage, entries_.size());
      entries_.push_back({stage, ms});
    } else {
      entries_[it->second].ms += ms;
    }
  }

  double get(const std::string& stage) const {
    auto it = index_.find(stage);
    return it == index_.end() ? 0.0 : entries_[it->second].ms;
  }

  double total_ms() const {
    double t = 0.0;
    for (const auto& e : entries_) t += e.ms;
    return t;
  }

  struct Entry {
    std::string name;
    double ms;
  };
  const std::vector<Entry>& entries() const { return entries_; }

  /// Zeroes every stage's accumulated time in place, keeping the entry
  /// and index storage — reusing a breakdown across runs then allocates
  /// nothing once every stage name has been seen. Stages from a previous
  /// run that the next one never adds to linger at 0 ms.
  void reset_values() {
    for (auto& e : entries_) e.ms = 0.0;
  }

 private:
  std::vector<Entry> entries_;
  std::map<std::string, std::size_t> index_;
};

/// Runs fn() `repeats` times after `warmup` unmeasured runs and returns the
/// minimum wall time in ms (min is the standard noise-robust estimator for
/// deterministic CPU workloads).
template <typename Fn>
double time_best_ms(Fn&& fn, int repeats = 3, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) fn();
  double best = -1.0;
  for (int i = 0; i < repeats; ++i) {
    Stopwatch sw;
    fn();
    const double ms = sw.elapsed_ms();
    if (best < 0.0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace snicit::platform
