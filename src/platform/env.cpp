#include "platform/env.hpp"

#include <cstdlib>

namespace snicit::platform {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  return (end == s) ? fallback : static_cast<std::int64_t>(v);
}

double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  return (end == s) ? fallback : v;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* s = std::getenv(name);
  return (s == nullptr || *s == '\0') ? fallback : std::string(s);
}

}  // namespace snicit::platform
