// Scoped-span tracing for the whole pipeline: engines open RAII TraceSpans
// around stages/layers/kernels, workers emit from their own threads into
// per-thread buffers, and the merged timeline exports as Chrome
// `trace_event` JSON (loadable in chrome://tracing or Perfetto).
//
// Cost model: tracing is compiled in but *runtime-gated*. When disabled
// (the default) a span is one relaxed atomic load and nothing else — no
// clock read, no allocation, no lock — so instrumented hot paths stay at
// benchmark speed. Builds that must prove the point can compile every
// macro out with -DSNICIT_NO_OBSERVABILITY.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace snicit::platform::trace {

/// Globally enables/disables event recording. Spans already open when the
/// flag flips record nothing (the decision is taken at construction).
void set_enabled(bool on);
bool enabled();

/// Discards every recorded event and resets the timebase, so consecutive
/// captures (tests, repeated CLI runs) start from ts ~ 0.
void clear();

/// One recorded event. `phase` follows the Chrome trace_event format:
/// 'X' = complete span (ts + dur), 'C' = counter sample (value).
struct TraceEvent {
  const char* name;  // static string supplied by the instrumentation site
  const char* category;
  char phase;        // 'X' or 'C'
  double ts_us;      // microseconds since the capture epoch
  double dur_us;     // span duration ('X' only)
  double value;      // counter sample ('C' only)
  std::uint32_t tid; // dense per-capture thread id (0 = first thread seen)
};

/// Records an instantaneous counter sample (e.g. queue depth). No-op when
/// tracing is disabled.
void counter(const char* name, double value);

/// Interns `name` into process-lifetime storage and returns a pointer that
/// satisfies TraceSpan's "must outlive the capture" contract. For span
/// names composed at runtime (e.g. the serving layer's per-model
/// "serve.<model>.round"). Repeated calls with the same string return the
/// same pointer; the set only grows, so call it once per distinct name
/// (construction time), not per span.
const char* intern(const std::string& name);

/// Merged view of every thread's buffer, sorted by start timestamp.
std::vector<TraceEvent> snapshot();

/// Number of recorded events across all threads (cheaper than snapshot).
std::size_t event_count();

/// The full capture as a Chrome trace document:
/// {"displayTimeUnit":"ms","traceEvents":[...]}.
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// RAII span: opens at construction, records a complete ('X') event on
/// destruction. `name` and `category` must outlive the capture (string
/// literals at every call site).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }

 private:
  const char* name_;
  const char* category_;
  double start_us_ = 0.0;
  bool active_;
};

}  // namespace snicit::platform::trace

#define SNICIT_TRACE_CONCAT_IMPL(a, b) a##b
#define SNICIT_TRACE_CONCAT(a, b) SNICIT_TRACE_CONCAT_IMPL(a, b)

#ifdef SNICIT_NO_OBSERVABILITY
#define SNICIT_TRACE_SPAN(name, category) ((void)0)
#define SNICIT_TRACE_COUNTER(name, value) ((void)0)
#else
/// Opens a span covering the rest of the enclosing scope.
#define SNICIT_TRACE_SPAN(name, category)               \
  ::snicit::platform::trace::TraceSpan                  \
      SNICIT_TRACE_CONCAT(snicit_trace_span_, __LINE__)(name, category)
#define SNICIT_TRACE_COUNTER(name, value) \
  ::snicit::platform::trace::counter((name), (value))
#endif
