// Deterministic fault injection: named sites in the serving pipeline and
// the kernels consult a process-wide registry to decide whether to
// misbehave on purpose, so every recovery path in the system can be
// driven by tests and drills instead of waiting for production to
// exercise it.
//
// Determinism is the load-bearing property. A site fires iff
//
//     mix(seed, hash(site), key) < probability
//
// — a pure function of (seed, site, key), independent of thread
// interleaving, retry timing, or how many other sites are armed. Call
// sites pass a stable key (batch index, attempt number, per-site
// sequence) so a drill under `SNICIT_FAULTS=worker_throw:0.05` faults
// the *same* batches on every run with the same seed, and a retried
// batch (whose key includes the attempt) is not doomed to re-fault
// forever.
//
// Arming: the spec string "site:prob[:param],site:prob..." comes from
// the SNICIT_FAULTS environment variable (seed from SNICIT_FAULTS_SEED,
// default 42) or the --faults/--faults-seed CLI flags. Unknown site
// names are a typed BadInput error — a typo must not silently arm
// nothing. The clean-path cost when no fault is armed is one relaxed
// atomic load per site visit.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "platform/error.hpp"

namespace snicit::platform::fault {

/// The sites wired into the codebase. Probabilities are per *trial*
/// (one visit of the site with one key).
///
///   worker_throw  serving worker throws WorkerFault before running a
///                 batch attempt (key: batch index and attempt)
///   queue_stall   stream producer sleeps `param` ms (default 5) before
///                 enqueueing a batch (key: batch index)
///   nan_tile      load-reduced (post-convergence) spMM dispatch poisons
///                 one output entry with NaN (key: per-site sequence)
///   spmm_nan      full-batch spMM dispatch poisons one output entry
///                 with NaN (key: per-site sequence)
///   convert_nan   cluster conversion poisons one residue entry with
///                 NaN (key: per-site sequence)
///   alloc_fail    durability paths (journal append, snapshot save)
///                 return typed ResourceExhausted instead of performing
///                 the write, modelling OOM/ENOSPC without letting
///                 bad_alloc escape a worker thread (key: per-site
///                 sequence)
const std::vector<std::string>& known_sites();

struct SiteConfig {
  double probability = 0.0;  // in [0, 1]
  double param = 0.0;        // site-specific knob (stall ms); 0 = default
};

class FaultRegistry {
 public:
  FaultRegistry() = default;
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Parses and arms `spec` ("worker_throw:0.01,nan_tile:0.005" —
  /// optionally "site:prob:param"). An empty spec disarms everything.
  /// Unknown sites, bad numbers, or probabilities outside [0, 1] return
  /// kBadInput and leave the registry unchanged.
  Result<void> configure(const std::string& spec, std::uint64_t seed);

  /// Arms from SNICIT_FAULTS / SNICIT_FAULTS_SEED. A malformed spec in
  /// the environment is fatal (aborts with the parse error): a drill
  /// that silently runs fault-free would report vacuous success.
  void configure_from_env();

  /// Disarms every site and zeroes counters.
  void clear();

  /// True when any site has probability > 0 (one relaxed load).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Deterministic trial: fires iff `site` is armed and the keyed hash
  /// lands below its probability. Counts the trial (and the fire) for
  /// diagnostics.
  bool should_fire(std::string_view site, std::uint64_t key);

  /// Sequence-keyed convenience for sites without a natural key: uses a
  /// per-site atomic counter as the key (the fire *count* along one
  /// thread's visit order is deterministic; the assignment to visits is
  /// only deterministic single-threaded).
  bool should_fire(std::string_view site);

  /// Site knob (e.g. stall milliseconds); `fallback` when unset/zero.
  double param(std::string_view site, double fallback) const;

  std::uint64_t trials(std::string_view site) const;
  std::uint64_t fired(std::string_view site) const;
  std::uint64_t seed() const { return seed_; }

  /// "site:prob[:param],..." of the armed sites (empty when disarmed).
  std::string spec() const;

  /// The process-wide registry every injection site consults. First use
  /// arms it from the environment.
  static FaultRegistry& global();

 private:
  struct Site {
    std::string name;
    SiteConfig config;
    std::atomic<std::uint64_t> sequence{0};
    std::atomic<std::uint64_t> trials{0};
    std::atomic<std::uint64_t> fired{0};
  };

  Site* find(std::string_view site);
  const Site* find(std::string_view site) const;

  std::atomic<bool> armed_{false};
  std::uint64_t seed_ = 0;
  // Stable storage, mutated only by configure/clear (callers arm before
  // serving starts); should_fire only reads the vector and bumps the
  // per-site atomics.
  std::vector<std::unique_ptr<Site>> sites_;
};

/// Free-function front end used at injection sites: false immediately
/// when nothing is armed.
inline bool should_fire(std::string_view site, std::uint64_t key) {
  auto& registry = FaultRegistry::global();
  return registry.armed() && registry.should_fire(site, key);
}
inline bool should_fire(std::string_view site) {
  auto& registry = FaultRegistry::global();
  return registry.armed() && registry.should_fire(site);
}

}  // namespace snicit::platform::fault
