// Persistent per-lane scratch arena for the steady-state serving loop.
//
// Every engine run needs the same transient storage — ping-pong
// activation buffers, a post-convergence scratch matrix, column-index
// vectors, the CompressedBatch the SNICIT pipeline carries between
// stages. Allocating them per run makes the serving hot loop allocate
// continuously; a Workspace owns them instead, handing out
// capacity-preserving slots (`DenseMatrix::reset(rows, cols, ZeroFill)`
// never shrinks) so after the first run through a given problem shape the
// loop touches the heap zero times. The zero-allocation claim is
// observable: workspaces account every byte of slot growth into
// process-wide gauges, and growth after mark_warm() — the end of a
// workspace's first run — is counted separately as a steady-state
// allocation (`workspace.steady_state_allocs`, which a healthy serving
// loop keeps at 0).
//
// A Workspace is scratch, not state: copying one (engine clone) copies
// *nothing* — the copy starts cold and warms up on its own first run.
// It is single-threaded by design; concurrent lanes each own one
// (ParallelStreamExecutor keeps a slot per worker).
#pragma once

#include <any>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sparse/coo.hpp"  // sparse::Index
#include "sparse/dense_matrix.hpp"

namespace snicit::platform {

namespace detail {
/// Process-wide accounting behind the workspace.* gauges (workspace.cpp).
void workspace_account_bytes(long long delta);
void workspace_account_steady_allocs(std::size_t n);
}  // namespace detail

class Workspace {
 public:
  /// Matrix slots. Engines use kPing/kPong for the layer ping-pong,
  /// kScratch for the post-convergence multiply target, kSample for the
  /// downsampled feature matrix, kSlice for the serving layer's batch
  /// slice (distinct from the engine slots so a sliced input stays valid
  /// while the engine cycles its own buffers).
  enum Mat : int { kPing = 0, kPong, kScratch, kSample, kSlice, kMatCount };
  /// Index-vector slots: kColumns for centroid/probe column lists, kAux
  /// as a second list when a caller needs two live at once.
  enum Vec : int { kColumns = 0, kAux, kVecCount };

  Workspace() = default;
  ~Workspace() { release_accounting(); }

  // Scratch semantics: copies are cold and empty (see file comment).
  Workspace(const Workspace&) {}
  Workspace& operator=(const Workspace&) { return *this; }
  Workspace(Workspace&& other) noexcept { swap(other); }
  // Swap-based: the source ends up holding this workspace's old buffers
  // (and their accounting), which its destructor then releases.
  Workspace& operator=(Workspace&& other) noexcept {
    if (this != &other) swap(other);
    return *this;
  }

  /// Acquires a matrix slot shaped rows x cols. Storage only ever grows;
  /// ZeroFill::kNo (for provably fully-written targets) skips the fill.
  sparse::DenseMatrix& mat(Mat m, std::size_t rows, std::size_t cols,
                           sparse::ZeroFill fill) {
    auto& mx = mats_[static_cast<int>(m)];
    const std::size_t before = mx.capacity();
    mx.reset(rows, cols, fill);
    account_growth(before, mx.capacity(), sizeof(float));
    return mx;
  }

  /// The slot as last shaped (no resize).
  sparse::DenseMatrix& mat(Mat m) { return mats_[static_cast<int>(m)]; }

  /// Acquires an index-vector slot of size n (contents unspecified).
  std::vector<sparse::Index>& vec(Vec v, std::size_t n) {
    auto& ix = vecs_[static_cast<int>(v)];
    const std::size_t before = ix.capacity();
    ix.resize(n);
    account_growth(before, ix.capacity(), sizeof(sparse::Index));
    return ix;
  }

  /// The slot as last sized (no resize). Callers that build a list with
  /// clear() + push_back reuse the grown capacity across runs.
  std::vector<sparse::Index>& vec(Vec v) {
    return vecs_[static_cast<int>(v)];
  }

  /// Reusable list-of-index-lists (per-partition column lists). The outer
  /// vector and every inner vector keep their capacity across runs.
  std::vector<std::vector<sparse::Index>>& index_lists() {
    return index_lists_;
  }

  /// Typed engine-private state living in the workspace (e.g. SNICIT's
  /// CompressedBatch). Default-constructed on first access per type;
  /// later accesses return the same object, internal buffers intact.
  template <typename T>
  T& state() {
    if (user_.type() != typeid(T)) user_.emplace<T>();
    return *std::any_cast<T>(&user_);
  }

  /// Marks the end of this workspace's warm-up run: growth from here on
  /// counts as a steady-state allocation. Idempotent.
  void mark_warm() { warm_ = true; }
  bool warm() const { return warm_; }

  /// Bytes of slot storage this workspace has grown so far (index lists
  /// and state<T> internals are engine-shaped and not tracked).
  std::size_t bytes_reserved() const { return bytes_; }
  /// Slot growth events after mark_warm() on this workspace.
  std::size_t steady_state_allocs() const { return steady_allocs_; }

  /// Process-wide totals across live workspaces (destroyed ones release
  /// their bytes; steady-state counts are cumulative).
  static std::size_t global_bytes_reserved();
  static std::size_t global_steady_state_allocs();

  /// Publishes the totals as gauges `workspace.bytes_reserved` and
  /// `workspace.steady_state_allocs` (no-op while metrics are disabled).
  static void publish_metrics();

 private:
  void account_growth(std::size_t before, std::size_t after,
                      std::size_t elem_size) {
    if (after <= before) return;
    const std::size_t delta = (after - before) * elem_size;
    bytes_ += delta;
    detail::workspace_account_bytes(static_cast<long long>(delta));
    if (warm_) {
      ++steady_allocs_;
      detail::workspace_account_steady_allocs(1);
    }
  }

  void release_accounting() {
    if (bytes_ != 0) {
      detail::workspace_account_bytes(-static_cast<long long>(bytes_));
      bytes_ = 0;
    }
  }

  void swap(Workspace& other) noexcept {
    for (int i = 0; i < kMatCount; ++i) {
      std::swap(mats_[i], other.mats_[i]);
    }
    for (int i = 0; i < kVecCount; ++i) {
      vecs_[i].swap(other.vecs_[i]);
    }
    index_lists_.swap(other.index_lists_);
    user_.swap(other.user_);
    std::swap(bytes_, other.bytes_);
    std::swap(steady_allocs_, other.steady_allocs_);
    std::swap(warm_, other.warm_);
  }

  sparse::DenseMatrix mats_[kMatCount];
  std::vector<sparse::Index> vecs_[kVecCount];
  std::vector<std::vector<sparse::Index>> index_lists_;
  std::any user_;
  std::size_t bytes_ = 0;
  std::size_t steady_allocs_ = 0;
  bool warm_ = false;
};

}  // namespace snicit::platform
