// Integrity primitives for durable artifacts: CRC32C (Castagnoli) for
// per-record corruption detection in the request journal and the warm
// state snapshot, and SHA-256 for whole-file model artifact verification
// against manifest pins.
//
// Both are deliberately software implementations — portable, branch-free
// table/compression loops with no ISA dependencies — because the threat
// model is torn writes and bit rot, not adversaries: CRC32C catches the
// short bursts a crashed fsync leaves behind, SHA-256 pins deployment
// artifacts strongly enough that a silent re-train or filesystem
// corruption cannot masquerade as the manifested model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "platform/error.hpp"

namespace snicit::platform {

/// CRC32C (polynomial 0x1EDC6F41, reflected). `seed` is the running CRC
/// for incremental use: crc32c(b, n2, crc32c(a, n1)) == crc of a||b.
std::uint32_t crc32c(const void* data, std::size_t bytes,
                     std::uint32_t seed = 0);

/// Incremental SHA-256. update() in any chunking; hex() finalizes a copy,
/// so the instance stays usable for further updates.
class Sha256 {
 public:
  Sha256();

  void update(const void* data, std::size_t bytes);

  /// 64-char lowercase hex digest of everything updated so far.
  std::string hex() const;

 private:
  void compress(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t length_ = 0;       // total bytes consumed
  std::uint8_t buffer_[64];        // partial block
  std::size_t buffered_ = 0;
};

/// One-shot digest of a byte string.
std::string sha256_hex(const void* data, std::size_t bytes);
std::string sha256_hex(const std::string& text);

/// Streams `path` through SHA-256. kBadModelFile when the file cannot be
/// opened or read — integrity verification of an unreadable artifact must
/// fail loudly, never pass vacuously.
Result<std::string> sha256_file(const std::string& path);

}  // namespace snicit::platform
