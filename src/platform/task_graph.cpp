#include "platform/task_graph.hpp"

#include "platform/common.hpp"
#include "platform/thread_pool.hpp"

namespace snicit::platform {

TaskGraph::TaskId TaskGraph::add(std::function<void()> work) {
  nodes_.push_back(Node{std::move(work), {}, 0});
  return nodes_.size() - 1;
}

void TaskGraph::add_edge(TaskId before, TaskId after) {
  SNICIT_CHECK(before < nodes_.size() && after < nodes_.size(),
               "task id out of range");
  nodes_[before].successors.push_back(after);
  ++nodes_[after].dependencies;
}

void TaskGraph::run() {
  // Wavefront (level-synchronous Kahn) execution: each wave is the set of
  // currently-ready nodes, run concurrently on the global pool. Nodes at
  // different pipeline depths that become ready together execute in the
  // same wave, which is what gives SNIG-style chunk/layer overlap.
  std::vector<std::size_t> pending(nodes_.size());
  std::vector<TaskId> ready;
  ready.reserve(nodes_.size());
  for (TaskId i = 0; i < nodes_.size(); ++i) {
    pending[i] = nodes_[i].dependencies;
    if (pending[i] == 0) ready.push_back(i);
  }

  std::size_t retired = 0;
  std::vector<TaskId> next;
  while (!ready.empty()) {
    ThreadPool::global().run_chunks(ready.size(), [&](std::size_t k) {
      nodes_[ready[k]].work();
    });
    retired += ready.size();
    next.clear();
    for (TaskId id : ready) {
      for (TaskId succ : nodes_[id].successors) {
        if (--pending[succ] == 0) next.push_back(succ);
      }
    }
    ready.swap(next);
  }
  SNICIT_CHECK(retired == nodes_.size(), "task graph has a cycle");
}

}  // namespace snicit::platform
