// The sparse DNN model consumed by every inference engine: a stack of
// square sparse layers Y(i+1) = σ(W(i+1)·Y(i) + b(i+1)) with
// σ(x) = min(max(x, 0), ymax) — the SDGC feed-forward recurrence.
#pragma once

#include <string>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/ell.hpp"
#include "sparse/csr.hpp"

namespace snicit::dnn {

using sparse::CscMatrix;
using sparse::CsrMatrix;
using sparse::Index;

class SparseDnn {
 public:
  SparseDnn() = default;

  /// Builds a model; every weight matrix must be neurons x neurons and
  /// every bias vector of size neurons. ymax is the activation clip
  /// (32 for SDGC benchmarks, 1 for the paper's medium-scale DNNs).
  SparseDnn(Index neurons, std::vector<CsrMatrix> weights,
            std::vector<std::vector<float>> biases, float ymax,
            std::string name = "sparse-dnn");

  Index neurons() const { return neurons_; }
  std::size_t num_layers() const { return weights_.size(); }
  float ymax() const { return ymax_; }
  const std::string& name() const { return name_; }

  const CsrMatrix& weight(std::size_t layer) const { return weights_[layer]; }
  const std::vector<float>& bias(std::size_t layer) const {
    return biases_[layer];
  }

  /// True when every bias entry of `layer` equals the same constant
  /// (SDGC benchmarks use a single constant per network).
  bool bias_is_constant(std::size_t layer) const;
  float constant_bias(std::size_t layer) const { return biases_[layer][0]; }

  /// CSC mirror of weight(layer); built on first request (not thread-safe
  /// against concurrent first access — engines call ensure_csc() upfront).
  const CscMatrix& weight_csc(std::size_t layer) const;
  void ensure_csc() const;

  /// ELL mirror of weight(layer), same lazy/ensure contract.
  const sparse::EllMatrix& weight_ell(std::size_t layer) const;
  void ensure_ell() const;

  /// Total number of nonzero weights across layers.
  sparse::Offset connections() const;

  /// Average weight density across layers.
  double density() const;

 private:
  Index neurons_ = 0;
  std::vector<CsrMatrix> weights_;
  std::vector<std::vector<float>> biases_;
  mutable std::vector<CscMatrix> csc_;  // lazily mirrored
  mutable std::vector<bool> csc_built_;
  mutable std::vector<sparse::EllMatrix> ell_;
  mutable std::vector<bool> ell_built_;
  float ymax_ = 32.0f;
  std::string name_;
};

}  // namespace snicit::dnn
