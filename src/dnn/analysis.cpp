#include "dnn/analysis.hpp"

#include <cmath>

#include "dnn/reference.hpp"
#include "platform/common.hpp"

namespace snicit::dnn {

ClusterCensus cluster_census(const DenseMatrix& y, float eta) {
  ClusterCensus census;
  const std::size_t b = y.cols();
  const std::size_t n = y.rows();
  if (b == 0) return census;

  std::vector<int> group(b, -1);
  std::vector<std::size_t> representatives;
  std::vector<std::size_t> group_sizes;
  double within_total = 0.0;
  std::size_t within_count = 0;

  for (std::size_t j = 0; j < b; ++j) {
    const float* col = y.col(j);
    for (std::size_t g = 0; g < representatives.size(); ++g) {
      const float* rep = y.col(representatives[g]);
      std::size_t differing = 0;
      for (std::size_t r = 0; r < n; ++r) {
        if (std::fabs(col[r] - rep[r]) > eta) ++differing;
      }
      // Same group when at most 1% of entries differ (or none when the
      // batch is exactly clustered).
      if (static_cast<double>(differing) <=
          0.01 * static_cast<double>(n)) {
        group[j] = static_cast<int>(g);
        ++group_sizes[g];
        within_total +=
            static_cast<double>(differing) / static_cast<double>(n);
        ++within_count;
        break;
      }
    }
    if (group[j] == -1) {
      group[j] = static_cast<int>(representatives.size());
      representatives.push_back(j);
      group_sizes.push_back(1);
    }
  }

  census.distinct = representatives.size();
  for (std::size_t s : group_sizes) {
    census.largest = std::max(census.largest, s);
  }
  census.mean_within_distance =
      within_count == 0 ? 0.0 : within_total / static_cast<double>(within_count);
  return census;
}

std::vector<LayerTraceRow> layer_trace(const SparseDnn& net,
                                       const DenseMatrix& input) {
  std::vector<LayerTraceRow> rows;
  rows.reserve(net.num_layers());
  DenseMatrix y = input;
  const auto total = static_cast<double>(y.rows() * y.cols());
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    y = reference_forward(net, y, l, l + 1);
    LayerTraceRow row;
    row.layer = l + 1;
    row.nnz = y.count_nonzeros();
    row.density = total == 0.0 ? 0.0 : static_cast<double>(row.nnz) / total;
    std::size_t saturated = 0;
    for (std::size_t i = 0; i < y.rows() * y.cols(); ++i) {
      if (y.data()[i] == net.ymax()) ++saturated;
    }
    row.saturated_fraction =
        total == 0.0 ? 0.0 : static_cast<double>(saturated) / total;
    row.distinct_columns = cluster_census(y, 0.0f).distinct;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace snicit::dnn
