// Common interface implemented by the reference, the three champion
// baselines (BF-2019 / SNIG-2020 / XY-2021) and SNICIT itself, so tests
// and benchmark harnesses treat all engines uniformly.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dnn/sparse_dnn.hpp"
#include "platform/timer.hpp"
#include "platform/workspace.hpp"
#include "sparse/dense_matrix.hpp"

namespace snicit::dnn {

using sparse::DenseMatrix;

struct RunResult {
  DenseMatrix output;                 // Y(l), neurons x batch
  platform::StageBreakdown stages;    // named stage durations (ms)
  std::vector<double> layer_ms;       // per-layer wall time (ms)
  std::map<std::string, double> diagnostics;  // engine-specific scalars
  /// Layer at which the engine abandoned its compressed path for the
  /// dense fallback this run, -1 when it did not. POD mirror of the
  /// "fallback_layer" diagnostic: a *reused* result never carries a stale
  /// verdict (begin_run resets it), while the diagnostics map keeps its
  /// only-present-when-it-happened contract.
  int fallback_layer = -1;

  double total_ms() const { return stages.total_ms(); }

  /// Clears per-run state while keeping heap capacity (layer timings,
  /// stage entries, the output buffer), so a result cycled through
  /// run_into stops allocating once warm. Diagnostics keys persist with
  /// stale values until the run overwrites them — engines own clearing
  /// any key whose *absence* is meaningful.
  void begin_run() {
    layer_ms.clear();
    stages.reset_values();
    fallback_layer = -1;
  }
};

class InferenceEngine {
 public:
  virtual ~InferenceEngine() = default;

  virtual std::string name() const = 0;

  /// Runs the full feed-forward of `net` on `input` (neurons x batch) and
  /// returns the last-layer activations plus timing.
  virtual RunResult run(const SparseDnn& net, const DenseMatrix& input) = 0;

  /// Allocation-free steady-state form: scratch comes from `ws`, the
  /// outcome lands in `result` (which must not alias `input`). A caller
  /// cycling the same workspace + result through repeated calls allocates
  /// nothing once both are warm. The default forwards to run() for
  /// engines without a workspace-aware path.
  virtual void run_into(const SparseDnn& net, const DenseMatrix& input,
                        platform::Workspace& ws, RunResult& result) {
    (void)ws;
    result = run(net, input);
  }

  /// Deep copy of this engine — parameters plus any warmed per-engine
  /// state (centroid caches, autotuned kernel choices) — so serving
  /// layers can pool W independent instances and run them concurrently
  /// without sharing mutable state. Returns nullptr when the engine
  /// cannot be duplicated.
  virtual std::unique_ptr<InferenceEngine> clone() const { return nullptr; }
};

/// Argmax class per column, restricted to the first `num_classes` rows
/// (medium-scale nets put the 10 class scores in the leading rows).
std::vector<int> argmax_categories(const DenseMatrix& y,
                                   std::size_t num_classes);

/// SDGC-style category: 1 when a column has any nonzero entry, else 0
/// (the challenge's golden reference marks which inputs remain active).
std::vector<int> sdgc_categories(const DenseMatrix& y, float tol = 0.0f);

/// Fraction of matching entries between two category vectors.
double category_match_rate(const std::vector<int>& a,
                           const std::vector<int>& b);

}  // namespace snicit::dnn
