// Batch-level analysis of intermediate results — the quantitative
// counterpart of the paper's Figure 1: how clustered a batch is, how its
// activations are distributed, and how both evolve over layers.
#pragma once

#include <cstddef>
#include <vector>

#include "dnn/sparse_dnn.hpp"
#include "sparse/dense_matrix.hpp"

namespace snicit::dnn {

using sparse::DenseMatrix;

/// Census of the duplicate/cluster structure of a batch: columns equal
/// under an element tolerance `eta` are grouped greedily (first member
/// becomes the group representative, like Algorithm 1's pruning).
struct ClusterCensus {
  std::size_t distinct = 0;  // number of groups
  std::size_t largest = 0;   // size of the biggest group
  /// Mean fraction of rows in which a column differs (> eta) from its
  /// group representative — 0 when groups are exact duplicates.
  double mean_within_distance = 0.0;
};

ClusterCensus cluster_census(const DenseMatrix& y, float eta = 0.0f);

/// Per-layer trace of a batch's evolution through a network.
struct LayerTraceRow {
  std::size_t layer = 0;          // 1-based layer index (after this layer)
  std::size_t nnz = 0;            // nonzeros of Y(layer)
  double density = 0.0;           // nnz / (N*B)
  double saturated_fraction = 0.0;  // entries at the ymax clip
  std::size_t distinct_columns = 0; // exact-duplicate census
};

/// Runs exact feed-forward and records one row per layer. O(layers) full
/// forward cost plus census cost — analysis, not a fast path.
std::vector<LayerTraceRow> layer_trace(const SparseDnn& net,
                                       const DenseMatrix& input);

}  // namespace snicit::dnn
