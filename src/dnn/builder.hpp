// Fluent construction of SparseDnn models from per-layer specifications —
// the programmatic entry point for users bringing their own topologies
// (random Erdős–Rényi layers, banded layers, explicit triplets) rather
// than the Radix-Net generator or a trained MLP.
#pragma once

#include <cstdint>
#include <vector>

#include "dnn/sparse_dnn.hpp"
#include "sparse/coo.hpp"

namespace snicit::dnn {

class DnnBuilder {
 public:
  /// `neurons` — width of every layer; `ymax` — activation clip.
  explicit DnnBuilder(Index neurons, float ymax = 32.0f);

  /// Uniform random layer: each of the neurons*neurons entries kept with
  /// probability `density`, value uniform in [w_lo, w_hi].
  DnnBuilder& add_random_layer(double density, float w_lo, float w_hi,
                               std::uint64_t seed);

  /// Banded layer: neuron j connects to j-halfwidth..j+halfwidth (mod N)
  /// with the given constant weight.
  DnnBuilder& add_banded_layer(int halfwidth, float weight);

  /// Explicit layer from triplets (duplicates are summed).
  DnnBuilder& add_layer(const std::vector<sparse::Triplet>& entries);

  /// Sets the bias of the most recently added layer (constant). Layers
  /// default to bias 0.
  DnnBuilder& with_bias(float bias);

  /// Sets a full bias vector on the most recently added layer.
  DnnBuilder& with_bias(std::vector<float> bias);

  DnnBuilder& with_name(std::string name);

  std::size_t num_layers() const { return weights_.size(); }

  /// Finalizes the model; the builder is left empty and reusable.
  SparseDnn build();

 private:
  Index neurons_;
  float ymax_;
  std::string name_ = "built-dnn";
  std::vector<sparse::CsrMatrix> weights_;
  std::vector<std::vector<float>> biases_;
};

}  // namespace snicit::dnn
