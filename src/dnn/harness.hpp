// Multi-engine comparison harness: runs a set of engines on one workload,
// checks every output against a designated golden engine, and renders the
// comparison as a table or JSON. The benchmark binaries are thin wrappers
// over this.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dnn/engine.hpp"

namespace snicit::dnn {

struct ComparisonRow {
  std::string engine;
  double total_ms = 0.0;
  double speedup_vs_baseline = 1.0;  // first engine is the baseline
  bool categories_match = true;      // vs the golden output
  float max_abs_diff = 0.0f;
  std::map<std::string, double> diagnostics;
  /// Workload counters attributed to this engine's runs (counter deltas
  /// plus gauge values), captured when platform::metrics is enabled;
  /// empty otherwise.
  std::map<std::string, double> metrics;
};

struct Comparison {
  std::string workload;
  std::vector<ComparisonRow> rows;

  bool all_match() const {
    for (const auto& row : rows) {
      if (!row.categories_match) return false;
    }
    return true;
  }

  /// Fixed-width text table.
  std::string to_table() const;

  /// JSON document: {"workload": ..., "engines": [...]}.
  std::string to_json() const;
};

/// Runs every engine on (net, input); the FIRST engine's output is the
/// golden reference for category checks and its runtime the speed-up
/// baseline. `repeats` keeps each engine's fastest run.
Comparison compare_engines(
    const std::string& workload_name,
    const std::vector<InferenceEngine*>& engines, const SparseDnn& net,
    const DenseMatrix& input, int repeats = 1, float category_tol = 1e-3f);

}  // namespace snicit::dnn
