#include "dnn/reference.hpp"

#include "platform/common.hpp"
#include "platform/trace.hpp"
#include "sparse/spmm.hpp"

namespace snicit::dnn {

DenseMatrix reference_forward(const SparseDnn& net, const DenseMatrix& input,
                              std::size_t first, std::size_t last) {
  SNICIT_CHECK(first <= last && last <= net.num_layers(),
               "layer range out of bounds");
  SNICIT_CHECK(input.rows() == static_cast<std::size_t>(net.neurons()),
               "input row count must equal neuron count");
  DenseMatrix cur = input;
  DenseMatrix next(input.rows(), input.cols());
  for (std::size_t i = first; i < last; ++i) {
    sparse::spmm_gather(net.weight(i), cur, next);
    sparse::apply_bias_activation(next, net.bias(i), net.ymax());
    std::swap(cur, next);
  }
  return cur;
}

DenseMatrix reference_forward(const SparseDnn& net, const DenseMatrix& input) {
  return reference_forward(net, input, 0, net.num_layers());
}

RunResult ReferenceEngine::run(const SparseDnn& net,
                               const DenseMatrix& input) {
  SNICIT_TRACE_SPAN("reference.run", "engine");
  RunResult result;
  result.layer_ms.reserve(net.num_layers());
  DenseMatrix cur = input;
  DenseMatrix next(input.rows(), input.cols());
  platform::Stopwatch total;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    platform::Stopwatch layer;
    sparse::spmm_gather(net.weight(i), cur, next);
    sparse::apply_bias_activation(next, net.bias(i), net.ymax());
    std::swap(cur, next);
    result.layer_ms.push_back(layer.elapsed_ms());
  }
  result.stages.add("feed-forward", total.elapsed_ms());
  result.output = std::move(cur);
  return result;
}

}  // namespace snicit::dnn
