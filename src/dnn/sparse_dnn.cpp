#include "dnn/sparse_dnn.hpp"

#include "platform/common.hpp"

namespace snicit::dnn {

SparseDnn::SparseDnn(Index neurons, std::vector<CsrMatrix> weights,
                     std::vector<std::vector<float>> biases, float ymax,
                     std::string name)
    : neurons_(neurons),
      weights_(std::move(weights)),
      biases_(std::move(biases)),
      ymax_(ymax),
      name_(std::move(name)) {
  SNICIT_CHECK(weights_.size() == biases_.size(),
               "one bias vector per layer required");
  SNICIT_CHECK(!weights_.empty(), "a network needs at least one layer");
  SNICIT_CHECK(ymax_ > 0.0f, "ymax must be positive");
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    SNICIT_CHECK(weights_[i].rows() == neurons_ &&
                     weights_[i].cols() == neurons_,
                 "layer weight must be neurons x neurons");
    SNICIT_CHECK(biases_[i].size() == static_cast<std::size_t>(neurons_),
                 "bias vector must have one entry per neuron");
  }
  csc_.resize(weights_.size());
  csc_built_.assign(weights_.size(), false);
  ell_.resize(weights_.size());
  ell_built_.assign(weights_.size(), false);
}

bool SparseDnn::bias_is_constant(std::size_t layer) const {
  const auto& b = biases_[layer];
  for (float v : b) {
    if (v != b[0]) return false;
  }
  return true;
}

const CscMatrix& SparseDnn::weight_csc(std::size_t layer) const {
  if (!csc_built_[layer]) {
    csc_[layer] = CscMatrix::from_csr(weights_[layer]);
    csc_built_[layer] = true;
  }
  return csc_[layer];
}

void SparseDnn::ensure_csc() const {
  for (std::size_t i = 0; i < weights_.size(); ++i) weight_csc(i);
}

const sparse::EllMatrix& SparseDnn::weight_ell(std::size_t layer) const {
  if (!ell_built_[layer]) {
    ell_[layer] = sparse::EllMatrix::from_csr(weights_[layer]);
    ell_built_[layer] = true;
  }
  return ell_[layer];
}

void SparseDnn::ensure_ell() const {
  for (std::size_t i = 0; i < weights_.size(); ++i) weight_ell(i);
}

sparse::Offset SparseDnn::connections() const {
  sparse::Offset n = 0;
  for (const auto& w : weights_) n += w.nnz();
  return n;
}

double SparseDnn::density() const {
  if (weights_.empty()) return 0.0;
  double d = 0.0;
  for (const auto& w : weights_) d += w.density();
  return d / static_cast<double>(weights_.size());
}

}  // namespace snicit::dnn
