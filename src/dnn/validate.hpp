// Model linting: structural and numerical health checks on a SparseDnn
// before it is served. Catches the issues most likely to silently corrupt
// a SNICIT run (NaN/Inf weights, dead neurons, empty layers).
#pragma once

#include <string>
#include <vector>

#include "dnn/sparse_dnn.hpp"

namespace snicit::dnn {

struct ValidationIssue {
  enum class Severity { kWarning, kError };
  Severity severity;
  std::size_t layer;  // layer the issue was found in
  std::string message;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;

  bool ok() const {  // no errors (warnings allowed)
    for (const auto& issue : issues) {
      if (issue.severity == ValidationIssue::Severity::kError) return false;
    }
    return true;
  }
  std::size_t warnings() const {
    std::size_t n = 0;
    for (const auto& issue : issues) {
      if (issue.severity == ValidationIssue::Severity::kWarning) ++n;
    }
    return n;
  }
  std::size_t errors() const { return issues.size() - warnings(); }
};

/// Checks every layer for: invalid CSR structure, non-finite weights or
/// biases (errors); empty weight matrices, output neurons with no incoming
/// edges ("dead rows", which zero out their channel), and input neurons
/// with no outgoing edges in the next layer (warnings).
ValidationReport validate_model(const SparseDnn& net);

}  // namespace snicit::dnn
