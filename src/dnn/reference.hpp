// Exact dense feed-forward — the correctness oracle every engine is
// checked against (the role the SDGC "golden reference" plays in the
// paper's evaluation).
#pragma once

#include "dnn/engine.hpp"

namespace snicit::dnn {

class ReferenceEngine final : public InferenceEngine {
 public:
  std::string name() const override { return "reference"; }
  RunResult run(const SparseDnn& net, const DenseMatrix& input) override;
  std::unique_ptr<InferenceEngine> clone() const override {
    return std::make_unique<ReferenceEngine>(*this);
  }
};

/// Convenience: feed-forward `input` through layers [first, last) of `net`
/// and return the activations after layer last-1.
DenseMatrix reference_forward(const SparseDnn& net, const DenseMatrix& input,
                              std::size_t first, std::size_t last);

/// Full-network reference output (layers [0, num_layers)).
DenseMatrix reference_forward(const SparseDnn& net, const DenseMatrix& input);

}  // namespace snicit::dnn
