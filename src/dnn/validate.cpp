#include "dnn/validate.hpp"

#include <cmath>

namespace snicit::dnn {

namespace {

void add(ValidationReport& report, ValidationIssue::Severity severity,
         std::size_t layer, std::string message) {
  report.issues.push_back({severity, layer, std::move(message)});
}

}  // namespace

ValidationReport validate_model(const SparseDnn& net) {
  ValidationReport report;
  using Severity = ValidationIssue::Severity;

  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const auto& w = net.weight(l);

    if (!w.is_valid()) {
      add(report, Severity::kError, l, "invalid CSR structure");
      continue;  // further checks on broken structure are meaningless
    }
    if (w.nnz() == 0) {
      add(report, Severity::kWarning, l,
          "layer has no weights (all outputs collapse to bias)");
    }

    for (float v : w.values()) {
      if (!std::isfinite(v)) {
        add(report, Severity::kError, l, "non-finite weight value");
        break;
      }
    }
    for (float v : net.bias(l)) {
      if (!std::isfinite(v)) {
        add(report, Severity::kError, l, "non-finite bias value");
        break;
      }
    }

    // Dead output rows: the neuron's activation is a constant σ(bias).
    std::size_t dead_rows = 0;
    for (Index r = 0; r < w.rows(); ++r) {
      if (w.row_cols(r).empty()) ++dead_rows;
    }
    if (dead_rows > 0) {
      add(report, Severity::kWarning, l,
          std::to_string(dead_rows) + " output neurons have no in-edges");
    }

    // Unused inputs: columns of W with no entries — the previous layer's
    // neuron feeds nothing forward.
    std::vector<bool> used(static_cast<std::size_t>(w.cols()), false);
    for (Index c : w.col_idx()) {
      used[static_cast<std::size_t>(c)] = true;
    }
    std::size_t unused = 0;
    for (bool u : used) {
      if (!u) ++unused;
    }
    if (unused > 0 && w.nnz() > 0) {
      add(report, Severity::kWarning, l,
          std::to_string(unused) + " input neurons feed no output");
    }
  }
  return report;
}

}  // namespace snicit::dnn
