#include "dnn/harness.hpp"

#include <cstdio>

#include "platform/common.hpp"
#include "platform/json.hpp"
#include "platform/metrics.hpp"

namespace snicit::dnn {

std::string Comparison::to_table() const {
  std::string out = "workload: " + workload + "\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-12s %12s %10s %10s %12s\n",
                "engine", "runtime ms", "speedup", "golden", "max |diff|");
  out += line;
  for (const auto& row : rows) {
    std::snprintf(line, sizeof(line), "%-12s %12.2f %9.2fx %10s %12.3g\n",
                  row.engine.c_str(), row.total_ms,
                  row.speedup_vs_baseline,
                  row.categories_match ? "match" : "MISMATCH",
                  static_cast<double>(row.max_abs_diff));
    out += line;
  }
  return out;
}

std::string Comparison::to_json() const {
  platform::JsonWriter json;
  json.begin_object();
  json.key("workload").value(workload);
  json.key("engines").begin_array();
  for (const auto& row : rows) {
    json.begin_object();
    json.key("name").value(row.engine);
    json.key("total_ms").value(row.total_ms);
    json.key("speedup_vs_baseline").value(row.speedup_vs_baseline);
    json.key("categories_match").value(row.categories_match);
    json.key("max_abs_diff").value(static_cast<double>(row.max_abs_diff));
    json.key("diagnostics").begin_object();
    for (const auto& [key, value] : row.diagnostics) {
      json.key(key).value(value);
    }
    json.end_object();
    if (!row.metrics.empty()) {
      json.key("metrics").begin_object();
      for (const auto& [key, value] : row.metrics) {
        json.key(key).value(value);
      }
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

Comparison compare_engines(const std::string& workload_name,
                           const std::vector<InferenceEngine*>& engines,
                           const SparseDnn& net, const DenseMatrix& input,
                           int repeats, float category_tol) {
  SNICIT_CHECK(!engines.empty(), "need at least one engine");
  net.ensure_csc();  // shared prep so no engine pays it inside its timing

  Comparison comparison;
  comparison.workload = workload_name;

  DenseMatrix golden;
  std::vector<int> golden_cats;
  double baseline_ms = 0.0;

  const bool capture_metrics = platform::metrics::enabled();
  auto& registry = platform::metrics::MetricsRegistry::global();

  for (std::size_t e = 0; e < engines.size(); ++e) {
    // Counter deltas over this engine's runs attribute shared global
    // counters (pruned residues, kernel picks) to the engine that caused
    // them; gauges are last-written and read after the runs.
    const auto counters_before =
        capture_metrics ? registry.counter_values()
                        : std::map<std::string, std::int64_t>{};
    const auto gauges_before = capture_metrics
                                   ? registry.gauge_values()
                                   : std::map<std::string, double>{};

    RunResult best = engines[e]->run(net, input);
    for (int r = 1; r < repeats; ++r) {
      RunResult again = engines[e]->run(net, input);
      if (again.total_ms() < best.total_ms()) best = std::move(again);
    }

    ComparisonRow row;
    row.engine = engines[e]->name();
    row.total_ms = best.total_ms();
    row.diagnostics = best.diagnostics;
    if (capture_metrics) {
      for (const auto& [name, after] : registry.counter_values()) {
        const auto it = counters_before.find(name);
        const std::int64_t before =
            it == counters_before.end() ? 0 : it->second;
        if (after != before) {
          row.metrics[name] = static_cast<double>(after - before);
        }
      }
      // Only gauges this engine's runs (re)wrote: an unchanged gauge is
      // a stale reading from some earlier row, not this engine's state.
      for (const auto& [name, value] : registry.gauge_values()) {
        const auto it = gauges_before.find(name);
        if (it == gauges_before.end() || it->second != value) {
          row.metrics[name] = value;
        }
      }
    }
    if (e == 0) {
      baseline_ms = row.total_ms;
      golden = std::move(best.output);
      golden_cats = sdgc_categories(golden, category_tol);
      row.speedup_vs_baseline = 1.0;
      row.categories_match = true;
      row.max_abs_diff = 0.0f;
    } else {
      row.speedup_vs_baseline =
          row.total_ms > 0.0 ? baseline_ms / row.total_ms : 0.0;
      row.max_abs_diff = DenseMatrix::max_abs_diff(best.output, golden);
      row.categories_match =
          category_match_rate(sdgc_categories(best.output, category_tol),
                              golden_cats) == 1.0;
    }
    comparison.rows.push_back(std::move(row));
  }
  return comparison;
}

}  // namespace snicit::dnn
