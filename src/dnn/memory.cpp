#include "dnn/memory.hpp"

#include "platform/common.hpp"

namespace snicit::dnn {

ModelFootprint model_footprint(const SparseDnn& net, bool include_mirrors) {
  ModelFootprint fp;
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const auto& w = net.weight(l);
    fp.csr_bytes += (w.row_ptr().size() * sizeof(sparse::Offset)) +
                    (w.col_idx().size() * sizeof(sparse::Index)) +
                    (w.values().size() * sizeof(float));
  }
  if (include_mirrors) {
    // Mirrors share nnz with CSR: CSC swaps the pointer axis; ELL stores
    // width*rows slots of (index, value).
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      const auto& w = net.weight(l);
      fp.csc_bytes +=
          (static_cast<std::size_t>(w.cols()) + 1) * sizeof(sparse::Offset) +
          static_cast<std::size_t>(w.nnz()) *
              (sizeof(sparse::Index) + sizeof(float));
      // ELL width = max row nnz.
      std::size_t width = 0;
      for (sparse::Index r = 0; r < w.rows(); ++r) {
        width = std::max(width, w.row_cols(r).size());
      }
      fp.ell_bytes += static_cast<std::size_t>(w.rows()) * width *
                      (sizeof(sparse::Index) + sizeof(float));
    }
  }
  return fp;
}

std::size_t run_working_set_bytes(const SparseDnn& net, std::size_t batch,
                                  int activation_buffers) {
  SNICIT_CHECK(activation_buffers >= 1, "need at least one buffer");
  const auto n = static_cast<std::size_t>(net.neurons());
  const std::size_t buffers = static_cast<std::size_t>(activation_buffers) *
                              n * batch * sizeof(float);
  // Per-column bookkeeping (mapper, ne_rec, ne_idx in the SNICIT case —
  // counted for every engine as a small constant envelope).
  const std::size_t bookkeeping =
      batch * (sizeof(sparse::Index) * 2 + sizeof(std::uint8_t));
  return buffers + bookkeeping;
}

std::size_t max_batch_for_budget(const SparseDnn& net,
                                 std::size_t budget_bytes,
                                 int activation_buffers) {
  const std::size_t model = model_footprint(net).total();
  if (model >= budget_bytes) return 0;
  const std::size_t left = budget_bytes - model;
  const std::size_t per_column =
      run_working_set_bytes(net, 1, activation_buffers);
  return per_column == 0 ? 0 : left / per_column;
}

}  // namespace snicit::dnn
