// Memory footprint accounting. The paper sizes batches against GPU
// capacity ("B = 30000 for 65536 neurons ... so that no overflow occurs in
// GPU memory", §4.1.1); these estimators reproduce that arithmetic for any
// configuration and back the harnesses' batch-size caps.
#pragma once

#include <cstddef>

#include "dnn/sparse_dnn.hpp"

namespace snicit::dnn {

struct ModelFootprint {
  std::size_t csr_bytes = 0;  // row_ptr + col_idx + values, all layers
  std::size_t csc_bytes = 0;  // mirror, when built
  std::size_t ell_bytes = 0;  // mirror, when built
  std::size_t total() const { return csr_bytes + csc_bytes + ell_bytes; }
};

/// Bytes the model occupies in each stored format (mirrors counted only
/// when `include_mirrors`).
ModelFootprint model_footprint(const SparseDnn& net,
                               bool include_mirrors = true);

/// Working-set bytes of one engine run at batch size `batch`:
/// `activation_buffers` N x B float buffers (2 for the double-buffered
/// baselines, 3 for SNICIT: Ŷ + spMM scratch + recovery output) plus
/// per-column bookkeeping.
std::size_t run_working_set_bytes(const SparseDnn& net, std::size_t batch,
                                  int activation_buffers);

/// Largest batch size whose model + working set fits in `budget_bytes`
/// (0 when even B = 1 does not fit).
std::size_t max_batch_for_budget(const SparseDnn& net,
                                 std::size_t budget_bytes,
                                 int activation_buffers);

}  // namespace snicit::dnn
