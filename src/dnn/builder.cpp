#include "dnn/builder.hpp"

#include "platform/common.hpp"
#include "platform/rng.hpp"

namespace snicit::dnn {

DnnBuilder::DnnBuilder(Index neurons, float ymax)
    : neurons_(neurons), ymax_(ymax) {
  SNICIT_CHECK(neurons_ > 0, "neurons must be positive");
}

DnnBuilder& DnnBuilder::add_random_layer(double density, float w_lo,
                                         float w_hi, std::uint64_t seed) {
  SNICIT_CHECK(density > 0.0 && density <= 1.0,
               "density must be in (0, 1]");
  SNICIT_CHECK(w_lo <= w_hi, "invalid weight range");
  platform::Rng rng(seed);
  sparse::CooMatrix coo(neurons_, neurons_);
  for (Index r = 0; r < neurons_; ++r) {
    for (Index c = 0; c < neurons_; ++c) {
      if (rng.next_bool(density)) {
        coo.add(r, c, rng.uniform(w_lo, w_hi));
      }
    }
  }
  weights_.push_back(sparse::CsrMatrix::from_coo(coo));
  biases_.emplace_back(static_cast<std::size_t>(neurons_), 0.0f);
  return *this;
}

DnnBuilder& DnnBuilder::add_banded_layer(int halfwidth, float weight) {
  SNICIT_CHECK(halfwidth >= 0 && 2 * halfwidth + 1 <= neurons_,
               "band does not fit the layer");
  sparse::CooMatrix coo(neurons_, neurons_);
  for (Index r = 0; r < neurons_; ++r) {
    for (int d = -halfwidth; d <= halfwidth; ++d) {
      const Index c = static_cast<Index>(
          (static_cast<std::int64_t>(r) + d + neurons_) % neurons_);
      coo.add(r, c, weight);
    }
  }
  coo.coalesce();
  weights_.push_back(sparse::CsrMatrix::from_coo(coo));
  biases_.emplace_back(static_cast<std::size_t>(neurons_), 0.0f);
  return *this;
}

DnnBuilder& DnnBuilder::add_layer(
    const std::vector<sparse::Triplet>& entries) {
  sparse::CooMatrix coo(neurons_, neurons_);
  for (const auto& t : entries) {
    coo.add(t.row, t.col, t.value);
  }
  weights_.push_back(sparse::CsrMatrix::from_coo(coo));
  biases_.emplace_back(static_cast<std::size_t>(neurons_), 0.0f);
  return *this;
}

DnnBuilder& DnnBuilder::with_bias(float bias) {
  SNICIT_CHECK(!biases_.empty(), "with_bias before any layer");
  std::fill(biases_.back().begin(), biases_.back().end(), bias);
  return *this;
}

DnnBuilder& DnnBuilder::with_bias(std::vector<float> bias) {
  SNICIT_CHECK(!biases_.empty(), "with_bias before any layer");
  SNICIT_CHECK(bias.size() == static_cast<std::size_t>(neurons_),
               "bias vector size mismatch");
  biases_.back() = std::move(bias);
  return *this;
}

DnnBuilder& DnnBuilder::with_name(std::string name) {
  name_ = std::move(name);
  return *this;
}

SparseDnn DnnBuilder::build() {
  SNICIT_CHECK(!weights_.empty(), "build() with no layers");
  SparseDnn net(neurons_, std::move(weights_), std::move(biases_), ymax_,
                name_);
  weights_.clear();
  biases_.clear();
  return net;
}

}  // namespace snicit::dnn
