#include "dnn/engine.hpp"

#include <algorithm>
#include <cmath>

#include "platform/common.hpp"

namespace snicit::dnn {

std::vector<int> argmax_categories(const DenseMatrix& y,
                                   std::size_t num_classes) {
  SNICIT_CHECK(num_classes >= 1 && num_classes <= y.rows(),
               "num_classes out of range");
  std::vector<int> cats(y.cols());
  for (std::size_t j = 0; j < y.cols(); ++j) {
    const float* c = y.col(j);
    int best = 0;
    for (std::size_t r = 1; r < num_classes; ++r) {
      if (c[r] > c[best]) best = static_cast<int>(r);
    }
    cats[j] = best;
  }
  return cats;
}

std::vector<int> sdgc_categories(const DenseMatrix& y, float tol) {
  std::vector<int> cats(y.cols());
  for (std::size_t j = 0; j < y.cols(); ++j) {
    const float* c = y.col(j);
    int active = 0;
    for (std::size_t r = 0; r < y.rows(); ++r) {
      if (std::fabs(c[r]) > tol) {
        active = 1;
        break;
      }
    }
    cats[j] = active;
  }
  return cats;
}

double category_match_rate(const std::vector<int>& a,
                           const std::vector<int>& b) {
  SNICIT_CHECK(a.size() == b.size(), "category vectors differ in length");
  if (a.empty()) return 1.0;
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(a.size());
}

}  // namespace snicit::dnn
