#include "snicit/stream.hpp"

#include <algorithm>

#include "platform/common.hpp"
#include "platform/metrics.hpp"
#include "platform/timer.hpp"
#include "platform/trace.hpp"

namespace snicit::core {

StreamResult stream_inference(dnn::InferenceEngine& engine,
                              const dnn::SparseDnn& net,
                              const dnn::DenseMatrix& input,
                              const StreamOptions& options) {
  SNICIT_CHECK(options.batch_size >= 1, "batch_size must be >= 1");
  const std::size_t total = input.cols();
  const std::size_t keep =
      options.keep_rows == 0 ? input.rows()
                             : std::min(options.keep_rows, input.rows());

  StreamResult result;
  result.outputs.reset(keep, total);
  net.ensure_csc();  // shared model prep across batches

  for (std::size_t start = 0; start < total;
       start += options.batch_size) {
    SNICIT_TRACE_SPAN("serve_batch", "stream");
    const std::size_t end = std::min(total, start + options.batch_size);
    const dnn::DenseMatrix batch = input.columns(start, end);

    platform::Stopwatch sw;
    const auto run = engine.run(net, batch);
    const double ms = sw.elapsed_ms();
    result.batch_ms.push_back(ms);
    result.latency.add(ms);
    result.total_ms += ms;
    ++result.batches;
    if (platform::metrics::enabled()) {
      platform::metrics::MetricsRegistry::global()
          .counter("stream.batches_served")
          .add(1);
    }

    for (std::size_t j = start; j < end; ++j) {
      std::copy_n(run.output.col(j - start), keep, result.outputs.col(j));
    }
  }
  return result;
}

}  // namespace snicit::core
