#include "snicit/stream.hpp"

#include <algorithm>

#include "platform/common.hpp"
#include "platform/metrics.hpp"
#include "platform/timer.hpp"
#include "platform/trace.hpp"

namespace snicit::core {

StreamResult stream_inference(dnn::InferenceEngine& engine,
                              const dnn::SparseDnn& net,
                              const dnn::DenseMatrix& input,
                              const StreamOptions& options,
                              ServeScratch* scratch) {
  SNICIT_CHECK(options.batch_size >= 1, "batch_size must be >= 1");
  const std::size_t rows = input.rows();
  const std::size_t total = input.cols();
  const std::size_t keep =
      options.keep_rows == 0 ? rows : std::min(options.keep_rows, rows);

  StreamResult result;
  result.outputs.reset(keep, total);
  net.ensure_csc();  // shared model prep across batches

  ServeScratch local;
  ServeScratch& sc = scratch != nullptr ? *scratch : local;

  for (std::size_t start = 0; start < total;
       start += options.batch_size) {
    SNICIT_TRACE_SPAN("serve_batch", "stream");
    const std::size_t end = std::min(total, start + options.batch_size);
    // Slice the batch into the scratch slot (kSlice stays valid while the
    // engine cycles its own ping-pong slots) instead of materialising a
    // fresh matrix per batch.
    auto& batch = sc.ws.mat(platform::Workspace::kSlice, rows, end - start,
                            sparse::ZeroFill::kNo);
    for (std::size_t j = start; j < end; ++j) {
      std::copy_n(input.col(j), rows, batch.col(j - start));
    }

    platform::Stopwatch sw;
    engine.run_into(net, batch, sc.ws, sc.run);
    const auto& run = sc.run;
    const double ms = sw.elapsed_ms();
    result.batch_ms.push_back(ms);
    result.latency.add(ms);
    result.total_ms += ms;
    ++result.batches;
    if (platform::metrics::enabled()) {
      platform::metrics::MetricsRegistry::global()
          .counter("stream.batches_served")
          .add(1);
    }

    for (std::size_t j = start; j < end; ++j) {
      std::copy_n(run.output.col(j - start), keep, result.outputs.col(j));
    }
  }
  return result;
}

}  // namespace snicit::core
