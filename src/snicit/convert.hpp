// Cluster-based conversion, steps 3-4 (§3.2.2, Algorithm 2): map every
// non-centroid column of Y(t) to its L0-nearest centroid and replace it
// with the residue error, producing the compressed batch Ŷ(t).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/dense_matrix.hpp"

namespace snicit::core {

using sparse::DenseMatrix;
using sparse::Index;

/// The sparse representation SNICIT carries through post-convergence
/// layers: centroid columns stay dense, every other column holds only its
/// residue to the mapped centroid (Eq. 4).
struct CompressedBatch {
  DenseMatrix yhat;             // Ŷ, neurons x batch
  std::vector<Index> mapper;    // M: batch-sized; -1 marks a centroid
  std::vector<Index> centroids; // y*: sorted centroid column indices
  std::vector<std::uint8_t> ne_rec;  // per-column non-empty flags
  std::vector<Index> ne_idx;    // sorted indices of non-empty columns

  std::size_t batch() const { return mapper.size(); }
  bool is_centroid(std::size_t column) const {
    return mapper[column] == -1;
  }

  /// Rebuilds ne_idx from ne_rec (the serial pass of §3.3.2; cheap, so
  /// callers decide the refresh cadence via SnicitParams).
  void refresh_ne_idx();
};

/// Algorithm 2. `centroid_cols` are column indices of y (the pruning
/// survivors). Residue entries with |v| <= prune_threshold are zeroed
/// (§3.3.1 adjustment (1)); centroid columns are stored verbatim.
CompressedBatch convert_to_compressed(const DenseMatrix& y,
                                      const std::vector<Index>& centroid_cols,
                                      float prune_threshold);

/// Same, into a caller-owned batch (a workspace slot): every member is
/// reshaped capacity-preserving and fully overwritten, so repeated
/// conversions at a stable batch shape never allocate.
void convert_into(const DenseMatrix& y,
                  const std::vector<Index>& centroid_cols,
                  float prune_threshold, CompressedBatch& out);

}  // namespace snicit::core
