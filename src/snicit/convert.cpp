#include "snicit/convert.hpp"

#include <atomic>
#include <cmath>
#include <limits>

#include "platform/common.hpp"
#include "platform/fault_injection.hpp"
#include "platform/metrics.hpp"
#include "platform/thread_pool.hpp"
#include "platform/trace.hpp"

namespace snicit::core {

void CompressedBatch::refresh_ne_idx() {
  ne_idx.clear();
  for (std::size_t j = 0; j < ne_rec.size(); ++j) {
    if (ne_rec[j] != 0) ne_idx.push_back(static_cast<Index>(j));
  }
}

CompressedBatch convert_to_compressed(const DenseMatrix& y,
                                      const std::vector<Index>& centroid_cols,
                                      float prune_threshold) {
  CompressedBatch out;
  convert_into(y, centroid_cols, prune_threshold, out);
  return out;
}

void convert_into(const DenseMatrix& y,
                  const std::vector<Index>& centroid_cols,
                  float prune_threshold, CompressedBatch& out) {
  SNICIT_CHECK(!centroid_cols.empty(), "need at least one centroid");
  SNICIT_TRACE_SPAN("convert_to_compressed", "snicit");
  const std::size_t n = y.rows();
  const std::size_t b = y.cols();
  // Conversion-time workload counter (residue entries the prune threshold
  // zeroed in Algorithm 2); gated so disabled runs skip the bookkeeping.
  const bool count_pruned = platform::metrics::enabled();
  std::atomic<std::size_t> pruned_total{0};

  // Every member is reshaped capacity-preserving and fully overwritten
  // (every yhat column is written below), so a reused batch stops
  // allocating once warm.
  out.yhat.reset(n, b, sparse::ZeroFill::kNo);
  out.mapper.assign(b, 0);
  out.centroids = centroid_cols;
  out.ne_rec.assign(b, 0);

  // Pre-mark centroids with -1 (Algorithm 2 precondition). Thread-local
  // so the flag array's capacity survives across conversions; the
  // parallel loop below must read it through the captured pointer — a
  // worker thread naming the thread_local directly would get its own
  // (empty) instance.
  static thread_local std::vector<std::uint8_t> is_cent_tls;
  is_cent_tls.assign(b, 0);
  for (Index c : centroid_cols) {
    SNICIT_CHECK(c >= 0 && static_cast<std::size_t>(c) < b,
                 "centroid column out of range");
    is_cent_tls[static_cast<std::size_t>(c)] = 1;
  }
  const std::uint8_t* const is_cent = is_cent_tls.data();

  platform::parallel_for_ranges(0, b, [&](std::size_t lo, std::size_t hi) {
    std::size_t pruned = 0;
    for (std::size_t j = lo; j < hi; ++j) {
      const float* src = y.col(j);
      float* dst = out.yhat.col(j);
      if (is_cent[j]) {
        // Centroid columns are carried verbatim and always non-empty.
        std::copy_n(src, n, dst);
        out.mapper[j] = -1;
        out.ne_rec[j] = 1;
        continue;
      }
      // Nearest centroid by L0 norm of the difference (Eq. 3): the count
      // of element positions whose values differ. Ties keep the first
      // (lowest-index) centroid, like the sequential scan in Algorithm 2.
      std::size_t best_dist = n + 1;
      Index best = centroid_cols.front();
      for (Index c : centroid_cols) {
        const float* cent = y.col(static_cast<std::size_t>(c));
        std::size_t dist = 0;
        for (std::size_t r = 0; r < n; ++r) {
          if (cent[r] != src[r]) ++dist;
        }
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      // Residue error column (Eq. 4), with near-zero pruning.
      const float* cent = y.col(static_cast<std::size_t>(best));
      bool non_empty = false;
      for (std::size_t r = 0; r < n; ++r) {
        float v = src[r] - cent[r];
        if (std::fabs(v) <= prune_threshold) {
          if (count_pruned) pruned += (v != 0.0f);
          v = 0.0f;
        }
        dst[r] = v;
        non_empty |= (v != 0.0f);
      }
      out.mapper[j] = best;
      out.ne_rec[j] = non_empty ? 1 : 0;
    }
    if (pruned != 0) {
      pruned_total.fetch_add(pruned, std::memory_order_relaxed);
    }
  });

  out.refresh_ne_idx();
  // Injected conversion corruption (drills): poison the first residue
  // column so the engine's post-conversion sanity scan must catch it.
  if (platform::fault::should_fire("convert_nan")) {
    for (std::size_t j = 0; j < b; ++j) {
      if (out.mapper[j] != -1) {
        out.yhat.col(j)[0] = std::numeric_limits<float>::quiet_NaN();
        break;
      }
    }
  }
  if (count_pruned) {
    auto& registry = platform::metrics::MetricsRegistry::global();
    registry.counter("snicit.conversion_pruned")
        .add(static_cast<std::int64_t>(
            pruned_total.load(std::memory_order_relaxed)));
  }
}

}  // namespace snicit::core
