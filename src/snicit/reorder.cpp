#include "snicit/reorder.hpp"

#include <algorithm>

#include "platform/common.hpp"

namespace snicit::core {

bool BatchPermutation::is_identity() const {
  for (std::size_t i = 0; i < forward.size(); ++i) {
    if (forward[i] != static_cast<Index>(i)) return false;
  }
  return true;
}

BatchPermutation cluster_order(const CompressedBatch& batch) {
  const std::size_t b = batch.batch();
  BatchPermutation perm;
  perm.forward.reserve(b);

  // Centroids in ascending order, each followed by its residues.
  for (Index cent : batch.centroids) {
    perm.forward.push_back(cent);
    for (std::size_t j = 0; j < b; ++j) {
      if (batch.mapper[j] == cent) {
        perm.forward.push_back(static_cast<Index>(j));
      }
    }
  }
  SNICIT_CHECK(perm.forward.size() == b,
               "cluster_order must cover every column exactly once");

  perm.inverse.assign(b, 0);
  for (std::size_t j = 0; j < b; ++j) {
    perm.inverse[static_cast<std::size_t>(perm.forward[j])] =
        static_cast<Index>(j);
  }
  return perm;
}

DenseMatrix permute_columns(const DenseMatrix& y,
                            const BatchPermutation& perm) {
  SNICIT_CHECK(perm.size() == y.cols(), "permutation size mismatch");
  DenseMatrix out(y.rows(), y.cols());
  for (std::size_t j = 0; j < y.cols(); ++j) {
    std::copy_n(y.col(static_cast<std::size_t>(perm.forward[j])), y.rows(),
                out.col(j));
  }
  return out;
}

DenseMatrix unpermute_columns(const DenseMatrix& y,
                              const BatchPermutation& perm) {
  SNICIT_CHECK(perm.size() == y.cols(), "permutation size mismatch");
  DenseMatrix out(y.rows(), y.cols());
  for (std::size_t j = 0; j < y.cols(); ++j) {
    std::copy_n(y.col(j), y.rows(),
                out.col(static_cast<std::size_t>(perm.forward[j])));
  }
  return out;
}

CompressedBatch permute_batch(const CompressedBatch& batch,
                              const BatchPermutation& perm) {
  SNICIT_CHECK(perm.size() == batch.batch(), "permutation size mismatch");
  CompressedBatch out;
  out.yhat = permute_columns(batch.yhat, perm);
  out.mapper.resize(batch.batch());
  out.ne_rec.resize(batch.batch());
  for (std::size_t j = 0; j < batch.batch(); ++j) {
    const auto old = static_cast<std::size_t>(perm.forward[j]);
    const Index old_target = batch.mapper[old];
    out.mapper[j] =
        old_target == -1
            ? -1
            : perm.inverse[static_cast<std::size_t>(old_target)];
    out.ne_rec[j] = batch.ne_rec[old];
  }
  out.centroids.reserve(batch.centroids.size());
  for (Index cent : batch.centroids) {
    out.centroids.push_back(
        perm.inverse[static_cast<std::size_t>(cent)]);
  }
  std::sort(out.centroids.begin(), out.centroids.end());
  out.refresh_ne_idx();
  return out;
}

}  // namespace snicit::core
