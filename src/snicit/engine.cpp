#include "snicit/engine.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "platform/common.hpp"
#include "platform/error.hpp"
#include "platform/metrics.hpp"
#include "platform/timer.hpp"
#include "platform/trace.hpp"
#include "snicit/adaptive_prune.hpp"
#include "snicit/convergence.hpp"
#include "snicit/postconv.hpp"
#include "snicit/recovery.hpp"
#include "snicit/sample_prune.hpp"
#include "snicit/sampling.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmm_policy.hpp"

namespace snicit::core {

namespace {

// Stage/diagnostic names longer than the small-string buffer, interned
// once so the hot path never builds a heap-allocated temporary key.
const std::string kStagePostConvergence = "post-convergence";
const std::string kDiagConversionResidueNnz = "conversion_residue_nnz";
const std::string kDiagFinalNeColumns = "final_ne_columns";

/// Activation density over a fixed 16-column probe prefix (inputs are
/// shuffled, so a prefix is an unbiased sample) — the cost-model input.
double probe_density(const dnn::DenseMatrix& y) {
  sparse::Index probe[16];
  const std::size_t n = std::min<std::size_t>(y.cols(), 16);
  for (std::size_t j = 0; j < n; ++j) {
    probe[j] = static_cast<sparse::Index>(j);
  }
  return sparse::estimate_column_density(
      y, std::span<const sparse::Index>(probe, n));
}

sparse::SpmmVariant pre_convergence_step(const dnn::SparseDnn& net,
                                         std::size_t layer,
                                         const sparse::SpmmPolicy& policy,
                                         const dnn::DenseMatrix& in,
                                         dnn::DenseMatrix& out) {
  // Bias + clipped ReLU fused into the kernel's store (bit-identical to
  // the split multiply + epilogue pass, applied per element after its
  // accumulation completes).
  const sparse::BiasAct epi{net.bias(layer), 0.0f, net.ymax()};
  return sparse::spmm_dispatch_fused(net.weight(layer),
                                     &net.weight_csc(layer), in, out,
                                     probe_density(in), epi, policy);
}

std::size_t count_non_empty(const std::vector<std::uint8_t>& ne_rec) {
  std::size_t n = 0;
  for (std::uint8_t flag : ne_rec) n += flag;
  return n;
}

/// One-time sanity scan of a freshly converted batch: residues are
/// differences of clipped values and centroids are clipped values, so
/// every entry satisfies |v| <= ymax; NaN fails the comparison. Scans all
/// columns (not just ne_idx) because a corrupt entry in a column the
/// load-reduced spMM skips would otherwise surface only at recovery.
bool batch_within_bounds(const CompressedBatch& batch, float ymax) {
  const std::size_t n = batch.yhat.rows();
  for (std::size_t j = 0; j < batch.yhat.cols(); ++j) {
    const float* col = batch.yhat.col(j);
    for (std::size_t r = 0; r < n; ++r) {
      if (!(std::fabs(col[r]) <= ymax)) return false;
    }
  }
  return true;
}

}  // namespace

SnicitEngine::SnicitEngine(SnicitParams params) : params_(params) {
  // Params come from callers/CLI flags the process does not control, so
  // violations are typed kBadInput errors, not invariant aborts.
  const auto reject = [](const char* message) {
    throw platform::ErrorException(platform::ErrorCode::kBadInput,
                                   std::string("SnicitEngine: ") + message);
  };
  if (params_.sample_size < 1) reject("sample_size must be >= 1");
  if (params_.ne_refresh_interval < 1) {
    reject("ne_refresh_interval must be >= 1");
  }
  if (!(params_.prune_threshold >= 0.0f)) {
    reject("prune_threshold must be non-negative");
  }
  if (params_.reconvert_interval < 0) {
    reject("reconvert_interval must be non-negative");
  }
}

dnn::RunResult SnicitEngine::run(const dnn::SparseDnn& net,
                                 const dnn::DenseMatrix& input) {
  dnn::RunResult result;
  run_into(net, input, ws_, result);
  return result;
}

void SnicitEngine::run_into(const dnn::SparseDnn& net,
                            const dnn::DenseMatrix& input,
                            platform::Workspace& ws,
                            dnn::RunResult& result) {
  SNICIT_TRACE_SPAN("snicit.run", "engine");
  const auto layers = net.num_layers();
  const int t_bound = std::clamp<int>(params_.threshold_layer, 0,
                                      static_cast<int>(layers));

  // Model preparation (format mirrors) happens before the clock starts,
  // like the paper's device-side model upload. The CSC mirror is always
  // built: the auto-selecting kernel policy may pick a scatter arm on any
  // layer once activations go sparse.
  net.ensure_csc();
  const sparse::SpmmPolicy pre_policy =
      effective_spmm_policy(params_.pre_kernel, params_.spmm);
  const sparse::SpmmPolicy post_policy =
      effective_spmm_policy(params_.post_kernel, params_.spmm);

  result.begin_run();
  const std::size_t rows = input.rows();
  const std::size_t batch_cols = input.cols();
  result.layer_ms.reserve(layers);
  // Reset the trace in place: its vectors keep their capacity across runs.
  trace_.threshold_layer = -1;
  trace_.centroid_count = 0;
  trace_.ne_count.clear();
  trace_.compressed_nnz.clear();
  trace_.change_fraction.clear();
  trace_.fallback_layer = -1;

  // Per-layer workload instruments (§4's Figs. 6-8 are plots of exactly
  // these). Looked up once per run; null when metrics are off so the
  // per-layer hot path pays a single branch.
  namespace metrics = platform::metrics;
  metrics::Series* active_series = nullptr;
  metrics::Series* nnz_series = nullptr;
  metrics::Series* pruned_series = nullptr;
  metrics::Series* spmm_cols_series = nullptr;
  metrics::Counter* pruned_counter = nullptr;
  if (metrics::enabled()) {
    auto& registry = metrics::MetricsRegistry::global();
    active_series = &registry.series("snicit.active_columns");
    nnz_series = &registry.series("snicit.compressed_nnz");
    pruned_series = &registry.series("snicit.pruned_residues");
    spmm_cols_series = &registry.series("snicit.spmm_columns");
    pruned_counter = &registry.counter("snicit.pruned_residues_total");
  }

  // --- Stage 1: pre-convergence sparse matrix multiplication (§3.1) ---
  std::optional<platform::trace::TraceSpan> stage_span;
  stage_span.emplace("pre-convergence", "snicit");
  platform::Stopwatch stage;
  auto& ping = ws.mat(platform::Workspace::kPing, rows, batch_cols,
                      sparse::ZeroFill::kNo);
  std::copy_n(input.data(), rows * batch_cols, ping.data());
  auto& pong = ws.mat(platform::Workspace::kPong, rows, batch_cols,
                      sparse::ZeroFill::kNo);
  dnn::DenseMatrix* cur = &ping;
  dnn::DenseMatrix* nxt = &pong;
  ConvergenceDetector detector(params_.auto_level, params_.eta);
  int t = t_bound;
  for (int i = 0; i < t_bound; ++i) {
    SNICIT_TRACE_SPAN("pre_layer", "snicit");
    platform::Stopwatch layer;
    pre_convergence_step(net, static_cast<std::size_t>(i), pre_policy, *cur,
                         *nxt);
    std::swap(cur, nxt);
    result.layer_ms.push_back(layer.elapsed_ms());
    if (active_series != nullptr) {
      // Pre-convergence carries the batch dense: every column is active
      // and every column is multiplied.
      const auto idx = static_cast<std::size_t>(i);
      active_series->record(idx, static_cast<double>(cur->cols()));
      spmm_cols_series->record(idx, static_cast<double>(cur->cols()));
      nnz_series->record(idx, static_cast<double>(cur->count_nonzeros()));
      pruned_series->record(idx, 0.0);
    }
    if (params_.auto_threshold) {
      const bool done = detector.observe(*cur);
      if (params_.record_trace) {
        trace_.change_fraction.push_back(detector.last_distance());
      }
      if (done) {
        t = i + 1;  // converged: stop pre-convergence early
        break;
      }
    }
  }
  result.stages.add("pre-convergence", stage.elapsed_ms());

  stage_span.reset();

  if (static_cast<std::size_t>(t) >= layers) {
    // No post-convergence layers remain: t is clamped to [0, layers], so
    // t == layers here and the feed-forward is already complete — nothing
    // to compress (the t = l corner of the Figure 8 sweep).
    result.stages.add("conversion", 0.0);
    result.stages.add(kStagePostConvergence, 0.0);
    result.stages.add("recovery", 0.0);
    result.output.reset(rows, batch_cols, sparse::ZeroFill::kNo);
    std::copy_n(cur->data(), rows * batch_cols, result.output.data());
    trace_.threshold_layer = t;
    result.diagnostics["threshold_layer"] = t;
    result.diagnostics["centroids"] = 0.0;
    result.diagnostics.erase("fallback_layer");
    if (metrics::enabled()) {
      auto& registry = metrics::MetricsRegistry::global();
      registry.gauge("snicit.threshold_layer").set(t);
      registry.gauge("snicit.centroids").set(0.0);
    }
    ws.mark_warm();
    return;
  }

  // --- Stage 2: cluster-based conversion (§3.2) ---
  stage_span.emplace("conversion", "snicit");
  stage.reset();
  auto& f = ws.mat(platform::Workspace::kSample);
  build_sample_matrix_into(*cur, params_.sample_size, params_.downsample_dim,
                           f);
  auto& centroid_cols = ws.vec(platform::Workspace::kAux);
  prune_samples_into(f, params_.eta, params_.epsilon, centroid_cols);
  float prune = params_.prune_threshold;
  CompressedBatch& batch = ws.state<CompressedBatch>();
  convert_into(*cur, centroid_cols, prune, batch);
  if (params_.adaptive_prune_target > 0.0) {
    // Derive the threshold from the initial residues, then re-apply it to
    // the freshly converted batch (cheap: one elementwise pass).
    prune = choose_prune_threshold(batch, params_.adaptive_prune_target);
    if (prune > 0.0f) {
      convert_into(*cur, centroid_cols, prune, batch);
    }
  }
  result.stages.add("conversion", stage.elapsed_ms());
  stage_span.reset();
  trace_.threshold_layer = t;
  trace_.centroid_count = centroid_cols.size();
  // Residue mass right after conversion: nonzeros across the non-centroid
  // columns of Ŷ. This is the quantity intra-batch similarity shrinks —
  // look-alike columns land near their centroid, so batch packing quality
  // shows up here before it shows up in layer timings.
  std::size_t residue_nnz = 0;
  for (std::size_t j = 0; j < batch.batch(); ++j) {
    if (!batch.is_centroid(j)) residue_nnz += batch.yhat.column_nonzeros(j);
  }
  result.diagnostics[kDiagConversionResidueNnz] =
      static_cast<double>(residue_nnz);
  if (metrics::enabled()) {
    auto& registry = metrics::MetricsRegistry::global();
    registry.gauge("snicit.threshold_layer").set(t);
    registry.gauge("snicit.centroids")
        .set(static_cast<double>(centroid_cols.size()));
    registry.gauge("snicit.conversion_residue_nnz")
        .set(static_cast<double>(residue_nnz));
  }

  // --- Stage 3: post-convergence update (§3.3) ---
  // `*cur` still holds the dense Y(t) the batch was converted from;
  // nothing below writes it, so it doubles as the divergence-guard
  // checkpoint: a fallback recomputes layers t..l-1 from it on the dense
  // baseline path, bit-identical to the serial reference.
  stage_span.emplace("post-convergence", "snicit");
  stage.reset();
  // The spMM target: the update kernel only reads the columns listed in
  // ne_idx (plus their centroid columns, which are always non-empty), and
  // the load-reduced spMM writes exactly those columns first — so the
  // buffer never needs zeroing.
  auto& scratch = ws.mat(platform::Workspace::kScratch, rows, batch_cols,
                         sparse::ZeroFill::kNo);
  int since_refresh = 0;
  int since_reconvert = 0;
  int fallback_from = -1;  // layer where the divergence guard fired
  if (params_.divergence_guard && !batch_within_bounds(batch, net.ymax())) {
    // Conversion itself produced a corrupt compressed batch.
    fallback_from = t;
  }
  for (std::size_t i = static_cast<std::size_t>(t);
       fallback_from < 0 && i < layers; ++i) {
    platform::Stopwatch layer;
    const std::size_t spmm_columns = batch.ne_idx.size();
    bool diverged = false;
    // The update math stays split by design: Eq. (5) needs the *raw*
    // multiply of the centroid column twice (with and without the
    // residue), so the bias/clip cannot be folded into the spMM store.
    const std::size_t pruned = post_convergence_layer(
        net.weight(i), &net.weight_csc(i), net.bias(i), net.ymax(), prune,
        batch, scratch, post_policy,
        params_.divergence_guard ? &diverged : nullptr);
    if (diverged) {
      fallback_from = static_cast<int>(i);
      break;
    }
    if (active_series != nullptr) {
      active_series->record(i, static_cast<double>(
                                   count_non_empty(batch.ne_rec)));
      spmm_cols_series->record(i, static_cast<double>(spmm_columns));
      nnz_series->record(i,
                         static_cast<double>(batch.yhat.count_nonzeros()));
      pruned_series->record(i, static_cast<double>(pruned));
      pruned_counter->add(static_cast<std::int64_t>(pruned));
    }
    if (++since_refresh >= params_.ne_refresh_interval) {
      batch.refresh_ne_idx();
      since_refresh = 0;
    }
    if (params_.reconvert_interval > 0 &&
        ++since_reconvert >= params_.reconvert_interval &&
        i + 1 < layers) {
      // Optional re-clustering (§3.2.2 discusses and rejects this):
      // recover the dense batch, pick fresh centroids, convert again.
      // Off by default, so this arm keeps the simpler value-returning
      // calls (it allocates per reconversion).
      const dnn::DenseMatrix dense = recover_results(batch);
      const dnn::DenseMatrix fr = build_sample_matrix(
          dense, params_.sample_size, params_.downsample_dim);
      prune_samples_into(fr, params_.eta, params_.epsilon, centroid_cols);
      convert_into(dense, centroid_cols, prune, batch);
      since_reconvert = 0;
      since_refresh = 0;
    }
    result.layer_ms.push_back(layer.elapsed_ms());
    if (params_.record_trace) {
      trace_.ne_count.push_back(batch.ne_idx.size());
      trace_.compressed_nnz.push_back(batch.yhat.count_nonzeros());
    }
  }
  result.stages.add(kStagePostConvergence, stage.elapsed_ms());
  stage_span.reset();

  if (fallback_from >= 0) {
    // --- Graceful degradation: exact dense fallback ---
    // The compressed state is corrupt (NaN/inf/out-of-bound, e.g. from a
    // faulty kernel); discard it and recompute layers t..l-1 from the
    // checkpointed Y(t) on the dense baseline path. The result is
    // bit-identical to the serial reference — slower, never wrong.
    stage_span.emplace("fallback", "snicit");
    stage.reset();
    result.layer_ms.resize(static_cast<std::size_t>(t));
    trace_.ne_count.clear();
    trace_.compressed_nnz.clear();
    for (std::size_t i = static_cast<std::size_t>(t); i < layers; ++i) {
      platform::Stopwatch layer;
      // The last layer writes straight into the caller's result.
      dnn::DenseMatrix* dst = nxt;
      if (i + 1 == layers) {
        result.output.reset(rows, batch_cols, sparse::ZeroFill::kNo);
        dst = &result.output;
      }
      pre_convergence_step(net, i, pre_policy, *cur, *dst);
      if (i + 1 < layers) std::swap(cur, nxt);
      result.layer_ms.push_back(layer.elapsed_ms());
      if (active_series != nullptr) {
        // Dense again: every column active and multiplied.
        active_series->record(i, static_cast<double>(dst->cols()));
        spmm_cols_series->record(i, static_cast<double>(dst->cols()));
        nnz_series->record(i, static_cast<double>(dst->count_nonzeros()));
        pruned_series->record(i, 0.0);
      }
    }
    result.stages.add("fallback", stage.elapsed_ms());
    stage_span.reset();
    result.stages.add("recovery", 0.0);  // output is already dense
    trace_.fallback_layer = fallback_from;
    result.fallback_layer = fallback_from;
    result.diagnostics["threshold_layer"] = t;
    result.diagnostics["centroids"] =
        static_cast<double>(centroid_cols.size());
    result.diagnostics["fallback_layer"] = fallback_from;
    result.diagnostics["prune_threshold"] = static_cast<double>(prune);
    if (metrics::enabled()) {
      auto& registry = metrics::MetricsRegistry::global();
      registry.counter("snicit.fallbacks").add(1);
      registry.gauge("snicit.fallback_layer").set(fallback_from);
    }
    ws.mark_warm();
    return;
  }

  // --- Stage 4: final results recovery (§3.4) ---
  stage_span.emplace("recovery", "snicit");
  stage.reset();
  recover_into(batch, result.output);
  result.stages.add("recovery", stage.elapsed_ms());
  stage_span.reset();

  result.diagnostics["threshold_layer"] = t;
  result.diagnostics["centroids"] =
      static_cast<double>(centroid_cols.size());
  result.diagnostics[kDiagFinalNeColumns] =
      static_cast<double>(batch.ne_idx.size());
  result.diagnostics["prune_threshold"] = static_cast<double>(prune);
  // A reused result may carry the verdict of an earlier degraded run;
  // absence of this key is what "clean run" means to callers. The key is
  // within the small-string buffer, so the lookup never allocates.
  result.diagnostics.erase("fallback_layer");
  ws.mark_warm();
}

}  // namespace snicit::core
