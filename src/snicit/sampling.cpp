#include "snicit/sampling.hpp"

#include <algorithm>

#include "platform/common.hpp"
#include "platform/trace.hpp"
#include "platform/thread_pool.hpp"

namespace snicit::core {

DenseMatrix build_sample_matrix(const DenseMatrix& y, int s, int n) {
  DenseMatrix f;
  build_sample_matrix_into(y, s, n, f);
  return f;
}

void build_sample_matrix_into(const DenseMatrix& y, int s, int n,
                              DenseMatrix& f) {
  SNICIT_TRACE_SPAN("build_sample_matrix", "snicit");
  SNICIT_CHECK(s >= 1, "sample size must be >= 1");
  const std::size_t cols = std::min<std::size_t>(y.cols(),
                                                 static_cast<std::size_t>(s));
  const bool downsample =
      n > 0 && static_cast<std::size_t>(n) < y.rows();
  const std::size_t dim = downsample ? static_cast<std::size_t>(n) : y.rows();

  // Every element below is written, so skip the zero fill.
  f.reset(dim, cols, sparse::ZeroFill::kNo);
  if (!downsample) {
    platform::parallel_for(0, cols, [&](std::size_t j) {
      std::copy_n(y.col(j), y.rows(), f.col(j));
    });
    return;
  }

  // Sum downsampling: split each column into n segments of ~N/n elements
  // and store each segment's sum (Figure 3a). The tail segment absorbs the
  // remainder when n does not divide N.
  const std::size_t seg = y.rows() / dim;
  platform::parallel_for(0, cols, [&](std::size_t j) {
    const float* src = y.col(j);
    float* dst = f.col(j);
    for (std::size_t k = 0; k < dim; ++k) {
      const std::size_t lo = k * seg;
      const std::size_t hi = (k + 1 == dim) ? y.rows() : lo + seg;
      float sum = 0.0f;
      for (std::size_t r = lo; r < hi; ++r) sum += src[r];
      dst[k] = sum;
    }
  });
}

}  // namespace snicit::core
