#include "snicit/warm_cache.hpp"

#include <algorithm>
#include <cmath>

#include "platform/common.hpp"
#include "platform/thread_pool.hpp"
#include "dnn/reference.hpp"
#include "platform/timer.hpp"
#include "snicit/engine.hpp"
#include "snicit/postconv.hpp"
#include "snicit/recovery.hpp"
#include "snicit/sample_prune.hpp"
#include "snicit/sampling.hpp"
#include "snicit/snapshot.hpp"
#include "sparse/spmm.hpp"

namespace snicit::core {

CompressedBatch convert_with_cache(const DenseMatrix& y,
                                   const CentroidCache& cache,
                                   float prune_threshold) {
  SNICIT_CHECK(!cache.empty(), "centroid cache is empty");
  SNICIT_CHECK(cache.columns.rows() == y.rows(),
               "cache dimensionality mismatch");
  const std::size_t b = y.cols();
  const std::size_t k = cache.size();
  const std::size_t n = y.rows();

  // Extended batch: original columns followed by the cached centroids.
  DenseMatrix extended(n, b + k);
  for (std::size_t j = 0; j < b; ++j) {
    std::copy_n(y.col(j), n, extended.col(j));
  }
  std::vector<Index> centroid_cols;
  centroid_cols.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    std::copy_n(cache.columns.col(c), n, extended.col(b + c));
    centroid_cols.push_back(static_cast<Index>(b + c));
  }
  return convert_to_compressed(extended, centroid_cols, prune_threshold);
}

WarmSnicitEngine::WarmSnicitEngine(SnicitParams params) : params_(params) {
  SNICIT_CHECK(!params_.auto_threshold,
               "WarmSnicitEngine pins t; auto_threshold unsupported");
}

platform::Result<void> WarmSnicitEngine::save_state(
    const std::string& path) const {
  if (!cache_.has_value()) {
    return platform::Error{platform::ErrorCode::kBadInput,
                           "warm-state save: engine has not served a "
                           "batch yet (nothing to snapshot)"};
  }
  WarmStateSnapshot state;
  state.threshold_layer =
      static_cast<std::uint32_t>(std::max(params_.threshold_layer, 0));
  state.centroids = cache_->columns;
  return save_warm_state(path, state);
}

platform::Result<void> WarmSnicitEngine::restore_state(
    const std::string& path, std::size_t expected_neurons) {
  auto state = load_warm_state(path);
  if (!state.ok()) return state.error();
  // Validate *here*, with typed errors, rather than letting a mismatched
  // cache reach convert_with_cache's SNICIT_CHECK (which aborts). A
  // snapshot from a different model/tuning is "stale", and stale means
  // cold-start, never crash.
  const auto t =
      static_cast<std::uint32_t>(std::max(params_.threshold_layer, 0));
  if (state.value().threshold_layer != t) {
    return platform::Error{
        platform::ErrorCode::kBadModelFile,
        "warm-state snapshot '" + path + "' was captured at threshold "
        "layer " + std::to_string(state.value().threshold_layer) +
            " but this engine pins t=" + std::to_string(t)};
  }
  if (expected_neurons != 0 &&
      state.value().centroids.rows() != expected_neurons) {
    return platform::Error{
        platform::ErrorCode::kBadModelFile,
        "warm-state snapshot '" + path + "' has " +
            std::to_string(state.value().centroids.rows()) +
            " neurons but the network has " +
            std::to_string(expected_neurons)};
  }
  CentroidCache cache;
  cache.columns = std::move(state).value().centroids;
  cache_ = std::move(cache);
  return {};
}

dnn::RunResult WarmSnicitEngine::run(const dnn::SparseDnn& net,
                                     const dnn::DenseMatrix& input) {
  const auto layers = net.num_layers();
  const auto t = static_cast<std::size_t>(
      std::clamp<int>(params_.threshold_layer, 0, static_cast<int>(layers)));

  if (!cache_.has_value()) {
    // Cold run: delegate to the ordinary engine, then capture the
    // centroid columns of Y(t) for future batches.
    SnicitEngine cold(params_);
    auto result = cold.run(net, input);
    const auto y_t = dnn::reference_forward(net, input, 0, t);
    const auto f =
        build_sample_matrix(y_t, params_.sample_size, params_.downsample_dim);
    const auto centroid_cols =
        prune_samples(f, params_.eta, params_.epsilon);
    CentroidCache cache;
    cache.columns.reset(y_t.rows(), centroid_cols.size());
    for (std::size_t c = 0; c < centroid_cols.size(); ++c) {
      std::copy_n(y_t.col(static_cast<std::size_t>(centroid_cols[c])),
                  y_t.rows(), cache.columns.col(c));
    }
    cache_ = std::move(cache);
    result.diagnostics["warm"] = 0.0;
    return result;
  }

  // Warm run: pre-convergence, then map straight onto cached centroids.
  // CSC is always mirrored — the auto policy may pick a scatter arm.
  net.ensure_csc();
  const sparse::SpmmPolicy pre_policy =
      effective_spmm_policy(params_.pre_kernel, params_.spmm);
  dnn::RunResult result;
  platform::Stopwatch stage;
  dnn::DenseMatrix cur = input;
  dnn::DenseMatrix next(input.rows(), input.cols());
  for (std::size_t i = 0; i < t; ++i) {
    platform::Stopwatch layer;
    sparse::Index probe[16];
    const std::size_t probe_n = std::min<std::size_t>(cur.cols(), 16);
    for (std::size_t j = 0; j < probe_n; ++j) {
      probe[j] = static_cast<sparse::Index>(j);
    }
    const double density = sparse::estimate_column_density(
        cur, std::span<const sparse::Index>(probe, probe_n));
    // Bias + clipped ReLU fused into the kernel's store (bit-identical
    // to the split multiply + epilogue pass).
    const sparse::BiasAct epi{net.bias(i), 0.0f, net.ymax()};
    sparse::spmm_dispatch_fused(net.weight(i), &net.weight_csc(i), cur,
                                next, density, epi, pre_policy);
    std::swap(cur, next);
    result.layer_ms.push_back(layer.elapsed_ms());
  }
  result.stages.add("pre-convergence", stage.elapsed_ms());

  stage.reset();
  CompressedBatch batch =
      convert_with_cache(cur, *cache_, params_.prune_threshold);
  result.stages.add("conversion", stage.elapsed_ms());

  stage.reset();
  dnn::DenseMatrix scratch(batch.yhat.rows(), batch.yhat.cols());
  const sparse::SpmmPolicy post_policy =
      effective_spmm_policy(params_.post_kernel, params_.spmm);
  int since_refresh = 0;
  for (std::size_t i = t; i < layers; ++i) {
    platform::Stopwatch layer;
    post_convergence_layer(net.weight(i), &net.weight_csc(i), net.bias(i),
                           net.ymax(), params_.prune_threshold, batch,
                           scratch, post_policy);
    if (++since_refresh >= params_.ne_refresh_interval) {
      batch.refresh_ne_idx();
      since_refresh = 0;
    }
    result.layer_ms.push_back(layer.elapsed_ms());
  }
  result.stages.add("post-convergence", stage.elapsed_ms());

  stage.reset();
  const auto recovered = recover_results(batch);
  // Drop the appended centroid columns: only [0, B) belong to the caller.
  result.output.reset(input.rows(), input.cols());
  for (std::size_t j = 0; j < input.cols(); ++j) {
    std::copy_n(recovered.col(j), input.rows(), result.output.col(j));
  }
  result.stages.add("recovery", stage.elapsed_ms());

  result.diagnostics["warm"] = 1.0;
  result.diagnostics["centroids"] = static_cast<double>(cache_->size());
  result.diagnostics["threshold_layer"] = static_cast<double>(t);
  return result;
}

}  // namespace snicit::core
