#include "snicit/warm_cache.hpp"

#include <algorithm>
#include <cmath>

#include "platform/common.hpp"
#include "platform/thread_pool.hpp"
#include "dnn/reference.hpp"
#include "platform/timer.hpp"
#include "snicit/engine.hpp"
#include "snicit/postconv.hpp"
#include "snicit/recovery.hpp"
#include "snicit/sample_prune.hpp"
#include "snicit/sampling.hpp"
#include "sparse/spmm.hpp"

namespace snicit::core {

CompressedBatch convert_with_cache(const DenseMatrix& y,
                                   const CentroidCache& cache,
                                   float prune_threshold) {
  SNICIT_CHECK(!cache.empty(), "centroid cache is empty");
  SNICIT_CHECK(cache.columns.rows() == y.rows(),
               "cache dimensionality mismatch");
  const std::size_t b = y.cols();
  const std::size_t k = cache.size();
  const std::size_t n = y.rows();

  // Extended batch: original columns followed by the cached centroids.
  DenseMatrix extended(n, b + k);
  for (std::size_t j = 0; j < b; ++j) {
    std::copy_n(y.col(j), n, extended.col(j));
  }
  std::vector<Index> centroid_cols;
  centroid_cols.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    std::copy_n(cache.columns.col(c), n, extended.col(b + c));
    centroid_cols.push_back(static_cast<Index>(b + c));
  }
  return convert_to_compressed(extended, centroid_cols, prune_threshold);
}

WarmSnicitEngine::WarmSnicitEngine(SnicitParams params) : params_(params) {
  SNICIT_CHECK(!params_.auto_threshold,
               "WarmSnicitEngine pins t; auto_threshold unsupported");
}

dnn::RunResult WarmSnicitEngine::run(const dnn::SparseDnn& net,
                                     const dnn::DenseMatrix& input) {
  const auto layers = net.num_layers();
  const auto t = static_cast<std::size_t>(
      std::clamp<int>(params_.threshold_layer, 0, static_cast<int>(layers)));

  if (!cache_.has_value()) {
    // Cold run: delegate to the ordinary engine, then capture the
    // centroid columns of Y(t) for future batches.
    SnicitEngine cold(params_);
    auto result = cold.run(net, input);
    const auto y_t = dnn::reference_forward(net, input, 0, t);
    const auto f =
        build_sample_matrix(y_t, params_.sample_size, params_.downsample_dim);
    const auto centroid_cols =
        prune_samples(f, params_.eta, params_.epsilon);
    CentroidCache cache;
    cache.columns.reset(y_t.rows(), centroid_cols.size());
    for (std::size_t c = 0; c < centroid_cols.size(); ++c) {
      std::copy_n(y_t.col(static_cast<std::size_t>(centroid_cols[c])),
                  y_t.rows(), cache.columns.col(c));
    }
    cache_ = std::move(cache);
    result.diagnostics["warm"] = 0.0;
    return result;
  }

  // Warm run: pre-convergence, then map straight onto cached centroids.
  // CSC is always mirrored — the auto policy may pick a scatter arm.
  net.ensure_csc();
  const sparse::SpmmPolicy pre_policy =
      effective_spmm_policy(params_.pre_kernel, params_.spmm);
  dnn::RunResult result;
  platform::Stopwatch stage;
  dnn::DenseMatrix cur = input;
  dnn::DenseMatrix next(input.rows(), input.cols());
  for (std::size_t i = 0; i < t; ++i) {
    platform::Stopwatch layer;
    sparse::Index probe[16];
    const std::size_t probe_n = std::min<std::size_t>(cur.cols(), 16);
    for (std::size_t j = 0; j < probe_n; ++j) {
      probe[j] = static_cast<sparse::Index>(j);
    }
    const double density = sparse::estimate_column_density(
        cur, std::span<const sparse::Index>(probe, probe_n));
    sparse::spmm_dispatch(net.weight(i), &net.weight_csc(i), cur, next,
                          density, pre_policy);
    sparse::apply_bias_activation(next, net.bias(i), net.ymax());
    std::swap(cur, next);
    result.layer_ms.push_back(layer.elapsed_ms());
  }
  result.stages.add("pre-convergence", stage.elapsed_ms());

  stage.reset();
  CompressedBatch batch =
      convert_with_cache(cur, *cache_, params_.prune_threshold);
  result.stages.add("conversion", stage.elapsed_ms());

  stage.reset();
  dnn::DenseMatrix scratch(batch.yhat.rows(), batch.yhat.cols());
  const sparse::SpmmPolicy post_policy =
      effective_spmm_policy(params_.post_kernel, params_.spmm);
  int since_refresh = 0;
  for (std::size_t i = t; i < layers; ++i) {
    platform::Stopwatch layer;
    post_convergence_layer(net.weight(i), &net.weight_csc(i), net.bias(i),
                           net.ymax(), params_.prune_threshold, batch,
                           scratch, post_policy);
    if (++since_refresh >= params_.ne_refresh_interval) {
      batch.refresh_ne_idx();
      since_refresh = 0;
    }
    result.layer_ms.push_back(layer.elapsed_ms());
  }
  result.stages.add("post-convergence", stage.elapsed_ms());

  stage.reset();
  const auto recovered = recover_results(batch);
  // Drop the appended centroid columns: only [0, B) belong to the caller.
  result.output.reset(input.rows(), input.cols());
  for (std::size_t j = 0; j < input.cols(); ++j) {
    std::copy_n(recovered.col(j), input.rows(), result.output.col(j));
  }
  result.stages.add("recovery", stage.elapsed_ms());

  result.diagnostics["warm"] = 1.0;
  result.diagnostics["centroids"] = static_cast<double>(cache_->size());
  result.diagnostics["threshold_layer"] = static_cast<double>(t);
  return result;
}

}  // namespace snicit::core
