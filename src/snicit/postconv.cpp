#include "snicit/postconv.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "platform/common.hpp"
#include "platform/thread_pool.hpp"
#include "platform/trace.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmm_policy.hpp"

namespace snicit::core {

namespace {

inline float clip(float x, float ymax) {
  return std::min(std::max(x, 0.0f), ymax);
}

/// The Eq. (5)/Algorithm 3 update shared by both spMM front ends: one
/// block per non-empty column. Residue updates read the spMM result of
/// their centroid column; centroids are always non-empty, so their
/// scratch column is valid in the same pass. Returns how many residue
/// entries the prune threshold zeroed (nonzero values within threshold).
std::size_t update_centroids_and_residues(std::span<const float> bias,
                                          float ymax, float prune_threshold,
                                          CompressedBatch& batch,
                                          const DenseMatrix& scratch,
                                          bool* diverged) {
  const std::size_t n = batch.yhat.rows();
  std::atomic<std::size_t> pruned_total{0};
  std::atomic<bool> bad_any{false};
  platform::parallel_for_ranges(
      0, batch.ne_idx.size(), [&](std::size_t lo, std::size_t hi) {
        std::size_t pruned = 0;
        bool bad = false;
        for (std::size_t k = lo; k < hi; ++k) {
          const auto r = static_cast<std::size_t>(batch.ne_idx[k]);
          const float* SNICIT_RESTRICT mult = scratch.col(r);
          float* SNICIT_RESTRICT dst = batch.yhat.col(r);
          if (batch.mapper[r] == -1) {
            // Centroid: plain feed-forward (first case of Eq. (5)).
            for (std::size_t j = 0; j < n; ++j) {
              dst[j] = clip(mult[j] + bias[j], ymax);
              // clip() maps every finite/inf input into [0, ymax] but
              // passes NaN through, so one comparison flags corruption.
              bad |= !(dst[j] <= ymax);
            }
            batch.ne_rec[r] = 1;
            continue;
          }
          // Residue: second case of Eq. (5), then near-zero pruning.
          const float* SNICIT_RESTRICT cent =
              scratch.col(static_cast<std::size_t>(batch.mapper[r]));
          bool non_empty = false;
          for (std::size_t j = 0; j < n; ++j) {
            const float with_res = clip(cent[j] + mult[j] + bias[j], ymax);
            const float without = clip(cent[j] + bias[j], ymax);
            float v = with_res - without;
            // Both terms are clipped to [0, ymax], so |v| <= ymax in exact
            // arithmetic; NaN fails the comparison. Reuses the fabs the
            // prune test needs anyway, so the guard costs one compare.
            const float av = std::fabs(v);
            bad |= !(av <= ymax);
            if (av <= prune_threshold) {
              pruned += (v != 0.0f);  // a genuine value fell to the prune
              v = 0.0f;
            }
            dst[j] = v;
            non_empty |= (v != 0.0f);
          }
          batch.ne_rec[r] = non_empty ? 1 : 0;
        }
        if (pruned != 0) {
          pruned_total.fetch_add(pruned, std::memory_order_relaxed);
        }
        if (bad) bad_any.store(true, std::memory_order_relaxed);
      });
  if (diverged != nullptr) {
    *diverged = bad_any.load(std::memory_order_relaxed);
  }
  return pruned_total.load(std::memory_order_relaxed);
}

void check_shapes(std::span<const float> bias, const CompressedBatch& batch,
                  const DenseMatrix& scratch) {
  SNICIT_CHECK(bias.size() == batch.yhat.rows(), "bias size mismatch");
  SNICIT_CHECK(scratch.rows() == batch.yhat.rows() &&
                   scratch.cols() == batch.yhat.cols(),
               "scratch buffer shape mismatch");
}

}  // namespace

std::size_t post_convergence_layer(const CsrMatrix& w,
                                   std::span<const float> bias, float ymax,
                                   float prune_threshold,
                                   CompressedBatch& batch,
                                   DenseMatrix& scratch) {
  check_shapes(bias, batch, scratch);
  SNICIT_TRACE_SPAN("postconv_layer", "snicit");
  // Load-reduced spMM (§3.3.1): multiply only non-empty columns. Empty
  // residue columns stay empty under Eq. (5) — σ(c+0+b) − σ(c+b) = 0 — so
  // skipping them is exact, not an approximation.
  sparse::spmm_gather_cols(w, batch.yhat, batch.ne_idx, scratch);
  return update_centroids_and_residues(bias, ymax, prune_threshold, batch,
                                       scratch, nullptr);
}

std::size_t post_convergence_layer(const CscMatrix& w_csc,
                                   std::span<const float> bias, float ymax,
                                   float prune_threshold,
                                   CompressedBatch& batch,
                                   DenseMatrix& scratch) {
  check_shapes(bias, batch, scratch);
  SNICIT_TRACE_SPAN("postconv_layer", "snicit");
  // Scatter front end: additionally skips zero entries *inside* residue
  // columns, so the multiply cost tracks the compressed nnz, not the
  // non-empty column count alone.
  sparse::spmm_scatter_cols(w_csc, batch.yhat, batch.ne_idx, scratch);
  return update_centroids_and_residues(bias, ymax, prune_threshold, batch,
                                       scratch, nullptr);
}

std::size_t post_convergence_layer(const CsrMatrix& w,
                                   const CscMatrix* w_csc,
                                   std::span<const float> bias, float ymax,
                                   float prune_threshold,
                                   CompressedBatch& batch,
                                   DenseMatrix& scratch,
                                   const sparse::SpmmPolicy& policy,
                                   bool* diverged) {
  check_shapes(bias, batch, scratch);
  SNICIT_TRACE_SPAN("postconv_layer", "snicit");
  // Residue density drives the scatter-vs-gather arms; probe a prefix of
  // the non-empty columns (they are the only ones multiplied).
  const std::size_t probe_n =
      std::min<std::size_t>(batch.ne_idx.size(), 16);
  const double density = sparse::estimate_column_density(
      batch.yhat, std::span<const sparse::Index>(batch.ne_idx.data(),
                                                 probe_n));
  sparse::spmm_dispatch_cols(w, w_csc, batch.yhat, batch.ne_idx, scratch,
                             density, policy);
  return update_centroids_and_residues(bias, ymax, prune_threshold, batch,
                                       scratch, diverged);
}

}  // namespace snicit::core
