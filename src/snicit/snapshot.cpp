#include "snicit/snapshot.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "platform/checksum.hpp"
#include "platform/fault_injection.hpp"

namespace snicit::core {

namespace {

using platform::Error;
using platform::ErrorCode;
using platform::Result;

constexpr char kMagic[8] = {'S', 'N', 'I', 'C', 'I', 'T', 'S', '1'};
constexpr std::uint32_t kVersion = 1;
// A snapshot larger than this is corrupt dimensions, not a real cache:
// the serving nets top out far below 2^24 neurons and the centroid count
// is bounded by the sample size (tens, not millions).
constexpr std::uint64_t kMaxElements = 1ull << 31;

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
bool get(const std::vector<std::uint8_t>& in, std::size_t& at, T& value) {
  if (in.size() - at < sizeof(T)) return false;
  std::memcpy(&value, in.data() + at, sizeof(T));
  at += sizeof(T);
  return true;
}

Error snapshot_error(const std::string& path, const std::string& why) {
  return Error{ErrorCode::kBadModelFile,
               "warm-state snapshot '" + path + "': " + why};
}

}  // namespace

Result<void> save_warm_state(const std::string& path,
                             const WarmStateSnapshot& state) {
  if (state.centroids.cols() == 0 || state.centroids.rows() == 0) {
    return Error{ErrorCode::kBadInput,
                 "warm-state snapshot: no centroid columns to save"};
  }
  // Same OOM/ENOSPC drill as the journal's append path: the snapshot is
  // an optimisation, so resource pressure surfaces as a typed error the
  // caller logs and moves past — never a bad_alloc.
  if (platform::fault::should_fire("alloc_fail")) {
    return Error{ErrorCode::kResourceExhausted,
                 "injected alloc_fail at snapshot save"};
  }

  std::vector<std::uint8_t> body;
  const std::uint64_t rows = state.centroids.rows();
  const std::uint64_t cols = state.centroids.cols();
  body.reserve(24 + static_cast<std::size_t>(rows * cols) * sizeof(float));
  put<std::uint32_t>(body, kVersion);
  put<std::uint32_t>(body, state.threshold_layer);
  put<std::uint64_t>(body, rows);
  put<std::uint64_t>(body, cols);
  const auto* floats =
      reinterpret_cast<const std::uint8_t*>(state.centroids.data());
  body.insert(body.end(), floats,
              floats + static_cast<std::size_t>(rows * cols) * sizeof(float));
  put<std::uint32_t>(body, platform::crc32c(body.data(), body.size()));

  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Error{ErrorCode::kResourceExhausted,
                 "cannot create warm-state snapshot '" + path +
                     "': " + std::strerror(errno)};
  }
  bool ok = true;
  std::size_t done = 0;
  std::vector<std::uint8_t> file;
  file.reserve(sizeof(kMagic) + body.size());
  file.insert(file.end(), kMagic, kMagic + sizeof(kMagic));
  file.insert(file.end(), body.begin(), body.end());
  while (done < file.size()) {
    const ssize_t wrote = ::write(fd, file.data() + done, file.size() - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    done += static_cast<std::size_t>(wrote);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  ::close(fd);
  if (!ok) {
    return Error{ErrorCode::kResourceExhausted,
                 "error writing warm-state snapshot '" + path +
                     "': " + std::strerror(errno)};
  }
  return {};
}

Result<WarmStateSnapshot> load_warm_state(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return snapshot_error(path, "cannot open");
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(chunk, 1, sizeof(chunk), file);
    bytes.insert(bytes.end(), chunk, chunk + got);
    if (got < sizeof(chunk)) break;
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return snapshot_error(path, "read error");
  }
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return snapshot_error(path, "bad magic (not a warm-state snapshot)");
  }

  // Checksum first: one CRC over the whole body catches truncation and
  // bit rot alike, before any field is trusted.
  const std::size_t body_begin = sizeof(kMagic);
  if (bytes.size() < body_begin + sizeof(std::uint32_t)) {
    return snapshot_error(path, "truncated (no checksum)");
  }
  const std::size_t crc_at = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + crc_at, sizeof(stored_crc));
  const std::uint32_t actual_crc =
      platform::crc32c(bytes.data() + body_begin, crc_at - body_begin);
  if (stored_crc != actual_crc) {
    return snapshot_error(path, "checksum mismatch (truncated or corrupt)");
  }

  std::size_t at = body_begin;
  std::uint32_t version = 0;
  std::uint32_t threshold_layer = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  if (!get(bytes, at, version) || !get(bytes, at, threshold_layer) ||
      !get(bytes, at, rows) || !get(bytes, at, cols)) {
    return snapshot_error(path, "truncated header");
  }
  if (version != kVersion) {
    return snapshot_error(path, "unsupported version " +
                                    std::to_string(version) + " (expected " +
                                    std::to_string(kVersion) + ")");
  }
  if (rows == 0 || cols == 0 || rows * cols > kMaxElements) {
    return snapshot_error(path, "absurd dimensions " + std::to_string(rows) +
                                    " x " + std::to_string(cols));
  }
  const std::size_t payload =
      static_cast<std::size_t>(rows * cols) * sizeof(float);
  if (crc_at - at != payload) {
    return snapshot_error(path, "payload size mismatch");
  }
  WarmStateSnapshot state;
  state.threshold_layer = threshold_layer;
  state.centroids.reset(static_cast<std::size_t>(rows),
                        static_cast<std::size_t>(cols));
  std::memcpy(state.centroids.data(), bytes.data() + at, payload);
  return state;
}

}  // namespace snicit::core
