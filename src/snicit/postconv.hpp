// Post-convergence update (§3.3): one load-reduced spMM followed by the
// centroid/residue update kernel (Algorithm 3) per layer, keeping the
// batch in its compressed representation.
#pragma once

#include <span>

#include "dnn/sparse_dnn.hpp"
#include "snicit/convert.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmm_policy.hpp"

namespace snicit::core {

using sparse::CscMatrix;
using sparse::CsrMatrix;

/// Advances `batch` from Ŷ(i) to Ŷ(i+1) through weight `w` / bias / clip.
///
/// `scratch` is the spMM output buffer (neurons x batch, reused across
/// layers); only the non-empty columns listed in batch.ne_idx are
/// multiplied (load-reduced spMM, §3.3.1), then Eq. (5) updates centroids
/// and residues in place and refreshes batch.ne_rec. batch.ne_idx is NOT
/// rebuilt here — the engine refreshes it on its own cadence (§3.3.2).
///
/// Returns the number of residue entries this layer whose updated value
/// was nonzero but within the prune threshold and therefore zeroed —
/// the per-layer "residues pruned" workload counter (necessarily 0 when
/// prune_threshold is 0, since only already-zero values satisfy |v| <= 0).
///
/// This overload uses the CSR gather kernel for the load-reduced spMM.
std::size_t post_convergence_layer(const CsrMatrix& w,
                                   std::span<const float> bias, float ymax,
                                   float prune_threshold,
                                   CompressedBatch& batch,
                                   DenseMatrix& scratch);

/// Same, using the CSC scatter kernel, which also skips zero *entries*
/// inside the residue columns — the configuration the paper runs, where
/// the off-the-shelf champion kernels exploit activation sparsity.
std::size_t post_convergence_layer(const CscMatrix& w_csc,
                                   std::span<const float> bias, float ymax,
                                   float prune_threshold,
                                   CompressedBatch& batch,
                                   DenseMatrix& scratch);

/// Policy-driven front end: the load-reduced spMM runs whatever kernel the
/// cost model (or a forced policy.variant) picks from the measured residue
/// density — including the SIMD-blocked and row-parallel tiers. `w_csc`
/// may be null when no CSC mirror exists (excludes the scatter arms).
///
/// When `diverged` is non-null it is set to true if any updated centroid
/// or residue value is NaN or outside its clipped bound (|v| <= ymax) —
/// the SNICIT divergence guard's per-layer signal, computed by reusing the
/// fabs/compare the update already performs (near-zero clean-path cost).
std::size_t post_convergence_layer(const CsrMatrix& w,
                                   const CscMatrix* w_csc,
                                   std::span<const float> bias, float ymax,
                                   float prune_threshold,
                                   CompressedBatch& batch,
                                   DenseMatrix& scratch,
                                   const sparse::SpmmPolicy& policy,
                                   bool* diverged = nullptr);

}  // namespace snicit::core
