#include "snicit/sample_prune.hpp"

#include <cmath>

#include "platform/common.hpp"
#include "platform/trace.hpp"
#include "platform/thread_pool.hpp"

namespace snicit::core {

std::vector<Index> prune_samples(const DenseMatrix& f, float eta,
                                 float epsilon) {
  std::vector<Index> survivors;
  prune_samples_into(f, eta, epsilon, survivors);
  return survivors;
}

void prune_samples_into(const DenseMatrix& f, float eta, float epsilon,
                        std::vector<Index>& survivors) {
  SNICIT_TRACE_SPAN("prune_samples", "snicit");
  const std::size_t n = f.rows();
  const std::size_t s = f.cols();
  SNICIT_CHECK(n > 0 && s > 0, "sample matrix must be non-empty");

  // Algorithm 1's shared arrays, kept thread-local so steady-state calls
  // reuse their capacity (the sample count s is tiny and stable). The
  // parallel loop below must touch them through the captured pointers — a
  // worker thread naming a thread_local directly would get its own
  // (empty) instance. tmp_idx[i] == -1 marks a pruned column.
  static thread_local std::vector<Index> tmp_idx_tls;
  static thread_local std::vector<int> diff_tls;
  tmp_idx_tls.resize(s);
  diff_tls.resize(s);
  Index* const tmp_idx = tmp_idx_tls.data();
  int* const diff = diff_tls.data();
  for (std::size_t i = 0; i < s; ++i) tmp_idx[i] = static_cast<Index>(i);

  const float limit = static_cast<float>(n) * epsilon;

  for (std::size_t cmp = 0; cmp < s; ++cmp) {
    if (tmp_idx[cmp] == -1) continue;
    const float* base = f.col(cmp);
    // Parallel comparison of every still-active column against the base
    // (the kernel's (n, s) thread block collapsed to a per-column loop).
    platform::parallel_for(0, s, [&](std::size_t i) {
      if (tmp_idx[i] == -1) {
        diff[i] = 0;
        return;
      }
      const float* col = f.col(i);
      int d = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (std::fabs(col[j] - base[j]) >= eta) ++d;
      }
      diff[i] = d;
    });
    for (std::size_t i = 0; i < s; ++i) {
      if (i != cmp && tmp_idx[i] != -1 &&
          static_cast<float>(diff[i]) < limit) {
        tmp_idx[i] = -1;  // same class as the base — discard
      }
    }
  }

  survivors.clear();
  survivors.reserve(s);
  for (std::size_t i = 0; i < s; ++i) {
    if (tmp_idx[i] != -1) survivors.push_back(tmp_idx[i]);
  }
  // Already ascending: tmp_idx preserved input order.
}

}  // namespace snicit::core
