// Tuning parameters of the SNICIT pipeline (Table 2 and §4 of the paper).
#pragma once

#include <cstdint>

#include "sparse/spmm_policy.hpp"

namespace snicit::core {

/// Which spMM kernel drives the pre-convergence phase (§3.1: SNICIT does
/// not constrain the kernel; any champion implementation can be dropped
/// in). These mirror the library's kernel family in sparse/spmm.hpp.
enum class PreKernel {
  kGather,   // CSR gather, dense input
  kScatter,  // CSC scatter, skips zero activations (the fastest on
             // SDGC-style workloads, where activations go sparse)
  kTiled,    // cache-blocked CSR gather
  kAuto,     // defer to SnicitParams::spmm — cost-model selection over the
             // full kernel tier (default)
};

/// The SpmmPolicy a PreKernel choice stands for: the legacy enum values
/// pin their scalar arm; kAuto hands the decision to `base` (which may
/// itself force any arm of the optimized tier via its variant field).
inline sparse::SpmmPolicy effective_spmm_policy(
    PreKernel kernel, const sparse::SpmmPolicy& base) {
  sparse::SpmmPolicy policy = base;
  switch (kernel) {
    case PreKernel::kGather:
      policy.variant = sparse::SpmmVariant::kGatherScalar;
      break;
    case PreKernel::kScatter:
      policy.variant = sparse::SpmmVariant::kScatter;
      break;
    case PreKernel::kTiled:
      policy.variant = sparse::SpmmVariant::kTiled;
      break;
    case PreKernel::kAuto:
      break;
  }
  return policy;
}

struct SnicitParams {
  /// t — index of the threshold layer where conversion happens. The paper
  /// uses 30 for SDGC benchmarks and the largest even integer <= l/2 for
  /// medium-scale DNNs.
  int threshold_layer = 30;

  /// s — number of columns sampled for centroid selection (32 for SDGC,
  /// 128 for medium-scale DNNs).
  int sample_size = 32;

  /// n — rows of the sum-downsampled sample matrix F. 0 disables
  /// downsampling (the paper skips it for medium-scale nets, §4.2.1).
  int downsample_dim = 16;

  /// η — per-element tolerance when comparing samples (Eq. 2).
  float eta = 0.03f;

  /// ε — a sample is pruned when fewer than n·ε of its elements differ
  /// from the base by more than η (Algorithm 1 line 16).
  float epsilon = 0.03f;

  /// Near-zero residue pruning threshold (§3.3.1 adjustment (1)): residue
  /// entries with |v| <= prune_threshold are zeroed to induce more empty
  /// columns. 0 keeps SNICIT numerically faithful (no accuracy loss).
  float prune_threshold = 0.0f;

  /// Layers between ne_idx rebuilds from ne_rec (§3.3.2: every layer for
  /// medium nets, every 200 layers for SDGC benchmarks).
  int ne_refresh_interval = 1;

  /// Future-work feature (paper §5): detect convergence during the
  /// pre-convergence phase and pick t dynamically. When enabled,
  /// threshold_layer acts as an upper bound.
  bool auto_threshold = false;

  /// Detector sensitivity: conversion triggers once the batch's mean
  /// nearest-neighbour column distance (see ConvergenceDetector) stays at
  /// or below this level for two consecutive layers.
  float auto_level = 0.05f;

  PreKernel pre_kernel = PreKernel::kAuto;

  /// Kernel for the load-reduced spMM in post-convergence update. kScatter
  /// skips zero entries inside residue columns, matching the paper's use
  /// of sparsity-exploiting champion kernels; kGather touches full weight
  /// rows per non-empty column; kTiled runs as blocked gather over the
  /// active-column subset; kAuto (default) picks per layer from measured
  /// residue density.
  PreKernel post_kernel = PreKernel::kAuto;

  /// Kernel-tier policy behind kAuto: cost-model selection over scalar /
  /// SIMD / threaded / tiled / scatter arms, or a forced arm when
  /// spmm.variant != kAuto (the regression suites sweep arms this way).
  sparse::SpmmPolicy spmm = {};

  /// Adaptive pruning (extension of §3.3.1): when > 0, the engine derives
  /// prune_threshold from the data right after conversion — the residue
  /// |value| quantile that drops this fraction of residue entries. The
  /// derived value overrides prune_threshold for the whole run.
  double adaptive_prune_target = 0.0;

  /// Re-run cluster-based conversion every this many post-convergence
  /// layers (0 = never, the paper's choice: §3.2.2 argues fresh centroids
  /// are not worth their runtime overhead; the option exists to quantify
  /// that claim — see bench_ablation).
  int reconvert_interval = 0;

  /// Graceful degradation (robustness extension): after conversion every
  /// Eq. (5) update checks its outputs against the clipped bound — any
  /// NaN/inf/blowup (|v| > ymax, impossible in exact arithmetic) triggers
  /// an exact fallback that recomputes the remaining layers on the dense
  /// baseline path from the checkpointed Y(t). The per-layer check reuses
  /// the fabs the prune test already computes, so the clean-path cost is
  /// one compare per element.
  bool divergence_guard = true;

  /// When true the engine records per-layer diagnostics (non-empty column
  /// counts, compressed nnz) into RunResult::diagnostics / layer traces.
  bool record_trace = false;
};

}  // namespace snicit::core
