#include "snicit/recovery.hpp"

#include <algorithm>

#include "platform/common.hpp"
#include "platform/trace.hpp"
#include "platform/thread_pool.hpp"

namespace snicit::core {

DenseMatrix recover_results(const CompressedBatch& batch) {
  DenseMatrix y;
  recover_into(batch, y);
  return y;
}

void recover_into(const CompressedBatch& batch, DenseMatrix& y) {
  SNICIT_TRACE_SPAN("recover_results", "snicit");
  const std::size_t n = batch.yhat.rows();
  const std::size_t b = batch.yhat.cols();
  // Every column is written below (centroids copied, residues summed).
  y.reset(n, b, sparse::ZeroFill::kNo);
  platform::parallel_for_ranges(0, b, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      const float* SNICIT_RESTRICT res = batch.yhat.col(j);
      float* SNICIT_RESTRICT dst = y.col(j);
      if (batch.mapper[j] == -1) {
        std::copy_n(res, n, dst);
        continue;
      }
      const float* SNICIT_RESTRICT cent =
          batch.yhat.col(static_cast<std::size_t>(batch.mapper[j]));
      for (std::size_t r = 0; r < n; ++r) {
        dst[r] = res[r] + cent[r];
      }
    }
  });
}

}  // namespace snicit::core
