// Final results recovery (§3.4, Eq. 6): translate the compressed batch
// back to the dense representation by adding each residue column to its
// centroid.
#pragma once

#include "snicit/convert.hpp"

namespace snicit::core {

/// Returns Y(l): centroid columns verbatim, every other column as
/// residue + centroid.
DenseMatrix recover_results(const CompressedBatch& batch);

/// Same, into a caller-owned matrix (typically the run result's output
/// buffer): `y` is reshaped capacity-preserving and fully overwritten.
void recover_into(const CompressedBatch& batch, DenseMatrix& y);

}  // namespace snicit::core
