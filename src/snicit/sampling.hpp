// Cluster-based conversion, step 1 (§3.2.1): column sampling and sum
// downsampling produce the small sample matrix F (n x s) from Y(t).
#pragma once

#include "sparse/dense_matrix.hpp"

namespace snicit::core {

using sparse::DenseMatrix;

/// Takes the first `s` columns of `y` (datasets are class-shuffled, so a
/// prefix is a uniform sample, §3.2.1) and sum-downsamples each into `n`
/// segment sums. n = 0, or n >= rows, copies columns verbatim (no
/// downsampling — the medium-scale configuration).
///
/// Returns F with shape (n' x s') where n' = effective dimension and
/// s' = min(s, y.cols()).
DenseMatrix build_sample_matrix(const DenseMatrix& y, int s, int n);

/// Same, into a caller-owned target (a workspace slot): `f` is reshaped
/// capacity-preserving and fully overwritten, so repeated calls at a
/// stable shape never allocate.
void build_sample_matrix_into(const DenseMatrix& y, int s, int n,
                              DenseMatrix& f);

}  // namespace snicit::core
