// Concurrent serving layer over stream_inference: partitions a sample
// stream into batches and serves them on a pool of W workers, each owning
// an independent clone of the caller's engine (InferenceEngine::clone), so
// per-run engine state — SNICIT Traces, warm centroid caches, autotuned
// kernel arms — never races. A bounded work queue between the slicing
// producer and the workers provides backpressure: at most queue_capacity
// sliced batches are ever in flight, whatever the stream length.
//
// This is the serving shape the paper's batch-size study (§4.1.4/§4.2.3)
// points at — throughput is won by overlapping independent batches, the
// same lever as Hidayetoğlu et al.'s at-scale SDGC inference and
// SparseDNN's batch-parallel CPU serving — while each batch still rides
// SNICIT's compressed representation inside its worker.
//
// Determinism: batch j's outputs land in columns [j*B, ...) of the result
// regardless of which worker ran it or in what order batches finished, so
// outputs are bit-identical to the serial stream_inference path (workers
// pin their engine's inner kernels to a ScopedSerialRegion; every kernel
// computes columns independently, so chunking never changes the floats).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "snicit/stream.hpp"

namespace snicit::core {

struct ParallelStreamOptions {
  std::size_t batch_size = 1024;
  /// Rows of the output kept per sample (0 = full activation column),
  /// identical to StreamOptions::keep_rows.
  std::size_t keep_rows = 0;
  /// Worker threads serving batches. 0 sizes from the global thread pool
  /// (SNICIT_THREADS / hardware); 1 degrades to the serial path.
  std::size_t workers = 0;
  /// Bound on sliced-but-undispatched batches (the producer blocks once
  /// this many are queued). 0 picks 2x workers.
  std::size_t queue_capacity = 0;

  // --- fault tolerance (the pooled path only; the serial path has no
  // retry machinery and propagates engine exceptions unchanged) ---

  /// Total tries per batch before it is recorded in
  /// StreamResult::failures and its output columns stay zero. 1 disables
  /// retry. A retried batch is re-enqueued, so it normally lands on a
  /// different worker (and a fresh engine clone) than the one that
  /// faulted.
  std::size_t max_attempts = 5;
  /// First-retry backoff; doubles per subsequent attempt of the same
  /// batch, capped at max_backoff_ms.
  double retry_backoff_ms = 1.0;
  double max_backoff_ms = 50.0;
  /// Per-batch deadline measured from when the batch is sliced (so queue
  /// wait counts). An attempt is not started past the deadline; the batch
  /// fails with ErrorCode::kTimeout. 0 disables deadlines.
  double batch_deadline_ms = 0.0;
};

class ParallelStreamExecutor {
 public:
  explicit ParallelStreamExecutor(ParallelStreamOptions options = {});

  const ParallelStreamOptions& options() const { return options_; }

  /// Streams `input` (N x total) through an engine pool cloned from
  /// `engine`. The first batch runs on `engine` itself before the pool
  /// spins up: that run builds the model's lazy format mirrors and warms
  /// any stateful engine (centroid cache, autotuned arms) exactly as the
  /// serial path would, so the clones inherit identical state and the
  /// result is bit-identical to stream_inference. Throws
  /// std::invalid_argument when more than one worker is requested and the
  /// engine does not support clone().
  ///
  /// StreamResult::total_ms is the wall time of the whole run (so
  /// throughput() measures the overlapped serving rate); batch_ms[j] and
  /// the latency percentiles still record per-batch engine latency.
  ///
  /// Fault tolerance: a worker exception fails only its batch attempt —
  /// the batch is retried (capped exponential backoff, normally on
  /// another worker) up to max_attempts, then recorded in
  /// StreamResult::failures with its output columns zeroed; the rest of
  /// the stream is unaffected and the pool drains cleanly. Only
  /// non-transient typed errors (BadInput / BadModelFile — the whole
  /// stream would fail identically) abort the run: the queue is closed,
  /// in-flight batches are marked failed, workers join, and the error is
  /// rethrown.
  StreamResult run(dnn::InferenceEngine& engine, const dnn::SparseDnn& net,
                   const dnn::DenseMatrix& input) const;

 private:
  ParallelStreamOptions options_;

  /// Persistent per-lane serving scratch: slot 0 is the inline/serial
  /// lane (batch 0 and the single-worker path), slots 1..W belong to the
  /// pooled workers. Keeping them on the executor means repeated run()
  /// calls reuse every warmed buffer — the serving loop's zero-allocation
  /// steady state. Mutable because they are scratch, not observable
  /// state; one driver thread per executor is assumed (concurrent run()
  /// calls on the same executor would share lanes).
  mutable std::vector<std::unique_ptr<ServeScratch>> slots_;
  /// Grows the slot vector up to `i` (not thread-safe: run() pre-grows
  /// every worker slot before the pool starts).
  ServeScratch& slot(std::size_t i) const;
};

}  // namespace snicit::core
