// Dynamic threshold detection — the data-driven choice of t the paper
// lists as future work (§5). Convergence in SNICIT's sense is *batch
// clustering*: columns of Y become near-duplicates of each other
// (Figure 1), even though their common values keep changing from layer to
// layer (each layer has different weights). The detector therefore probes
// a fixed subset of columns each layer and measures how close each probe
// column is to its nearest probe neighbour; once that mean nearest-
// neighbour distance stays below a level for two consecutive layers, the
// batch has clustered and conversion can start.
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/dense_matrix.hpp"

namespace snicit::core {

using sparse::DenseMatrix;

class ConvergenceDetector {
 public:
  /// `level` — convergence fires when the mean nearest-neighbour distance
  /// (fraction of probed rows differing by more than `eta`) stays at or
  /// below this for two consecutive layers.
  explicit ConvergenceDetector(float level = 0.05f, float eta = 0.03f,
                               std::size_t probe_columns = 24,
                               std::size_t probe_rows = 256);

  /// Feeds the activations after one layer; returns true once clustered
  /// for two consecutive layers.
  bool observe(const DenseMatrix& y);

  bool converged() const { return hits_ >= 2; }

  /// Mean nearest-neighbour distance at the last observation (1.0 before
  /// any observation).
  double last_distance() const { return last_distance_; }

  void reset();

 private:
  float level_;
  float eta_;
  std::size_t probe_columns_;
  std::size_t probe_rows_;
  int hits_ = 0;
  double last_distance_ = 1.0;
};

}  // namespace snicit::core
