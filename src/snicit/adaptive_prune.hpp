// Adaptive residue pruning. §3.3.1 prunes near-zero residue entries with
// a fixed threshold, but a good constant depends on the activation scale
// (32 for SDGC, 1 for medium nets) and the data. This utility picks the
// threshold from the data instead: the |value| quantile of the current
// residue entries such that a target fraction of them is dropped.
#pragma once

#include "snicit/convert.hpp"

namespace snicit::core {

/// Returns a pruning threshold that would zero ~`drop_fraction` of the
/// nonzero residue entries of `batch` (centroid columns are not
/// consulted — they are never pruned). Returns 0 when the batch has no
/// residue entries or drop_fraction <= 0.
float choose_prune_threshold(const CompressedBatch& batch,
                             double drop_fraction);

}  // namespace snicit::core
