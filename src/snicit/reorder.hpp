// Cluster-ordered batch permutation: after conversion, residue columns
// mapped to the same centroid are scattered across the batch; permuting
// columns so each centroid is followed by its residues improves locality
// of the post-convergence kernels (a substrate-level optimization the
// GPU original gets for free from warp scheduling).
#pragma once

#include <vector>

#include "snicit/convert.hpp"

namespace snicit::core {

/// A bijective column permutation with its inverse.
struct BatchPermutation {
  std::vector<Index> forward;  // new_index -> old_index
  std::vector<Index> inverse;  // old_index -> new_index

  std::size_t size() const { return forward.size(); }
  bool is_identity() const;
};

/// Builds the cluster ordering for a compressed batch: each centroid
/// column immediately followed by its residue columns (both in ascending
/// original order). Every column appears exactly once.
BatchPermutation cluster_order(const CompressedBatch& batch);

/// Returns y with columns permuted: out[:, j] = y[:, perm.forward[j]].
DenseMatrix permute_columns(const DenseMatrix& y,
                            const BatchPermutation& perm);

/// Undoes permute_columns.
DenseMatrix unpermute_columns(const DenseMatrix& y,
                              const BatchPermutation& perm);

/// Applies the permutation to a whole compressed batch (yhat, mapper,
/// centroids, ne bookkeeping are all remapped consistently).
CompressedBatch permute_batch(const CompressedBatch& batch,
                              const BatchPermutation& perm);

}  // namespace snicit::core
