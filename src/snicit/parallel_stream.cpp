#include "snicit/parallel_stream.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "platform/bounded_queue.hpp"
#include "platform/common.hpp"
#include "platform/metrics.hpp"
#include "platform/thread_pool.hpp"
#include "platform/timer.hpp"
#include "platform/trace.hpp"

namespace snicit::core {

namespace {

/// One unit of work: a sliced batch plus where its results belong.
struct BatchJob {
  std::size_t index = 0;  // batch number (latency slot)
  std::size_t start = 0;  // first output column
  dnn::DenseMatrix batch;
};

/// Runs one batch and scatters the kept rows into the shared result.
/// Workers write disjoint column ranges and disjoint batch_ms slots, so
/// no synchronization is needed on the result.
void serve_batch(dnn::InferenceEngine& engine, const dnn::SparseDnn& net,
                 const BatchJob& job, std::size_t keep,
                 StreamResult& result) {
  SNICIT_TRACE_SPAN("serve_batch", "stream");
  platform::Stopwatch sw;
  const auto run = engine.run(net, job.batch);
  const double ms = sw.elapsed_ms();
  result.batch_ms[job.index] = ms;
  for (std::size_t j = 0; j < job.batch.cols(); ++j) {
    std::copy_n(run.output.col(j), keep, result.outputs.col(job.start + j));
  }
  if (platform::metrics::enabled()) {
    auto& registry = platform::metrics::MetricsRegistry::global();
    registry.counter("stream.batches_served").add(1);
    // Occupancy in integer microseconds: Counter is the only atomic-add
    // instrument, and worker busy time must sum across threads.
    registry.counter("stream.worker_busy_us")
        .add(static_cast<std::int64_t>(ms * 1000.0));
  }
}

}  // namespace

ParallelStreamExecutor::ParallelStreamExecutor(ParallelStreamOptions options)
    : options_(options) {
  SNICIT_CHECK(options_.batch_size >= 1, "batch_size must be >= 1");
}

StreamResult ParallelStreamExecutor::run(dnn::InferenceEngine& engine,
                                         const dnn::SparseDnn& net,
                                         const dnn::DenseMatrix& input) const {
  const std::size_t total = input.cols();
  const std::size_t bs = options_.batch_size;
  const std::size_t num_batches = (total + bs - 1) / bs;

  std::size_t workers = options_.workers != 0
                            ? options_.workers
                            : platform::ThreadPool::global().size();
  // Batch 0 runs on the caller's engine; only the remainder is pooled.
  workers = std::min(workers, num_batches > 0 ? num_batches - 1
                                              : std::size_t{0});
  if (workers <= 1) {
    // One worker (or <= 2 batches) cannot overlap anything: the serial
    // path is the same computation without threads or clones.
    StreamOptions serial;
    serial.batch_size = options_.batch_size;
    serial.keep_rows = options_.keep_rows;
    return stream_inference(engine, net, input, serial);
  }

  const std::size_t keep =
      options_.keep_rows == 0 ? input.rows()
                              : std::min(options_.keep_rows, input.rows());

  SNICIT_TRACE_SPAN("parallel_stream.run", "stream");
  if (platform::metrics::enabled()) {
    auto& registry = platform::metrics::MetricsRegistry::global();
    registry.gauge("stream.workers").set(static_cast<double>(workers));
    registry.gauge("stream.batch_size").set(static_cast<double>(bs));
  }

  platform::Stopwatch wall;
  StreamResult result;
  result.outputs.reset(keep, total);
  result.batch_ms.assign(num_batches, 0.0);
  result.batches = num_batches;
  net.ensure_csc();  // shared model prep, same as the serial path

  // Batch 0 on the caller's engine, before any clone exists: triggers the
  // remaining lazy mirror builds (e.g. ELL) and warms stateful engines,
  // so the net is read-only and the engine state final when cloned.
  BatchJob first{0, 0, input.columns(0, std::min(bs, total))};
  serve_batch(engine, net, first, keep, result);

  std::vector<std::unique_ptr<dnn::InferenceEngine>> engines;
  engines.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    auto clone = engine.clone();
    if (!clone) {
      throw std::invalid_argument("engine '" + engine.name() +
                                  "' does not support clone(); "
                                  "parallel serving needs engine pooling");
    }
    engines.push_back(std::move(clone));
  }

  const std::size_t capacity = options_.queue_capacity != 0
                                   ? options_.queue_capacity
                                   : 2 * workers;
  platform::BoundedQueue<BatchJob> queue(capacity);

  std::mutex failure_mutex;
  std::exception_ptr failure;

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      // Each worker owns a core's worth of work: its engine's inner
      // kernel loops run inline instead of re-entering the shared pool.
      platform::ScopedSerialRegion serial_region;
      try {
        while (auto job = queue.pop()) {
          serve_batch(*engines[w], net, *job, keep, result);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(failure_mutex);
          if (!failure) failure = std::current_exception();
        }
        queue.close();  // unblock the producer and drain the pool
      }
    });
  }

  // Producer: slice and enqueue the remaining batches. push() blocking on
  // a full queue is the backpressure bound — at most `capacity` sliced
  // batches ever exist beyond the ones being served.
  platform::metrics::Series* depth_series =
      platform::metrics::enabled()
          ? &platform::metrics::MetricsRegistry::global().series(
                "stream.queue_depth")
          : nullptr;
  std::size_t index = 1;
  for (std::size_t start = bs; start < total; start += bs, ++index) {
    BatchJob job{index, start, input.columns(start, std::min(total, start + bs))};
    if (!queue.push(std::move(job))) break;  // closed: a worker failed
    // Post-push depth samples the backpressure the producer actually saw:
    // pinned at capacity ⇒ workers are the bottleneck; near 0 ⇒ slicing is.
    const auto depth = static_cast<double>(queue.size());
    SNICIT_TRACE_COUNTER("queue_depth", depth);
    if (depth_series != nullptr) depth_series->push(depth);
  }
  queue.close();
  for (auto& t : threads) t.join();
  if (failure) std::rethrow_exception(failure);

  for (double ms : result.batch_ms) result.latency.add(ms);
  result.total_ms = wall.elapsed_ms();
  return result;
}

}  // namespace snicit::core
