#include "snicit/parallel_stream.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>

#include "platform/bounded_queue.hpp"
#include "platform/common.hpp"
#include "platform/error.hpp"
#include "platform/fault_injection.hpp"
#include "platform/metrics.hpp"
#include "platform/thread_pool.hpp"
#include "platform/timer.hpp"
#include "platform/trace.hpp"

namespace snicit::core {

namespace {

namespace fault = platform::fault;
using platform::ErrorCode;

/// One unit of work: a sliced batch plus where its results belong and
/// its fault-tolerance state (tries consumed, age for the deadline).
struct BatchJob {
  std::size_t index = 0;  // batch number (latency slot)
  std::size_t start = 0;  // first output column
  dnn::DenseMatrix batch;
  std::size_t attempts = 0;  // attempts already consumed
  platform::Stopwatch age{};  // started when sliced; deadline basis
};

/// Runs one batch and scatters the kept rows into the shared result.
/// Workers write disjoint column ranges and disjoint batch_ms slots, so
/// no synchronization is needed on the result. The lane's ServeScratch
/// carries the engine workspace and the cycled RunResult, so a warm lane
/// serves without touching the heap. Returns true when the engine
/// reported a mid-network degradation (SNICIT dense fallback).
bool serve_batch(dnn::InferenceEngine& engine, const dnn::SparseDnn& net,
                 const BatchJob& job, std::size_t keep, ServeScratch& sc,
                 StreamResult& result) {
  SNICIT_TRACE_SPAN("serve_batch", "stream");
  platform::Stopwatch sw;
  engine.run_into(net, job.batch, sc.ws, sc.run);
  const double ms = sw.elapsed_ms();
  result.batch_ms[job.index] = ms;
  for (std::size_t j = 0; j < job.batch.cols(); ++j) {
    std::copy_n(sc.run.output.col(j), keep,
                result.outputs.col(job.start + j));
  }
  if (platform::metrics::enabled()) {
    auto& registry = platform::metrics::MetricsRegistry::global();
    registry.counter("stream.batches_served").add(1);
    // Occupancy in integer microseconds: Counter is the only atomic-add
    // instrument, and worker busy time must sum across threads.
    registry.counter("stream.worker_busy_us")
        .add(static_cast<std::int64_t>(ms * 1000.0));
  }
  return sc.run.fallback_layer >= 0;
}

/// Worker faults that would hit every batch identically are not worth
/// retrying: abort the stream instead of burning the retry budget
/// max_attempts * num_batches times.
bool is_fatal(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const platform::ErrorException& e) {
    return e.code() == ErrorCode::kBadInput ||
           e.code() == ErrorCode::kBadModelFile;
  } catch (const std::bad_alloc&) {
    return true;
  } catch (...) {
    return false;
  }
}

std::string describe(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const platform::ErrorException& e) {
    // Bare message: BatchFailure carries the code separately, and
    // what() would repeat it as a "[code] " prefix.
    return e.error().message;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

ErrorCode classify(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const platform::ErrorException& e) {
    return e.code();
  } catch (...) {
    return ErrorCode::kWorkerFault;
  }
}

/// Shared mutable state of one resilient run, so the batch-serving loop
/// is the same for the inline batch-0 run and the pooled workers.
struct RunState {
  const ParallelStreamOptions& options;
  const dnn::SparseDnn& net;
  std::size_t keep;
  std::size_t num_batches;
  StreamResult& result;
  platform::BoundedQueue<BatchJob>& queue;

  std::atomic<std::size_t> done{0};       // batches in a terminal state
  std::atomic<std::size_t> retries{0};
  std::atomic<std::size_t> degraded{0};
  std::atomic<bool> aborting{false};
  std::mutex failure_mutex{};
  std::exception_ptr fatal_error = nullptr;  // first fatal; rethrown at end

  void record_failure(const BatchJob& job, ErrorCode code,
                      std::string message) {
    std::lock_guard<std::mutex> lock(failure_mutex);
    result.failures.push_back(
        {job.index, code, std::move(message), job.attempts});
  }

  /// A batch reached success or permanent failure. The last terminal
  /// batch closes the queue: the producer never closes it itself, since
  /// retried batches may be re-enqueued long after slicing finished.
  void mark_terminal() {
    if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_batches) {
      queue.close();
    }
  }

  void abort_stream(const std::exception_ptr& error) {
    bool expected = false;
    if (aborting.compare_exchange_strong(expected, true)) {
      std::lock_guard<std::mutex> lock(failure_mutex);
      fatal_error = error;
    }
    queue.close();
  }

  /// Drives `job` to a terminal state on `engine`: attempt, and on a
  /// transient fault back off and retry — re-enqueued so another worker
  /// (with a healthy engine clone) normally picks it up, or inline when
  /// the queue is full/closed. Exceptions never escape: a fault costs at
  /// most this batch.
  void process(dnn::InferenceEngine& engine, ServeScratch& scratch,
               BatchJob job) {
    for (;;) {
      if (aborting.load(std::memory_order_relaxed)) {
        record_failure(job, ErrorCode::kQueueClosed,
                       "stream aborted before this batch completed");
        mark_terminal();
        return;
      }
      if (options.batch_deadline_ms > 0.0 &&
          job.age.elapsed_ms() > options.batch_deadline_ms) {
        record_failure(job, ErrorCode::kTimeout,
                       "batch deadline of " +
                           std::to_string(options.batch_deadline_ms) +
                           " ms exceeded");
        if (platform::metrics::enabled()) {
          platform::metrics::MetricsRegistry::global()
              .counter("stream.timeouts")
              .add(1);
        }
        mark_terminal();
        return;
      }

      job.attempts += 1;
      std::exception_ptr error;
      try {
        // Injected worker fault (drills): keyed by batch *and* attempt,
        // so with p < 1 a retried batch is not doomed to re-fault.
        if (fault::should_fire("worker_throw",
                               job.index * 1000003ULL + job.attempts)) {
          throw platform::ErrorException(
              ErrorCode::kWorkerFault,
              "injected worker_throw fault (batch " +
                  std::to_string(job.index) + ", attempt " +
                  std::to_string(job.attempts) + ")");
        }
        if (serve_batch(engine, net, job, keep, scratch, result)) {
          degraded.fetch_add(1, std::memory_order_relaxed);
        }
        mark_terminal();
        return;
      } catch (...) {
        error = std::current_exception();
      }

      if (is_fatal(error)) {
        record_failure(job, classify(error), describe(error));
        mark_terminal();
        abort_stream(error);
        return;
      }
      if (job.attempts >= options.max_attempts) {
        record_failure(job, classify(error), describe(error));
        if (platform::metrics::enabled()) {
          platform::metrics::MetricsRegistry::global()
              .counter("stream.failed_batches")
              .add(1);
        }
        mark_terminal();
        return;
      }

      retries.fetch_add(1, std::memory_order_relaxed);
      if (platform::metrics::enabled()) {
        platform::metrics::MetricsRegistry::global()
            .counter("stream.retries")
            .add(1);
      }
      const double backoff =
          std::min(options.retry_backoff_ms *
                       std::pow(2.0, static_cast<double>(job.attempts - 1)),
                   options.max_backoff_ms);
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            backoff));
      }
      // Hand the batch to the pool so a *different* worker retries it;
      // try_push (never blocks, so no producer/worker deadlock) consumes
      // its argument, hence the copy. Full or closed queue: retry here.
      BatchJob requeue = job;
      if (queue.try_push(std::move(requeue))) return;
    }
  }
};

}  // namespace

ServeScratch& ParallelStreamExecutor::slot(std::size_t i) const {
  while (slots_.size() <= i) {
    slots_.push_back(std::make_unique<ServeScratch>());
  }
  return *slots_[i];
}

ParallelStreamExecutor::ParallelStreamExecutor(ParallelStreamOptions options)
    : options_(options) {
  SNICIT_CHECK(options_.batch_size >= 1, "batch_size must be >= 1");
  SNICIT_CHECK(options_.max_attempts >= 1, "max_attempts must be >= 1");
  SNICIT_CHECK(options_.retry_backoff_ms >= 0.0 &&
                   options_.max_backoff_ms >= 0.0 &&
                   options_.batch_deadline_ms >= 0.0,
               "retry/backoff/deadline times must be non-negative");
}

StreamResult ParallelStreamExecutor::run(dnn::InferenceEngine& engine,
                                         const dnn::SparseDnn& net,
                                         const dnn::DenseMatrix& input) const {
  const std::size_t total = input.cols();
  const std::size_t bs = options_.batch_size;
  const std::size_t num_batches = (total + bs - 1) / bs;

  std::size_t workers = options_.workers != 0
                            ? options_.workers
                            : platform::ThreadPool::global().size();
  // Batch 0 runs on the caller's engine; only the remainder is pooled.
  workers = std::min(workers, num_batches > 0 ? num_batches - 1
                                              : std::size_t{0});
  if (workers <= 1) {
    // One worker (or <= 2 batches) cannot overlap anything: the serial
    // path is the same computation without threads or clones. It still
    // rides this executor's persistent lane-0 scratch.
    StreamOptions serial;
    serial.batch_size = options_.batch_size;
    serial.keep_rows = options_.keep_rows;
    return stream_inference(engine, net, input, serial, &slot(0));
  }

  const std::size_t keep =
      options_.keep_rows == 0 ? input.rows()
                              : std::min(options_.keep_rows, input.rows());

  SNICIT_TRACE_SPAN("parallel_stream.run", "stream");
  if (platform::metrics::enabled()) {
    auto& registry = platform::metrics::MetricsRegistry::global();
    registry.gauge("stream.workers").set(static_cast<double>(workers));
    registry.gauge("stream.batch_size").set(static_cast<double>(bs));
  }

  platform::Stopwatch wall;
  StreamResult result;
  result.outputs.reset(keep, total);
  result.batch_ms.assign(num_batches, 0.0);
  result.batches = num_batches;
  net.ensure_csc();  // shared model prep, same as the serial path

  const std::size_t capacity = options_.queue_capacity != 0
                                   ? options_.queue_capacity
                                   : 2 * workers;
  platform::BoundedQueue<BatchJob> queue(capacity);
  RunState state{options_, net,   keep, num_batches,
                 result,   queue};

  // Pre-grow every lane's scratch before the pool starts: slot() growth
  // is not thread-safe, and workers index straight into their slot.
  slot(workers);

  // Batch 0 on the caller's engine, before any clone exists: triggers the
  // remaining lazy mirror builds (e.g. ELL) and warms stateful engines,
  // so the net is read-only and the engine state final when cloned. It
  // rides the same retry loop as pooled batches (inline retries only).
  state.process(engine, slot(0),
                BatchJob{0, 0, input.columns(0, std::min(bs, total))});
  if (state.aborting.load()) {
    queue.close();
    if (state.fatal_error) std::rethrow_exception(state.fatal_error);
  }

  std::vector<std::unique_ptr<dnn::InferenceEngine>> engines;
  engines.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    auto clone = engine.clone();
    if (!clone) {
      throw platform::ErrorException(
          ErrorCode::kBadInput,
          "engine '" + engine.name() +
              "' does not support clone(); "
              "parallel serving needs engine pooling");
    }
    engines.push_back(std::move(clone));
  }

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      // Each worker owns a core's worth of work: its engine's inner
      // kernel loops run inline instead of re-entering the shared pool.
      platform::ScopedSerialRegion serial_region;
      ServeScratch& sc = slot(w + 1);  // pre-grown; no growth here
      while (auto job = queue.pop()) {
        state.process(*engines[w], sc, std::move(*job));
      }
    });
  }

  // Producer: slice and enqueue the remaining batches. push() blocking on
  // a full queue is the backpressure bound — at most `capacity` sliced
  // batches ever exist beyond the ones being served.
  platform::metrics::Series* depth_series =
      platform::metrics::enabled()
          ? &platform::metrics::MetricsRegistry::global().series(
                "stream.queue_depth")
          : nullptr;
  std::size_t index = 1;
  for (std::size_t start = bs; start < total; start += bs, ++index) {
    // Injected producer stall (drills): models a slow upstream slicer.
    if (fault::should_fire("queue_stall", index)) {
      const double stall_ms =
          fault::FaultRegistry::global().param("queue_stall", 5.0);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(stall_ms));
    }
    BatchJob job{index, start, input.columns(start, std::min(total, start + bs))};
    if (queue.push(std::move(job)) != ErrorCode::kOk) {
      // Closed mid-stream: the run is aborting on a fatal error. Account
      // for every unsliced batch so the terminal count still converges.
      for (std::size_t rest = index; rest < num_batches; ++rest) {
        std::lock_guard<std::mutex> lock(state.failure_mutex);
        result.failures.push_back({rest, ErrorCode::kQueueClosed,
                                   "stream aborted before this batch was "
                                   "dispatched",
                                   0});
      }
      break;
    }
    // Post-push depth samples the backpressure the producer actually saw:
    // pinned at capacity ⇒ workers are the bottleneck; near 0 ⇒ slicing is.
    const auto depth = static_cast<double>(queue.size());
    SNICIT_TRACE_COUNTER("queue_depth", depth);
    if (depth_series != nullptr) depth_series->push(depth);
  }
  for (auto& t : threads) t.join();
  queue.close();  // defensive: no-op unless the terminal count was short

  if (state.fatal_error) std::rethrow_exception(state.fatal_error);

  result.retries = state.retries.load();
  result.degraded_batches = state.degraded.load();
  std::sort(result.failures.begin(), result.failures.end(),
            [](const BatchFailure& a, const BatchFailure& b) {
              return a.batch < b.batch;
            });
  for (double ms : result.batch_ms) result.latency.add(ms);
  result.total_ms = wall.elapsed_ms();
  return result;
}

}  // namespace snicit::core
