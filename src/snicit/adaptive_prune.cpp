#include "snicit/adaptive_prune.hpp"

#include <algorithm>
#include <cmath>

#include "platform/stats.hpp"

namespace snicit::core {

float choose_prune_threshold(const CompressedBatch& batch,
                             double drop_fraction) {
  if (drop_fraction <= 0.0) return 0.0f;
  drop_fraction = std::min(drop_fraction, 1.0);

  // Residue magnitudes span orders of magnitude; a log-ish two-pass
  // approach keeps the histogram informative: first find the max, then
  // bin on [0, max].
  float max_abs = 0.0f;
  const std::size_t n = batch.yhat.rows();
  for (std::size_t j = 0; j < batch.batch(); ++j) {
    if (batch.is_centroid(j)) continue;
    const float* col = batch.yhat.col(j);
    for (std::size_t r = 0; r < n; ++r) {
      max_abs = std::max(max_abs, std::fabs(col[r]));
    }
  }
  if (max_abs == 0.0f) return 0.0f;

  platform::Histogram hist(0.0, static_cast<double>(max_abs), 512);
  for (std::size_t j = 0; j < batch.batch(); ++j) {
    if (batch.is_centroid(j)) continue;
    const float* col = batch.yhat.col(j);
    for (std::size_t r = 0; r < n; ++r) {
      const float v = std::fabs(col[r]);
      if (v > 0.0f) hist.add(static_cast<double>(v));
    }
  }
  if (hist.total() == 0) return 0.0f;
  return static_cast<float>(hist.quantile(drop_fraction));
}

}  // namespace snicit::core
