#include "snicit/convergence.hpp"

#include <algorithm>
#include <cmath>

namespace snicit::core {

ConvergenceDetector::ConvergenceDetector(float level, float eta,
                                         std::size_t probe_columns,
                                         std::size_t probe_rows)
    : level_(level),
      eta_(eta),
      probe_columns_(std::max<std::size_t>(2, probe_columns)),
      probe_rows_(std::max<std::size_t>(1, probe_rows)) {}

void ConvergenceDetector::reset() {
  hits_ = 0;
  last_distance_ = 1.0;
}

bool ConvergenceDetector::observe(const DenseMatrix& y) {
  if (y.rows() == 0 || y.cols() < 2) return false;

  const std::size_t cols = std::min(probe_columns_, y.cols());
  const std::size_t col_stride = y.cols() / cols;
  const std::size_t rows = std::min(probe_rows_, y.rows());
  const std::size_t row_stride = y.rows() / rows;

  // Mean nearest-neighbour distance over the probe columns: for each
  // probe, the smallest fraction of probed rows that differ by more than
  // eta from any other probe column.
  double total = 0.0;
  for (std::size_t a = 0; a < cols; ++a) {
    const float* ca = y.col(a * col_stride);
    double best = 1.0;
    for (std::size_t b = 0; b < cols; ++b) {
      if (a == b) continue;
      const float* cb = y.col(b * col_stride);
      std::size_t differing = 0;
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t row = r * row_stride;
        if (std::fabs(ca[row] - cb[row]) > eta_) ++differing;
      }
      best = std::min(best, static_cast<double>(differing) /
                                static_cast<double>(rows));
      if (best == 0.0) break;
    }
    total += best;
  }
  last_distance_ = total / static_cast<double>(cols);

  if (last_distance_ <= level_) {
    ++hits_;
  } else {
    hits_ = 0;
  }
  return converged();
}

}  // namespace snicit::core
