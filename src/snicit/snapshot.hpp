// Warm-state snapshots: persist a WarmSnicitEngine's centroid cache (plus
// the threshold-layer bookkeeping that makes it meaningful) so a restarted
// server can skip the cold batch that would otherwise re-derive the class
// representatives — and, because all restarts restore the *same* centroid
// columns, keep serving bit-identically to the run that saved them.
//
// File format (version 1, host-endian — a local artifact like the request
// journal, not a wire format):
//
//   8 bytes   magic "SNICITS1"
//   u32       format version (1)
//   u32       threshold layer t the centroids were captured at
//   u64       rows (neurons)
//   u64       cols (centroid count, > 0)
//   f32[...]  centroid columns, column-major (rows * cols floats)
//   u32       CRC32C over everything between the magic and this field
//
// Failure taxonomy — snapshots are an *optimisation*, so every load
// failure is a typed error the caller can treat as "cold-start instead":
//
//   * kBadModelFile — missing/unreadable file, bad magic, unsupported
//     version, truncated body, CRC mismatch, or zero/absurd dimensions.
//     Stale and corrupt snapshots land here; never an abort.
//   * kResourceExhausted — save-side write/fsync failure, or the
//     `alloc_fail` fault-injection site firing (save never throws
//     bad_alloc at the caller).
#pragma once

#include <cstdint>
#include <string>

#include "platform/error.hpp"
#include "sparse/dense_matrix.hpp"

namespace snicit::core {

/// On-disk image of a warmed engine's conversion state.
struct WarmStateSnapshot {
  std::uint32_t threshold_layer = 0;
  sparse::DenseMatrix centroids;  // neurons x k, k > 0 once loaded
};

/// Writes `state` to `path` (overwriting), fsyncing before close so a
/// crash right after save cannot leave a torn file that looks valid.
/// kBadInput when the state has no centroid columns; kResourceExhausted
/// on IO failure or an injected alloc_fail.
platform::Result<void> save_warm_state(const std::string& path,
                                       const WarmStateSnapshot& state);

/// Reads and validates a snapshot. Any defect — unreadable, wrong magic,
/// wrong version, truncated, checksum mismatch, empty centroid set — is a
/// typed kBadModelFile; callers fall back to a cold start.
platform::Result<WarmStateSnapshot> load_warm_state(const std::string& path);

}  // namespace snicit::core
