// Warm-started conversion: reuse centroids discovered on an earlier batch
// for later batches of the same workload.
//
// The paper's related work (§2.2.2, [25][28]) caches historical
// intermediate results to shortcut repeated queries; SNICIT itself
// re-derives centroids per batch. This extension combines the two: the
// first batch pays for sampling + pruning, and every following batch maps
// its columns straight onto the cached centroid columns — conversion
// drops to a single nearest-centroid pass, and cross-batch results stay
// consistent because all batches share one set of class representatives.
//
// Mechanically, the cached centroids are *appended* to each new batch as
// k extra columns (they must exist in Ŷ for Eq. (5) updates), and the
// recovery step drops them again.
#pragma once

#include <optional>
#include <string>

#include "dnn/engine.hpp"
#include "platform/error.hpp"
#include "snicit/convert.hpp"
#include "snicit/params.hpp"

namespace snicit::core {

/// Centroid columns captured at the threshold layer of some batch.
struct CentroidCache {
  DenseMatrix columns;  // neurons x k snapshot of Y(t) centroid columns

  std::size_t size() const { return columns.cols(); }
  bool empty() const { return columns.cols() == 0; }
};

/// Converts y (at layer t) against *external* centroids: the cache's
/// columns are appended as batch columns [B, B+k) and marked as the
/// centroids; every original column maps to its nearest cached centroid.
CompressedBatch convert_with_cache(const DenseMatrix& y,
                                   const CentroidCache& cache,
                                   float prune_threshold);

/// A SNICIT engine that establishes the centroid cache on its first run
/// and reuses it on every subsequent run (call reset() to invalidate,
/// e.g. on distribution shift). Per-run parameters follow SnicitParams;
/// auto_threshold is not supported (the cache pins t).
class WarmSnicitEngine final : public dnn::InferenceEngine {
 public:
  explicit WarmSnicitEngine(SnicitParams params);

  std::string name() const override { return "SNICIT-warm"; }
  dnn::RunResult run(const dnn::SparseDnn& net,
                     const dnn::DenseMatrix& input) override;

  /// Clones copy the centroid cache: cloning a warmed engine yields a
  /// pool whose members all map batches onto the *same* representatives,
  /// so pooled serving stays bit-identical to serial serving.
  std::unique_ptr<dnn::InferenceEngine> clone() const override {
    return std::make_unique<WarmSnicitEngine>(*this);
  }

  bool warmed() const { return cache_.has_value(); }
  void reset() { cache_.reset(); }
  const CentroidCache& cache() const { return *cache_; }

  /// Persists the centroid cache (versioned, checksummed — see
  /// snicit/snapshot.hpp) so a restarted server warm-starts instead of
  /// paying the cold batch. kBadInput when not warmed;
  /// kResourceExhausted on IO failure or an injected alloc_fail.
  platform::Result<void> save_state(const std::string& path) const;

  /// Restores a cache saved by save_state. Validation is strict and
  /// *typed* — wrong threshold layer, wrong neuron count (when
  /// `expected_neurons` is non-zero), corrupt/stale/truncated file — all
  /// return kBadModelFile so the caller cold-starts; a bad snapshot can
  /// never abort the process or poison served outputs. On success the
  /// engine behaves exactly as if it had been warmed by the saving run.
  platform::Result<void> restore_state(const std::string& path,
                                       std::size_t expected_neurons = 0);

 private:
  SnicitParams params_;
  std::optional<CentroidCache> cache_;
};

}  // namespace snicit::core
