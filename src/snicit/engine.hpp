// The SNICIT inference engine: orchestrates the four pipeline stages of
// Figure 2 — pre-convergence spMM, cluster-based conversion,
// post-convergence update, final results recovery — and reports the
// per-stage breakdown the paper's Figures 7/10 analyse.
#pragma once

#include <vector>

#include "dnn/engine.hpp"
#include "snicit/convert.hpp"
#include "snicit/params.hpp"

namespace snicit::core {

class SnicitEngine final : public dnn::InferenceEngine {
 public:
  explicit SnicitEngine(SnicitParams params = {});

  std::string name() const override { return "SNICIT"; }
  const SnicitParams& params() const { return params_; }

  dnn::RunResult run(const dnn::SparseDnn& net,
                     const dnn::DenseMatrix& input) override;
  void run_into(const dnn::SparseDnn& net, const dnn::DenseMatrix& input,
                platform::Workspace& ws, dnn::RunResult& result) override;

  /// Clones are fully independent: each owns its params and per-run
  /// Trace, so pooled instances never race on diagnostics.
  std::unique_ptr<dnn::InferenceEngine> clone() const override {
    return std::make_unique<SnicitEngine>(*this);
  }

  /// Per-run diagnostics recorded when params.record_trace is set.
  struct Trace {
    int threshold_layer = -1;           // t actually used (auto mode may
                                        // pick earlier than the bound)
    std::size_t centroid_count = 0;     // |y*|
    std::vector<std::size_t> ne_count;  // non-empty columns per post-layer
    std::vector<std::size_t> compressed_nnz;  // nnz(Ŷ) per post-layer
    std::vector<double> change_fraction;      // detector distance trace,
                                              // per pre-convergence layer
    /// Layer at which the divergence guard fired and the run degraded to
    /// the dense baseline path (-1 = stayed on the compressed path).
    int fallback_layer = -1;
  };
  const Trace& last_trace() const { return trace_; }

 private:
  SnicitParams params_;
  Trace trace_;
  platform::Workspace ws_;  // scratch behind the plain run() entry point
};

}  // namespace snicit::core
