// Streaming inference: feeds an arbitrarily large dataset through an
// engine in fixed-size batches, reusing the engine (and its compressed
// state machinery) per batch and aggregating outputs, categories and
// timing. This is the serving-shape of the paper's batch-size study
// (§4.1.4/§4.2.3): throughput as a function of the chosen batch size.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dnn/engine.hpp"
#include "platform/error.hpp"
#include "platform/stats.hpp"

namespace snicit::core {

struct StreamOptions {
  std::size_t batch_size = 1024;
  /// Rows of the output to keep per sample (0 = keep the full activation
  /// column; e.g. 10 keeps only class-score rows to bound memory).
  std::size_t keep_rows = 0;
};

/// Per-lane persistent serving state: the engine workspace plus the
/// cycled RunResult, so a lane that serves batch after batch reuses every
/// buffer (input slice, ping-pong activations, compressed batch, output)
/// and stops allocating once warm. One lane = one ServeScratch; it is not
/// thread-safe.
struct ServeScratch {
  platform::Workspace ws;
  dnn::RunResult run;
};

/// A batch the resilient executor gave up on after exhausting its retry
/// budget (or its deadline): the batch's output columns stay zero, the
/// rest of the stream is unaffected.
struct BatchFailure {
  std::size_t batch = 0;             // batch index (output column slot)
  platform::ErrorCode code = platform::ErrorCode::kWorkerFault;
  std::string message;
  std::size_t attempts = 0;          // tries consumed before giving up
};

struct StreamResult {
  dnn::DenseMatrix outputs;        // keep_rows(or N) x total_samples
  std::vector<double> batch_ms;    // per-batch engine latency, by batch index
  /// Quantile view of batch_ms (p50/p95/p99 serving percentiles).
  platform::QuantileTracker latency;
  /// Serial path: sum of batch_ms. Parallel path: wall time of the whole
  /// run, so throughput() reflects real overlapped serving rate.
  double total_ms = 0.0;
  std::size_t batches = 0;

  /// Fault-tolerance ledger (parallel executor only; always empty/zero on
  /// the serial path, which has no retry machinery).
  std::size_t retries = 0;              // re-dispatches after a worker fault
  std::vector<BatchFailure> failures;   // permanently failed batches
  /// Batches whose engine run degraded mid-network to the dense baseline
  /// path (SNICIT divergence guard; see SnicitEngine fallback_layer).
  std::size_t degraded_batches = 0;

  std::size_t lost_batches() const { return failures.size(); }
  /// True when every sample's output columns were produced.
  bool complete() const { return failures.empty(); }

  double mean_batch_ms() const {
    if (batches == 0) return 0.0;
    double sum = 0.0;
    for (double ms : batch_ms) sum += ms;
    return sum / static_cast<double>(batches);
  }
  /// Samples per second across the whole stream.
  double throughput(std::size_t total_samples) const {
    return total_ms <= 0.0
               ? 0.0
               : 1000.0 * static_cast<double>(total_samples) / total_ms;
  }
};

/// Runs `input` (N x total) through `engine` in batches. The final batch
/// may be smaller. The engine sees each batch independently, exactly like
/// the per-batch runs of the paper's B sweeps.
///
/// `scratch` optionally carries the lane's persistent buffers across
/// calls (a caller serving round after round passes the same one to reach
/// the zero-allocation steady state); null uses call-local scratch.
StreamResult stream_inference(dnn::InferenceEngine& engine,
                              const dnn::SparseDnn& net,
                              const dnn::DenseMatrix& input,
                              const StreamOptions& options = {},
                              ServeScratch* scratch = nullptr);

}  // namespace snicit::core
