// Cluster-based conversion, step 2 (§3.2.1, Algorithm 1): prune redundant
// samples of F so that one representative per class survives. Survivors
// become the centroid columns y*.
#pragma once

#include <vector>

#include "sparse/coo.hpp"
#include "sparse/dense_matrix.hpp"

namespace snicit::core {

using sparse::DenseMatrix;
using sparse::Index;

/// Runs Algorithm 1 on the sample matrix F (n x s).
///
/// Iterates over columns; each surviving column in turn becomes the base,
/// and every later column whose count of elements differing from the base
/// by more than `eta` is below n*epsilon (Eq. 2) is discarded as a
/// duplicate of the base's class. Returns the surviving column indices,
/// sorted ascending — these index into the *sampled* columns, i.e. into
/// the first s columns of Y(t).
std::vector<Index> prune_samples(const DenseMatrix& f, float eta,
                                 float epsilon);

/// Same, into a caller-owned vector (a workspace slot): `survivors` is
/// cleared and refilled, keeping its capacity, and the algorithm's
/// internal arrays live in thread-local scratch — steady-state calls at a
/// stable batch shape never allocate.
void prune_samples_into(const DenseMatrix& f, float eta, float epsilon,
                        std::vector<Index>& survivors);

}  // namespace snicit::core
