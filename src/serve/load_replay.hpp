// Deterministic load replay: the conformance harness that locks down the
// overload-control layer.
//
// The live serving stack decides under the wall clock with real threads,
// which makes its overload behaviour impossible to assert exactly — a
// test that sleeps is a test that flakes. The LoadReplayer solves this by
// running the *same decision logic* (serve/overload.hpp: the admission
// controller, the feasibility predictor, the brownout ladder, the
// packers) against a virtual clock in a single thread:
//
//   * arrivals come from a seeded LoadScript, not from sleeps;
//   * service time is charged by a deterministic service model
//     (base + per-column (+ per-residue-nnz) milliseconds), not measured;
//   * one virtual server serves tenant lanes round-robin, mirroring the
//     Router's serialized-rounds discipline (at most one round in flight
//     process-wide);
//   * every accept / reject / shed / timeout / dispatch / brownout
//     transition lands in the DecisionLog with its virtual timestamp.
//
// The result: shedding decisions, brownout transitions, per-tenant
// latency percentiles, and goodput are exact functions of
// (script, options) — bit-reproducible run over run, assertable without
// tolerances. Engines still run for real (per formed batch, through
// core::stream_inference), so output bit-identity to the serial
// reference is checked *alongside* the scheduling conformance: brownout
// degrades scheduling, never math.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "dnn/engine.hpp"
#include "platform/stats.hpp"
#include "serve/load_script.hpp"
#include "serve/overload.hpp"
#include "serve/packer.hpp"

namespace snicit::serve {

class JournalWriter;  // serve/journal.hpp (which includes this header)

struct ReplayOptions {
  /// Engine batch size (one virtual round serves one engine batch).
  std::size_t max_batch = 16;
  /// Virtual fill window: a lane dispatches when it holds max_batch
  /// requests, when its oldest request has waited this long, or when the
  /// script is exhausted (drain). Deadlines cap the wait like the live
  /// queue's deadline-aware coalescing.
  double batch_timeout_ms = 2.0;
  std::string packer = "similarity";
  double similarity_threshold = 0.75;
  std::size_t keep_rows = 0;
  /// admission.enabled = false replays the uncontrolled baseline: every
  /// arrival is accepted, nothing is shed, the ladder never moves.
  AdmissionOptions admission;

  // Deterministic virtual service-time model: what one engine batch
  // costs on the virtual clock.
  double service_base_ms = 0.5;
  double service_col_ms = 0.25;
  /// Surcharge per output-residue nonzero (see ReplayReport: the replay
  /// residue signal is the batch output's nonzero count — deterministic,
  /// and for SNICIT engines a direct echo of how well inference-time
  /// compression worked on that batch).
  double service_residue_ms = 0.0;
  /// false skips the engines entirely (scheduling-only replay: outputs
  /// empty, residue 0). The offered-load sweeps use this to explore big
  /// grids cheaply.
  bool run_engines = true;

  // Durability hooks (see serve/journal.hpp). The replayer is both the
  // oracle generator and the crash victim of the kill-replay harness:
  // with a journal attached every scripted arrival is appended as an
  // admit and every terminal outcome as a complete, and halting after k
  // batches models a SIGKILL landing between rounds.
  /// Write-ahead journal; append failures are counted in
  /// ReplayReport::journal_errors, never thrown.
  JournalWriter* journal = nullptr;
  /// Journal each admit's sample column so a journal-only replay can
  /// rebuild the input pool without the original matrices.
  bool journal_features = false;
  /// 0 = run to completion. k > 0 = stop dead after the k-th served
  /// batch (no drain, no close — the simulated kill leaves the journal
  /// exactly as a real one would).
  std::size_t halt_after_batches = 0;
  /// Real milliseconds slept per served batch (virtual clock untouched):
  /// widens the window the chaos lane's real SIGKILL must land in.
  double pace_ms = 0.0;
};

/// Terminal outcome of one scripted request.
enum class ReplayOutcome : int {
  kPending = 0,    // never terminal in a finished report
  kRejected = 1,   // refused at admission (typed rejected_overload)
  kShed = 2,       // dropped by the feasibility predictor at dispatch
  kTimedOut = 3,   // deadline expired while queued; triaged at dispatch
  kCompleted = 4,  // served within its budget (or had none)
  kLate = 5,       // served, but past its deadline (wasted service)
  kFailed = 6,     // engine threw while running the batch
};

inline const char* to_string(ReplayOutcome outcome) {
  switch (outcome) {
    case ReplayOutcome::kPending: return "pending";
    case ReplayOutcome::kRejected: return "rejected";
    case ReplayOutcome::kShed: return "shed";
    case ReplayOutcome::kTimedOut: return "timed_out";
    case ReplayOutcome::kCompleted: return "completed";
    case ReplayOutcome::kLate: return "late";
    case ReplayOutcome::kFailed: return "failed";
  }
  return "unknown";
}

/// Per-request replay record, indexed by script event order.
struct ReplayRequest {
  std::size_t index = 0;  // script event index == request id
  std::string tenant;
  std::size_t sample = 0;
  Priority priority = Priority::kStandard;
  double arrive_ms = 0.0;
  double deadline_ms = 0.0;
  ReplayOutcome outcome = ReplayOutcome::kPending;
  double dispatch_ms = -1.0;   // -1: never rode a batch
  double resolved_ms = -1.0;   // when the request left the system
  double latency_ms = 0.0;     // arrive -> resolved (served requests)
  double retry_after_ms = 0.0; // rejection hint
  std::size_t batch = std::numeric_limits<std::size_t>::max();
  std::vector<float> output;   // keep_rows (or all) rows; served only

  bool served() const {
    return outcome == ReplayOutcome::kCompleted ||
           outcome == ReplayOutcome::kLate;
  }
};

struct ReplayBatchRecord {
  std::size_t batch = 0;
  std::string tenant;
  std::vector<std::size_t> request_indices;  // packed column order
  double start_ms = 0.0;
  double service_ms = 0.0;
  double residue_nnz = 0.0;
  BrownoutLevel level = BrownoutLevel::kNormal;
  bool economy = false;  // rode the economy engine tier
};

struct ReplayTenantStats {
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t timed_out = 0;
  std::size_t completed = 0;  // in budget
  std::size_t late = 0;
  std::size_t failed = 0;
  platform::QuantileTracker latency;  // virtual ms over served requests

  double accept_rate() const {
    return submitted == 0
               ? 1.0
               : static_cast<double>(accepted) /
                     static_cast<double>(submitted);
  }
};

struct ReplayReport {
  std::vector<ReplayRequest> requests;  // by script event index
  std::map<std::string, ReplayTenantStats> tenants;
  std::vector<ReplayBatchRecord> batches;
  DecisionLog log;
  double makespan_ms = 0.0;
  int max_brownout_level = 0;
  std::size_t brownout_ups = 0;
  std::size_t brownout_downs = 0;
  /// True when the run stopped at halt_after_batches (simulated kill):
  /// the report is a crash artifact, not a finished session.
  bool halted = false;
  /// Journal appends that failed (alloc_fail drill, full disk). The run
  /// itself continues — durability degrades, serving does not.
  std::size_t journal_errors = 0;

  const ReplayTenantStats& tenant(const std::string& id) const;

  std::size_t submitted() const;
  std::size_t completed() const;  // in-budget completions, all tenants
  std::size_t shed() const;
  std::size_t rejected() const;

  /// In-budget completions per virtual second — the quantity an overload
  /// controller exists to defend.
  double goodput_per_s() const;

  std::uint64_t decision_digest() const { return log.digest(); }
  /// FNV-1a over served outputs in request-id order (shape + float bits):
  /// the golden-digest handle for brownout bit-identity checks.
  std::uint64_t output_digest() const;
};

class LoadReplayer {
 public:
  explicit LoadReplayer(ReplayOptions options);

  /// Registers a tenant lane. `samples` is the tenant's input pool;
  /// scripted sample indices address its columns modulo cols. Engines
  /// and matrices must outlive the replayer. Registration order is the
  /// round-robin order.
  void add_tenant(const std::string& id, dnn::InferenceEngine& engine,
                  const dnn::SparseDnn& net,
                  const dnn::DenseMatrix& samples);

  /// Binds the brownout level-3 economy tier for one tenant. Must serve
  /// the same network (degradation never changes the request contract).
  void set_economy(const std::string& id, dnn::InferenceEngine& engine);

  /// Replays the script from t=0 on a fresh virtual clock and admission
  /// controller. Deterministic: identical (script, options, tenants) ->
  /// bit-identical report, decision log, and outputs.
  ReplayReport run(const LoadScript& script);

  const ReplayOptions& options() const { return options_; }

 private:
  struct Lane {
    std::string id;
    dnn::InferenceEngine* engine = nullptr;
    dnn::InferenceEngine* economy = nullptr;
    const dnn::SparseDnn* net = nullptr;
    const dnn::DenseMatrix* samples = nullptr;
    std::vector<std::size_t> pending;  // request indices, arrival order
  };

  Lane& lane_of(const std::string& id);

  ReplayOptions options_;
  std::vector<Lane> lanes_;
  std::map<std::string, std::size_t> lane_index_;
};

}  // namespace snicit::serve
