// Request-level serving front end: an async RequestQueue accepting
// individual samples, a serving thread that coalesces them into engine
// batches under a max-batch-size / max-wait-timeout policy, and a
// pluggable BatchPacker that orders each round so look-alike samples
// share a batch (raising SNICIT's centroid hit rate and shrinking the
// residues its conversion carries — the paper's intra-batch clustering
// win, applied at the serving layer).
//
// Execution plugs into the existing ParallelStreamExecutor worker pool:
// every serving round assembles its packed requests into one
// column-matrix and streams it through the executor, inheriting the
// engine-pool overlap, per-batch retry with capped backoff, the SNICIT
// dense-fallback degradation ledger, the worker_throw / queue_stall
// fault-injection sites, and the deterministic reassembly contract —
// a request's output is bit-identical to serial stream_inference on the
// same packed samples, whatever the arrival order, worker count, or
// fault drill.
//
// Threading: submit() is safe from any number of client threads; one
// internal server thread runs the collect -> pack -> execute loop; the
// per-round engine pool is the executor's. finish() closes the intake,
// drains, joins, and returns the session report. The engine and network
// passed at construction must outlive the batcher and must not be used
// concurrently elsewhere while it is serving.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dnn/engine.hpp"
#include "platform/error.hpp"
#include "platform/shutdown.hpp"
#include "serve/overload.hpp"
#include "serve/packer.hpp"
#include "serve/request.hpp"
#include "serve/request_queue.hpp"

namespace snicit::core {
class ParallelStreamExecutor;
}

namespace snicit::serve {

class JournalWriter;  // serve/journal.hpp

struct ServeOptions {
  /// Engine batch size the packer slices rounds into (the paper's B).
  std::size_t max_batch = 64;
  /// Attribution label for multi-tenant serving. Empty (the default)
  /// keeps the classic single-model names: `serve.*` metrics and
  /// serve.round/serve.pack trace spans. Non-empty switches every metric
  /// and span to `serve.<tenant>.*`, and additionally attributes the
  /// engine-side `snicit.fallbacks` / `snicit.conversion_residue_nnz`
  /// instruments to the tenant by per-round delta sampling (valid when
  /// rounds are serialized process-wide, as the Router guarantees).
  std::string tenant;
  /// Max time collect() waits to fill a round once a request is pending;
  /// requests with deadlines can shorten the wait (see RequestQueue).
  double batch_timeout_ms = 2.0;
  /// Packing strategy: "fifo" or "similarity".
  std::string packer = "similarity";
  /// SimilarityPacker leader-match threshold (bit-agreement fraction).
  double similarity_threshold = 0.75;
  /// Rows of the output kept per request (0 = full activation column).
  std::size_t keep_rows = 0;
  /// Engine-pool workers per round (ParallelStreamOptions::workers
  /// semantics: 0 sizes from the global pool, 1 serves serially).
  std::size_t workers = 1;
  /// Bound on queued-but-uncollected requests (submit blocks beyond it).
  /// 0 picks 4 * round_limit.
  std::size_t queue_capacity = 0;
  /// Max requests collected per serving round. 0 picks
  /// max_batch * max(2 * effective workers, 2), so a busy intake gives
  /// the round enough batches to overlap across the pool.
  std::size_t round_limit = 0;

  // Fault tolerance, forwarded to the executor per round.
  std::size_t max_attempts = 5;
  double retry_backoff_ms = 1.0;
  double max_backoff_ms = 50.0;

  /// Overload control (serve/overload.hpp). Disabled by default: the
  /// intake blocks on a full queue exactly as before. Enabled, submits
  /// are gated by an AdmissionController (fast-fail kRejectedOverload
  /// instead of blocking), queued sheddable traffic that cannot meet its
  /// deadline is shed at collect time, and the brownout ladder degrades
  /// the round policy (timeout shrink -> FIFO packing -> economy engine)
  /// under sustained pressure.
  AdmissionOptions admission;
  /// Share one controller across batchers (the Router's lanes must see
  /// one ladder and one cost model — pressure is a server property).
  /// When null and admission.enabled, the batcher builds its own.
  std::shared_ptr<AdmissionController> controller;

  // Durability (serve/journal.hpp). With a journal attached every
  // accepted submit is appended (with its features — the journal is the
  // only durable record of the request content) before it can ride a
  // batch, and every terminal result is appended when it resolves.
  // Append failures never fail serving: they are counted in
  // ServeReport::journal_errors.
  std::shared_ptr<JournalWriter> journal;

  /// Shutdown flag the threaded server polls between rounds: once
  /// requested, the intake closes, queued requests are served, and the
  /// report is flushed with drained_on_signal = true. Null polls the
  /// process-wide ShutdownController::global() (the one real signal
  /// handlers mark); tests inject their own.
  const platform::ShutdownController* shutdown = nullptr;
  /// Idle poll interval of the threaded server loop: an idle intake
  /// re-checks the shutdown flag this often instead of blocking forever.
  double shutdown_poll_ms = 25.0;
};

/// Tag selecting the externally-driven batcher mode (no internal server
/// thread; some caller — the multi-model Router — calls drive()).
struct ManualDrive {};

class DynamicBatcher {
 public:
  /// Starts the server thread immediately; requests submitted from this
  /// point on are served as rounds fill (or time out).
  DynamicBatcher(dnn::InferenceEngine& engine, const dnn::SparseDnn& net,
                 ServeOptions options = {});

  /// Manual-drive mode: no server thread is spawned. The owner calls
  /// drive() to serve rounds (single driver at a time — the Router's
  /// round-robin loop), may rebind() the engine between rounds (hot
  /// swap), and finish() drains whatever is still queued.
  DynamicBatcher(dnn::InferenceEngine& engine, const dnn::SparseDnn& net,
                 ServeOptions options, ManualDrive);

  /// Closes the intake and joins the server (the report is discarded —
  /// call finish() to keep it).
  ~DynamicBatcher();

  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;

  /// Enqueues one sample (length must equal the network's neuron count —
  /// kBadInput otherwise). Blocks while the intake is full; kQueueClosed
  /// after finish(). `deadline_ms` is the request's total latency budget
  /// (0 = none). With admission control enabled the submit never blocks:
  /// a refused request fast-fails with kRejectedOverload carrying a
  /// retry-after hint, and `priority` decides how early it is refused
  /// (sheddable first, critical last).
  platform::Result<std::size_t> submit(
      std::vector<float> features, double deadline_ms = 0.0,
      Priority priority = Priority::kStandard);

  /// Closes the intake, serves every request already accepted, joins the
  /// server thread, and returns the session ledger: exactly one
  /// RequestResult per accepted submit, sorted by id. Idempotent — later
  /// calls return an empty report.
  ServeReport finish();

  // --- manual-drive API (valid only after the ManualDrive ctor; the
  // driver thread is the de-facto server thread, one at a time) ---

  /// Serves one round from what is already queued (waiting at most
  /// `wait_ms` for the round to fill further; 0 takes only what is
  /// pending). Returns immediately with false when nothing is pending —
  /// an idle lane never blocks its driver — including after
  /// close_intake() once the queue is drained. Returns true when any
  /// request reached a terminal result.
  bool drive(double wait_ms);

  /// Rebinds future rounds to a different engine (and its net) — the hot
  /// swap primitive. Rounds already served are untouched; requests still
  /// queued ride the new engine from the next drive(). The new net must
  /// have the same neuron count (queued features stay valid).
  void rebind(dnn::InferenceEngine& engine, const dnn::SparseDnn& net);

  /// Closes the intake without draining (finish() or further drive()
  /// calls serve what was already accepted).
  void close_intake() { queue_.close(); }

  /// Requests accepted but not yet collected into a round.
  std::size_t pending() const { return queue_.size(); }
  /// True once the intake is closed and every accepted request has been
  /// collected (the manual driver can retire this batcher).
  bool drained() const { return queue_.closed() && queue_.size() == 0; }
  /// Requests that have reached a terminal result (served, failed, or
  /// timed out). Monotonic; readable from any thread.
  std::size_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }

  /// Binds (or clears, with nullptr) the brownout level-3 economy engine:
  /// rounds served while the ladder sits at kEconomyTier ride it instead
  /// of the bound engine. Must serve the same network — degradation never
  /// changes the request contract. Call from the driver thread between
  /// rounds (manual mode) or before serving starts.
  void set_economy(dnn::InferenceEngine* engine) {
    economy_engine_ = engine;
  }

  /// The overload controller in effect (null when admission is off).
  const std::shared_ptr<AdmissionController>& controller() const {
    return controller_;
  }

  const ServeOptions& options() const { return options_; }
  /// Requests accepted so far.
  std::size_t submitted() const { return queue_.issued(); }

 private:
  DynamicBatcher(dnn::InferenceEngine& engine, const dnn::SparseDnn& net,
                 ServeOptions options, bool manual);

  void serve_loop();
  void serve_round(std::vector<ServeRequest> requests);
  RequestResult& result_slot(std::size_t id);
  /// Appends the terminal outcome of `slot` to the journal (no-op when
  /// none is attached); failures bump journal_errors_.
  void journal_terminal(const RequestResult& slot);

  dnn::InferenceEngine* engine_;
  dnn::InferenceEngine* economy_engine_ = nullptr;
  const dnn::SparseDnn* net_;
  ServeOptions options_;
  std::size_t round_limit_ = 0;
  std::unique_ptr<BatchPacker> packer_;
  /// Built lazily on the first round and reused for every later one, so
  /// its per-lane serving scratch (workspaces, cycled results) persists —
  /// after the warm-up round the serving hot path stops allocating.
  std::unique_ptr<core::ParallelStreamExecutor> executor_;
  FifoPacker fifo_packer_;  // brownout level >= 2 override
  std::shared_ptr<AdmissionController> controller_;
  RequestQueue queue_;
  bool manual_ = false;
  std::string metric_prefix_;        // "serve." or "serve.<tenant>."
  const char* span_round_ = nullptr; // interned when tenant is set
  const char* span_pack_ = nullptr;
  std::atomic<std::size_t> completed_{0};
  /// Failed journal appends; atomic because submit() journals admits on
  /// client threads while the server journals completions.
  std::atomic<std::size_t> journal_errors_{0};
  /// Set when a shutdown signal closed the intake — by the server thread
  /// between rounds, or by submit() when the signal is already pending
  /// (client threads, hence atomic). finish() copies it into the report.
  std::atomic<bool> drained_on_signal_{false};
  ServeReport report_;  // touched only by the (de-facto) server thread
  platform::Stopwatch wall_;
  std::thread server_;
  bool finished_ = false;
};

}  // namespace snicit::serve
