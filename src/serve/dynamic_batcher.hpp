// Request-level serving front end: an async RequestQueue accepting
// individual samples, a serving thread that coalesces them into engine
// batches under a max-batch-size / max-wait-timeout policy, and a
// pluggable BatchPacker that orders each round so look-alike samples
// share a batch (raising SNICIT's centroid hit rate and shrinking the
// residues its conversion carries — the paper's intra-batch clustering
// win, applied at the serving layer).
//
// Execution plugs into the existing ParallelStreamExecutor worker pool:
// every serving round assembles its packed requests into one
// column-matrix and streams it through the executor, inheriting the
// engine-pool overlap, per-batch retry with capped backoff, the SNICIT
// dense-fallback degradation ledger, the worker_throw / queue_stall
// fault-injection sites, and the deterministic reassembly contract —
// a request's output is bit-identical to serial stream_inference on the
// same packed samples, whatever the arrival order, worker count, or
// fault drill.
//
// Threading: submit() is safe from any number of client threads; one
// internal server thread runs the collect -> pack -> execute loop; the
// per-round engine pool is the executor's. finish() closes the intake,
// drains, joins, and returns the session report. The engine and network
// passed at construction must outlive the batcher and must not be used
// concurrently elsewhere while it is serving.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dnn/engine.hpp"
#include "platform/error.hpp"
#include "serve/packer.hpp"
#include "serve/request.hpp"
#include "serve/request_queue.hpp"

namespace snicit::serve {

struct ServeOptions {
  /// Engine batch size the packer slices rounds into (the paper's B).
  std::size_t max_batch = 64;
  /// Max time collect() waits to fill a round once a request is pending;
  /// requests with deadlines can shorten the wait (see RequestQueue).
  double batch_timeout_ms = 2.0;
  /// Packing strategy: "fifo" or "similarity".
  std::string packer = "similarity";
  /// SimilarityPacker leader-match threshold (bit-agreement fraction).
  double similarity_threshold = 0.75;
  /// Rows of the output kept per request (0 = full activation column).
  std::size_t keep_rows = 0;
  /// Engine-pool workers per round (ParallelStreamOptions::workers
  /// semantics: 0 sizes from the global pool, 1 serves serially).
  std::size_t workers = 1;
  /// Bound on queued-but-uncollected requests (submit blocks beyond it).
  /// 0 picks 4 * round_limit.
  std::size_t queue_capacity = 0;
  /// Max requests collected per serving round. 0 picks
  /// max_batch * max(2 * effective workers, 2), so a busy intake gives
  /// the round enough batches to overlap across the pool.
  std::size_t round_limit = 0;

  // Fault tolerance, forwarded to the executor per round.
  std::size_t max_attempts = 5;
  double retry_backoff_ms = 1.0;
  double max_backoff_ms = 50.0;
};

class DynamicBatcher {
 public:
  /// Starts the server thread immediately; requests submitted from this
  /// point on are served as rounds fill (or time out).
  DynamicBatcher(dnn::InferenceEngine& engine, const dnn::SparseDnn& net,
                 ServeOptions options = {});

  /// Closes the intake and joins the server (the report is discarded —
  /// call finish() to keep it).
  ~DynamicBatcher();

  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;

  /// Enqueues one sample (length must equal the network's neuron count —
  /// kBadInput otherwise). Blocks while the intake is full; kQueueClosed
  /// after finish(). `deadline_ms` is the request's total latency budget
  /// (0 = none).
  platform::Result<std::size_t> submit(std::vector<float> features,
                                       double deadline_ms = 0.0);

  /// Closes the intake, serves every request already accepted, joins the
  /// server thread, and returns the session ledger: exactly one
  /// RequestResult per accepted submit, sorted by id. Idempotent — later
  /// calls return an empty report.
  ServeReport finish();

  const ServeOptions& options() const { return options_; }
  /// Requests accepted so far.
  std::size_t submitted() const { return queue_.issued(); }

 private:
  void serve_loop();
  void serve_round(std::vector<ServeRequest> requests);
  RequestResult& result_slot(std::size_t id);

  dnn::InferenceEngine& engine_;
  const dnn::SparseDnn& net_;
  ServeOptions options_;
  std::size_t round_limit_ = 0;
  std::unique_ptr<BatchPacker> packer_;
  RequestQueue queue_;
  ServeReport report_;  // touched only by the server thread until joined
  platform::Stopwatch wall_;
  std::thread server_;
  bool finished_ = false;
};

}  // namespace snicit::serve
