// Seeded arrival traces for the overload-control conformance harness.
//
// A LoadScript is the unit of reproducible load: a sorted list of
// arrival events (time, tenant, sample index, priority, deadline) that
// the LoadReplayer plays against the virtual clock. Scripts come from
// three places:
//
//   * generators — make_load_script(spec) synthesizes the canonical
//     shapes from a seed: Poisson arrivals, a burst dump, a linear ramp
//     into overload, and the adversarial same-deadline storm (every
//     request lands inside one narrow window carrying one shared
//     absolute deadline — the worst case for a feasibility predictor).
//     Identical spec -> identical script, bit for bit.
//
//   * the recorder — LoadScriptRecorder timestamps a live submission
//     stream (e.g. snicit_cli --record-script) into a script, so a real
//     traffic shape can be replayed deterministically afterwards.
//
//   * text round-trip — to_text()/from_text() give scripts a stable
//     on-disk form with typed parse errors, so recorded traces can be
//     checked in as conformance fixtures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "platform/error.hpp"
#include "platform/timer.hpp"
#include "serve/request.hpp"

namespace snicit::serve {

/// One scripted arrival. `sample` indexes the tenant's sample pool
/// (modulo its size), so a script is independent of any particular input
/// matrix.
struct LoadEvent {
  double at_ms = 0.0;
  std::string tenant;
  std::size_t sample = 0;
  Priority priority = Priority::kStandard;
  /// Latency budget from arrival; 0 = none. Storm scripts express their
  /// shared *absolute* deadline as per-event budgets relative to at_ms.
  double deadline_ms = 0.0;

  bool operator==(const LoadEvent& other) const {
    return at_ms == other.at_ms && tenant == other.tenant &&
           sample == other.sample && priority == other.priority &&
           deadline_ms == other.deadline_ms;
  }
};

struct LoadScript {
  std::string name;        // shape label ("poisson", "burst", ...)
  std::uint64_t seed = 0;  // generator seed (0 for recorded scripts)
  std::vector<LoadEvent> events;  // sorted by (at_ms, insertion order)

  /// Stable text form: a header line then one event per line.
  std::string to_text() const;
  /// Typed kBadInput on malformed text. from_text(to_text()) == *this.
  static platform::Result<LoadScript> from_text(const std::string& text);

  /// FNV-1a 64 over to_text() — the script's identity for conformance
  /// assertions.
  std::uint64_t digest() const;

  double duration_ms() const {
    return events.empty() ? 0.0 : events.back().at_ms;
  }
};

/// Generator knobs. Only the fields relevant to `shape` are read.
struct LoadScriptSpec {
  /// poisson | burst | ramp | storm
  std::string shape = "poisson";
  /// Tenants submitting; arrivals of distinct tenants interleave on the
  /// merged timeline. Single-tenant harness runs use {""}.
  std::vector<std::string> tenants = {""};
  std::size_t requests_per_tenant = 64;
  /// Mean inter-arrival gap per tenant (Poisson/ramp), ms.
  double mean_gap_ms = 1.0;
  /// Per-request deadline budget (0 = none). For storm scripts this is
  /// the budget of the *first* arrival; later arrivals share its absolute
  /// deadline.
  double deadline_ms = 0.0;
  /// Priority mix: each request draws sheddable with this probability...
  double sheddable_fraction = 0.0;
  /// ...then critical with this probability; standard otherwise.
  double critical_fraction = 0.0;
  std::uint64_t seed = 42;
  /// Sample-pool size the `sample` indices are drawn from.
  std::size_t samples = 64;
  /// burst: every arrival of the first tenant lands exactly here; other
  /// tenants keep Poisson arrivals (the abusive-neighbour drill).
  double burst_at_ms = 0.0;
  /// ramp: the gap shrinks linearly to mean_gap_ms * ramp_final by the
  /// last request — a controlled walk into overload and (with hysteresis)
  /// back out.
  double ramp_final = 0.25;
  /// storm: all arrivals land uniformly inside [0, storm_window_ms].
  double storm_window_ms = 1.0;
};

/// Deterministic in `spec` (including seed). SNICIT_CHECKs on unknown
/// shapes — a scripted conformance run must not silently fall back.
LoadScript make_load_script(const LoadScriptSpec& spec);

/// Stamps a live submission stream into a script (arrival offsets from
/// the recorder's construction). Not thread-safe; wrap externally if
/// submitters race.
class LoadScriptRecorder {
 public:
  void record(const std::string& tenant, std::size_t sample,
              Priority priority, double deadline_ms);

  std::size_t size() const { return events_.size(); }

  /// The recorded script (name "recorded", seed 0), sorted by time.
  LoadScript script() const;

 private:
  platform::Stopwatch clock_;
  std::vector<LoadEvent> events_;
};

}  // namespace snicit::serve
