// Batch packing strategies for the request-level serving front end.
//
// SNICIT's speedup is a function of intra-batch similarity: the closer
// the columns of a batch, the fewer clusters Y(t) converges into and the
// sparser the residues after conversion (PAPER.md §3.2-3.3). A serving
// system that accepts individual requests therefore gets to *choose* its
// batches — and packing look-alike samples together is free compression.
//
// A BatchPacker turns the set of requests collected for one serving
// round into a packed order; consecutive runs of `max_batch` positions
// form the engine batches. Two strategies ship:
//
//   fifo        arrival order (the baseline every dynamic batcher has)
//   similarity  cheap input-signature bucketing: a 64-bit SimHash sketch
//               per request (sign of seeded random projections over the
//               active features), greedy leader clustering in Hamming
//               space, clusters emitted in first-arrival order
//
// Signatures are deterministic in (seed, input), so packing is a pure
// function of the collected request set — no timing dependence.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace snicit::serve {

/// 64-bit SimHash sketch of one input column: bit b is the sign of the
/// sum of seeded ±1 projections over the nonzero features. Similar
/// inputs agree on most bits; unrelated ones agree on ~half.
using Signature = std::uint64_t;

Signature input_signature(std::span<const float> column,
                          std::uint64_t seed = 0x51c1757ULL);

/// Fraction of agreeing bits in [0, 1] (identical = 1, unrelated ~ 0.5).
double signature_similarity(Signature a, Signature b);

/// Mean pairwise signature similarity of one packed batch (1.0 for
/// batches of a single request — nothing to disagree with).
double mean_pairwise_similarity(std::span<const Signature> signatures);

class BatchPacker {
 public:
  virtual ~BatchPacker() = default;

  virtual std::string name() const = 0;

  /// Returns a permutation of [0, signatures.size()): the packed serving
  /// order of this round's requests. Consecutive chunks of `max_batch`
  /// positions become the engine batches. Must be a valid permutation —
  /// the batcher feeds every request it collected exactly once.
  virtual std::vector<std::size_t> pack(std::span<const Signature> signatures,
                                        std::size_t max_batch) = 0;
};

/// Arrival order, sliced as-is: the policy of a packer-less batcher.
class FifoPacker final : public BatchPacker {
 public:
  std::string name() const override { return "fifo"; }
  std::vector<std::size_t> pack(std::span<const Signature> signatures,
                                std::size_t max_batch) override;
};

/// Greedy leader clustering on signature Hamming similarity: each request
/// joins the first cluster whose leader it matches at >= threshold, else
/// opens a new one; clusters are emitted in first-arrival order, members
/// in arrival order. O(requests x clusters) signature compares per round.
class SimilarityPacker final : public BatchPacker {
 public:
  /// `threshold` in (0.5, 1]: minimum bit-agreement fraction with a
  /// cluster leader. 0.75 tolerates the per-bit noise of ~3% feature
  /// flips while keeping unrelated classes (~0.5 agreement) apart.
  explicit SimilarityPacker(double threshold = 0.75);

  std::string name() const override { return "similarity"; }
  std::vector<std::size_t> pack(std::span<const Signature> signatures,
                                std::size_t max_batch) override;

  double threshold() const { return threshold_; }

 private:
  double threshold_;
};

const std::vector<std::string>& known_packers();

/// Factory used by the CLI/bench flags: "fifo" or "similarity". Unknown
/// names throw a typed kBadInput error (a typo must not silently serve
/// FIFO and report the wrong packing numbers).
std::unique_ptr<BatchPacker> make_packer(const std::string& name,
                                         double similarity_threshold = 0.75);

}  // namespace snicit::serve
