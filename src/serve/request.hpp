// Request-level serving types: one inference request (a single input
// column with an optional latency deadline) and its per-request outcome,
// plus the per-batch and whole-session reports the dynamic batcher
// assembles. These are the units the serving front end deals in — the
// engine layer below it only ever sees packed batches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "platform/error.hpp"
#include "platform/stats.hpp"
#include "platform/timer.hpp"
#include "serve/packer.hpp"

namespace snicit::serve {

/// Priority class a request is submitted under. Under overload the
/// admission controller refuses sheddable traffic first (its intake caps
/// are scaled down) and the deadline-feasibility predictor drops queued
/// sheddable requests that can no longer meet their budget; critical
/// traffic is the last to be refused. Ordering is meaningful: higher
/// values are served first within a lane.
enum class Priority : int {
  kSheddable = 0,
  kStandard = 1,
  kCritical = 2,
};

inline const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kSheddable: return "sheddable";
    case Priority::kStandard: return "standard";
    case Priority::kCritical: return "critical";
  }
  return "unknown";
}

/// Parses "sheddable" | "standard" | "critical"; kBadInput otherwise.
platform::Result<Priority> parse_priority(const std::string& name);

/// One pending request: a single sample (length = network neurons) with
/// the wall-clock age used for queue-wait accounting and deadlines.
struct ServeRequest {
  std::size_t id = 0;
  std::vector<float> features;
  /// Total latency budget measured from submit; a request still queued
  /// (or collected but not yet dispatched) past its deadline fails with
  /// kTimeout instead of riding a batch. 0 disables the deadline.
  double deadline_ms = 0.0;
  Priority priority = Priority::kStandard;
  platform::Stopwatch age{};  // started at submit
};

/// Terminal outcome of one request. Exactly one is produced per accepted
/// submit — a request is never dropped or duplicated, whatever the
/// arrival order, packer, worker count, or fault drill.
struct RequestResult {
  std::size_t id = 0;
  /// keep_rows (or all) rows of the request's output column; empty when
  /// the request failed (code != kOk).
  std::vector<float> output;
  platform::ErrorCode code = platform::ErrorCode::kOk;
  std::string message;
  std::size_t attempts = 0;   // engine-batch tries consumed (0: never ran)
  double queue_ms = 0.0;      // submit -> collected by the batcher
  double batch_ms = 0.0;      // engine latency of the batch it rode
  double latency_ms = 0.0;    // submit -> result available (wall)
  std::size_t round = 0;      // serving round the request rode
  std::size_t batch = 0;      // engine batch index within the session
  std::size_t batch_cols = 0; // how many requests shared that batch

  bool ok() const { return code == platform::ErrorCode::kOk; }
};

/// One engine batch as the batcher formed it: which requests rode it (in
/// packed column order), how full it was, and how alike its members were.
struct ServeBatchRecord {
  std::size_t round = 0;
  std::size_t batch = 0;                 // session-wide batch index
  std::vector<std::size_t> request_ids;  // packed column order
  double fill = 0.0;                     // request_ids.size() / max_batch
  double similarity = 1.0;               // mean pairwise signature sim.
  double engine_ms = 0.0;
  bool failed = false;
  platform::ErrorCode code = platform::ErrorCode::kOk;
};

/// Whole-session ledger returned by DynamicBatcher::finish().
struct ServeReport {
  std::vector<RequestResult> results;      // sorted by request id
  std::vector<ServeBatchRecord> batch_log; // every engine batch formed
  std::size_t requests = 0;
  std::size_t rounds = 0;
  std::size_t batches = 0;
  std::size_t retries = 0;            // engine-batch retries (worker faults)
  std::size_t degraded_batches = 0;   // SNICIT dense-fallback batches
  std::size_t failed_requests = 0;    // terminal non-timeout failures
  std::size_t timed_out_requests = 0; // deadline expiries
  /// Accepted requests dropped by the overload controller before riding a
  /// batch (sheddable traffic the feasibility predictor gave up on); their
  /// results carry kRejectedOverload.
  std::size_t shed_requests = 0;
  /// Highest brownout-ladder level the session reached (0 = never browned
  /// out; see serve/overload.hpp).
  int max_brownout_level = 0;
  /// True when a shutdown signal (SIGTERM/SIGINT, or a synthesized
  /// request) closed the intake: the session drained gracefully instead
  /// of running to a natural finish. The CLI maps this to exit code 5.
  bool drained_on_signal = false;
  /// Write-ahead journal appends that failed (alloc_fail drill, full
  /// disk). Serving continues; durability for those records is lost.
  std::size_t journal_errors = 0;
  double total_ms = 0.0;              // server start -> drained
  platform::QuantileTracker latency;    // per-request latency_ms
  platform::QuantileTracker queue_wait; // per-request queue_ms

  bool complete() const {
    return failed_requests == 0 && timed_out_requests == 0 &&
           shed_requests == 0;
  }
  double throughput() const {
    return total_ms <= 0.0
               ? 0.0
               : 1000.0 * static_cast<double>(requests) / total_ms;
  }
  double mean_fill() const {
    if (batch_log.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& b : batch_log) sum += b.fill;
    return sum / static_cast<double>(batch_log.size());
  }
  double mean_similarity() const {
    if (batch_log.empty()) return 1.0;
    double sum = 0.0;
    for (const auto& b : batch_log) sum += b.similarity;
    return sum / static_cast<double>(batch_log.size());
  }
};

}  // namespace snicit::serve
