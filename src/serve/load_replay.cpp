#include "serve/load_replay.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <thread>

#include "platform/common.hpp"
#include "snicit/stream.hpp"
#include "serve/journal.hpp"
#include "serve/virtual_clock.hpp"

namespace snicit::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t hash) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

// --- ReplayReport ----------------------------------------------------

const ReplayTenantStats& ReplayReport::tenant(const std::string& id) const {
  static const ReplayTenantStats kEmpty;
  auto it = tenants.find(id);
  return it == tenants.end() ? kEmpty : it->second;
}

std::size_t ReplayReport::submitted() const { return requests.size(); }

std::size_t ReplayReport::completed() const {
  std::size_t n = 0;
  for (const auto& [id, stats] : tenants) n += stats.completed;
  return n;
}

std::size_t ReplayReport::shed() const {
  std::size_t n = 0;
  for (const auto& [id, stats] : tenants) n += stats.shed;
  return n;
}

std::size_t ReplayReport::rejected() const {
  std::size_t n = 0;
  for (const auto& [id, stats] : tenants) n += stats.rejected;
  return n;
}

double ReplayReport::goodput_per_s() const {
  return makespan_ms <= 0.0
             ? 0.0
             : 1000.0 * static_cast<double>(completed()) / makespan_ms;
}

std::uint64_t ReplayReport::output_digest() const {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const ReplayRequest& r : requests) {
    if (!r.served()) continue;
    const auto index = static_cast<std::uint64_t>(r.index);
    const auto rows = static_cast<std::uint64_t>(r.output.size());
    hash = fnv1a(&index, sizeof(index), hash);
    hash = fnv1a(&rows, sizeof(rows), hash);
    hash = fnv1a(r.output.data(), r.output.size() * sizeof(float), hash);
  }
  return hash;
}

// --- LoadReplayer ----------------------------------------------------

LoadReplayer::LoadReplayer(ReplayOptions options)
    : options_(std::move(options)) {
  SNICIT_CHECK(options_.max_batch >= 1, "replay max_batch must be >= 1");
  SNICIT_CHECK(options_.batch_timeout_ms >= 0.0,
               "replay batch timeout must be >= 0");
  SNICIT_CHECK(options_.service_base_ms >= 0.0 &&
                   options_.service_col_ms >= 0.0 &&
                   options_.service_residue_ms >= 0.0,
               "replay service model must be non-negative");
}

void LoadReplayer::add_tenant(const std::string& id,
                              dnn::InferenceEngine& engine,
                              const dnn::SparseDnn& net,
                              const dnn::DenseMatrix& samples) {
  SNICIT_CHECK(lane_index_.count(id) == 0,
               "replay tenant registered twice");
  SNICIT_CHECK(samples.cols() >= 1, "replay tenant needs a sample pool");
  lane_index_[id] = lanes_.size();
  Lane lane;
  lane.id = id;
  lane.engine = &engine;
  lane.net = &net;
  lane.samples = &samples;
  lanes_.push_back(std::move(lane));
}

void LoadReplayer::set_economy(const std::string& id,
                               dnn::InferenceEngine& engine) {
  lane_of(id).economy = &engine;
}

LoadReplayer::Lane& LoadReplayer::lane_of(const std::string& id) {
  auto it = lane_index_.find(id);
  SNICIT_CHECK(it != lane_index_.end(),
               "load script names an unregistered tenant");
  return lanes_[it->second];
}

ReplayReport LoadReplayer::run(const LoadScript& script) {
  for (Lane& lane : lanes_) lane.pending.clear();

  // Fresh controller per run: replays are independent experiments. The
  // log is always recorded — the decision digest is the harness's oracle.
  AdmissionOptions admission = options_.admission;
  admission.record_decisions = true;
  AdmissionController controller(admission);
  const bool gated = admission.enabled;

  ReplayReport report;
  report.requests.resize(script.events.size());

  VirtualClock clock;
  double server_free_ms = 0.0;
  std::size_t next_event = 0;
  std::size_t cursor = 0;  // round-robin lane cursor

  auto configured_packer =
      make_packer(options_.packer, options_.similarity_threshold);
  FifoPacker fifo_packer;

  // Durability hooks: admits/completes land in the journal as decisions
  // happen on the virtual timeline. Append failures degrade the journal
  // (counted), never the run.
  auto journal_admit = [&](const ReplayRequest& request, const Lane& lane) {
    if (options_.journal == nullptr) return;
    JournalAdmit admit;
    admit.id = request.index;
    admit.tenant = request.tenant;
    admit.sample = request.sample;
    admit.priority = request.priority;
    admit.arrive_ms = request.arrive_ms;
    admit.deadline_ms = request.deadline_ms;
    if (options_.journal_features) {
      const std::size_t column = request.sample % lane.samples->cols();
      admit.features.assign(lane.samples->col(column),
                            lane.samples->col(column) + lane.samples->rows());
    }
    if (!options_.journal->append_admit(admit).ok()) {
      report.journal_errors += 1;
    }
  };
  auto journal_complete = [&](const ReplayRequest& request) {
    if (options_.journal == nullptr) return;
    JournalComplete complete;
    complete.id = request.index;
    switch (request.outcome) {
      case ReplayOutcome::kCompleted:
      case ReplayOutcome::kLate:
        complete.code = platform::ErrorCode::kOk;
        complete.output_digest = output_digest64(request.output);
        break;
      case ReplayOutcome::kRejected:
      case ReplayOutcome::kShed:
        complete.code = platform::ErrorCode::kRejectedOverload;
        break;
      case ReplayOutcome::kTimedOut:
        complete.code = platform::ErrorCode::kTimeout;
        break;
      case ReplayOutcome::kFailed:
        complete.code = platform::ErrorCode::kWorkerFault;
        break;
      case ReplayOutcome::kPending:
        return;  // not terminal; nothing to journal
    }
    if (!options_.journal->append_complete(complete).ok()) {
      report.journal_errors += 1;
    }
  };

  // Accept or reject one scripted arrival at its timestamp.
  auto arrive = [&](std::size_t index) {
    const LoadEvent& event = script.events[index];
    Lane& lane = lane_of(event.tenant);
    ReplayRequest& request = report.requests[index];
    request.index = index;
    request.tenant = event.tenant;
    request.sample = event.sample;
    request.priority = event.priority;
    request.arrive_ms = event.at_ms;
    request.deadline_ms = event.deadline_ms;
    ReplayTenantStats& stats = report.tenants[event.tenant];
    stats.submitted += 1;
    // Every arrival is journaled — a rejection is still a question the
    // client asked, and its typed answer is journaled right behind it so
    // replay knows not to re-deliver.
    journal_admit(request, lane);
    if (gated) {
      const AdmissionVerdict verdict =
          controller.admit(event.tenant, event.priority, event.at_ms);
      if (!verdict.admitted) {
        request.outcome = ReplayOutcome::kRejected;
        request.resolved_ms = event.at_ms;
        request.retry_after_ms = verdict.retry_after_ms;
        stats.rejected += 1;
        journal_complete(request);
        return;
      }
    }
    stats.accepted += 1;
    lane.pending.push_back(index);
  };

  // Serve one batch from `lane` at the current virtual time.
  auto serve_lane = [&](Lane& lane) {
    const double now = clock.now_ms();
    std::vector<std::size_t> taken;
    taken.reserve(options_.max_batch);
    std::size_t removed = 0;
    while (taken.size() < options_.max_batch && !lane.pending.empty()) {
      // Highest priority first; arrival order breaks ties (pending is in
      // arrival order, so the first max-priority element is the oldest).
      std::size_t pick = 0;
      for (std::size_t i = 1; i < lane.pending.size(); ++i) {
        const auto& a = report.requests[lane.pending[i]];
        const auto& best = report.requests[lane.pending[pick]];
        if (static_cast<int>(a.priority) >
            static_cast<int>(best.priority)) {
          pick = i;
        }
      }
      const std::size_t index = lane.pending[pick];
      lane.pending.erase(lane.pending.begin() +
                         static_cast<std::ptrdiff_t>(pick));
      removed += 1;
      ReplayRequest& request = report.requests[index];
      ReplayTenantStats& stats = report.tenants[request.tenant];
      const double age = now - request.arrive_ms;
      if (request.deadline_ms > 0.0 && age > request.deadline_ms) {
        request.outcome = ReplayOutcome::kTimedOut;
        request.resolved_ms = now;
        stats.timed_out += 1;
        controller.record_timeout(request.tenant, index, request.priority,
                                  now);
        journal_complete(request);
        continue;
      }
      if (gated && request.priority == Priority::kSheddable &&
          request.deadline_ms > 0.0) {
        const double slack = request.deadline_ms - age;
        if (controller.infeasible(slack, taken.size() + 1)) {
          request.outcome = ReplayOutcome::kShed;
          request.resolved_ms = now;
          stats.shed += 1;
          controller.record_shed(request.tenant, index, request.priority,
                                 slack, now);
          journal_complete(request);
          continue;
        }
      }
      taken.push_back(index);
    }
    controller.on_collected(lane.id, removed);
    if (taken.empty()) return;

    const BrownoutLevel level = controller.level();
    const std::size_t cols = taken.size();

    // Pack: signatures are a pure function of each request's sample
    // column, so the packed order is deterministic.
    std::vector<Signature> signatures(cols);
    for (std::size_t i = 0; i < cols; ++i) {
      const ReplayRequest& request = report.requests[taken[i]];
      const std::size_t column = request.sample % lane.samples->cols();
      signatures[i] = input_signature(lane.samples->col_span(column));
    }
    BatchPacker& packer =
        static_cast<int>(level) >=
                static_cast<int>(BrownoutLevel::kFifoPack)
            ? static_cast<BatchPacker&>(fifo_packer)
            : *configured_packer;
    const std::vector<std::size_t> order =
        packer.pack(signatures, options_.max_batch);
    SNICIT_CHECK(order.size() == cols, "packer broke the permutation");

    const bool economy =
        static_cast<int>(level) >=
            static_cast<int>(BrownoutLevel::kEconomyTier) &&
        lane.economy != nullptr;
    dnn::InferenceEngine* engine = economy ? lane.economy : lane.engine;

    ReplayBatchRecord batch;
    batch.batch = report.batches.size();
    batch.tenant = lane.id;
    batch.start_ms = now;
    batch.level = level;
    batch.economy = economy;
    batch.request_indices.reserve(cols);
    for (std::size_t j = 0; j < cols; ++j) {
      batch.request_indices.push_back(taken[order[j]]);
    }

    double residue_nnz = 0.0;
    bool failed = false;
    core::StreamResult result;
    if (options_.run_engines) {
      dnn::DenseMatrix input(lane.samples->rows(), cols);
      for (std::size_t j = 0; j < cols; ++j) {
        const ReplayRequest& request =
            report.requests[batch.request_indices[j]];
        const std::size_t column = request.sample % lane.samples->cols();
        std::copy_n(lane.samples->col(column), lane.samples->rows(),
                    input.col(j));
      }
      try {
        result = core::stream_inference(
            *engine, *lane.net, input,
            {/*batch_size=*/cols, /*keep_rows=*/options_.keep_rows});
        // The replay residue signal: the batch output's nonzero count. A
        // deterministic stand-in for conversion_residue_nnz with the same
        // meaning — how much the batch resisted compression.
        residue_nnz = static_cast<double>(result.outputs.count_nonzeros());
      } catch (const std::exception&) {
        failed = true;
      }
    }

    const double service_ms =
        options_.service_base_ms +
        options_.service_col_ms * static_cast<double>(cols) +
        options_.service_residue_ms * residue_nnz;
    const double complete = now + service_ms;
    server_free_ms = complete;
    batch.service_ms = service_ms;
    batch.residue_nnz = residue_nnz;

    for (std::size_t j = 0; j < cols; ++j) {
      const std::size_t index = batch.request_indices[j];
      ReplayRequest& request = report.requests[index];
      ReplayTenantStats& stats = report.tenants[request.tenant];
      request.dispatch_ms = now;
      request.resolved_ms = complete;
      request.batch = batch.batch;
      controller.record_dispatch(request.tenant, index, request.priority,
                                 static_cast<double>(batch.batch), now);
      if (failed) {
        request.outcome = ReplayOutcome::kFailed;
        stats.failed += 1;
        continue;
      }
      request.latency_ms = complete - request.arrive_ms;
      const bool late = request.deadline_ms > 0.0 &&
                        request.latency_ms > request.deadline_ms;
      request.outcome =
          late ? ReplayOutcome::kLate : ReplayOutcome::kCompleted;
      if (late) {
        stats.late += 1;
      } else {
        stats.completed += 1;
      }
      stats.latency.add(request.latency_ms);
      if (options_.run_engines) {
        const auto rows = result.outputs.rows();
        request.output.assign(result.outputs.col(j),
                              result.outputs.col(j) + rows);
      }
    }
    // Journal the batch's terminal outcomes after outputs are assigned
    // (the completion digest covers the delivered bits).
    for (std::size_t j = 0; j < cols; ++j) {
      journal_complete(report.requests[batch.request_indices[j]]);
    }
    if (options_.pace_ms > 0.0) {
      // Real-time pacing for the chaos lane: the virtual clock is
      // untouched, the process just lingers so a SIGKILL has a run to hit.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(options_.pace_ms));
    }

    controller.on_round(lane.id, cols, service_ms, residue_nnz, complete);
    report.max_brownout_level = std::max(
        report.max_brownout_level, static_cast<int>(controller.level()));
    report.batches.push_back(std::move(batch));
  };

  // Discrete-event loop: the clock jumps to whichever comes first — the
  // next scripted arrival or the earliest instant some lane can dispatch
  // on the shared server. Arrivals win ties so a request landing exactly
  // at a dispatch instant is considered for that batch, like a live queue
  // drained after the enqueue.
  while (true) {
    const double next_arrival = next_event < script.events.size()
                                    ? script.events[next_event].at_ms
                                    : kInf;
    const bool draining = next_event >= script.events.size();
    const double eff_timeout =
        controller.effective_timeout_ms(options_.batch_timeout_ms);

    double best_at = kInf;
    std::size_t best_lane = 0;
    for (std::size_t k = 0; k < lanes_.size(); ++k) {
      const std::size_t li = (cursor + k) % lanes_.size();
      const Lane& lane = lanes_[li];
      if (lane.pending.empty()) continue;
      double ready;
      if (lane.pending.size() >= options_.max_batch || draining) {
        ready = clock.now_ms();
      } else {
        // Fill window from the oldest pending arrival, capped by the
        // earliest deadline expiry (deadline-aware coalescing: never
        // idle-wait a request to death).
        const ReplayRequest& oldest =
            report.requests[lane.pending.front()];
        double fill_at = oldest.arrive_ms + eff_timeout;
        for (std::size_t index : lane.pending) {
          const ReplayRequest& request = report.requests[index];
          if (request.deadline_ms > 0.0) {
            fill_at = std::min(fill_at,
                               request.arrive_ms + request.deadline_ms);
          }
        }
        ready = std::max(fill_at, clock.now_ms());
      }
      const double at = std::max(ready, server_free_ms);
      if (at < best_at) {
        best_at = at;
        best_lane = li;
      }
    }

    if (best_at == kInf) {
      if (draining) break;
      clock.advance_to(next_arrival);
      while (next_event < script.events.size() &&
             script.events[next_event].at_ms <= clock.now_ms()) {
        arrive(next_event);
        next_event += 1;
      }
      continue;
    }
    if (next_arrival <= best_at) {
      clock.advance_to(next_arrival);
      while (next_event < script.events.size() &&
             script.events[next_event].at_ms <= clock.now_ms()) {
        arrive(next_event);
        next_event += 1;
      }
      continue;
    }
    clock.advance_to(best_at);
    serve_lane(lanes_[best_lane]);
    cursor = (best_lane + 1) % lanes_.size();
    if (options_.halt_after_batches > 0 &&
        report.batches.size() >= options_.halt_after_batches) {
      // Simulated SIGKILL: stop dead between rounds. No drain, no
      // journal close — pending requests stay unanswered, exactly the
      // crash artifact replay_journal() exists to finish.
      report.halted = true;
      break;
    }
  }

  report.makespan_ms = std::max(clock.now_ms(), server_free_ms);
  report.max_brownout_level = std::max(
      report.max_brownout_level,
      static_cast<int>(controller.level()));
  report.brownout_ups =
      static_cast<std::size_t>(controller.brownout_escalations());
  report.brownout_downs =
      static_cast<std::size_t>(controller.brownout_deescalations());
  report.log = controller.take_log();
  return report;
}

}  // namespace snicit::serve
