// Write-ahead request journal: the durability backbone of the serving
// stack. Every admitted request is appended *before* it can ride a
// batch, and every terminal outcome is appended when it resolves, so a
// process killed mid-run leaves behind exactly the information needed to
// finish the work: which requests were accepted, and which of them never
// got an answer.
//
// Format (binary, little-endian):
//
//   8-byte magic "SNICITJ1"
//   repeated records:  u32 payload_len | u32 crc32c(payload) | payload
//
// Payload starts with a u8 record type:
//
//   1 = Admit:    u64 id, u32 tenant_len, tenant bytes, u64 sample,
//                 u8 priority, f64 arrive_ms, f64 deadline_ms,
//                 u32 feature_count, f32 features[feature_count]
//   2 = Complete: u64 id, i32 error_code, u64 output_digest
//                 (FNV-1a over the served output; 0 when none)
//
// CRC32C per record means a torn tail — the signature a SIGKILL'd
// append leaves — is *detected and truncated*, never parsed: the reader
// recovers the longest valid prefix and reports how the tail died. Only
// a bad magic or an unreadable file is a hard error; torn tails are the
// expected crash artifact.
//
// Recovery contract (`replay_journal`): the journal partitions admitted
// requests into a *suppressed* set (completion journaled — the client
// already has its answer) and a *resubmitted* set (admitted, never
// resolved). Replay re-runs the deterministic load script through the
// virtual-clock LoadReplayer, which reproduces the uninterrupted run's
// batch compositions exactly — and therefore its outputs bit-identically
// (batch composition affects fp accumulation order and SNICIT centroid
// capture, so suffix-only re-batching could not make that promise).
// Journaled completion digests are cross-checked against the replayed
// outputs, so a divergence between what was delivered pre-crash and what
// replay reproduces is detected, not papered over.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "platform/error.hpp"
#include "serve/load_replay.hpp"
#include "serve/load_script.hpp"
#include "serve/request.hpp"

namespace snicit::serve {

/// FNV-1a 64 over an output column: length then float bits. The one
/// digest both the live batcher (journaling completions) and the replay
/// cross-check compute, so they can be compared at all.
std::uint64_t output_digest64(const std::vector<float>& output);

/// When appends hit the disk platter.
enum class FsyncPolicy : int {
  kNone = 0,    // OS page cache decides; fastest, loses the tail on crash
  kAlways = 1,  // fsync after every record; the durability the tests pin
};

platform::Result<FsyncPolicy> parse_fsync_policy(const std::string& name);

/// One journaled admission.
struct JournalAdmit {
  std::uint64_t id = 0;
  std::string tenant;
  std::uint64_t sample = 0;
  Priority priority = Priority::kStandard;
  double arrive_ms = 0.0;
  double deadline_ms = 0.0;
  std::vector<float> features;  // empty unless the writer journals them
};

/// One journaled completion.
struct JournalComplete {
  std::uint64_t id = 0;
  platform::ErrorCode code = platform::ErrorCode::kOk;
  std::uint64_t output_digest = 0;  // 0: no output (rejection/failure)
};

/// Append-only writer. Thread-safe: submit() paths on client threads and
/// completion paths on the server thread interleave appends under an
/// internal mutex. Append failures are typed (kResourceExhausted for the
/// alloc_fail fault site and write errors) so a full disk degrades the
/// journal, never crashes a worker.
class JournalWriter {
 public:
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Creates/truncates `path` and writes the magic.
  static platform::Result<std::unique_ptr<JournalWriter>> open(
      const std::string& path, FsyncPolicy fsync = FsyncPolicy::kAlways);

  platform::Result<void> append_admit(const JournalAdmit& admit);
  platform::Result<void> append_complete(const JournalComplete& complete);

  /// Flushes (per policy) and closes the fd. Idempotent; destructor
  /// closes without fsync (a crash is the scenario we journal *for*).
  void close();

  const std::string& path() const { return path_; }

 private:
  explicit JournalWriter(std::string path, int fd, FsyncPolicy fsync);

  platform::Result<void> append_record(const std::vector<std::uint8_t>& payload);

  std::string path_;
  int fd_ = -1;
  FsyncPolicy fsync_ = FsyncPolicy::kAlways;
  std::mutex mutex_;
};

/// Everything a journal file contained, plus how its tail died.
struct JournalContents {
  std::vector<JournalAdmit> admits;        // append order
  std::vector<JournalComplete> completes;  // append order
  /// True when the file ended in a torn or corrupt record: the valid
  /// prefix above is what survived. This is the normal post-SIGKILL
  /// state, not an error.
  bool truncated_tail = false;
  std::string truncation_reason;  // "torn record at offset N", "crc mismatch..."
};

/// Reads the longest valid record prefix. Hard kBadModelFile only for an
/// unreadable file or wrong magic; torn/corrupt tails set truncated_tail.
platform::Result<JournalContents> read_journal(const std::string& path);

/// One tenant's serving substrate for replay. `samples` may be null when
/// the journal carries features (journal-only reconstruction): the
/// replay builds the pool from the journaled feature columns.
struct JournalTenant {
  dnn::InferenceEngine* engine = nullptr;
  const dnn::SparseDnn* net = nullptr;
  const dnn::DenseMatrix* samples = nullptr;
};

struct JournalReplayResult {
  ReplayReport report;
  /// Request ids whose completion was journaled pre-crash: replay
  /// recomputes them (the full script runs for bit-identity) but they
  /// must NOT be re-delivered to clients.
  std::vector<std::uint64_t> suppressed;
  /// Request ids admitted but never resolved — the incomplete suffix the
  /// replay exists to answer.
  std::vector<std::uint64_t> resubmitted;
  /// Journaled completion digests that disagree with the replayed
  /// output. Nonzero means the pre-crash run and the replay diverged —
  /// the property the chaos lane exists to falsify.
  std::size_t digest_mismatches = 0;
  bool truncated_tail = false;

  std::uint64_t decision_digest() const { return report.decision_digest(); }
  std::uint64_t output_digest() const { return report.output_digest(); }
};

/// Replays a crashed run to completion.
///
/// Script-anchored mode (`script` non-null): the journal's admit prefix
/// is validated event-for-event against the script (admit i must be
/// script event i — a journal from a different script is kBadInput), and
/// the *full* script is replayed, reproducing the uninterrupted run's
/// batch compositions and outputs bit-identically for every engine,
/// SNICIT included.
///
/// Journal-only mode (`script` null): the script is reconstructed from
/// the journaled admits (requires journaled features when a tenant's
/// `samples` pool is null). Batch compositions then depend on what was
/// admitted, so digest cross-checks are guaranteed only for
/// column-independent engines (reference/serial); SNICIT replays still
/// complete, but warm-state-dependent outputs may legitimately differ.
platform::Result<JournalReplayResult> replay_journal(
    const JournalContents& contents, const LoadScript* script,
    const std::map<std::string, JournalTenant>& tenants,
    const ReplayOptions& options);

}  // namespace snicit::serve
