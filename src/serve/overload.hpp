// Overload control for the serving stack: admission control, priority
// load shedding, and an adaptive brownout ladder.
//
// The north star is sustained heavy traffic, and the failure mode of an
// uncontrolled intake is classic congestion collapse: a burst grows the
// queue without bound, queue wait crosses every request's deadline, and
// the server spends its capacity finishing work that is already too late
// to be useful. The cure is sold in three parts, all decided here:
//
//   * AdmissionController — bounded per-tenant intake. Two caps: a queue
//     *depth* cap and an estimated-*work* cap (queued columns priced by
//     an EWMA cost model fed with recent batch latencies and SNICIT's
//     conversion_residue_nnz — inference-time compression makes per-batch
//     cost variable, so the controller tracks it instead of assuming it).
//     A refused submit fast-fails with the typed kRejectedOverload error
//     and a retry-after hint rather than blocking the client.
//
//   * Priority load shedding — requests carry a Priority class. Sheddable
//     traffic is refused earlier (its caps are scaled by
//     sheddable_headroom) and, once queued, is dropped at dispatch time
//     whenever the deadline-feasibility predictor says it cannot meet its
//     budget anyway — the engine never burns cycles on work that will be
//     thrown away.
//
//   * BrownoutLadder — under sustained pressure the stack degrades
//     *scheduling* before it degrades *service*: level 1 shrinks the
//     batch fill-timeout (stop waiting for prettier batches), level 2
//     switches the packer to FIFO (stop paying for similarity packing),
//     level 3 routes rounds to a cheaper engine tier when one is bound.
//     Every step is reversible with hysteresis (entering takes
//     enter_rounds of pressure >= enter_pressure; leaving takes
//     exit_rounds of pressure <= exit_pressure) so the ladder cannot
//     flap. Degradation never changes the math of an accepted request —
//     outputs stay bit-identical to serial stream_inference at every
//     level; the brownout conformance suite locks that down.
//
// Everything here is clock-agnostic and deterministic: every entry point
// takes an explicit `now_ms`, so the identical decision logic runs under
// the wall clock in live serving and under the virtual clock in the
// load-replay conformance harness (serve/load_replay.hpp). Decisions can
// be recorded into a DecisionLog whose canonical text serialization (and
// FNV-1a digest) is bit-reproducible across runs.
//
// Attribution: when the global metrics registry is enabled the controller
// maintains serve.overload.accepted / .rejected / .shed counters, the
// serve.overload.brownout_level / .pressure gauges, and emits a
// serve.overload.brownout trace span on every ladder transition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "platform/error.hpp"
#include "serve/request.hpp"

namespace snicit::serve {

// --- EWMA cost model -------------------------------------------------

struct CostModelOptions {
  /// EWMA smoothing factor in (0, 1]: weight of the newest observation.
  double alpha = 0.25;
  /// Per-column service-cost prior (ms) used before any batch completes.
  double initial_col_ms = 0.25;
  /// Extra estimated milliseconds per smoothed residue nonzero: SNICIT
  /// batches with heavy post-conversion residues cost more than their
  /// column count suggests, and the residue EWMA is the leading signal.
  double residue_ms_per_nnz = 0.0;
};

/// Exponentially-weighted estimate of what a batch costs: ms per column
/// from recent batch latencies plus a residue surcharge from recent
/// conversion_residue_nnz readings. Deterministic in its observation
/// sequence; not internally synchronized (the controller serializes).
class EwmaCostModel {
 public:
  explicit EwmaCostModel(CostModelOptions options = {});

  /// One finished batch: `cols` columns served in `batch_ms` with
  /// `residue_nnz` post-conversion residue nonzeros (0 for engines that
  /// do not report one). Batches with cols == 0 or batch_ms <= 0 are
  /// ignored (a failed round teaches the model nothing about cost).
  void observe(std::size_t cols, double batch_ms, double residue_nnz);

  double col_ms() const { return col_ms_; }
  double residue_nnz() const { return residue_nnz_; }
  std::size_t observations() const { return observations_; }

  /// Estimated service cost of a `cols`-column batch at current rates.
  double estimate_ms(std::size_t cols) const;

 private:
  CostModelOptions options_;
  double col_ms_;
  double residue_nnz_ = 0.0;
  std::size_t observations_ = 0;
};

// --- Brownout ladder -------------------------------------------------

/// Degradation levels, strictly ordered. Each level includes everything
/// the levels below it do.
enum class BrownoutLevel : int {
  kNormal = 0,       // full policy: configured timeout, packer, engine
  kTightTimeout = 1, // batch fill-timeout scaled by timeout_shrink
  kFifoPack = 2,     // packer forced to FIFO (skip similarity packing)
  kEconomyTier = 3,  // rounds routed to the economy engine when bound
};

inline const char* to_string(BrownoutLevel level) {
  switch (level) {
    case BrownoutLevel::kNormal: return "normal";
    case BrownoutLevel::kTightTimeout: return "tight_timeout";
    case BrownoutLevel::kFifoPack: return "fifo_pack";
    case BrownoutLevel::kEconomyTier: return "economy_tier";
  }
  return "unknown";
}

struct BrownoutOptions {
  /// Pressure at or above this for enter_rounds consecutive observations
  /// escalates one level.
  double enter_pressure = 0.75;
  /// Pressure at or below this for exit_rounds consecutive observations
  /// de-escalates one level. Must stay below enter_pressure (hysteresis).
  double exit_pressure = 0.35;
  std::size_t enter_rounds = 2;
  /// Relaxing is slower than reacting so a sawtooth load cannot flap the
  /// ladder once per round.
  std::size_t exit_rounds = 4;
  /// Multiplier applied to the batch fill-timeout at level >= 1.
  double timeout_shrink = 0.25;
  /// Highest level the ladder may reach (3 = full ladder; 0 disables).
  int max_level = 3;
  /// Test hook: >= 0 pins the ladder at that level — observations still
  /// log pressure but never transition. The brownout conformance suite
  /// uses this to serve the same load script at every level.
  int force_level = -1;
};

/// The reversible degradation state machine. One instance per serving
/// stack (pressure is a shared-server property, not a per-tenant one).
class BrownoutLadder {
 public:
  explicit BrownoutLadder(BrownoutOptions options = {});

  BrownoutLevel level() const {
    return static_cast<BrownoutLevel>(level_);
  }

  /// Feeds one round's pressure reading. Returns +1 on escalation, -1 on
  /// de-escalation, 0 otherwise.
  int observe(double pressure);

  const BrownoutOptions& options() const { return options_; }

 private:
  BrownoutOptions options_;
  int level_ = 0;
  std::size_t hot_rounds_ = 0;
  std::size_t cool_rounds_ = 0;
};

// --- Decision log ----------------------------------------------------

/// One overload-control decision, timestamped on the driving clock. The
/// log's canonical serialization is the conformance harness's oracle:
/// replaying the same load script must reproduce it bit-identically.
struct DecisionRecord {
  enum class Kind : int {
    kAccept = 0,
    kReject = 1,       // refused at admission; detail = retry-after ms
    kShed = 2,         // dropped by the feasibility predictor at dispatch
    kTimeout = 3,      // deadline expired in queue; triaged at dispatch
    kDispatch = 4,     // rode an engine batch; detail = batch index
    kBrownoutUp = 5,   // detail = new level
    kBrownoutDown = 6, // detail = new level
  };

  Kind kind = Kind::kAccept;
  double at_ms = 0.0;
  std::string tenant;
  std::uint64_t request = 0;  // request id (0 for brownout records)
  Priority priority = Priority::kStandard;
  double detail = 0.0;
};

inline const char* to_string(DecisionRecord::Kind kind) {
  switch (kind) {
    case DecisionRecord::Kind::kAccept: return "accept";
    case DecisionRecord::Kind::kReject: return "reject";
    case DecisionRecord::Kind::kShed: return "shed";
    case DecisionRecord::Kind::kTimeout: return "timeout";
    case DecisionRecord::Kind::kDispatch: return "dispatch";
    case DecisionRecord::Kind::kBrownoutUp: return "brownout_up";
    case DecisionRecord::Kind::kBrownoutDown: return "brownout_down";
  }
  return "unknown";
}

class DecisionLog {
 public:
  void append(DecisionRecord record) {
    records_.push_back(std::move(record));
  }
  const std::vector<DecisionRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Canonical one-line-per-record serialization (fixed-precision times,
  /// stable field order) — the unit of bit-reproducibility.
  std::string to_text() const;

  /// FNV-1a 64 over to_text().
  std::uint64_t digest() const;

 private:
  std::vector<DecisionRecord> records_;
};

// --- Admission controller --------------------------------------------

struct AdmissionOptions {
  /// Master switch: disabled leaves the stack exactly as before (blocking
  /// backpressure, no shedding, no brownout).
  bool enabled = false;
  /// Per-tenant cap on queued-but-undispatched requests. 0 refuses all
  /// intake for standard traffic (a tenant quota of zero is a valid way
  /// to cut off an abusive neighbour).
  std::size_t max_queue_depth = 256;
  /// Per-tenant cap on estimated queued work (depth priced through the
  /// cost model). <= 0 disables the work cap.
  double max_backlog_ms = 0.0;
  /// Depth-quota overrides for specific tenants (tenant id -> cap),
  /// replacing max_queue_depth for those tenants only. A quota of 0 cuts
  /// the tenant off entirely — every submit is refused at intake.
  std::map<std::string, std::size_t> tenant_depth;
  /// Scale factor applied to both caps for sheddable traffic, so it is
  /// refused first as pressure builds. In [0, 1].
  double sheddable_headroom = 0.5;
  /// Record every decision into the DecisionLog. The conformance harness
  /// turns this on; live serving defaults to metrics-only (the log grows
  /// with traffic).
  bool record_decisions = false;
  CostModelOptions cost;
  BrownoutOptions brownout;
};

/// Outcome of one admission check.
struct AdmissionVerdict {
  bool admitted = true;
  /// When refused: the controller's estimate of how long until the
  /// tenant's backlog drains below its cap — the client's retry hint.
  double retry_after_ms = 0.0;
  /// When refused: which cap fired ("depth" or "work").
  const char* reason = "";

  platform::Error to_error(const std::string& tenant) const;
};

/// Per-tenant bounded intake + shared brownout ladder. Thread-safe: live
/// serving calls admit() from client threads and the feedback hooks from
/// the server thread; the replay harness drives it single-threaded, so
/// log order is deterministic there.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  const AdmissionOptions& options() const { return options_; }

  /// Gate one submit. Admitting increments the tenant's tracked depth
  /// (the caller must pair it with on_collected / on_released).
  AdmissionVerdict admit(const std::string& tenant, Priority priority,
                         double now_ms);

  /// `n` admitted requests left the tenant's queue (collected into a
  /// round, or a failed enqueue was rolled back).
  void on_collected(const std::string& tenant, std::size_t n);

  /// Deadline-feasibility predictor: can a request with `slack_ms` of
  /// remaining budget survive a `cols`-column batch at current cost
  /// estimates? slack_ms <= 0 budgets are always infeasible.
  bool infeasible(double slack_ms, std::size_t cols) const;

  /// One finished serving round for `tenant`: feeds the cost model,
  /// re-evaluates system pressure, and steps the brownout ladder.
  /// `batch_ms` is the round's engine time, `residue_nnz` the engine's
  /// post-conversion residue reading (0 when unavailable).
  void on_round(const std::string& tenant, std::size_t cols,
                double batch_ms, double residue_nnz, double now_ms);

  /// Decision-log hooks for outcomes decided by the caller (the batcher
  /// owns dispatch/shed/timeout of queued requests).
  void record_shed(const std::string& tenant, std::size_t request,
                   Priority priority, double slack_ms, double now_ms);
  void record_timeout(const std::string& tenant, std::size_t request,
                      Priority priority, double now_ms);
  void record_dispatch(const std::string& tenant, std::size_t request,
                       Priority priority, double batch, double now_ms);

  BrownoutLevel level() const;
  /// Batch fill-timeout after the ladder's level-1 shrink.
  double effective_timeout_ms(double configured_ms) const;

  /// Intake pressure of one tenant in [0, inf): max of depth/depth-cap
  /// and estimated-backlog/work-cap.
  double pressure(const std::string& tenant) const;
  /// System pressure: max over tenants (a shared server is as loaded as
  /// its hottest lane).
  double system_pressure() const;

  std::size_t depth(const std::string& tenant) const;
  std::size_t accepted() const;
  std::size_t rejected() const;
  std::size_t shed() const;
  int brownout_escalations() const;
  int brownout_deescalations() const;

  double estimate_ms(std::size_t cols) const;

  const DecisionLog& log() const { return log_; }
  DecisionLog take_log();

 private:
  struct Tenant {
    std::size_t depth = 0;
  };

  std::size_t depth_quota_locked(const std::string& id) const;
  double pressure_locked(const std::string& id,
                         const Tenant& tenant) const;
  double system_pressure_locked() const;

  AdmissionOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, Tenant> tenants_;
  EwmaCostModel cost_;
  BrownoutLadder ladder_;
  DecisionLog log_;
  std::size_t accepted_ = 0;
  std::size_t rejected_ = 0;
  std::size_t shed_ = 0;
  int escalations_ = 0;
  int deescalations_ = 0;
};

}  // namespace snicit::serve
