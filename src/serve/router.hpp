// Multi-model request router: the front door of multi-tenant serving.
// Clients submit (model id, features, deadline) from any thread; the
// router partitions the stream per model into tenant lanes — each lane a
// manual-drive DynamicBatcher bound to a clone of the registry's engine
// prototype — and one router thread drives the lanes round-robin.
//
// Shared worker budget: exactly one lane serves a round at any moment, so
// ServeOptions::workers is a process-wide budget rather than a per-tenant
// reservation — when a tenant is idle its capacity flows to whoever is
// busy, and a bursting tenant cannot run another tenant's rounds late by
// more than one round (the sweep always returns to every pending lane).
//
// Serialized rounds also keep the determinism contract exactly as strong
// as single-model serving: each round is one ParallelStreamExecutor pass,
// bit-identical to serial stream_inference on the same packed samples, so
// a tenant's outputs cannot depend on what other tenants were doing. They
// additionally make per-round delta-sampling of the global engine
// instruments (snicit.fallbacks, snicit.conversion_residue_nnz) exactly
// attributable to the tenant whose round ran — surfaced per model as
// serve.<id>.* counters/gauges and serve.<id>.round / serve.<id>.pack
// trace spans.
//
// Hot swap / remove: between rounds each lane compares its bound
// generation against the registry. A bumped generation rebinds the lane
// to a fresh clone of the new prototype (in-flight rounds finished on the
// old engine — nothing is ever rebound mid-round); a removed id closes
// the lane's intake, drains what was accepted, and retires the lane.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "platform/error.hpp"
#include "platform/timer.hpp"
#include "serve/dynamic_batcher.hpp"
#include "serve/model_registry.hpp"

namespace snicit::serve {

struct RouterOptions {
  /// Per-lane serving policy template. `serve.tenant` is overwritten with
  /// the model id lane by lane; `serve.workers` is the shared budget.
  /// `serve.admission.enabled` turns on overload control for the whole
  /// router: one shared AdmissionController (one brownout ladder, one
  /// cost model, per-tenant depth accounting) is injected into every
  /// lane, so a flooding tenant exhausts its *own* quota while its
  /// neighbours keep their acceptance rate.
  ServeOptions serve;
  /// collect() wait used when a lane is the only one with pending work
  /// (lets a lone tenant fill batches). Negative picks
  /// serve.batch_timeout_ms. When several lanes are pending the sweep
  /// always drives with zero wait so no tenant stalls another.
  double lone_wait_ms = -1.0;
  /// Router-thread sleep between sweeps that found no work.
  double idle_sleep_ms = 0.2;
  /// Shutdown flag polled once per sweep: when requested, every lane
  /// closes intake, accepted requests drain, and the report is flushed
  /// with drained_on_signal. Null polls ShutdownController::global().
  const platform::ShutdownController* shutdown = nullptr;
};

/// Session ledger: one ServeReport per tenant lane that ever accepted a
/// request, keyed by model id.
struct RouterReport {
  std::map<std::string, ServeReport> tenants;
  double wall_ms = 0.0;
  /// True when a shutdown signal (not finish()) ended the session: every
  /// lane drained gracefully after the signal closed intake.
  bool drained_on_signal = false;

  const ServeReport* find(const std::string& id) const {
    auto it = tenants.find(id);
    return it == tenants.end() ? nullptr : &it->second;
  }
};

class Router {
 public:
  /// Starts the router thread. The registry must outlive the router;
  /// models may be added/swapped/removed while serving.
  explicit Router(ModelRegistry& registry, RouterOptions options = {});

  /// Closes every lane and joins (reports discarded — call finish() to
  /// keep them).
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Enqueues one sample for `model_id`. The lane is created on first
  /// use from the registry's current entry. kBadInput when the id is not
  /// registered (or its lane was retired by a remove); kQueueClosed after
  /// finish(); feature-length errors are typed per the lane's network;
  /// kRejectedOverload (with a retry-after hint) when admission control
  /// refuses the tenant's intake.
  platform::Result<std::size_t> submit(
      const std::string& model_id, std::vector<float> features,
      double deadline_ms = 0.0,
      Priority priority = Priority::kStandard);

  /// Closes every intake, drains every lane, joins the router thread, and
  /// returns the per-tenant ledgers. Idempotent — later calls return an
  /// empty report.
  RouterReport finish();

  /// Lanes created so far (including retired ones).
  std::size_t lanes() const;
  /// Registry generation the lane for `id` is currently bound to (0 when
  /// the lane does not exist). Tests poll this to observe a hot swap.
  std::uint64_t lane_generation(const std::string& id) const;
  /// Terminal results produced so far for `id`'s lane (0 when absent).
  std::size_t completed(const std::string& id) const;

  const RouterOptions& options() const { return options_; }

  /// The shared overload controller (null when admission is off).
  const std::shared_ptr<AdmissionController>& controller() const {
    return controller_;
  }

 private:
  struct Lane {
    std::string id;
    std::shared_ptr<const PreparedModel> model;
    std::uint64_t generation = 0;
    std::unique_ptr<dnn::InferenceEngine> engine;
    std::unique_ptr<dnn::InferenceEngine> economy;  // brownout tier 3
    std::unique_ptr<DynamicBatcher> batcher;
    bool removed = false;  // registry dropped the id; draining
    bool retired = false;  // drained after removal; no longer driven
  };

  void route_loop();
  /// Registry generation check + rebind/close. Router thread only.
  void sync_lane(Lane& lane);
  std::vector<Lane*> snapshot_lanes() const;

  ModelRegistry& registry_;
  RouterOptions options_;
  std::shared_ptr<AdmissionController> controller_;  // shared by lanes

  mutable std::mutex mutex_;  // guards lanes_ map shape and finished_
  std::map<std::string, std::unique_ptr<Lane>> lanes_;
  bool finished_ = false;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> drained_on_signal_{false};
  platform::Stopwatch wall_;
  std::thread server_;
};

}  // namespace snicit::serve
