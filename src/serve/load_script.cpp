#include "serve/load_script.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "platform/common.hpp"
#include "platform/rng.hpp"

namespace snicit::serve {

using platform::Error;
using platform::ErrorCode;

namespace {

std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t hash = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Priority draw_priority(platform::Rng& rng, const LoadScriptSpec& spec) {
  const double u = rng.next_double();
  if (u < spec.sheddable_fraction) return Priority::kSheddable;
  if (u < spec.sheddable_fraction + spec.critical_fraction) {
    return Priority::kCritical;
  }
  return Priority::kStandard;
}

/// Exponential inter-arrival gap with the spec's mean.
double draw_gap(platform::Rng& rng, double mean_gap_ms) {
  return -std::log(1.0 - rng.next_double()) * mean_gap_ms;
}

void sort_events(std::vector<LoadEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const LoadEvent& a, const LoadEvent& b) {
                     return a.at_ms < b.at_ms;
                   });
}

}  // namespace

LoadScript make_load_script(const LoadScriptSpec& spec) {
  SNICIT_CHECK(spec.shape == "poisson" || spec.shape == "burst" ||
                   spec.shape == "ramp" || spec.shape == "storm",
               "unknown load script shape");
  SNICIT_CHECK(!spec.tenants.empty(), "load script needs >= 1 tenant");
  SNICIT_CHECK(spec.samples >= 1, "load script needs a sample pool");

  LoadScript script;
  script.name = spec.shape;
  script.seed = spec.seed;
  script.events.reserve(spec.tenants.size() * spec.requests_per_tenant);

  for (std::size_t m = 0; m < spec.tenants.size(); ++m) {
    // Independent stream per tenant so adding a tenant never perturbs
    // the arrivals of the others (isolation drills rely on this).
    platform::Rng rng(spec.seed + 0x9e37ULL * (m + 1));
    const bool burster = spec.shape == "burst" && m == 0;
    double t = 0.0;
    // Storm: one absolute deadline shared by the whole window.
    const double storm_deadline_at = spec.deadline_ms;
    for (std::size_t j = 0; j < spec.requests_per_tenant; ++j) {
      LoadEvent event;
      event.tenant = spec.tenants[m];
      event.sample = static_cast<std::size_t>(rng.next_below(spec.samples));
      event.priority = draw_priority(rng, spec);
      if (spec.shape == "storm") {
        event.at_ms = rng.next_double() * spec.storm_window_ms;
        // Same absolute deadline for everyone: budget = deadline - t.
        event.deadline_ms =
            spec.deadline_ms > 0.0
                ? std::max(storm_deadline_at - event.at_ms, 1e-9)
                : 0.0;
      } else if (burster) {
        event.at_ms = spec.burst_at_ms;
        event.deadline_ms = spec.deadline_ms;
      } else {
        double gap = spec.mean_gap_ms;
        if (spec.shape == "ramp" && spec.requests_per_tenant > 1) {
          const double frac = static_cast<double>(j) /
                              static_cast<double>(
                                  spec.requests_per_tenant - 1);
          gap = spec.mean_gap_ms *
                (1.0 + (spec.ramp_final - 1.0) * frac);
        }
        t += draw_gap(rng, gap);
        event.at_ms = t;
        event.deadline_ms = spec.deadline_ms;
      }
      script.events.push_back(std::move(event));
    }
  }
  sort_events(script.events);
  return script;
}

std::string LoadScript::to_text() const {
  std::string out = "loadscript v1 name=" + name + " seed=" +
                    std::to_string(seed) + " events=" +
                    std::to_string(events.size()) + "\n";
  char line[256];
  for (const LoadEvent& e : events) {
    std::snprintf(line, sizeof(line),
                  "at=%.9f tenant=%s sample=%zu priority=%s "
                  "deadline=%.9f\n",
                  e.at_ms, e.tenant.empty() ? "-" : e.tenant.c_str(),
                  e.sample, to_string(e.priority), e.deadline_ms);
    out += line;
  }
  return out;
}

platform::Result<LoadScript> LoadScript::from_text(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Error{ErrorCode::kBadInput, "load script text is empty"};
  }
  LoadScript script;
  std::size_t declared = 0;
  {
    char name[128];
    unsigned long long seed = 0;
    unsigned long long events = 0;
    if (std::sscanf(line.c_str(),
                    "loadscript v1 name=%127s seed=%llu events=%llu",
                    name, &seed, &events) != 3) {
      return Error{ErrorCode::kBadInput,
                   "malformed load script header: '" + line + "'"};
    }
    script.name = name;
    script.seed = seed;
    declared = static_cast<std::size_t>(events);
    script.events.reserve(declared);
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    char tenant[128];
    char priority[32];
    double at = 0.0;
    double deadline = 0.0;
    unsigned long long sample = 0;
    if (std::sscanf(line.c_str(),
                    "at=%lf tenant=%127s sample=%llu priority=%31s "
                    "deadline=%lf",
                    &at, tenant, &sample, priority, &deadline) != 5) {
      return Error{ErrorCode::kBadInput,
                   "malformed load script event at line " +
                       std::to_string(line_no) + ": '" + line + "'"};
    }
    LoadEvent event;
    event.at_ms = at;
    event.tenant = std::string(tenant) == "-" ? "" : tenant;
    event.sample = static_cast<std::size_t>(sample);
    auto parsed = parse_priority(priority);
    if (!parsed.ok()) {
      return Error{ErrorCode::kBadInput,
                   "load script line " + std::to_string(line_no) + ": " +
                       parsed.error().message};
    }
    event.priority = parsed.value();
    event.deadline_ms = deadline;
    if (!script.events.empty() && at < script.events.back().at_ms) {
      return Error{ErrorCode::kBadInput,
                   "load script events must be time-sorted (line " +
                       std::to_string(line_no) + ")"};
    }
    script.events.push_back(std::move(event));
  }
  if (script.events.size() != declared) {
    return Error{ErrorCode::kBadInput,
                 "load script header declares " + std::to_string(declared) +
                     " events but " + std::to_string(script.events.size()) +
                     " were parsed (truncated script?)"};
  }
  return script;
}

std::uint64_t LoadScript::digest() const {
  const std::string text = to_text();
  return fnv1a(text.data(), text.size());
}

void LoadScriptRecorder::record(const std::string& tenant,
                                std::size_t sample, Priority priority,
                                double deadline_ms) {
  LoadEvent event;
  event.at_ms = clock_.elapsed_ms();
  event.tenant = tenant;
  event.sample = sample;
  event.priority = priority;
  event.deadline_ms = deadline_ms;
  events_.push_back(std::move(event));
}

LoadScript LoadScriptRecorder::script() const {
  LoadScript out;
  out.name = "recorded";
  out.seed = 0;
  out.events = events_;
  sort_events(out.events);
  return out;
}

}  // namespace snicit::serve
