#include "serve/model_registry.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "baselines/bf2019.hpp"
#include "baselines/serial.hpp"
#include "baselines/snig2020.hpp"
#include "baselines/xy2021.hpp"
#include "dnn/reference.hpp"
#include "platform/checksum.hpp"
#include "platform/json.hpp"
#include "radixnet/radixnet.hpp"
#include "radixnet/sdgc_io.hpp"
#include "snicit/engine.hpp"
#include "snicit/warm_cache.hpp"

namespace snicit::serve {

namespace {

using platform::Error;
using platform::ErrorCode;
using platform::JsonValue;
using platform::Result;

Error manifest_error(const std::string& message) {
  return Error{ErrorCode::kBadModelFile, "model manifest: " + message};
}

/// "models[3].neurons"-style location for error messages.
std::string at(std::size_t index, const std::string& key) {
  return "models[" + std::to_string(index) + "]." + key;
}

Result<double> number_field(const JsonValue& entry, std::size_t index,
                            const std::string& key) {
  const JsonValue& v = entry.get(key);
  if (!v.is_number()) {
    return manifest_error(at(index, key) + " must be a number");
  }
  return v.as_number();
}

Result<std::int64_t> int_field(const JsonValue& entry, std::size_t index,
                               const std::string& key, std::int64_t lo,
                               std::int64_t hi) {
  auto number = number_field(entry, index, key);
  if (!number.ok()) return number.error();
  const double x = number.value();
  if (std::floor(x) != x) {
    return manifest_error(at(index, key) + " must be an integer");
  }
  if (x < static_cast<double>(lo) || x > static_cast<double>(hi)) {
    return manifest_error(at(index, key) + " out of range [" +
                          std::to_string(lo) + ", " + std::to_string(hi) +
                          "]");
  }
  return static_cast<std::int64_t>(x);
}

Result<std::string> string_field(const JsonValue& entry, std::size_t index,
                                 const std::string& key) {
  const JsonValue& v = entry.get(key);
  if (!v.is_string()) {
    return manifest_error(at(index, key) + " must be a string");
  }
  return v.as_string();
}

Result<ModelSpec> parse_entry(const JsonValue& entry, std::size_t index) {
  if (!entry.is_object()) {
    return manifest_error("models[" + std::to_string(index) +
                          "] must be an object");
  }
  static const std::set<std::string> kKnownKeys = {
      "id",   "engine", "neurons",   "layers",      "fanin",      "seed",
      "net",  "bias",   "threshold", "sample_size", "downsample", "prune",
      "economy_engine", "sha256"};
  for (const auto& key : entry.keys()) {
    if (kKnownKeys.count(key) == 0) {
      return manifest_error("unknown key '" + key + "' in models[" +
                            std::to_string(index) + "]");
    }
  }
  if (!entry.has("id")) {
    return manifest_error("models[" + std::to_string(index) +
                          "] is missing required key 'id'");
  }
  ModelSpec spec;
  {
    auto id = string_field(entry, index, "id");
    if (!id.ok()) return id.error();
    spec.id = id.value();
    if (spec.id.empty()) {
      return manifest_error(at(index, "id") + " must be non-empty");
    }
  }
  if (entry.has("engine")) {
    auto engine = string_field(entry, index, "engine");
    if (!engine.ok()) return engine.error();
    spec.engine = engine.value();
    const auto& known = ModelRegistry::known_engines();
    if (std::find(known.begin(), known.end(), spec.engine) == known.end()) {
      return manifest_error("unknown engine '" + spec.engine + "' in " +
                            at(index, "engine"));
    }
  }
  if (entry.has("neurons")) {
    auto v = int_field(entry, index, "neurons", 1, 1 << 24);
    if (!v.ok()) return v.error();
    spec.neurons = v.value();
  }
  if (entry.has("layers")) {
    auto v = int_field(entry, index, "layers", 1, 1 << 20);
    if (!v.ok()) return v.error();
    spec.layers = static_cast<int>(v.value());
  }
  if (entry.has("fanin")) {
    auto v = int_field(entry, index, "fanin", 1, 1 << 24);
    if (!v.ok()) return v.error();
    spec.fanin = static_cast<int>(v.value());
  }
  if (entry.has("seed")) {
    auto v = int_field(entry, index, "seed", 0,
                       std::numeric_limits<std::int64_t>::max());
    if (!v.ok()) return v.error();
    spec.seed = static_cast<std::uint64_t>(v.value());
  }
  if (entry.has("net")) {
    auto v = string_field(entry, index, "net");
    if (!v.ok()) return v.error();
    spec.net_prefix = v.value();
  }
  if (entry.has("bias")) {
    auto v = number_field(entry, index, "bias");
    if (!v.ok()) return v.error();
    spec.bias = static_cast<float>(v.value());
  }
  if (entry.has("threshold")) {
    auto v = int_field(entry, index, "threshold", 0, 1 << 20);
    if (!v.ok()) return v.error();
    spec.threshold = static_cast<int>(v.value());
  }
  if (entry.has("sample_size")) {
    auto v = int_field(entry, index, "sample_size", 1, 1 << 20);
    if (!v.ok()) return v.error();
    spec.sample_size = static_cast<int>(v.value());
  }
  if (entry.has("downsample")) {
    auto v = int_field(entry, index, "downsample", 0, 1 << 20);
    if (!v.ok()) return v.error();
    spec.downsample = static_cast<int>(v.value());
  }
  if (entry.has("prune")) {
    auto v = number_field(entry, index, "prune");
    if (!v.ok()) return v.error();
    if (!(v.value() >= 0.0)) {
      return manifest_error(at(index, "prune") + " must be non-negative");
    }
    spec.prune = static_cast<float>(v.value());
  }
  if (entry.has("economy_engine")) {
    auto v = string_field(entry, index, "economy_engine");
    if (!v.ok()) return v.error();
    spec.economy_engine = v.value();
    const auto& known = ModelRegistry::known_engines();
    if (std::find(known.begin(), known.end(), spec.economy_engine) ==
        known.end()) {
      return manifest_error("unknown engine '" + spec.economy_engine +
                            "' in " + at(index, "economy_engine"));
    }
  }
  if (entry.has("sha256")) {
    const JsonValue& pins = entry.get("sha256");
    if (!pins.is_array()) {
      return manifest_error(at(index, "sha256") +
                            " must be an array of hex digests");
    }
    if (spec.net_prefix.empty()) {
      return manifest_error(at(index, "sha256") +
                            " requires 'net' (synthetic models have no "
                            "weight files to pin)");
    }
    for (std::size_t k = 0; k < pins.size(); ++k) {
      const JsonValue& pin = pins.at(k);
      if (!pin.is_string()) {
        return manifest_error(at(index, "sha256") + "[" +
                              std::to_string(k) + "] must be a string");
      }
      std::string hex = pin.as_string();
      if (hex.size() != 64) {
        return manifest_error(at(index, "sha256") + "[" +
                              std::to_string(k) +
                              "] must be 64 hex characters");
      }
      for (char& c : hex) {
        if (c >= 'A' && c <= 'F') c = static_cast<char>(c - 'A' + 'a');
        const bool hex_digit =
            (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!hex_digit) {
          return manifest_error(at(index, "sha256") + "[" +
                                std::to_string(k) +
                                "] must be 64 hex characters");
        }
      }
      spec.sha256.push_back(std::move(hex));
    }
    if (spec.sha256.size() != static_cast<std::size_t>(spec.layers)) {
      return manifest_error(at(index, "sha256") + " has " +
                            std::to_string(spec.sha256.size()) +
                            " digests but the model has " +
                            std::to_string(spec.layers) +
                            " weight files (one per layer)");
    }
  }
  if (spec.fanin > spec.neurons) {
    return manifest_error("models[" + std::to_string(index) +
                          "]: fanin exceeds neurons");
  }
  return spec;
}

core::SnicitParams snicit_params(const ModelSpec& spec) {
  core::SnicitParams params;
  params.threshold_layer =
      spec.threshold != 0 ? spec.threshold
                          : (spec.layers >= 120 ? 30 : spec.layers / 2);
  params.sample_size = spec.sample_size;
  params.downsample_dim = spec.downsample;
  params.prune_threshold = spec.prune;
  return params;
}

Result<std::shared_ptr<const dnn::InferenceEngine>> build_prototype(
    const ModelSpec& spec) {
  try {
    if (spec.engine == "snicit") {
      return {std::make_shared<core::SnicitEngine>(snicit_params(spec))};
    }
    if (spec.engine == "snicit-warm") {
      return {
          std::make_shared<core::WarmSnicitEngine>(snicit_params(spec))};
    }
    if (spec.engine == "reference") {
      return {std::make_shared<dnn::ReferenceEngine>()};
    }
    if (spec.engine == "serial") {
      return {std::make_shared<baselines::SerialEngine>()};
    }
    if (spec.engine == "bf2019") {
      return {std::make_shared<baselines::Bf2019Engine>()};
    }
    if (spec.engine == "snig2020") {
      return {std::make_shared<baselines::Snig2020Engine>()};
    }
    if (spec.engine == "xy2021") {
      return {std::make_shared<baselines::Xy2021Engine>()};
    }
  } catch (const platform::ErrorException& e) {
    return Error{e.error().code,
                 "model '" + spec.id + "': " + e.error().message};
  } catch (const std::exception& e) {
    return Error{ErrorCode::kBadInput,
                 "model '" + spec.id + "': " + std::string(e.what())};
  }
  return Error{ErrorCode::kBadInput,
               "model '" + spec.id + "': unknown engine '" + spec.engine +
                   "'"};
}

}  // namespace

const std::vector<std::string>& ModelRegistry::known_engines() {
  static const std::vector<std::string> kEngines = {
      "snicit", "snicit-warm", "reference", "serial",
      "bf2019", "snig2020",    "xy2021"};
  return kEngines;
}

Result<std::vector<ModelSpec>> ModelRegistry::parse_manifest_text(
    const std::string& text) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(text);
  } catch (const std::exception& e) {
    return manifest_error(std::string("malformed JSON: ") + e.what());
  }
  if (!doc.is_object()) {
    return manifest_error("top level must be an object");
  }
  for (const auto& key : doc.keys()) {
    if (key != "models") {
      return manifest_error("unknown top-level key '" + key + "'");
    }
  }
  if (!doc.has("models")) {
    return manifest_error("missing required key 'models'");
  }
  const JsonValue& models = doc.get("models");
  if (!models.is_array()) {
    return manifest_error("'models' must be an array");
  }
  if (models.size() == 0) {
    return manifest_error("'models' must name at least one model");
  }
  std::vector<ModelSpec> specs;
  std::set<std::string> seen;
  specs.reserve(models.size());
  for (std::size_t i = 0; i < models.size(); ++i) {
    auto spec = parse_entry(models.at(i), i);
    if (!spec.ok()) return spec.error();
    if (!seen.insert(spec.value().id).second) {
      return manifest_error("duplicate model id '" + spec.value().id +
                            "'");
    }
    specs.push_back(std::move(spec).value());
  }
  return specs;
}

Result<std::size_t> ModelRegistry::load_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Error{ErrorCode::kBadModelFile,
                 "cannot open model manifest '" + path + "'"};
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) {
    return Error{ErrorCode::kBadModelFile,
                 "error reading model manifest '" + path + "'"};
  }
  return load_manifest_text(text.str());
}

Result<std::size_t> ModelRegistry::load_manifest_text(
    const std::string& text) {
  auto specs = parse_manifest_text(text);
  if (!specs.ok()) return specs.error();

  // Prepare everything before registering anything: a manifest with one
  // bad weight file must not leave a half-loaded registry behind.
  std::vector<std::shared_ptr<const PreparedModel>> prepared;
  prepared.reserve(specs.value().size());
  for (const auto& spec : specs.value()) {
    auto model = prepare(spec);
    if (!model.ok()) return model.error();
    prepared.push_back(std::move(model).value());
  }

  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& model : prepared) {
    if (models_.count(model->spec.id) != 0) {
      return Error{ErrorCode::kBadInput,
                   "model id '" + model->spec.id +
                       "' is already registered"};
    }
  }
  for (auto& model : prepared) {
    auto stamped = std::make_shared<PreparedModel>(*model);
    stamped->generation = next_generation_++;
    models_[stamped->spec.id] = std::move(stamped);
  }
  return prepared.size();
}

Result<std::size_t> ModelRegistry::verify_artifacts(const ModelSpec& spec) {
  if (spec.sha256.empty()) return std::size_t{0};
  if (spec.net_prefix.empty()) {
    return Error{ErrorCode::kBadInput,
                 "model '" + spec.id +
                     "': sha256 pins require a net prefix (synthetic "
                     "models have no weight files)"};
  }
  if (spec.sha256.size() != static_cast<std::size_t>(spec.layers)) {
    return Error{ErrorCode::kBadInput,
                 "model '" + spec.id + "': " +
                     std::to_string(spec.sha256.size()) +
                     " sha256 pins for " + std::to_string(spec.layers) +
                     " weight files"};
  }
  for (int layer = 1; layer <= spec.layers; ++layer) {
    const std::string path =
        spec.net_prefix + "-l" + std::to_string(layer) + ".tsv";
    auto digest = platform::sha256_file(path);
    if (!digest.ok()) {
      return Error{digest.error().code,
                   "model '" + spec.id + "': " + digest.error().message};
    }
    const std::string& pin = spec.sha256[static_cast<std::size_t>(layer - 1)];
    if (digest.value() != pin) {
      return Error{ErrorCode::kBadModelFile,
                   "model '" + spec.id + "': sha256 mismatch for '" + path +
                       "': manifest pins " + pin + " but the file hashes " +
                       digest.value()};
    }
  }
  return spec.sha256.size();
}

Result<std::shared_ptr<const PreparedModel>> ModelRegistry::prepare(
    const ModelSpec& spec) {
  if (spec.id.empty()) {
    return Error{ErrorCode::kBadInput, "model id must be non-empty"};
  }
  if (spec.neurons < 1 || spec.layers < 1 || spec.fanin < 1 ||
      spec.fanin > spec.neurons) {
    return Error{ErrorCode::kBadInput,
                 "model '" + spec.id +
                     "': neurons/layers/fanin out of range"};
  }
  if (!spec.sha256.empty()) {
    // Integrity gate before any bytes are parsed: hot swaps route through
    // prepare() too, so a swapped-in artifact is pinned the same way.
    auto verified = verify_artifacts(spec);
    if (!verified.ok()) return verified.error();
  }

  auto model = std::make_shared<PreparedModel>();
  model->spec = spec;

  const auto neurons = static_cast<sparse::Index>(spec.neurons);
  if (!spec.net_prefix.empty()) {
    const float bias = std::isnan(spec.bias)
                           ? radixnet::table1_bias(neurons)
                           : spec.bias;
    auto net = radixnet::try_load_network_tsv(spec.net_prefix, neurons,
                                              spec.layers, bias, 32.0f);
    if (!net.ok()) {
      return Error{net.error().code,
                   "model '" + spec.id + "': " + net.error().message};
    }
    model->net = std::make_shared<const dnn::SparseDnn>(
        std::move(net).value());
  } else {
    radixnet::RadixNetOptions opt;
    opt.neurons = neurons;
    opt.layers = spec.layers;
    opt.fanin = spec.fanin;
    opt.seed = spec.seed;
    if (!std::isnan(spec.bias)) opt.bias = spec.bias;
    model->net = std::make_shared<const dnn::SparseDnn>(
        radixnet::make_radixnet(opt));
  }
  model->net->ensure_csc();

  auto prototype = build_prototype(spec);
  if (!prototype.ok()) return prototype.error();
  model->prototype = std::move(prototype).value();
  if (model->prototype->clone() == nullptr) {
    return Error{ErrorCode::kBadInput,
                 "model '" + spec.id + "': engine '" + spec.engine +
                     "' does not support clone() (serving lanes pool "
                     "engine clones)"};
  }
  if (!spec.economy_engine.empty()) {
    ModelSpec economy_spec = spec;
    economy_spec.engine = spec.economy_engine;
    auto economy = build_prototype(economy_spec);
    if (!economy.ok()) return economy.error();
    model->economy = std::move(economy).value();
    if (model->economy->clone() == nullptr) {
      return Error{ErrorCode::kBadInput,
                   "model '" + spec.id + "': economy engine '" +
                       spec.economy_engine +
                       "' does not support clone()"};
    }
  }
  return {std::const_pointer_cast<const PreparedModel>(
      std::move(model))};
}

Result<std::uint64_t> ModelRegistry::add(const ModelSpec& spec) {
  auto model = prepare(spec);
  if (!model.ok()) return model.error();
  return add_model(spec.id, model.value()->net, model.value()->prototype,
                   model.value()->economy);
}

Result<std::uint64_t> ModelRegistry::add_model(
    const std::string& id, std::shared_ptr<const dnn::SparseDnn> net,
    std::shared_ptr<const dnn::InferenceEngine> prototype,
    std::shared_ptr<const dnn::InferenceEngine> economy) {
  if (id.empty()) {
    return Error{ErrorCode::kBadInput, "model id must be non-empty"};
  }
  if (net == nullptr || prototype == nullptr) {
    return Error{ErrorCode::kBadInput,
                 "model '" + id + "': net and prototype must be non-null"};
  }
  if (prototype->clone() == nullptr) {
    return Error{ErrorCode::kBadInput,
                 "model '" + id + "': engine does not support clone()"};
  }
  if (economy != nullptr && economy->clone() == nullptr) {
    return Error{ErrorCode::kBadInput,
                 "model '" + id +
                     "': economy engine does not support clone()"};
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (models_.count(id) != 0) {
    return Error{ErrorCode::kBadInput,
                 "model id '" + id + "' is already registered"};
  }
  auto model = std::make_shared<PreparedModel>();
  model->spec.id = id;
  model->spec.engine = prototype->name();
  model->spec.neurons = net->neurons();
  model->spec.layers = static_cast<int>(net->num_layers());
  if (economy != nullptr) model->spec.economy_engine = economy->name();
  model->generation = next_generation_++;
  model->net = std::move(net);
  model->prototype = std::move(prototype);
  model->economy = std::move(economy);
  const std::uint64_t generation = model->generation;
  models_[id] = std::move(model);
  return generation;
}

Result<std::uint64_t> ModelRegistry::swap(const ModelSpec& spec) {
  auto model = prepare(spec);
  if (!model.ok()) return model.error();
  return swap_model(spec.id, model.value()->net, model.value()->prototype,
                    model.value()->economy);
}

Result<std::uint64_t> ModelRegistry::swap_model(
    const std::string& id, std::shared_ptr<const dnn::SparseDnn> net,
    std::shared_ptr<const dnn::InferenceEngine> prototype,
    std::shared_ptr<const dnn::InferenceEngine> economy) {
  if (net == nullptr || prototype == nullptr) {
    return Error{ErrorCode::kBadInput,
                 "model '" + id + "': net and prototype must be non-null"};
  }
  if (prototype->clone() == nullptr) {
    return Error{ErrorCode::kBadInput,
                 "model '" + id + "': engine does not support clone()"};
  }
  if (economy != nullptr && economy->clone() == nullptr) {
    return Error{ErrorCode::kBadInput,
                 "model '" + id +
                     "': economy engine does not support clone()"};
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(id);
  if (it == models_.end()) {
    return Error{ErrorCode::kBadInput,
                 "cannot swap unknown model '" + id + "'"};
  }
  if (net->neurons() != it->second->net->neurons()) {
    return Error{ErrorCode::kBadInput,
                 "cannot swap model '" + id + "': neuron count changes " +
                     std::to_string(it->second->net->neurons()) + " -> " +
                     std::to_string(net->neurons()) +
                     " (in-flight requests would be misshapen)"};
  }
  auto model = std::make_shared<PreparedModel>();
  model->spec = it->second->spec;
  model->spec.engine = prototype->name();
  model->spec.layers = static_cast<int>(net->num_layers());
  model->spec.economy_engine =
      economy != nullptr ? economy->name() : std::string();
  model->generation = next_generation_++;
  model->net = std::move(net);
  model->prototype = std::move(prototype);
  model->economy = std::move(economy);
  const std::uint64_t generation = model->generation;
  it->second = std::move(model);  // old snapshot stays alive via lanes
  return generation;
}

Result<void> ModelRegistry::remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto erased = models_.erase(id);
  if (erased == 0) {
    return Error{ErrorCode::kBadInput,
                 "cannot remove unknown model '" + id + "'"};
  }
  return {};
}

std::shared_ptr<const PreparedModel> ModelRegistry::find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(id);
  return it == models_.end() ? nullptr : it->second;
}

std::uint64_t ModelRegistry::generation(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(id);
  return it == models_.end() ? 0 : it->second->generation;
}

std::vector<std::string> ModelRegistry::ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [id, model] : models_) out.push_back(id);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return models_.size();
}

}  // namespace snicit::serve
