#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>

#include "platform/checksum.hpp"
#include "platform/fault_injection.hpp"

namespace snicit::serve {

namespace {

constexpr char kMagic[8] = {'S', 'N', 'I', 'C', 'I', 'T', 'J', '1'};
constexpr std::uint8_t kRecordAdmit = 1;
constexpr std::uint8_t kRecordComplete = 2;

// Serialization helpers. The journal is a local artifact, not a wire
// format: host byte order (little-endian everywhere this runs) via
// memcpy keeps the encode/decode paths trivially correct.
template <typename T>
void put(std::vector<std::uint8_t>& buf, T value) {
  const std::size_t at = buf.size();
  buf.resize(at + sizeof(T));
  std::memcpy(buf.data() + at, &value, sizeof(T));
}

void put_bytes(std::vector<std::uint8_t>& buf, const void* data,
               std::size_t bytes) {
  if (bytes == 0) return;
  const std::size_t at = buf.size();
  buf.resize(at + bytes);
  std::memcpy(buf.data() + at, data, bytes);
}

// Bounds-checked cursor over a record payload. A payload only reaches
// the cursor after its CRC passed, but a decoder must still never read
// past the end on a logically-malformed record.
struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t at = 0;

  template <typename T>
  bool get(T& out) {
    if (size - at < sizeof(T)) return false;
    std::memcpy(&out, data + at, sizeof(T));
    at += sizeof(T);
    return true;
  }

  bool get_bytes(void* out, std::size_t bytes) {
    if (size - at < bytes) return false;
    std::memcpy(out, data + at, bytes);
    at += bytes;
    return true;
  }
};

bool decode_admit(Cursor& cur, JournalAdmit& admit) {
  std::uint32_t tenant_len = 0;
  std::uint8_t priority = 0;
  std::uint32_t feature_count = 0;
  if (!cur.get(admit.id) || !cur.get(tenant_len)) return false;
  if (cur.size - cur.at < tenant_len) return false;
  admit.tenant.assign(reinterpret_cast<const char*>(cur.data + cur.at),
                      tenant_len);
  cur.at += tenant_len;
  if (!cur.get(admit.sample) || !cur.get(priority) ||
      !cur.get(admit.arrive_ms) || !cur.get(admit.deadline_ms) ||
      !cur.get(feature_count)) {
    return false;
  }
  if (priority > static_cast<std::uint8_t>(Priority::kCritical)) return false;
  admit.priority = static_cast<Priority>(priority);
  if (cur.size - cur.at < feature_count * sizeof(float)) return false;
  admit.features.resize(feature_count);
  if (feature_count > 0 &&
      !cur.get_bytes(admit.features.data(), feature_count * sizeof(float))) {
    return false;
  }
  return cur.at == cur.size;
}

bool decode_complete(Cursor& cur, JournalComplete& complete) {
  std::int32_t code = 0;
  if (!cur.get(complete.id) || !cur.get(code) ||
      !cur.get(complete.output_digest)) {
    return false;
  }
  complete.code = static_cast<platform::ErrorCode>(code);
  return cur.at == cur.size;
}

}  // namespace

std::uint64_t output_digest64(const std::vector<float>& output) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
  };
  const std::uint64_t size = output.size();
  mix(&size, sizeof(size));
  mix(output.data(), output.size() * sizeof(float));
  return h;
}

platform::Result<FsyncPolicy> parse_fsync_policy(const std::string& name) {
  if (name == "none") return FsyncPolicy::kNone;
  if (name == "always") return FsyncPolicy::kAlways;
  return platform::Error{platform::ErrorCode::kBadInput,
                         "unknown fsync policy '" + name +
                             "' (expected none|always)"};
}

JournalWriter::JournalWriter(std::string path, int fd, FsyncPolicy fsync)
    : path_(std::move(path)), fd_(fd), fsync_(fsync) {}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

platform::Result<std::unique_ptr<JournalWriter>> JournalWriter::open(
    const std::string& path, FsyncPolicy fsync) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return platform::Error{platform::ErrorCode::kResourceExhausted,
                           "cannot open journal '" + path +
                               "': " + std::strerror(errno)};
  }
  std::unique_ptr<JournalWriter> writer(new JournalWriter(path, fd, fsync));
  std::vector<std::uint8_t> magic(kMagic, kMagic + sizeof(kMagic));
  // The magic goes through the same write loop but is not a record (no
  // header), so serialize it directly.
  std::size_t done = 0;
  while (done < magic.size()) {
    const ssize_t wrote =
        ::write(fd, magic.data() + done, magic.size() - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return platform::Error{platform::ErrorCode::kResourceExhausted,
                             "journal magic write failed on '" + path +
                                 "': " + std::strerror(errno)};
    }
    done += static_cast<std::size_t>(wrote);
  }
  if (fsync == FsyncPolicy::kAlways) ::fsync(fd);
  return writer;
}

platform::Result<void> JournalWriter::append_record(
    const std::vector<std::uint8_t>& payload) {
  // OOM/ENOSPC drill: the durability paths must surface resource
  // exhaustion as a typed error the serving layer can count, never as a
  // bad_alloc escaping a worker thread.
  if (platform::fault::should_fire("alloc_fail")) {
    return platform::Error{platform::ErrorCode::kResourceExhausted,
                           "injected alloc_fail at journal append"};
  }

  std::vector<std::uint8_t> record;
  record.reserve(8 + payload.size());
  put<std::uint32_t>(record, static_cast<std::uint32_t>(payload.size()));
  put<std::uint32_t>(record,
                     platform::crc32c(payload.data(), payload.size()));
  put_bytes(record, payload.data(), payload.size());

  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) {
    return platform::Error{platform::ErrorCode::kQueueClosed,
                           "append to closed journal '" + path_ + "'"};
  }
  std::size_t done = 0;
  while (done < record.size()) {
    const ssize_t wrote =
        ::write(fd_, record.data() + done, record.size() - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return platform::Error{platform::ErrorCode::kResourceExhausted,
                             "journal append failed on '" + path_ +
                                 "': " + std::strerror(errno)};
    }
    done += static_cast<std::size_t>(wrote);
  }
  if (fsync_ == FsyncPolicy::kAlways) ::fsync(fd_);
  return {};
}

platform::Result<void> JournalWriter::append_admit(const JournalAdmit& admit) {
  std::vector<std::uint8_t> payload;
  payload.reserve(64 + admit.tenant.size() +
                  admit.features.size() * sizeof(float));
  put<std::uint8_t>(payload, kRecordAdmit);
  put<std::uint64_t>(payload, admit.id);
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(admit.tenant.size()));
  put_bytes(payload, admit.tenant.data(), admit.tenant.size());
  put<std::uint64_t>(payload, admit.sample);
  put<std::uint8_t>(payload, static_cast<std::uint8_t>(admit.priority));
  put<double>(payload, admit.arrive_ms);
  put<double>(payload, admit.deadline_ms);
  put<std::uint32_t>(payload,
                     static_cast<std::uint32_t>(admit.features.size()));
  put_bytes(payload, admit.features.data(),
            admit.features.size() * sizeof(float));
  return append_record(payload);
}

platform::Result<void> JournalWriter::append_complete(
    const JournalComplete& complete) {
  std::vector<std::uint8_t> payload;
  payload.reserve(24);
  put<std::uint8_t>(payload, kRecordComplete);
  put<std::uint64_t>(payload, complete.id);
  put<std::int32_t>(payload, static_cast<std::int32_t>(complete.code));
  put<std::uint64_t>(payload, complete.output_digest);
  return append_record(payload);
}

void JournalWriter::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  if (fsync_ == FsyncPolicy::kAlways) ::fsync(fd_);
  ::close(fd_);
  fd_ = -1;
}

platform::Result<JournalContents> read_journal(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return platform::Error{platform::ErrorCode::kBadModelFile,
                           "cannot open journal '" + path + "'"};
  }
  std::vector<std::uint8_t> bytes;
  char buffer[1 << 16];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return platform::Error{platform::ErrorCode::kBadModelFile,
                           "read error on journal '" + path + "'"};
  }
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return platform::Error{platform::ErrorCode::kBadModelFile,
                           "'" + path + "' is not a SNICIT request journal"};
  }

  JournalContents contents;
  std::size_t at = sizeof(kMagic);
  const auto truncate_at = [&](std::size_t offset, const std::string& why) {
    contents.truncated_tail = true;
    contents.truncation_reason =
        why + " at offset " + std::to_string(offset);
  };
  while (at < bytes.size()) {
    if (bytes.size() - at < 8) {
      truncate_at(at, "torn record header");
      break;
    }
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&len, bytes.data() + at, 4);
    std::memcpy(&crc, bytes.data() + at + 4, 4);
    if (bytes.size() - at - 8 < len) {
      truncate_at(at, "torn record payload");
      break;
    }
    const std::uint8_t* payload = bytes.data() + at + 8;
    if (platform::crc32c(payload, len) != crc) {
      truncate_at(at, "crc mismatch");
      break;
    }
    Cursor cur{payload, len};
    std::uint8_t type = 0;
    bool valid = cur.get(type);
    if (valid && type == kRecordAdmit) {
      JournalAdmit admit;
      valid = decode_admit(cur, admit);
      if (valid) contents.admits.push_back(std::move(admit));
    } else if (valid && type == kRecordComplete) {
      JournalComplete complete;
      valid = decode_complete(cur, complete);
      if (valid) contents.completes.push_back(complete);
    } else {
      valid = false;
    }
    if (!valid) {
      // CRC-valid but undecodable: a writer/reader version skew or a
      // collision. Recover the prefix rather than guessing at the rest.
      truncate_at(at, "undecodable record");
      break;
    }
    at += 8 + len;
  }
  return contents;
}

platform::Result<JournalReplayResult> replay_journal(
    const JournalContents& contents, const LoadScript* script,
    const std::map<std::string, JournalTenant>& tenants,
    const ReplayOptions& options) {
  using platform::Error;
  using platform::ErrorCode;

  // Partition the admits: journaled completion => the client already has
  // its answer (suppress re-delivery); no completion => the incomplete
  // suffix replay must answer.
  std::map<std::uint64_t, const JournalComplete*> completed;
  for (const auto& complete : contents.completes) {
    completed[complete.id] = &complete;
  }
  std::set<std::uint64_t> admitted_ids;
  for (const auto& admit : contents.admits) {
    if (!admitted_ids.insert(admit.id).second) {
      return Error{ErrorCode::kBadInput,
                   "journal admits request id " + std::to_string(admit.id) +
                       " twice"};
    }
  }
  for (const auto& complete : contents.completes) {
    if (admitted_ids.find(complete.id) == admitted_ids.end()) {
      return Error{ErrorCode::kBadInput,
                   "journal completes unadmitted request id " +
                       std::to_string(complete.id)};
    }
  }

  // Resolve the script to replay.
  LoadScript reconstructed;
  const LoadScript* replay_script = script;
  if (script != nullptr) {
    // Script-anchored: the journal must be a prefix of this script —
    // admit i is script event i. Any disagreement means the journal came
    // from a different run and replay would silently answer the wrong
    // questions.
    if (contents.admits.size() > script->events.size()) {
      return Error{ErrorCode::kBadInput,
                   "journal has more admits (" +
                       std::to_string(contents.admits.size()) +
                       ") than the script has events (" +
                       std::to_string(script->events.size()) + ")"};
    }
    for (std::size_t i = 0; i < contents.admits.size(); ++i) {
      const auto& admit = contents.admits[i];
      const auto& event = script->events[i];
      const bool matches =
          admit.id == i && admit.tenant == event.tenant &&
          admit.sample == event.sample && admit.priority == event.priority &&
          admit.deadline_ms == event.deadline_ms;
      if (!matches) {
        return Error{ErrorCode::kBadInput,
                     "journal admit " + std::to_string(i) +
                         " does not match script event " + std::to_string(i) +
                         " (journal from a different script?)"};
      }
    }
  } else {
    // Journal-only: rebuild the arrival trace from the admits. Request
    // ids must be dense 0..n-1 in append order for the replayer's
    // id==index convention to hold.
    reconstructed.name = "journal";
    reconstructed.seed = 0;
    for (std::size_t i = 0; i < contents.admits.size(); ++i) {
      const auto& admit = contents.admits[i];
      if (admit.id != i) {
        return Error{ErrorCode::kBadInput,
                     "journal-only replay needs dense request ids; admit " +
                         std::to_string(i) + " carries id " +
                         std::to_string(admit.id)};
      }
      LoadEvent event;
      event.at_ms = admit.arrive_ms;
      event.tenant = admit.tenant;
      event.sample = admit.sample;
      event.priority = admit.priority;
      event.deadline_ms = admit.deadline_ms;
      reconstructed.events.push_back(std::move(event));
    }
    replay_script = &reconstructed;
  }

  // Every tenant named in the replayed trace needs a serving substrate.
  for (const auto& event : replay_script->events) {
    if (tenants.find(event.tenant) == tenants.end()) {
      return Error{ErrorCode::kBadInput,
                   "no tenant registered for '" + event.tenant + "'"};
    }
  }

  // Tenants whose sample pool is absent get one rebuilt from journaled
  // features: column j = the j-th admit of that tenant, and the events
  // are re-pointed at those columns.
  std::map<std::string, dnn::DenseMatrix> rebuilt_pools;
  for (const auto& [id, tenant] : tenants) {
    if (tenant.engine == nullptr || tenant.net == nullptr) {
      return Error{ErrorCode::kBadInput,
                   "tenant '" + id + "' is missing its engine or net"};
    }
    if (tenant.samples != nullptr) continue;
    if (script != nullptr) {
      return Error{ErrorCode::kBadInput,
                   "script-anchored replay for tenant '" + id +
                       "' needs its sample pool (scripted sample indices "
                       "address it)"};
    }
    const std::size_t rows = static_cast<std::size_t>(tenant.net->neurons());
    std::size_t count = 0;
    for (const auto& admit : contents.admits) {
      if (admit.tenant == id) ++count;
    }
    dnn::DenseMatrix pool(rows, count);
    std::size_t col = 0;
    for (std::size_t i = 0; i < contents.admits.size(); ++i) {
      const auto& admit = contents.admits[i];
      if (admit.tenant != id) continue;
      if (admit.features.size() != rows) {
        return Error{ErrorCode::kBadInput,
                     "journal-only replay for tenant '" + id +
                         "' needs journaled features (admit " +
                         std::to_string(i) + " carries " +
                         std::to_string(admit.features.size()) +
                         " floats, net has " + std::to_string(rows) +
                         " neurons)"};
      }
      std::memcpy(pool.col(col), admit.features.data(),
                  rows * sizeof(float));
      reconstructed.events[i].sample = col;
      ++col;
    }
    rebuilt_pools.emplace(id, std::move(pool));
  }

  // Replay the full script on a fresh virtual clock. Registration order
  // (= round-robin order) is the sorted tenant-id order — deterministic,
  // so the oracle run and the replay agree on lane sweep order.
  ReplayOptions replay_options = options;
  replay_options.journal = nullptr;       // a replay never re-journals itself
  replay_options.journal_features = false;
  replay_options.halt_after_batches = 0;  // and always runs to completion
  replay_options.pace_ms = 0.0;
  LoadReplayer replayer(replay_options);
  for (const auto& [id, tenant] : tenants) {
    const auto rebuilt = rebuilt_pools.find(id);
    const dnn::DenseMatrix& pool = rebuilt != rebuilt_pools.end()
                                       ? rebuilt->second
                                       : *tenant.samples;
    replayer.add_tenant(id, *tenant.engine, *tenant.net, pool);
  }

  JournalReplayResult result;
  result.truncated_tail = contents.truncated_tail;
  result.report = replayer.run(*replay_script);

  for (const auto& admit : contents.admits) {
    const auto it = completed.find(admit.id);
    if (it == completed.end()) {
      result.resubmitted.push_back(admit.id);
      continue;
    }
    result.suppressed.push_back(admit.id);
    // Cross-check: a journaled served output must be reproduced bit for
    // bit by the replay. Digest 0 means no output was delivered
    // (rejection, shed, failure) — nothing to compare.
    const JournalComplete& complete = *it->second;
    if (complete.output_digest == 0) continue;
    if (admit.id >= result.report.requests.size()) {
      ++result.digest_mismatches;
      continue;
    }
    const ReplayRequest& replayed = result.report.requests[admit.id];
    const std::uint64_t replay_digest =
        replayed.served() ? output_digest64(replayed.output) : 0;
    if (replay_digest != complete.output_digest) ++result.digest_mismatches;
  }
  return result;
}

}  // namespace snicit::serve
