// The async intake of the serving front end: client threads submit
// individual samples (with optional deadlines) and the dynamic batcher
// collects them in coalesced groups. Bounded like the engine-side work
// queue — a submit on a full queue blocks, so an arrival burst can never
// hold more than `capacity` undispatched requests in memory.
//
// collect() implements the dynamic-batching wait policy: block until at
// least one request is pending, then keep gathering up to `limit`
// requests for at most `wait_ms` — returning *early* when the most
// urgent pending request's deadline budget would otherwise be spent
// waiting instead of computing (deadline-aware coalescing).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "platform/error.hpp"
#include "serve/request.hpp"

namespace snicit::serve {

class RequestQueue {
 public:
  /// capacity == 0 is a valid degenerate queue: it holds nothing, so
  /// every submit fast-fails with kRejectedOverload (the zero-quota way
  /// to cut off a tenant) — distinct from kQueueClosed, which means the
  /// queue is shutting down and a retry can never succeed.
  explicit RequestQueue(std::size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Blocks while the queue is full. Returns the assigned request id
  /// (sequential from 0, also the index of the request's slot in the
  /// final report), kQueueClosed once close() has been called, or
  /// kRejectedOverload when capacity is 0 — a submit is never silently
  /// dropped. The closed check wins when both apply.
  platform::Result<std::size_t> submit(
      std::vector<float> features, double deadline_ms = 0.0,
      Priority priority = Priority::kStandard);

  /// Non-blocking submit: where submit() would wait for space, fail
  /// immediately with kRejectedOverload instead. The admission-controlled
  /// intake path uses this — an overloaded server answers now, it does
  /// not hold the client hostage.
  platform::Result<std::size_t> try_submit(
      std::vector<float> features, double deadline_ms = 0.0,
      Priority priority = Priority::kStandard);

  /// Takes up to `limit` pending requests, highest Priority class first
  /// (arrival order within a class — plain FIFO when everything is
  /// standard). Blocks until at least one request is pending (or the
  /// queue is closed and drained, returning empty — the batcher's
  /// shutdown signal). Once the first request is visible, waits at most
  /// `wait_ms` for the group to fill, capped by the smallest remaining
  /// deadline slack among the pending requests.
  ///
  /// `max_idle_ms >= 0` bounds the *initial* wait: when nothing arrives
  /// within that window and the queue is still open, collect returns
  /// empty so the caller can poll for shutdown (distinguish via
  /// `closed()` — closed-and-drained also returns empty). The default -1
  /// blocks indefinitely, preserving the original contract.
  std::vector<ServeRequest> collect(std::size_t limit, double wait_ms,
                                    double max_idle_ms = -1.0);

  /// Irreversible: submits fail with kQueueClosed; collect drains what is
  /// pending, then returns empty forever. Safe to call concurrently and
  /// repeatedly.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Total requests ever accepted (== the id the next submit would get).
  std::size_t issued() const;

 private:
  platform::Result<std::size_t> enqueue_locked(
      std::unique_lock<std::mutex>& lock, std::vector<float> features,
      double deadline_ms, Priority priority);

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<ServeRequest> pending_;
  const std::size_t capacity_;
  std::size_t next_id_ = 0;
  bool closed_ = false;
};

}  // namespace snicit::serve
