// The async intake of the serving front end: client threads submit
// individual samples (with optional deadlines) and the dynamic batcher
// collects them in coalesced groups. Bounded like the engine-side work
// queue — a submit on a full queue blocks, so an arrival burst can never
// hold more than `capacity` undispatched requests in memory.
//
// collect() implements the dynamic-batching wait policy: block until at
// least one request is pending, then keep gathering up to `limit`
// requests for at most `wait_ms` — returning *early* when the most
// urgent pending request's deadline budget would otherwise be spent
// waiting instead of computing (deadline-aware coalescing).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "platform/error.hpp"
#include "serve/request.hpp"

namespace snicit::serve {

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Blocks while the queue is full. Returns the assigned request id
  /// (sequential from 0, also the index of the request's slot in the
  /// final report), or kQueueClosed once close() has been called — a
  /// submit is never silently dropped.
  platform::Result<std::size_t> submit(std::vector<float> features,
                                       double deadline_ms = 0.0);

  /// Takes up to `limit` pending requests in arrival order. Blocks until
  /// at least one request is pending (or the queue is closed and drained,
  /// returning empty — the batcher's shutdown signal). Once the first
  /// request is visible, waits at most `wait_ms` for the group to fill,
  /// capped by the smallest remaining deadline slack among the pending
  /// requests.
  std::vector<ServeRequest> collect(std::size_t limit, double wait_ms);

  /// Irreversible: submits fail with kQueueClosed; collect drains what is
  /// pending, then returns empty forever. Safe to call concurrently and
  /// repeatedly.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Total requests ever accepted (== the id the next submit would get).
  std::size_t issued() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<ServeRequest> pending_;
  const std::size_t capacity_;
  std::size_t next_id_ = 0;
  bool closed_ = false;
};

}  // namespace snicit::serve
