// The conformance harness's time source: a virtual clock that only moves
// when the replayer moves it. Load-replay tests never sleep and never
// read the wall clock — arrival times come from the script, service
// times from the deterministic service model — so every latency, every
// admission decision, and every brownout transition is an exact function
// of (script, options) and therefore bit-reproducible run over run.
#pragma once

#include "platform/common.hpp"

namespace snicit::serve {

class VirtualClock {
 public:
  double now_ms() const { return now_ms_; }

  /// Time never runs backwards; replayer bugs that would reorder events
  /// fail loudly instead of silently corrupting the decision log.
  void advance_to(double t_ms) {
    SNICIT_CHECK(t_ms >= now_ms_, "virtual clock cannot run backwards");
    now_ms_ = t_ms;
  }

 private:
  double now_ms_ = 0.0;
};

}  // namespace snicit::serve
