#include "serve/router.hpp"

#include <chrono>
#include <utility>

#include "platform/metrics.hpp"

namespace snicit::serve {

using platform::Error;
using platform::ErrorCode;

Router::Router(ModelRegistry& registry, RouterOptions options)
    : registry_(registry), options_(std::move(options)) {
  if (options_.lone_wait_ms < 0.0) {
    options_.lone_wait_ms = options_.serve.batch_timeout_ms;
  }
  // One controller for the whole router: pressure, the cost model, and
  // the brownout ladder are properties of the shared server, and the
  // per-tenant depth map inside it is what keeps tenant quotas isolated.
  if (options_.serve.controller != nullptr) {
    controller_ = options_.serve.controller;
  } else if (options_.serve.admission.enabled) {
    controller_ =
        std::make_shared<AdmissionController>(options_.serve.admission);
    options_.serve.controller = controller_;
  }
  server_ = std::thread([this] { route_loop(); });
}

Router::~Router() { finish(); }

platform::Result<std::size_t> Router::submit(const std::string& model_id,
                                             std::vector<float> features,
                                             double deadline_ms,
                                             Priority priority) {
  // Intake-side shutdown check, mirroring DynamicBatcher::submit: the
  // route loop also closes intakes when it polls, but the first
  // submission after the signal must see the drain deterministically.
  const platform::ShutdownController& shutdown =
      options_.shutdown != nullptr ? *options_.shutdown
                                   : platform::ShutdownController::global();
  if (shutdown.requested()) {
    drained_on_signal_.store(true, std::memory_order_release);
    return Error{ErrorCode::kQueueClosed,
                 "intake closed: shutdown signal received"};
  }
  Lane* lane = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_) {
      return Error{ErrorCode::kQueueClosed, "router is finished"};
    }
    auto it = lanes_.find(model_id);
    if (it == lanes_.end()) {
      auto model = registry_.find(model_id);
      if (model == nullptr) {
        return Error{ErrorCode::kBadInput,
                     "no model '" + model_id + "' is registered"};
      }
      auto fresh = std::make_unique<Lane>();
      fresh->id = model_id;
      fresh->model = model;
      fresh->generation = model->generation;
      fresh->engine = model->make_engine();
      ServeOptions serve = options_.serve;
      serve.tenant = model_id;
      fresh->batcher = std::make_unique<DynamicBatcher>(
          *fresh->engine, *model->net, std::move(serve), ManualDrive{});
      if (model->has_economy()) {
        fresh->economy = model->make_economy_engine();
        fresh->batcher->set_economy(fresh->economy.get());
      }
      it = lanes_.emplace(model_id, std::move(fresh)).first;
    }
    lane = it->second.get();
    if (lane->removed) {
      return Error{ErrorCode::kBadInput,
                   "model '" + model_id +
                       "' was removed; its lane is draining"};
    }
  }
  // Outside the lock: a full intake may block, and the queue's own
  // synchronization covers concurrent submitters. Lanes are never
  // destroyed before the router thread is joined, so `lane` stays valid.
  return lane->batcher->submit(std::move(features), deadline_ms,
                               priority);
}

std::vector<Router::Lane*> Router::snapshot_lanes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Lane*> lanes;
  lanes.reserve(lanes_.size());
  for (const auto& [id, lane] : lanes_) lanes.push_back(lane.get());
  return lanes;
}

void Router::sync_lane(Lane& lane) {
  if (lane.removed) return;
  const std::uint64_t current = registry_.generation(lane.id);
  if (current == lane.generation) return;
  if (current == 0) {
    // Removed from the registry: stop accepting, drain what we have.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      lane.removed = true;
    }
    lane.batcher->close_intake();
    return;
  }
  auto model = registry_.find(lane.id);
  if (model == nullptr) {  // raced with a remove; next sweep sees gen 0
    return;
  }
  // Hot swap. rebind() only redirects *future* rounds; the previous round
  // already completed (rounds are serialized on this thread), so the old
  // engine can be dropped as soon as the new one is bound.
  auto engine = model->make_engine();
  lane.batcher->rebind(*engine, *model->net);
  auto economy = model->make_economy_engine();  // null when unconfigured
  lane.batcher->set_economy(economy.get());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    lane.engine = std::move(engine);
    lane.economy = std::move(economy);
    lane.model = std::move(model);
    lane.generation = lane.model->generation;
  }
  if (platform::metrics::enabled()) {
    platform::metrics::MetricsRegistry::global()
        .counter("serve." + lane.id + ".rebinds")
        .add(1);
  }
}

void Router::route_loop() {
  const platform::ShutdownController& shutdown =
      options_.shutdown != nullptr ? *options_.shutdown
                                   : platform::ShutdownController::global();
  for (;;) {
    bool worked = false;
    std::size_t pending_lanes = 0;
    std::vector<Lane*> lanes = snapshot_lanes();
    // Signal-driven drain: close every intake once, then fall into the
    // normal stopping path — accepted requests are served, lanes drain,
    // and the loop exits when nothing is left.
    if (shutdown.requested() &&
        !drained_on_signal_.load(std::memory_order_relaxed)) {
      drained_on_signal_.store(true, std::memory_order_release);
    }
    if (drained_on_signal_.load(std::memory_order_relaxed)) {
      for (Lane* lane : lanes) lane->batcher->close_intake();
      stopping_.store(true, std::memory_order_release);
    }
    for (Lane* lane : lanes) {
      if (!lane->retired && lane->batcher->pending() > 0) ++pending_lanes;
    }
    for (Lane* lane : lanes) {
      if (lane->retired) continue;
      sync_lane(*lane);
      // Zero wait whenever another tenant is pending: fairness beats
      // batch fill. A lone pending tenant gets the configured wait so
      // its rounds can fill.
      const bool stopping = stopping_.load(std::memory_order_acquire);
      const double wait =
          (!stopping && pending_lanes <= 1) ? options_.lone_wait_ms : 0.0;
      worked = lane->batcher->drive(wait) || worked;
      if (lane->removed && lane->batcher->drained()) {
        lane->retired = true;
      }
    }
    if (stopping_.load(std::memory_order_acquire)) {
      bool all_drained = true;
      for (Lane* lane : lanes) {
        if (!lane->batcher->drained()) all_drained = false;
      }
      if (all_drained && !worked) return;
      continue;
    }
    if (!worked) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.idle_sleep_ms));
    }
  }
}

RouterReport Router::finish() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_) return {};
    finished_ = true;
  }
  for (Lane* lane : snapshot_lanes()) lane->batcher->close_intake();
  stopping_.store(true, std::memory_order_release);
  if (server_.joinable()) server_.join();

  RouterReport report;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, lane] : lanes_) {
      ServeReport tenant = lane->batcher->finish();
      if (tenant.requests > 0) {
        report.tenants.emplace(id, std::move(tenant));
      }
    }
  }
  report.wall_ms = wall_.elapsed_ms();
  report.drained_on_signal =
      drained_on_signal_.load(std::memory_order_acquire);
  return report;
}

std::size_t Router::lanes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_.size();
}

std::uint64_t Router::lane_generation(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = lanes_.find(id);
  return it == lanes_.end() ? 0 : it->second->generation;
}

std::size_t Router::completed(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = lanes_.find(id);
  return it == lanes_.end() ? 0 : it->second->batcher->completed();
}

}  // namespace snicit::serve
