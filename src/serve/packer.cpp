#include "serve/packer.hpp"

#include <bit>

#include "platform/common.hpp"
#include "platform/error.hpp"

namespace snicit::serve {

namespace {

/// SplitMix64-style finalizer: one well-mixed 64-bit word per feature,
/// whose bits are the ±1 projection weights of the 64 SimHash planes.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Signature input_signature(std::span<const float> column, std::uint64_t seed) {
  // One accumulator per plane; each nonzero feature contributes +|x| or
  // -|x| per plane according to its hash bits. Magnitude weighting keeps
  // the sketch meaningful for continuous inputs; for the binary SDGC
  // batches it degenerates to ±1 counting.
  float acc[64] = {};
  for (std::size_t i = 0; i < column.size(); ++i) {
    const float x = column[i];
    if (x == 0.0f) continue;
    const float w = x < 0.0f ? -x : x;
    std::uint64_t h = mix64(seed ^ (static_cast<std::uint64_t>(i) *
                                    0x2545f4914f6cdd1dULL));
    for (int b = 0; b < 64; ++b) {
      acc[b] += (h & 1ULL) ? w : -w;
      h >>= 1;
    }
  }
  Signature sig = 0;
  for (int b = 0; b < 64; ++b) {
    if (acc[b] > 0.0f) sig |= (1ULL << b);
  }
  return sig;
}

double signature_similarity(Signature a, Signature b) {
  return static_cast<double>(64 - std::popcount(a ^ b)) / 64.0;
}

double mean_pairwise_similarity(std::span<const Signature> signatures) {
  const std::size_t n = signatures.size();
  if (n < 2) return 1.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j, ++pairs) {
      sum += signature_similarity(signatures[i], signatures[j]);
    }
  }
  return sum / static_cast<double>(pairs);
}

std::vector<std::size_t> FifoPacker::pack(
    std::span<const Signature> signatures, std::size_t max_batch) {
  (void)max_batch;
  std::vector<std::size_t> order(signatures.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  return order;
}

SimilarityPacker::SimilarityPacker(double threshold) : threshold_(threshold) {
  SNICIT_CHECK(threshold > 0.5 && threshold <= 1.0,
               "similarity threshold must be in (0.5, 1]");
}

std::vector<std::size_t> SimilarityPacker::pack(
    std::span<const Signature> signatures, std::size_t max_batch) {
  (void)max_batch;
  const std::size_t n = signatures.size();
  std::vector<Signature> leaders;
  std::vector<std::vector<std::size_t>> clusters;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = clusters.size();
    double best_sim = threshold_;
    for (std::size_t c = 0; c < leaders.size(); ++c) {
      const double sim = signature_similarity(signatures[i], leaders[c]);
      if (sim >= best_sim) {
        best = c;
        best_sim = sim;
        if (sim == 1.0) break;  // exact match: no better cluster exists
      }
    }
    if (best == clusters.size()) {
      leaders.push_back(signatures[i]);
      clusters.emplace_back();
    }
    clusters[best].push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(n);
  for (const auto& cluster : clusters) {
    order.insert(order.end(), cluster.begin(), cluster.end());
  }
  return order;
}

const std::vector<std::string>& known_packers() {
  static const std::vector<std::string> names = {"fifo", "similarity"};
  return names;
}

std::unique_ptr<BatchPacker> make_packer(const std::string& name,
                                         double similarity_threshold) {
  if (name == "fifo") return std::make_unique<FifoPacker>();
  if (name == "similarity") {
    return std::make_unique<SimilarityPacker>(similarity_threshold);
  }
  throw platform::ErrorException(
      platform::ErrorCode::kBadInput,
      "unknown packer '" + name + "' (expected fifo|similarity)");
}

}  // namespace snicit::serve
