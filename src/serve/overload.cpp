#include "serve/overload.hpp"

#include <algorithm>
#include <cstdio>

#include "platform/common.hpp"
#include "platform/metrics.hpp"
#include "platform/trace.hpp"

namespace snicit::serve {

using platform::Error;
using platform::ErrorCode;

platform::Result<Priority> parse_priority(const std::string& name) {
  if (name == "sheddable") return Priority::kSheddable;
  if (name == "standard") return Priority::kStandard;
  if (name == "critical") return Priority::kCritical;
  return Error{ErrorCode::kBadInput,
               "unknown priority '" + name +
                   "' (expected sheddable|standard|critical)"};
}

// --- EwmaCostModel ---------------------------------------------------

EwmaCostModel::EwmaCostModel(CostModelOptions options)
    : options_(options), col_ms_(options.initial_col_ms) {
  SNICIT_CHECK(options_.alpha > 0.0 && options_.alpha <= 1.0,
               "cost model alpha must be in (0, 1]");
  SNICIT_CHECK(options_.initial_col_ms >= 0.0,
               "cost model prior must be non-negative");
}

void EwmaCostModel::observe(std::size_t cols, double batch_ms,
                            double residue_nnz) {
  if (cols == 0 || !(batch_ms > 0.0)) return;
  const double per_col = batch_ms / static_cast<double>(cols);
  if (observations_ == 0) {
    col_ms_ = per_col;
    residue_nnz_ = std::max(residue_nnz, 0.0);
  } else {
    col_ms_ += options_.alpha * (per_col - col_ms_);
    residue_nnz_ += options_.alpha * (std::max(residue_nnz, 0.0) -
                                      residue_nnz_);
  }
  observations_ += 1;
}

double EwmaCostModel::estimate_ms(std::size_t cols) const {
  return static_cast<double>(cols) * col_ms_ +
         options_.residue_ms_per_nnz * residue_nnz_;
}

// --- BrownoutLadder --------------------------------------------------

BrownoutLadder::BrownoutLadder(BrownoutOptions options)
    : options_(options) {
  SNICIT_CHECK(options_.exit_pressure < options_.enter_pressure,
               "brownout hysteresis requires exit_pressure < "
               "enter_pressure");
  SNICIT_CHECK(options_.enter_rounds >= 1 && options_.exit_rounds >= 1,
               "brownout dwell counts must be >= 1");
  SNICIT_CHECK(options_.max_level >= 0 && options_.max_level <= 3,
               "brownout max_level must be in [0, 3]");
  if (options_.force_level >= 0) {
    level_ = std::min(options_.force_level, options_.max_level);
  }
}

int BrownoutLadder::observe(double pressure) {
  if (options_.force_level >= 0) return 0;  // pinned (test hook)
  if (pressure >= options_.enter_pressure) {
    cool_rounds_ = 0;
    hot_rounds_ += 1;
    if (hot_rounds_ >= options_.enter_rounds &&
        level_ < options_.max_level) {
      level_ += 1;
      hot_rounds_ = 0;
      return +1;
    }
    return 0;
  }
  hot_rounds_ = 0;
  if (pressure <= options_.exit_pressure) {
    cool_rounds_ += 1;
    if (cool_rounds_ >= options_.exit_rounds && level_ > 0) {
      level_ -= 1;
      cool_rounds_ = 0;
      return -1;
    }
    return 0;
  }
  // Between the thresholds: the hysteresis band — hold the level and both
  // counters' progress is discarded so a flickering load cannot creep.
  cool_rounds_ = 0;
  return 0;
}

// --- DecisionLog -----------------------------------------------------

namespace {

std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t hash = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

std::string DecisionLog::to_text() const {
  std::string out;
  out.reserve(records_.size() * 64);
  char line[192];
  for (const DecisionRecord& r : records_) {
    std::snprintf(line, sizeof(line),
                  "t=%.6f %s tenant=%s req=%llu pr=%s detail=%.6f\n",
                  r.at_ms, to_string(r.kind), r.tenant.c_str(),
                  static_cast<unsigned long long>(r.request),
                  to_string(r.priority), r.detail);
    out += line;
  }
  return out;
}

std::uint64_t DecisionLog::digest() const {
  const std::string text = to_text();
  return fnv1a(text.data(), text.size());
}

// --- AdmissionController ---------------------------------------------

platform::Error AdmissionVerdict::to_error(const std::string& tenant) const {
  char hint[96];
  std::snprintf(hint, sizeof(hint), "; retry after %.3f ms",
                retry_after_ms);
  return Error{ErrorCode::kRejectedOverload,
               "overloaded: " + std::string(reason) + " cap reached" +
                   (tenant.empty() ? std::string()
                                   : " for tenant '" + tenant + "'") +
                   hint};
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options), cost_(options.cost), ladder_(options.brownout) {
  SNICIT_CHECK(options_.sheddable_headroom >= 0.0 &&
                   options_.sheddable_headroom <= 1.0,
               "sheddable_headroom must be in [0, 1]");
}

AdmissionVerdict AdmissionController::admit(const std::string& tenant,
                                            Priority priority,
                                            double now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  Tenant& state = tenants_[tenant];

  const double headroom = priority == Priority::kSheddable
                              ? options_.sheddable_headroom
                              : 1.0;
  const double depth_cap =
      static_cast<double>(depth_quota_locked(tenant)) * headroom;
  const double work_cap = options_.max_backlog_ms * headroom;

  AdmissionVerdict verdict;
  const auto next_depth = static_cast<double>(state.depth + 1);
  if (next_depth > depth_cap) {
    verdict.admitted = false;
    verdict.reason = "depth";
    // Hint: time for the over-cap slice of the backlog to drain.
    const double over = next_depth - depth_cap;
    verdict.retry_after_ms = std::max(
        cost_.estimate_ms(static_cast<std::size_t>(std::max(over, 1.0))),
        0.001);
  } else if (options_.max_backlog_ms > 0.0 &&
             cost_.estimate_ms(state.depth + 1) > work_cap) {
    verdict.admitted = false;
    verdict.reason = "work";
    verdict.retry_after_ms =
        std::max(cost_.estimate_ms(state.depth + 1) - work_cap, 0.001);
  }

  if (verdict.admitted) {
    state.depth += 1;
    accepted_ += 1;
  } else {
    rejected_ += 1;
  }
  if (options_.record_decisions) {
    log_.append({verdict.admitted ? DecisionRecord::Kind::kAccept
                                  : DecisionRecord::Kind::kReject,
                 now_ms, tenant, accepted_ + rejected_ - 1, priority,
                 verdict.admitted ? static_cast<double>(state.depth)
                                  : verdict.retry_after_ms});
  }
  if (platform::metrics::enabled()) {
    auto& registry = platform::metrics::MetricsRegistry::global();
    registry.counter(verdict.admitted ? "serve.overload.accepted"
                                      : "serve.overload.rejected")
        .add(1);
    registry.gauge("serve.overload.pressure")
        .set(system_pressure_locked());
  }
  return verdict;
}

void AdmissionController::on_collected(const std::string& tenant,
                                       std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  Tenant& state = tenants_[tenant];
  state.depth -= std::min(state.depth, n);
}

bool AdmissionController::infeasible(double slack_ms,
                                     std::size_t cols) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cost_.estimate_ms(cols) > slack_ms;
}

void AdmissionController::on_round(const std::string& tenant,
                                   std::size_t cols, double batch_ms,
                                   double residue_nnz, double now_ms) {
  int transition = 0;
  double level = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cost_.observe(cols, batch_ms, residue_nnz);
    const double pressure = system_pressure_locked();
    transition = ladder_.observe(pressure);
    level = static_cast<double>(static_cast<int>(ladder_.level()));
    if (transition > 0) escalations_ += 1;
    if (transition < 0) deescalations_ += 1;
    if (transition != 0 && options_.record_decisions) {
      log_.append({transition > 0 ? DecisionRecord::Kind::kBrownoutUp
                                  : DecisionRecord::Kind::kBrownoutDown,
                   now_ms, tenant, 0, Priority::kStandard, level});
    }
  }
  if (platform::metrics::enabled()) {
    auto& registry = platform::metrics::MetricsRegistry::global();
    registry.gauge("serve.overload.brownout_level").set(level);
    registry.gauge("serve.overload.pressure").set(system_pressure());
    if (transition != 0) {
      SNICIT_TRACE_SPAN("serve.overload.brownout", "serve");
      registry
          .counter(transition > 0 ? "serve.overload.brownout_ups"
                                  : "serve.overload.brownout_downs")
          .add(1);
    }
  }
}

void AdmissionController::record_shed(const std::string& tenant,
                                      std::size_t request,
                                      Priority priority, double slack_ms,
                                      double now_ms) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shed_ += 1;
    if (options_.record_decisions) {
      log_.append({DecisionRecord::Kind::kShed, now_ms, tenant, request,
                   priority, slack_ms});
    }
  }
  if (platform::metrics::enabled()) {
    platform::metrics::MetricsRegistry::global()
        .counter("serve.overload.shed")
        .add(1);
  }
}

void AdmissionController::record_timeout(const std::string& tenant,
                                         std::size_t request,
                                         Priority priority,
                                         double now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.record_decisions) {
    log_.append(
        {DecisionRecord::Kind::kTimeout, now_ms, tenant, request, priority,
         0.0});
  }
}

void AdmissionController::record_dispatch(const std::string& tenant,
                                          std::size_t request,
                                          Priority priority, double batch,
                                          double now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.record_decisions) {
    log_.append({DecisionRecord::Kind::kDispatch, now_ms, tenant, request,
                 priority, batch});
  }
}

BrownoutLevel AdmissionController::level() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ladder_.level();
}

double AdmissionController::effective_timeout_ms(
    double configured_ms) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<int>(ladder_.level()) >=
      static_cast<int>(BrownoutLevel::kTightTimeout)) {
    return configured_ms * options_.brownout.timeout_shrink;
  }
  return configured_ms;
}

std::size_t AdmissionController::depth_quota_locked(
    const std::string& id) const {
  auto it = options_.tenant_depth.find(id);
  return it == options_.tenant_depth.end() ? options_.max_queue_depth
                                           : it->second;
}

double AdmissionController::pressure_locked(const std::string& id,
                                            const Tenant& tenant) const {
  const std::size_t quota = depth_quota_locked(id);
  double pressure = 0.0;
  if (quota > 0) {
    pressure = static_cast<double>(tenant.depth) /
               static_cast<double>(quota);
  } else if (tenant.depth > 0) {
    pressure = 1.0;
  }
  if (options_.max_backlog_ms > 0.0) {
    pressure = std::max(pressure, cost_.estimate_ms(tenant.depth) /
                                      options_.max_backlog_ms);
  }
  return pressure;
}

double AdmissionController::system_pressure_locked() const {
  double pressure = 0.0;
  for (const auto& [id, tenant] : tenants_) {
    pressure = std::max(pressure, pressure_locked(id, tenant));
  }
  return pressure;
}

double AdmissionController::pressure(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0.0
                              : pressure_locked(tenant, it->second);
}

double AdmissionController::system_pressure() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return system_pressure_locked();
}

std::size_t AdmissionController::depth(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.depth;
}

std::size_t AdmissionController::accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

std::size_t AdmissionController::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

std::size_t AdmissionController::shed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

int AdmissionController::brownout_escalations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return escalations_;
}

int AdmissionController::brownout_deescalations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deescalations_;
}

double AdmissionController::estimate_ms(std::size_t cols) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cost_.estimate_ms(cols);
}

DecisionLog AdmissionController::take_log() {
  std::lock_guard<std::mutex> lock(mutex_);
  DecisionLog out = std::move(log_);
  log_.clear();
  return out;
}

}  // namespace snicit::serve
