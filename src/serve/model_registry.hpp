// Multi-tenant model registry: the serving layer's catalogue of prepared
// models. Each entry owns an inference-ready pair — a SparseDnn (CSC
// mirrors built) plus a prototype InferenceEngine carrying its tuned
// SnicitParams — under a stable string id, and every mutation (add, hot
// swap, remove) is typed: a malformed manifest or a bad weight file is an
// Error the server branches on, never a crash.
//
// Models arrive two ways:
//
//   * a JSON manifest (`load_manifest`) parsed with the strict
//     platform::json parser — the deployment path. Synthetic Radix-Net
//     workloads are described inline (neurons/layers/seed); real weights
//     point at SDGC TSV prefixes and ride the typed try_* loaders.
//   * programmatic registration (`add_model`) with a caller-built net and
//     engine prototype — the path for custom engines and tests.
//
// Generations: every successful add/swap stamps the entry with a fresh
// registry-wide generation counter. Serving lanes compare their bound
// generation against generation(id) to detect a hot swap and rebind
// between rounds — batches already dispatched finish on the engine they
// started on (the registry never destroys a PreparedModel out from under
// a reader; entries are shared_ptr and live while any lane holds them).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dnn/engine.hpp"
#include "dnn/sparse_dnn.hpp"
#include "platform/error.hpp"

namespace snicit::serve {

/// One manifest entry: where the model's weights come from and how its
/// engine is tuned. Defaults mirror snicit_cli's.
struct ModelSpec {
  std::string id;
  /// snicit | snicit-warm | reference | serial | bf2019 | snig2020 |
  /// xy2021 (snicit-warm = WarmSnicitEngine, centroid cache established
  /// on the first served batch and reused after).
  std::string engine = "snicit";

  // Workload shape (and the synthetic generator's knobs when no TSV
  // prefix is given).
  std::int64_t neurons = 1024;
  int layers = 48;
  int fanin = 32;
  std::uint64_t seed = 42;

  /// When non-empty: load "<net>-l<k>.tsv" weight files instead of
  /// generating a Radix-Net (typed kBadModelFile on bad paths/bytes).
  std::string net_prefix;
  /// Optional integrity pins: one lowercase SHA-256 hex digest per weight
  /// file, in layer order (l1..lL, so size must equal `layers`). Only
  /// meaningful with `net_prefix` — synthetic models have no artifacts to
  /// pin. Verified on every prepare (initial load AND hot swap): a
  /// mismatch is a typed kBadModelFile rejection, so a silently re-trained
  /// or bit-rotted artifact can never masquerade as the manifested model.
  std::vector<std::string> sha256;
  /// Constant per-layer bias for TSV loads; NaN picks the Table 1 value
  /// for `neurons`.
  float bias = std::numeric_limits<float>::quiet_NaN();

  // SNICIT tuning (ignored by non-SNICIT engines). threshold 0 derives
  // the CLI default: 30 for deep (>= 120 layer) nets, layers/2 otherwise.
  int threshold = 0;
  int sample_size = 32;
  int downsample = 16;
  float prune = 0.0f;

  /// Optional cheaper engine tier for brownout level 3 (same engine-name
  /// vocabulary as `engine`; empty = none). Serves the *same* network —
  /// an overloaded lane degrades its scheduling cost, never its answers.
  std::string economy_engine;
};

/// A registered model, ready to serve. Immutable once published (hot swap
/// publishes a *new* PreparedModel under the same id).
struct PreparedModel {
  ModelSpec spec;
  std::uint64_t generation = 0;
  std::shared_ptr<const dnn::SparseDnn> net;
  std::shared_ptr<const dnn::InferenceEngine> prototype;
  /// Brownout level-3 engine tier (null when the spec named none).
  std::shared_ptr<const dnn::InferenceEngine> economy;

  /// Fresh engine instance for a serving lane (prototype->clone()).
  std::unique_ptr<dnn::InferenceEngine> make_engine() const {
    return prototype->clone();
  }

  bool has_economy() const { return economy != nullptr; }
  /// Fresh economy-tier instance, or nullptr when none is configured.
  std::unique_ptr<dnn::InferenceEngine> make_economy_engine() const {
    return economy == nullptr ? nullptr : economy->clone();
  }
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The engine names load_manifest/add accept.
  static const std::vector<std::string>& known_engines();

  /// Parses a manifest document into specs without preparing anything.
  /// Manifest shape (strict — unknown keys are typed errors):
  ///   {"models": [{"id": "...", "engine": "snicit", "neurons": 256,
  ///                "layers": 24, "seed": 7, ...}, ...]}
  /// Fails with kBadModelFile on malformed JSON, schema violations,
  /// missing/empty/duplicate ids, or unknown engines.
  static platform::Result<std::vector<ModelSpec>> parse_manifest_text(
      const std::string& text);

  /// Reads, parses, prepares, and registers every model of the manifest
  /// file. All-or-nothing: on any failure (unreadable file, malformed
  /// entry, bad weight file, id already registered) nothing is added.
  /// Returns the number of models registered.
  platform::Result<std::size_t> load_manifest(const std::string& path);
  platform::Result<std::size_t> load_manifest_text(const std::string& text);

  /// Verifies `spec`'s weight files against its sha256 pins without
  /// loading anything. Returns the number of files hashed (0 when the
  /// spec pins nothing). kBadModelFile on a digest mismatch or an
  /// unreadable artifact; kBadInput when pins are present without a net
  /// prefix or with the wrong count. prepare() runs this before every
  /// load and hot swap; `snicit_cli verify-manifest` runs it standalone.
  static platform::Result<std::size_t> verify_artifacts(
      const ModelSpec& spec);

  /// Prepares `spec` (builds/loads the net, constructs the engine) and
  /// registers it. kBadInput when the id is empty or already taken;
  /// loader/engine errors propagate typed. Returns the new generation.
  platform::Result<std::uint64_t> add(const ModelSpec& spec);

  /// Programmatic registration: caller-built net + engine prototype. The
  /// prototype must support clone() (serving lanes pool clones of it).
  /// `economy` optionally binds a brownout level-3 engine tier (must also
  /// clone()).
  platform::Result<std::uint64_t> add_model(
      const std::string& id, std::shared_ptr<const dnn::SparseDnn> net,
      std::shared_ptr<const dnn::InferenceEngine> prototype,
      std::shared_ptr<const dnn::InferenceEngine> economy = nullptr);

  /// Hot swap: replaces the model registered under spec.id with a freshly
  /// prepared one and bumps the generation. The neuron count must not
  /// change (in-flight requests carry fixed-length features). kBadInput
  /// when the id is unknown. The old PreparedModel stays alive for lanes
  /// still holding it — their batches finish on the old engine.
  platform::Result<std::uint64_t> swap(const ModelSpec& spec);
  platform::Result<std::uint64_t> swap_model(
      const std::string& id, std::shared_ptr<const dnn::SparseDnn> net,
      std::shared_ptr<const dnn::InferenceEngine> prototype,
      std::shared_ptr<const dnn::InferenceEngine> economy = nullptr);

  /// Unregisters `id`: future lookups/submits fail, lanes still serving
  /// it drain what they already accepted. kBadInput when unknown.
  platform::Result<void> remove(const std::string& id);

  /// The registered model, or nullptr. The returned snapshot is immune to
  /// later swap/remove.
  std::shared_ptr<const PreparedModel> find(const std::string& id) const;

  /// Current generation of `id`, 0 when not registered. Lanes poll this
  /// to detect hot swaps cheaply.
  std::uint64_t generation(const std::string& id) const;

  std::vector<std::string> ids() const;  // sorted
  std::size_t size() const;

 private:
  static platform::Result<std::shared_ptr<const PreparedModel>> prepare(
      const ModelSpec& spec);

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const PreparedModel>> models_;
  std::uint64_t next_generation_ = 1;
};

}  // namespace snicit::serve
